"""Uncore frequency drivers: the reactive UFS-like baseline and static caps.

``run_governed_sequence`` models the stock Intel uncore frequency scaling
driver: an interval-based reactive controller that observes memory
boundedness and steps the uncore frequency up (quickly, to protect
performance) or down (slowly, to save power).  Its control-loop latency is
what compiler-inserted static caps beat: a bandwidth-bound kernel spends its
first milliseconds below the bandwidth-saturation frequency, and a
compute-bound kernel spends most of its runtime above the EDP-optimal one.

``run_capped_sequence`` models PolyUFC-generated binaries: each kernel runs
at its embedded cap, and every cap *change* charges the measured driver
overhead (35us on BDW, 21us on RPL, Sec. VII-F).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.hw.execution import (
    KernelWorkload,
    RunResult,
    compute_time_s,
    execute_fixed,
    instant_power_w,
    memory_time_s,
)
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class GovernorConfig:
    """Reactive uncore driver parameters.

    Defaults model the stock driver's sticky-high behaviour: any noticeable
    memory activity ramps the uncore up quickly, and it descends only very
    slowly when the memory system looks idle.  That is near-optimal for
    bandwidth-bound performance and systematically over-provisioned for
    compute-bound kernels -- the inefficiency Sec. I motivates.
    """

    interval_s: float = 500e-6
    up_step_ghz: float = 0.2
    down_step_ghz: float = 0.05
    high_boundedness: float = 0.25
    low_boundedness: float = 0.04
    start_fraction: float = 0.85  # initial f as a fraction of f_max
    max_intervals: int = 2_000_000


@dataclass
class SequenceResult:
    """Execution of a kernel sequence (totals plus per-kernel runs).

    ``warnings`` carries structured anomalies from the simulated run --
    today that is interval-budget exhaustion (``max_intervals``), which
    truncates the run instead of raising so long sweeps degrade loudly
    rather than die; ``truncated`` is True iff such a warning is present.
    """

    runs: List[RunResult]
    time_s: float
    energy_j: float
    cap_switches: int = 0
    warnings: List[str] = field(default_factory=list)

    @property
    def truncated(self) -> bool:
        return any(
            warning.startswith("max_intervals") for warning in self.warnings
        )

    @property
    def avg_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s


def exhaustion_warning(
    budget: int,
    kernel: str,
    index: int,
    total: int,
    progress: float,
) -> str:
    """The structured ``max_intervals`` truncation warning.

    One format shared by every interval-driven driver (reactive, DUF,
    adaptive), machine-matchable via ``SequenceResult.truncated``.
    """
    return (
        f"max_intervals={budget} exhausted in kernel {kernel!r} "
        f"({index + 1}/{total}, {progress:.1%} done); "
        f"remaining work truncated"
    )


def run_governed_sequence(
    platform: PlatformSpec,
    workloads: Sequence[KernelWorkload],
    config: GovernorConfig = GovernorConfig(),
    prefetch: bool = True,
    start_freq_ghz: Optional[float] = None,
) -> SequenceResult:
    """Run kernels back to back under the reactive driver.

    The driver's frequency state persists across kernels, like the real
    sysfs driver does across process phases.
    """
    freq = platform.uncore.clamp(
        start_freq_ghz
        if start_freq_ghz is not None
        else config.start_fraction * platform.uncore.f_max_ghz
    )
    runs: List[RunResult] = []
    total_time = 0.0
    total_energy = 0.0
    warnings: List[str] = []
    # The control interval spans kernel boundaries, like the real driver's
    # sampling timer does: utilization is accumulated time-weighted until
    # the interval elapses, then the frequency steps.
    interval_left = config.interval_s
    bound_weighted = 0.0
    interval_elapsed = 0.0
    intervals = 0
    for index, workload in enumerate(workloads):
        if warnings:
            break
        kernel_time = 0.0
        kernel_energy = 0.0
        progress = 0.0
        while progress < 1.0:
            intervals += 1
            if intervals > config.max_intervals:
                warnings.append(exhaustion_warning(
                    config.max_intervals, workload.name,
                    index, len(workloads), progress,
                ))
                break
            t_compute = compute_time_s(platform, workload)
            t_memory = memory_time_s(platform, workload, freq, prefetch)
            full_time = max(t_compute, t_memory) + platform.overlap_rho * min(
                t_compute, t_memory
            )
            power = instant_power_w(
                platform, workload, freq, t_compute, t_memory, full_time
            )
            remaining = (1.0 - progress) * full_time
            slice_s = min(interval_left, remaining)
            progress += slice_s / full_time if full_time else 1.0
            kernel_time += slice_s
            kernel_energy += power * slice_s
            boundedness = t_memory / full_time if full_time else 0.0
            bound_weighted += boundedness * slice_s
            interval_elapsed += slice_s
            interval_left -= slice_s
            if interval_left <= 1e-12:
                average = (
                    bound_weighted / interval_elapsed
                    if interval_elapsed
                    else 0.0
                )
                if average > config.high_boundedness:
                    freq = platform.uncore.clamp(freq + config.up_step_ghz)
                elif average < config.low_boundedness:
                    freq = platform.uncore.clamp(freq - config.down_step_ghz)
                interval_left = config.interval_s
                bound_weighted = 0.0
                interval_elapsed = 0.0
        runs.append(RunResult(workload.name, freq, kernel_time, kernel_energy))
        total_time += kernel_time
        total_energy += kernel_energy
    return SequenceResult(
        runs, total_time, total_energy, warnings=warnings
    )


def run_capped_sequence(
    platform: PlatformSpec,
    items: Sequence[Tuple[KernelWorkload, Optional[float]]],
    prefetch: bool = True,
    noisy: bool = True,
) -> SequenceResult:
    """Run kernels with embedded static caps (None = platform maximum).

    A cap *change* costs the platform's measured driver-call overhead,
    charged at constant-plus-idle-uncore power.
    """
    runs: List[RunResult] = []
    total_time = 0.0
    total_energy = 0.0
    switches = 0
    current: Optional[float] = None
    for workload, cap in items:
        target = platform.uncore.clamp(
            cap if cap is not None else platform.uncore.f_max_ghz
        )
        if current is None or abs(target - current) > 1e-9:
            switches += 1
            overhead = platform.cap_overhead_s
            idle_power = platform.p_constant_w + platform.uncore_power_w(
                target, 0.0
            )
            total_time += overhead
            total_energy += idle_power * overhead
            current = target
        run = execute_fixed(platform, workload, current, prefetch, noisy)
        runs.append(run)
        total_time += run.time_s
        total_energy += run.energy_j
    return SequenceResult(runs, total_time, total_energy, switches)
