"""Simulated platform specifications (the Tab. III substitute).

Two microarchitectures mirror the paper's testbed, scaled down together with
the benchmark problem sizes (see DESIGN.md): cache capacities, bandwidths
and flop rates are all smaller than the real parts, but the *ratios* that
drive characterization -- machine balance, LLC capacity vs working sets,
bandwidth-saturation frequency inside the uncore range -- are preserved.

* ``broadwell_sim`` (BDW): 2015-class; uncore 1.2-2.8 GHz, smaller LLC,
  lower bandwidth, no uncore RAPL zone (the paper could only measure package
  power on BDW).
* ``raptorlake_sim`` (RPL): 2023-class; uncore 0.8-4.6 GHz, larger LLC and
  much higher bandwidth, uncore RAPL zone available.

Ground-truth time/power parameters live here; the roofline microbenchmarks
(:mod:`repro.roofline.microbench`) only ever observe them through simulated
measurements with noise.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Dict, Tuple

from repro.cache.config import CacheHierarchy, CacheLevelConfig


@dataclass(frozen=True)
class UncoreSpec:
    """The uncore frequency domain."""

    f_min_ghz: float
    f_max_ghz: float
    step_ghz: float = 0.1

    def frequencies(self) -> Tuple[float, ...]:
        """All settable cap values, f_min..f_max inclusive."""
        count = int(round((self.f_max_ghz - self.f_min_ghz) / self.step_ghz))
        return tuple(
            round(self.f_min_ghz + i * self.step_ghz, 3)
            for i in range(count + 1)
        )

    def clamp(self, freq_ghz: float) -> float:
        snapped = round(
            self.f_min_ghz
            + round((freq_ghz - self.f_min_ghz) / self.step_ghz) * self.step_ghz,
            3,
        )
        return min(self.f_max_ghz, max(self.f_min_ghz, snapped))


@dataclass(frozen=True)
class PlatformSpec:
    """A simulated CPU with ground-truth timing and power laws."""

    name: str
    arch: str
    released: int
    cores: int
    threads: int
    core_base_ghz: float
    core_max_ghz: float
    uncore: UncoreSpec
    hierarchy: CacheHierarchy

    # --- timing ground truth ---------------------------------------------
    flops_per_cycle: float  # per core
    l2_bytes_per_sec: float  # L2 service bandwidth (core clock domain)
    llc_bw_base: float  # LLC bandwidth floor (bytes/s)
    llc_bytes_per_sec_per_ghz: float  # LLC bandwidth slope in uncore f
    dram_bw_base: float  # DRAM bandwidth floor (bytes/s)
    dram_bw_per_ghz: float  # DRAM bandwidth slope per GHz of uncore
    dram_bw_max: float  # DRAM saturation bandwidth, bytes/s
    dram_lat_a: float  # miss penalty seconds*GHz: lat(f) = a/f + b
    dram_lat_b: float
    mem_level_parallelism: float  # outstanding misses hiding latency
    overlap_rho: float  # non-overlapped fraction of min(Tc, Tm)
    prefetch_hiding: float  # fraction of DRAM latency hidden by prefetch

    # --- power ground truth ------------------------------------------------
    p_constant_w: float  # static/package base power
    p_core_dyn_w: float  # per-core dynamic power at full utilization
    p_uncore_coeffs: Tuple[float, float, float]  # a + b*f + c*f^2 (watts)
    uncore_idle_fraction: float  # idle uncore activity floor
    e_dram_per_byte: float  # joules per DRAM byte

    # --- driver characteristics -------------------------------------------
    cap_overhead_s: float  # per set_uncore_cap call
    has_uncore_rapl: bool
    noise_sigma: float = 0.01

    extra: Dict = field(default_factory=dict)

    # -- derived quantities --------------------------------------------------

    def peak_flops_per_sec(self, cores_used: int = None) -> float:
        used = self.cores if cores_used is None else min(cores_used, self.cores)
        return used * self.flops_per_cycle * self.core_base_ghz * 1e9

    def dram_bandwidth(self, f_uncore_ghz: float) -> float:
        """Effective DRAM bandwidth: floor + slope, clipped at saturation."""
        return min(
            self.dram_bw_max,
            self.dram_bw_base + self.dram_bw_per_ghz * f_uncore_ghz,
        )

    def llc_bandwidth(self, f_uncore_ghz: float) -> float:
        """LLC service bandwidth at the given uncore frequency."""
        return self.llc_bw_base + self.llc_bytes_per_sec_per_ghz * f_uncore_ghz

    def bandwidth_saturation_freq(self) -> float:
        """Lowest uncore frequency reaching the DRAM bandwidth ceiling."""
        return self.uncore.clamp(
            (self.dram_bw_max - self.dram_bw_base) / self.dram_bw_per_ghz
        )

    def dram_latency_s(self, f_uncore_ghz: float) -> float:
        """Per-line DRAM miss penalty: a/f + b (the paper's M^t form)."""
        return self.dram_lat_a / f_uncore_ghz + self.dram_lat_b

    def uncore_power_w(self, f_uncore_ghz: float, activity: float) -> float:
        """Uncore power at frequency f with activity in [0, 1]."""
        a, b, c = self.p_uncore_coeffs
        scale = self.uncore_idle_fraction + (
            1.0 - self.uncore_idle_fraction
        ) * min(1.0, max(0.0, activity))
        return (a + b * f_uncore_ghz + c * f_uncore_ghz**2) * scale

    def machine_balance_fpb(self) -> float:
        """Time balance B^t_DRAM = peak flops/s over peak DRAM bytes/s."""
        return self.peak_flops_per_sec() / self.dram_bw_max

    def with_overrides(self, **kwargs) -> "PlatformSpec":
        return replace(self, **kwargs)


def broadwell_sim() -> PlatformSpec:
    """BDW-sim: Xeon 1650-v4-like (6C/12T), scaled caches."""
    hierarchy = CacheHierarchy(
        (
            CacheLevelConfig("L1", 8 * 1024, 64, 8),
            CacheLevelConfig("L2", 32 * 1024, 64, 8),
            CacheLevelConfig("LLC", 192 * 1024, 64, 12),
        )
    )
    return PlatformSpec(
        name="broadwell_sim",
        arch="bdw",
        released=2015,
        cores=6,
        threads=12,
        core_base_ghz=3.0,
        core_max_ghz=4.0,
        uncore=UncoreSpec(1.2, 2.8),
        hierarchy=hierarchy,
        flops_per_cycle=3.0,
        l2_bytes_per_sec=60e9,
        llc_bw_base=10e9,
        llc_bytes_per_sec_per_ghz=12e9,
        dram_bw_base=5.0e9,
        dram_bw_per_ghz=3.6e9,
        dram_bw_max=13.0e9,
        dram_lat_a=120e-9,  # seconds*GHz
        dram_lat_b=45e-9,
        mem_level_parallelism=16.0,
        overlap_rho=0.25,
        prefetch_hiding=0.55,
        p_constant_w=18.0,
        p_core_dyn_w=6.5,
        p_uncore_coeffs=(1.5, 1.2, 1.6),
        uncore_idle_fraction=0.35,
        e_dram_per_byte=1.1e-10,
        cap_overhead_s=35e-6,
        has_uncore_rapl=False,
    )


def raptorlake_sim() -> PlatformSpec:
    """RPL-sim: i5-13600-like (14C/20T), larger LLC, higher bandwidth."""
    hierarchy = CacheHierarchy(
        (
            CacheLevelConfig("L1", 12 * 1024, 64, 12),
            CacheLevelConfig("L2", 64 * 1024, 64, 8),
            CacheLevelConfig("LLC", 512 * 1024, 64, 16),
        )
    )
    return PlatformSpec(
        name="raptorlake_sim",
        arch="rpl",
        released=2023,
        cores=14,
        threads=20,
        core_base_ghz=3.5,
        core_max_ghz=5.0,
        uncore=UncoreSpec(0.8, 4.6),
        hierarchy=hierarchy,
        flops_per_cycle=2.0,
        l2_bytes_per_sec=120e9,
        llc_bw_base=25e9,
        llc_bytes_per_sec_per_ghz=18e9,
        dram_bw_base=14.0e9,
        dram_bw_per_ghz=5.0e9,
        dram_bw_max=32.0e9,
        dram_lat_a=70e-9,
        dram_lat_b=30e-9,
        mem_level_parallelism=16.0,
        overlap_rho=0.2,
        prefetch_hiding=0.65,
        p_constant_w=14.0,
        p_core_dyn_w=3.5,
        p_uncore_coeffs=(1.0, 0.7, 0.9),
        uncore_idle_fraction=0.3,
        e_dram_per_byte=0.8e-10,
        cap_overhead_s=21e-6,
        has_uncore_rapl=True,
    )


PLATFORMS = {
    "broadwell_sim": broadwell_sim,
    "bdw": broadwell_sim,
    "raptorlake_sim": raptorlake_sim,
    "rpl": raptorlake_sim,
}


def get_platform(name: str) -> PlatformSpec:
    """Look up a platform by name or arch alias."""
    try:
        return PLATFORMS[name.lower()]()
    except KeyError:
        raise KeyError(
            f"unknown platform {name!r}; available: {sorted(PLATFORMS)}"
        ) from None
