"""The hardware execution model: traffic + flops -> time, power, energy.

A kernel's "run" on a simulated platform is computed analytically from its
exact cache behaviour (the simulator's per-level counters) and the
platform's ground-truth laws:

* compute time from flop count and used cores,
* memory time from per-level traffic, with the LLC served at the uncore
  clock and DRAM modelled as max(latency-bound, bandwidth-bound) where both
  depend on the uncore frequency,
* total time as a partial-overlap combination ``max(Tc, Tm) + rho*min``,
* power as constant + core-utilization + uncore(f, activity) + DRAM-energy
  terms,

plus multiplicative log-normal measurement noise seeded per (kernel,
frequency), so repeated "measurements" jitter like real ones but are
reproducible.
"""

from __future__ import annotations

import hashlib
import math
from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np

from repro.cache.simulator import CacheSimResult
from repro.cache.static_model import CacheModelResult
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class KernelWorkload:
    """Everything the execution model needs to know about one kernel."""

    name: str
    flops: int
    level_accesses: Tuple[int, ...]  # accesses arriving at each cache level
    dram_fetch_bytes: int
    dram_writeback_bytes: int
    dram_lines: int
    parallel: bool = False
    threads: int = 1

    @property
    def dram_bytes(self) -> int:
        return self.dram_fetch_bytes + self.dram_writeback_bytes

    def operational_intensity(self) -> float:
        """Measured OI: flops per DRAM byte."""
        if self.dram_bytes == 0:
            return math.inf
        return self.flops / self.dram_bytes


@dataclass(frozen=True)
class RunResult:
    """One simulated execution."""

    name: str
    f_uncore_ghz: float
    time_s: float
    energy_j: float

    @property
    def avg_power_w(self) -> float:
        return self.energy_j / self.time_s if self.time_s else 0.0

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s


def workload_from_sim(
    name: str,
    flops: int,
    sim: CacheSimResult,
    parallel: bool = False,
    threads: int = 1,
) -> KernelWorkload:
    """Build a workload from hardware-simulator counters."""
    return KernelWorkload(
        name=name,
        flops=flops,
        level_accesses=tuple(level.accesses for level in sim.levels),
        dram_fetch_bytes=sim.dram_fetch_bytes,
        dram_writeback_bytes=sim.dram_writeback_bytes,
        dram_lines=sim.llc.misses + sim.llc.writebacks,
        parallel=parallel,
        threads=threads,
    )


def workload_from_model(
    name: str,
    flops: int,
    model: CacheModelResult,
    parallel: bool = False,
    threads: int = 1,
) -> KernelWorkload:
    """Build a workload from PolyUFC-CM counters (write-through, no WB)."""
    return KernelWorkload(
        name=name,
        flops=flops,
        level_accesses=tuple(level.accesses for level in model.levels),
        dram_fetch_bytes=model.q_dram_bytes,
        dram_writeback_bytes=0,
        dram_lines=model.miss_llc,
        parallel=parallel,
        threads=threads,
    )


def _cores_used(platform: PlatformSpec, workload: KernelWorkload) -> int:
    if not workload.parallel:
        return 1
    return max(1, min(workload.threads, platform.cores))


def compute_time_s(platform: PlatformSpec, workload: KernelWorkload) -> float:
    """Tc: flop time at base core frequency on the used cores."""
    cores = _cores_used(platform, workload)
    return workload.flops / platform.peak_flops_per_sec(cores)


def memory_time_s(
    platform: PlatformSpec,
    workload: KernelWorkload,
    f_uncore_ghz: float,
    prefetch: bool = True,
    dram_bw_fraction: float = 1.0,
) -> float:
    """Tm: L2 + LLC (uncore clock) + DRAM service time.

    ``dram_bw_fraction`` is the share of the socket's DRAM bandwidth this
    execution may use -- 1.0 when the kernel owns the socket, less when
    co-scheduled tenants contend for it (``repro.governor.tenancy``).
    """
    line = platform.hierarchy.line_bytes
    t_l2 = 0.0
    if len(workload.level_accesses) >= 2:
        t_l2 = workload.level_accesses[1] * line / platform.l2_bytes_per_sec
    t_llc = 0.0
    if len(workload.level_accesses) >= 3:
        llc_bw = platform.llc_bandwidth(f_uncore_ghz)
        t_llc = workload.level_accesses[2] * line / llc_bw
    share = min(1.0, max(dram_bw_fraction, 1e-6))
    bandwidth_bound = workload.dram_bytes / (
        platform.dram_bandwidth(f_uncore_ghz) * share
    )
    latency = platform.dram_latency_s(f_uncore_ghz)
    if prefetch:
        latency *= 1.0 - platform.prefetch_hiding
    latency_bound = (
        workload.dram_lines * latency / platform.mem_level_parallelism
    )
    return t_l2 + t_llc + max(bandwidth_bound, latency_bound)


def uncore_time_s(
    platform: PlatformSpec,
    workload: KernelWorkload,
    f_uncore_ghz: float,
    prefetch: bool = True,
    dram_bw_fraction: float = 1.0,
) -> float:
    """The uncore-clocked share of the memory time: LLC service + DRAM.

    (Excludes the private-L2 term, which runs at core clock; this is the
    signal a frequency-aware uncore runtime would react to.)
    """
    line = platform.hierarchy.line_bytes
    t_llc = 0.0
    if len(workload.level_accesses) >= 3:
        t_llc = workload.level_accesses[2] * line / platform.llc_bandwidth(
            f_uncore_ghz
        )
    share = min(1.0, max(dram_bw_fraction, 1e-6))
    bandwidth_bound = workload.dram_bytes / (
        platform.dram_bandwidth(f_uncore_ghz) * share
    )
    latency = platform.dram_latency_s(f_uncore_ghz)
    if prefetch:
        latency *= 1.0 - platform.prefetch_hiding
    latency_bound = (
        workload.dram_lines * latency / platform.mem_level_parallelism
    )
    return t_llc + max(bandwidth_bound, latency_bound)


def _noise(platform: PlatformSpec, tag: str, sigma_scale: float = 1.0) -> float:
    digest = hashlib.sha256(tag.encode()).digest()
    seed = int.from_bytes(digest[:8], "little")
    rng = np.random.default_rng(seed)
    sigma = platform.noise_sigma * sigma_scale
    return float(np.exp(rng.normal(0.0, sigma)))


def execute_fixed(
    platform: PlatformSpec,
    workload: KernelWorkload,
    f_uncore_ghz: float,
    prefetch: bool = True,
    noisy: bool = True,
) -> RunResult:
    """Run one kernel at a fixed uncore frequency."""
    f = platform.uncore.clamp(f_uncore_ghz)
    t_compute = compute_time_s(platform, workload)
    t_memory = memory_time_s(platform, workload, f, prefetch)
    time_s = max(t_compute, t_memory) + platform.overlap_rho * min(
        t_compute, t_memory
    )
    power_w = instant_power_w(
        platform, workload, f, t_compute, t_memory, time_s
    )
    if noisy:
        time_s *= _noise(platform, f"{workload.name}|{f}|t")
        power_w *= _noise(platform, f"{workload.name}|{f}|p")
    return RunResult(workload.name, f, time_s, power_w * time_s)


def instant_power_w(
    platform: PlatformSpec,
    workload: KernelWorkload,
    f_uncore_ghz: float,
    t_compute: float,
    t_memory: float,
    time_s: float,
) -> float:
    """Average power over an execution window (noise-free)."""
    if time_s <= 0:
        return platform.p_constant_w
    cores = _cores_used(platform, workload)
    core_util = min(1.0, t_compute / time_s)
    memory_util = min(1.0, t_memory / time_s)
    p_core = platform.p_core_dyn_w * cores * core_util
    p_uncore = platform.uncore_power_w(f_uncore_ghz, memory_util)
    p_dram = platform.e_dram_per_byte * workload.dram_bytes / time_s
    return platform.p_constant_w + p_core + p_uncore + p_dram
