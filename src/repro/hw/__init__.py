"""Simulated hardware: platforms, execution model, uncore drivers, counters.

This package replaces the paper's physical testbed (Tab. III): two x86
platforms with core/uncore frequency domains, RAPL-like energy counters and
PAPI-like performance counters.  "Measuring" a kernel means pushing its
exact memory trace through the cache simulator and converting flops and
traffic into time and power with the platform's ground-truth parameters --
parameters the PolyUFC roofline fits only *approximate*, which is what
makes model-vs-hardware comparisons meaningful.
"""

from repro.hw.platform import (
    PlatformSpec,
    UncoreSpec,
    broadwell_sim,
    raptorlake_sim,
    get_platform,
    PLATFORMS,
)
from repro.hw.execution import (
    KernelWorkload,
    RunResult,
    execute_fixed,
    workload_from_sim,
    workload_from_model,
)
from repro.hw.governor import (
    GovernorConfig,
    SequenceResult,
    exhaustion_warning,
    run_capped_sequence,
    run_governed_sequence,
)
from repro.hw.duf import DufConfig, run_duf_sequence
from repro.hw.counters import PapiCounters, RaplReading, papi_measure, rapl_measure

__all__ = [
    "PlatformSpec",
    "UncoreSpec",
    "broadwell_sim",
    "raptorlake_sim",
    "get_platform",
    "PLATFORMS",
    "KernelWorkload",
    "RunResult",
    "execute_fixed",
    "workload_from_sim",
    "workload_from_model",
    "GovernorConfig",
    "SequenceResult",
    "exhaustion_warning",
    "run_capped_sequence",
    "run_governed_sequence",
    "DufConfig",
    "run_duf_sequence",
    "PapiCounters",
    "RaplReading",
    "papi_measure",
    "rapl_measure",
]
