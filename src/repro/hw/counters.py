"""Simulated PAPI performance counters and RAPL energy zones.

``papi_measure`` packages the cache simulator's ground truth the way the
paper reads it from PAPI events; ``rapl_measure`` exposes energy readings
with the platform's real limitation: Broadwell has no uncore RAPL zone, so
only package energy is reported there (paper footnote 15).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from repro.cache.simulator import CacheSimResult
from repro.hw.execution import (
    KernelWorkload,
    RunResult,
    compute_time_s,
    memory_time_s,
)
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class PapiCounters:
    """PAPI-like event counts for one kernel execution."""

    flops: int
    l1_misses: int
    l2_misses: int
    llc_misses: int
    dram_bytes: int
    time_s: float

    @property
    def measured_oi_fpb(self) -> float:
        return self.flops / self.dram_bytes if self.dram_bytes else float("inf")

    @property
    def gflops(self) -> float:
        return self.flops / self.time_s / 1e9 if self.time_s else 0.0

    @property
    def bandwidth_gbs(self) -> float:
        return self.dram_bytes / self.time_s / 1e9 if self.time_s else 0.0


@dataclass(frozen=True)
class RaplReading:
    """RAPL-like energy reading for one kernel execution."""

    package_j: float
    uncore_j: Optional[float]  # None when the zone is unavailable (BDW)

    @property
    def has_uncore_zone(self) -> bool:
        return self.uncore_j is not None


def papi_measure(
    workload: KernelWorkload, sim: CacheSimResult, run: RunResult
) -> PapiCounters:
    """The counters PAPI would report for this run."""
    return PapiCounters(
        flops=workload.flops,
        l1_misses=sim.levels[0].misses,
        l2_misses=sim.levels[1].misses if len(sim.levels) > 1 else 0,
        llc_misses=sim.llc.misses,
        dram_bytes=sim.dram_bytes,
        time_s=run.time_s,
    )


def rapl_measure(
    platform: PlatformSpec,
    workload: KernelWorkload,
    run: RunResult,
    prefetch: bool = True,
) -> RaplReading:
    """The energy RAPL would report; uncore zone only where it exists."""
    package = run.energy_j
    if not platform.has_uncore_rapl:
        return RaplReading(package_j=package, uncore_j=None)
    t_compute = compute_time_s(platform, workload)
    t_memory = memory_time_s(platform, workload, run.f_uncore_ghz, prefetch)
    total = max(t_compute, t_memory) + platform.overlap_rho * min(
        t_compute, t_memory
    )
    activity = min(1.0, t_memory / total) if total else 0.0
    uncore_power = platform.uncore_power_w(run.f_uncore_ghz, activity)
    dram_power = (
        platform.e_dram_per_byte * workload.dram_bytes / run.time_s
        if run.time_s
        else 0.0
    )
    return RaplReading(
        package_j=package,
        uncore_j=(uncore_power + dram_power) * run.time_s,
    )
