"""Trace-driven multi-level cache simulator (the "hardware").

Inclusive, set-associative, true-LRU, write-allocate + write-back.  Each
level filters the stream for the next: misses become fetches and dirty
evictions become writebacks.  DRAM traffic is LLC fetches + LLC writebacks.

This simulator provides the ground truth that the simulated platforms
expose through PAPI-like counters; PolyUFC-CM (:mod:`repro.cache.
static_model`) is the *model* being evaluated against it.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Tuple

import numpy as np

from repro.cache.config import CacheHierarchy, CacheLevelConfig
from repro.cache.trace import AccessTrace


@dataclass(frozen=True)
class LevelStats:
    """Counters for one simulated cache level."""

    name: str
    accesses: int
    hits: int
    misses: int
    writebacks: int

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio if self.accesses else 0.0


@dataclass(frozen=True)
class CacheSimResult:
    """Hierarchy-wide simulation result."""

    levels: Tuple[LevelStats, ...]
    line_bytes: int
    total_accesses: int

    @property
    def llc(self) -> LevelStats:
        return self.levels[-1]

    @property
    def dram_fetch_bytes(self) -> int:
        return self.llc.misses * self.line_bytes

    @property
    def dram_writeback_bytes(self) -> int:
        return self.llc.writebacks * self.line_bytes

    @property
    def dram_bytes(self) -> int:
        """Total DRAM traffic (fetches + writebacks)."""
        return self.dram_fetch_bytes + self.dram_writeback_bytes

    def level_traffic_bytes(self, index: int) -> int:
        """Bytes requested *from* level ``index`` (its access count x line)."""
        return self.levels[index].accesses * self.line_bytes

    def counters(self) -> Tuple[Tuple[str, int, int, int], ...]:
        """Per-level ``(name, accesses, misses, writebacks)`` tuples.

        The simulator-side analogue of
        :meth:`repro.cache.static_model.CacheModelResult.counters` -- a
        plain comparable struct for differential and regression checks
        (the split differs because the simulator does not distinguish
        cold from capacity/conflict misses).
        """
        return tuple(
            (level.name, level.accesses, level.misses, level.writebacks)
            for level in self.levels
        )


def _simulate_level(
    lines: List[int],
    writes: List[bool],
    config: CacheLevelConfig,
) -> Tuple[int, int, int, List[int], List[bool]]:
    """Simulate one write-back LRU level.

    Returns (hits, misses, writebacks, next_lines, next_writes): the filtered
    stream the next level observes (fetch reads + writeback writes).
    """
    num_sets = config.num_sets
    assoc = config.associativity
    sets: List[List[int]] = [[] for _ in range(num_sets)]
    dirty: List[List[bool]] = [[] for _ in range(num_sets)]
    hits = 0
    misses = 0
    writebacks = 0
    next_lines: List[int] = []
    next_writes: List[bool] = []

    for line, is_write in zip(lines, writes):
        set_index = line % num_sets
        ways = sets[set_index]
        flags = dirty[set_index]
        try:
            way = ways.index(line)
        except ValueError:
            way = -1
        if way >= 0:
            hits += 1
            ways.insert(0, ways.pop(way))
            flags.insert(0, flags.pop(way) or is_write)
        else:
            misses += 1
            next_lines.append(line)
            next_writes.append(False)  # fetch is a read
            if len(ways) >= assoc:
                evicted_dirty = flags.pop()
                evicted_line = ways.pop()
                if evicted_dirty:
                    writebacks += 1
                    next_lines.append(evicted_line)
                    next_writes.append(True)
            ways.insert(0, line)
            flags.insert(0, is_write)

    # Flush: dirty lines still resident write back at kernel end.
    for flags_list in dirty:
        flushed = sum(flags_list)
        writebacks += flushed
    # (flush writebacks are charged to this level's writeback count and to
    # DRAM via the caller when this is the LLC; they are not replayed into
    # the next level stream to keep level filtering causal.)
    return hits, misses, writebacks, next_lines, next_writes


def simulate_hierarchy(
    trace: AccessTrace, hierarchy: CacheHierarchy
) -> CacheSimResult:
    """Run the trace through every level of the hierarchy."""
    line_ids = trace.line_ids(hierarchy.line_bytes)
    lines: List[int] = line_ids.tolist()
    writes: List[bool] = trace.is_write.tolist()
    stats: List[LevelStats] = []
    for config in hierarchy.levels:
        accesses = len(lines)
        hits, misses, writebacks, lines, writes = _simulate_level(
            lines, writes, config
        )
        stats.append(
            LevelStats(config.name, accesses, hits, misses, writebacks)
        )
    return CacheSimResult(tuple(stats), hierarchy.line_bytes, len(trace))
