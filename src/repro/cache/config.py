"""Cache hierarchy configuration."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Tuple


@dataclass(frozen=True)
class CacheLevelConfig:
    """One cache level (inclusive, LRU)."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int

    def __post_init__(self):
        if self.size_bytes % (self.line_bytes * self.associativity) != 0:
            raise ValueError(
                f"{self.name}: size {self.size_bytes} not divisible by "
                f"line*assoc = {self.line_bytes * self.associativity}"
            )

    @property
    def num_lines(self) -> int:
        return self.size_bytes // self.line_bytes

    @property
    def num_sets(self) -> int:
        return self.num_lines // self.associativity


@dataclass(frozen=True)
class CacheHierarchy:
    """An ordered tuple of levels, L1 first, LLC last."""

    levels: Tuple[CacheLevelConfig, ...]

    def __post_init__(self):
        if not self.levels:
            raise ValueError("hierarchy needs at least one level")
        line = self.levels[0].line_bytes
        previous_size = 0
        for level in self.levels:
            if level.line_bytes != line:
                raise ValueError("all levels must share one line size")
            if level.size_bytes <= previous_size:
                raise ValueError("levels must strictly grow in capacity")
            previous_size = level.size_bytes

    @property
    def line_bytes(self) -> int:
        return self.levels[0].line_bytes

    @property
    def llc(self) -> CacheLevelConfig:
        return self.levels[-1]

    @property
    def depth(self) -> int:
        return len(self.levels)

    def fully_associative(self) -> "CacheHierarchy":
        """The same hierarchy with every level fully associative."""
        return CacheHierarchy(
            tuple(
                CacheLevelConfig(
                    level.name,
                    level.size_bytes,
                    level.line_bytes,
                    level.num_lines,
                )
                for level in self.levels
            )
        )
