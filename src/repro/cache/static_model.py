"""PolyUFC-CM: the paper's approximate set-associative cache model.

The model follows Sec. IV of the paper:

* **Assumptions** (footnote 4): inclusive caches, LRU, write-allocate +
  write-through, no hardware prefetching, empty initial cache, homogeneous
  associativity.
* **Cold misses**: first access per cache line (the cardinality of the
  lexicographically-minimal access per line; evaluated numerically over the
  scheduled access relation).
* **Capacity/conflict misses**: per cache set, the backward reuse distance
  (number of distinct lines mapped to the same set since the previous access
  to this line); a reuse distance of at least the associativity ``k`` is a
  miss.  Each set is treated fully-associatively within itself -- the
  simplification that makes PolyUFC-CM scale (Sec. VIII).
* **Write-through**: every miss at level ``c_i`` becomes a read at
  ``c_{i+1}`` and every write is forwarded to ``c_{i+1}``.
* **OpenMP heuristic**: for loop-parallel kernels, miss counts are divided
  by the thread count (a first-order model of working-set sharing that
  ignores inter-thread conflict and coherence misses).

Compared to the hardware simulator (:mod:`repro.cache.simulator`), the
differences are the write policy (write-through vs write-back), the thread
heuristic (divide-by-T vs actually interleaved execution), and the absence
of writeback traffic -- which is exactly the kind of model error the paper
reports (<7 % performance estimation error on RPL, Fig. 6).
"""

from __future__ import annotations

import math
import os
from dataclasses import dataclass
from typing import List, NamedTuple, Optional, Tuple

import numpy as np

from repro.cache.config import CacheHierarchy, CacheLevelConfig
from repro.cache.fast_model import model_level as _fast_model_level
from repro.cache.trace import AccessTrace
from repro.runtime import Deadline, check as _check_deadline, faults

#: Selectable CM evaluation engines.  ``fast`` is the vectorized NumPy
#: stack-distance kernel (:mod:`repro.cache.fast_model`); ``reference``
#: is the original per-access Python loop, kept as the bit-for-bit
#: oracle; ``symbolic`` (:mod:`repro.cache.symbolic_model`) computes the
#: same :class:`LevelModelStats` without materializing the access trace
#: and falls back to ``fast`` outside its supported quasi-affine class.
#: ``parametric`` evaluates like ``symbolic`` at the cache layer (same
#: numbers by construction) and additionally marks the job eligible for
#: kernel-family artifact reuse in the service layer
#: (:mod:`repro.cache.parametric_model`).
#: All engines produce identical :class:`LevelModelStats` where exact.
CM_ENGINES = ("fast", "reference", "symbolic", "parametric")

_ENGINE_ENV = "REPRO_CM_ENGINE"


def resolve_engine(engine: Optional[str] = None) -> str:
    """Resolve an engine name: explicit arg > $REPRO_CM_ENGINE > fast."""
    if engine is None:
        engine = os.environ.get(_ENGINE_ENV) or "fast"
    if engine not in CM_ENGINES:
        raise ValueError(
            f"unknown CM engine {engine!r}; expected one of {CM_ENGINES}"
        )
    return engine


class LevelCounters(NamedTuple):
    """The engine-comparable counters of one cache level.

    Every CM engine (reference, fast, symbolic) must produce these four
    numbers bit-for-bit identically; the differential verifier
    (:mod:`repro.verify`) diffs engines through this struct so a
    disagreement names the exact level and counter that drifted.
    """

    name: str
    accesses: int
    cold_misses: int
    capacity_conflict_misses: int


@dataclass(frozen=True)
class LevelModelStats:
    """Model counters for one cache level."""

    name: str
    accesses: int
    cold_misses: int
    capacity_conflict_misses: int

    def counters(self) -> LevelCounters:
        """This level's counters as the engine-comparable struct."""
        return LevelCounters(
            self.name,
            self.accesses,
            self.cold_misses,
            self.capacity_conflict_misses,
        )

    @property
    def misses(self) -> int:
        """Total misses: |COLDMISS| + |M_ci| (Sec. IV-B)."""
        return self.cold_misses + self.capacity_conflict_misses

    @property
    def hits(self) -> int:
        return self.accesses - self.misses

    @property
    def miss_ratio(self) -> float:
        return self.misses / self.accesses if self.accesses else 0.0

    @property
    def hit_ratio(self) -> float:
        return 1.0 - self.miss_ratio if self.accesses else 0.0


@dataclass(frozen=True)
class CacheModelResult:
    """PolyUFC-CM output for one kernel."""

    levels: Tuple[LevelModelStats, ...]
    line_bytes: int
    total_accesses: int
    threads: int

    @property
    def llc(self) -> LevelModelStats:
        return self.levels[-1]

    @property
    def miss_llc(self) -> int:
        return self.llc.misses

    @property
    def q_dram_bytes(self) -> int:
        """Q_DRAM = Miss_LLC * line size (Sec. IV-C)."""
        return self.miss_llc * self.line_bytes

    def level_traffic_bytes(self, index: int) -> int:
        """Q_ci: bytes requested from level ``index``."""
        return self.levels[index].accesses * self.line_bytes

    def miss_ratios(self) -> Tuple[float, ...]:
        return tuple(level.miss_ratio for level in self.levels)

    def hit_ratios(self) -> Tuple[float, ...]:
        return tuple(level.hit_ratio for level in self.levels)

    def counters(self) -> Tuple[LevelCounters, ...]:
        """Per-level engine-comparable counters (see :class:`LevelCounters`)."""
        return tuple(level.counters() for level in self.levels)


#: Accesses between cooperative checkpoints in the reference engine.
_REFERENCE_CHECK_EVERY = 4096


def _model_level(
    lines: List[int],
    writes: List[bool],
    config: CacheLevelConfig,
    deadline: Optional[Deadline] = None,
) -> Tuple[int, int, List[int], List[bool]]:
    """One write-through level: returns (cold, capacity_conflict, next stream).

    Per-set LRU stacks give the backward reuse distance implicitly: a line
    found in its set's stack within the top ``k`` entries is a hit; found
    deeper (or absent after its set filled) is a capacity/conflict miss;
    never seen before is a cold miss.  The walk checkpoints the cooperative
    deadline (and the ``cm.chunk`` fault site) every
    :data:`_REFERENCE_CHECK_EVERY` accesses so a pathological stream can be
    interrupted mid-level.
    """
    num_sets = config.num_sets
    assoc = config.associativity
    until_check = _REFERENCE_CHECK_EVERY
    # A reuse distance >= k means "not within the k most-recent distinct
    # lines of this set", so a stack capped at k entries plus a seen-set is
    # equivalent to the unbounded reuse-distance formulation for
    # hit / capacity-conflict / cold classification -- and stays O(k).
    stacks: List[List[int]] = [[] for _ in range(num_sets)]
    seen: List[set] = [set() for _ in range(num_sets)]
    cold = 0
    cap_conflict = 0
    next_lines: List[int] = []
    next_writes: List[bool] = []
    for line, is_write in zip(lines, writes):
        until_check -= 1
        if until_check <= 0:
            until_check = _REFERENCE_CHECK_EVERY
            faults.fire("cm.chunk")
            _check_deadline(deadline, "cm.chunk")
        set_index = line % num_sets
        stack = stacks[set_index]
        missed = False
        try:
            depth = stack.index(line)
            stack.insert(0, stack.pop(depth))
        except ValueError:
            missed = True
            set_seen = seen[set_index]
            if line in set_seen:
                cap_conflict += 1
            else:
                cold += 1
                set_seen.add(line)
            stack.insert(0, line)
            if len(stack) > assoc:
                stack.pop()
        if missed:
            next_lines.append(line)
            next_writes.append(False)
        if is_write:
            # write-through: the write itself is forwarded down
            next_lines.append(line)
            next_writes.append(True)
    return cold, cap_conflict, next_lines, next_writes


def polyufc_cm(
    trace: AccessTrace,
    hierarchy: CacheHierarchy,
    threads: int = 1,
    parallel: bool = False,
    engine: Optional[str] = None,
    deadline: Optional[Deadline] = None,
) -> CacheModelResult:
    """Run PolyUFC-CM over a kernel's scheduled access relation.

    ``threads``/``parallel`` enable the paper's OpenMP sharing heuristic:
    miss counts of loop-parallel kernels are divided by the thread count.
    ``engine`` selects the level evaluator (:data:`CM_ENGINES`); the
    default honours ``$REPRO_CM_ENGINE`` and falls back to ``fast``.
    ``deadline`` is checkpointed at every level boundary and inside both
    engines' chunk loops, so an armed ``cm_timeout_s`` interrupts the
    evaluation mid-unit instead of after the fact.
    """
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    engine = resolve_engine(engine)
    faults.fire("cm.engine")
    _check_deadline(deadline, "cm.engine")
    line_ids = trace.line_ids(hierarchy.line_bytes)
    if engine == "symbolic":
        # The symbolic engine is trace-free; once a trace has been
        # materialized (approximate rung, direct callers) the vectorized
        # trace evaluator is the right tool, so the name degrades to it.
        engine = "fast"
    if engine == "fast":
        level_fn = _fast_model_level
        lines = np.ascontiguousarray(line_ids, dtype=np.int64)
        writes = np.ascontiguousarray(trace.is_write, dtype=bool)
    else:
        level_fn = _model_level
        lines = line_ids.tolist()
        writes = trace.is_write.tolist()
    divider = threads if (parallel and threads > 1) else 1
    stats: List[LevelModelStats] = []
    for index, config in enumerate(hierarchy.levels):
        faults.fire("cm.chunk")
        _check_deadline(deadline, f"cm.level:{config.name}")
        accesses = len(lines)
        cold, cap_conflict, lines, writes = level_fn(
            lines, writes, config, deadline=deadline
        )
        # The paper's heuristic divides miss counts by the thread count to
        # model working-set sharing.  Two refinements keep the counts
        # physical: (1) cold misses are never divided (threads share the
        # machine, not the data -- Q_DRAM cannot drop below the footprint),
        # and (2) the division applies at the *shared* LLC only; private
        # L1/L2 behaviour replicates per thread rather than shrinking.
        shared_level = index == len(hierarchy.levels) - 1
        stats.append(
            LevelModelStats(
                config.name,
                accesses=accesses,
                cold_misses=cold,
                capacity_conflict_misses=_divide(
                    cap_conflict, divider if shared_level else 1
                ),
            )
        )
    return CacheModelResult(
        tuple(stats), hierarchy.line_bytes, len(trace), threads
    )


def _divide(count: int, divider: int) -> int:
    if divider == 1:
        return count
    return max(1, math.ceil(count / divider)) if count else 0
