"""Cache substrate: configs, trace generation, simulator, and PolyUFC-CM.

Two cache-behaviour engines share one access-trace representation:

* :mod:`repro.cache.simulator` -- the "hardware": a multi-level inclusive
  set-associative write-back LRU simulator.  Its miss counts are what the
  simulated platforms report through PAPI-like counters.
* :mod:`repro.cache.static_model` -- PolyUFC-CM: the paper's approximate
  static model (per-set LRU reuse distances, write-allocate + write-through,
  empty initial cache, no prefetching, OpenMP thread-division heuristic),
  with both set-associative and fully-associative variants.

The gap between the two is the model error the paper evaluates in Fig. 6
and Fig. 8.
"""

from repro.cache.config import CacheHierarchy, CacheLevelConfig
from repro.cache.trace import AccessTrace, generate_trace
from repro.cache.simulator import CacheSimResult, LevelStats, simulate_hierarchy
from repro.cache.static_model import (
    CM_ENGINES,
    CacheModelResult,
    LevelCounters,
    LevelModelStats,
    polyufc_cm,
    resolve_engine,
)
from repro.cache.memo import (
    clear_memo,
    memoized_cm,
    memoized_cm_with_note,
    memoized_trace,
    unit_fingerprint,
)
from repro.cache.symbolic_model import SymbolicUnsupported, symbolic_cm
from repro.cache.polyhedral_model import (
    ExactLevelCounts,
    ExactPolyhedralCM,
    exact_first_level_counts,
)

__all__ = [
    "CacheHierarchy",
    "CacheLevelConfig",
    "AccessTrace",
    "generate_trace",
    "CacheSimResult",
    "LevelStats",
    "simulate_hierarchy",
    "CacheModelResult",
    "LevelCounters",
    "LevelModelStats",
    "polyufc_cm",
    "CM_ENGINES",
    "resolve_engine",
    "clear_memo",
    "memoized_cm",
    "memoized_cm_with_note",
    "memoized_trace",
    "unit_fingerprint",
    "SymbolicUnsupported",
    "symbolic_cm",
    "ExactLevelCounts",
    "ExactPolyhedralCM",
    "exact_first_level_counts",
]
