"""Memoized trace generation and PolyUFC-CM evaluation.

Benchmark sweeps and the Fig. 6/7/8 experiment harnesses characterize the
same units over and over (same ops, same problem sizes, same hierarchy).
This module gives those call sites content-addressed reuse:

* :func:`unit_fingerprint` -- a stable digest of everything the trace+CM
  result depends on: the printed IR of the traced ops (which covers buffer
  shapes, dtypes and module params), the cache hierarchy geometry, the
  thread count, the parallel flag, the engine, and the trace budget.
* :func:`memoized_trace` -- in-process LRU over :func:`generate_trace`.
* :func:`memoized_cm` -- in-process LRU over the full trace+CM evaluation,
  plus an optional on-disk layer (JSON per fingerprint) so results survive
  across processes; point it at a directory via ``memo_dir=`` or
  ``$REPRO_CM_MEMO_DIR``.

Set ``REPRO_CM_MEMO=0`` to disable all reuse (every call recomputes);
``REPRO_CM_MEMO_SIZE`` resizes the in-process LRUs (default 64 entries).
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from collections import OrderedDict
from pathlib import Path
from typing import Callable, Optional, Sequence, Tuple

import threading

from repro.cache.config import CacheHierarchy
from repro.cache.static_model import (
    CacheModelResult,
    LevelModelStats,
    polyufc_cm,
    resolve_engine,
)
from repro.cache.trace import AccessTrace, generate_trace
from repro.ir.core import Module, Op
from repro.ir.printer import print_module
from repro.runtime import (
    CacheCorruption,
    Deadline,
    EngineFailure,
    TransientIOError,
    atomic_write_json,
    quarantine_file,
    read_checked_json,
)

log = logging.getLogger("repro.runtime")

#: Bump to invalidate every persisted fingerprint after model changes.
#: v2: disk entries moved to the checksummed ``repro-envelope`` format.
#: v3: the ``symbolic`` engine joined the dispatch and entries may carry
#: a structured fallback note.
#: v4: the symbolic extractor unrolls triangular/trapezoidal nests
#: (different counters for units that previously fell back to ``fast``)
#: and the ``parametric`` engine joined the dispatch.
MEMO_VERSION = 4

_MEMO_ENV = "REPRO_CM_MEMO"
_MEMO_DIR_ENV = "REPRO_CM_MEMO_DIR"
_MEMO_SIZE_ENV = "REPRO_CM_MEMO_SIZE"


def memo_enabled() -> bool:
    return os.environ.get(_MEMO_ENV, "") != "0"


def _memo_capacity() -> int:
    try:
        return max(1, int(os.environ.get(_MEMO_SIZE_ENV, "64")))
    except ValueError:
        return 64


class _LRU:
    """A small thread-safe LRU map."""

    def __init__(self, capacity_fn: Callable[[], int] = _memo_capacity):
        self._data: "OrderedDict[str, object]" = OrderedDict()
        self._lock = threading.Lock()
        self._capacity_fn = capacity_fn
        self.hits = 0
        self.misses = 0

    def get(self, key: str):
        with self._lock:
            if key in self._data:
                self._data.move_to_end(key)
                self.hits += 1
                return self._data[key]
            self.misses += 1
            return None

    def put(self, key: str, value) -> None:
        with self._lock:
            self._data[key] = value
            self._data.move_to_end(key)
            capacity = self._capacity_fn()
            while len(self._data) > capacity:
                self._data.popitem(last=False)

    def clear(self) -> None:
        with self._lock:
            self._data.clear()
            self.hits = 0
            self.misses = 0


_trace_lru = _LRU()
_cm_lru = _LRU()


def clear_memo() -> None:
    """Drop every in-process memoized trace and CM result."""
    _trace_lru.clear()
    _cm_lru.clear()


def _ops_blob(module: Module, ops: Optional[Sequence[Op]]) -> str:
    """The content the trace depends on: printed IR + traced op indices.

    The printed module covers buffer shapes/dtypes, module params, loop
    bounds, subscripts and write flags; the op indices pin *which*
    top-level nests are traced.
    """
    text = print_module(module)
    if ops is None:
        indices = "all"
    else:
        position = {id(op): i for i, op in enumerate(module.ops)}
        indices = ",".join(str(position.get(id(op), -1)) for op in ops)
    return f"{text}\n#ops={indices}"


def _hierarchy_key(hierarchy: CacheHierarchy) -> Tuple:
    return tuple(
        (lvl.name, lvl.size_bytes, lvl.line_bytes, lvl.associativity)
        for lvl in hierarchy.levels
    )


def trace_fingerprint(
    module: Module,
    ops: Optional[Sequence[Op]] = None,
    max_accesses: int = 60_000_000,
) -> str:
    blob = json.dumps(
        [MEMO_VERSION, _ops_blob(module, ops), max_accesses], sort_keys=True
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def unit_fingerprint(
    module: Module,
    ops: Optional[Sequence[Op]],
    hierarchy: CacheHierarchy,
    threads: int = 1,
    parallel: bool = False,
    engine: Optional[str] = None,
    max_accesses: int = 60_000_000,
) -> str:
    """Content digest of a full (ops, params, hierarchy, threads, parallel)
    characterization request."""
    engine_name = resolve_engine(engine)
    if engine_name == "parametric":
        # Same evaluation, same numbers: share the symbolic memo slot.
        engine_name = "symbolic"
    blob = json.dumps(
        [
            MEMO_VERSION,
            _ops_blob(module, ops),
            _hierarchy_key(hierarchy),
            threads,
            parallel,
            engine_name,
            max_accesses,
        ],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()


def memoized_trace(
    module: Module,
    ops: Optional[Sequence[Op]] = None,
    max_accesses: int = 60_000_000,
    deadline: Optional[Deadline] = None,
) -> AccessTrace:
    """``generate_trace`` behind the in-process LRU.

    A ``deadline`` is only consulted by the generation itself -- an
    interrupted generation raises before anything is cached, so the memo
    never stores partial traces.
    """
    if not memo_enabled():
        return generate_trace(
            module, ops, max_accesses=max_accesses, deadline=deadline
        )
    key = trace_fingerprint(module, ops, max_accesses)
    cached = _trace_lru.get(key)
    if cached is not None:
        return cached
    trace = generate_trace(
        module, ops, max_accesses=max_accesses, deadline=deadline
    )
    _trace_lru.put(key, trace)
    return trace


def _cm_to_payload(cm: CacheModelResult) -> dict:
    return {
        "line_bytes": cm.line_bytes,
        "total_accesses": cm.total_accesses,
        "threads": cm.threads,
        "levels": [
            {
                "name": lvl.name,
                "accesses": lvl.accesses,
                "cold_misses": lvl.cold_misses,
                "capacity_conflict_misses": lvl.capacity_conflict_misses,
            }
            for lvl in cm.levels
        ],
    }


def _cm_from_payload(payload: dict) -> CacheModelResult:
    levels = tuple(
        LevelModelStats(
            name=lvl["name"],
            accesses=lvl["accesses"],
            cold_misses=lvl["cold_misses"],
            capacity_conflict_misses=lvl["capacity_conflict_misses"],
        )
        for lvl in payload["levels"]
    )
    return CacheModelResult(
        levels,
        payload["line_bytes"],
        payload["total_accesses"],
        payload["threads"],
    )


def _resolve_memo_dir(memo_dir) -> Optional[Path]:
    if memo_dir is None:
        memo_dir = os.environ.get(_MEMO_DIR_ENV) or None
    return Path(memo_dir) if memo_dir is not None else None


_PAYLOAD_KEYS = ("line_bytes", "total_accesses", "threads", "levels")


def _read_disk_entry(path: Path):
    """One hardened disk-memo read: validated, quarantined on corruption.

    Returns ``(cm, note)`` or ``None``; ``note`` is the optional
    structured symbolic-fallback annotation stored alongside the counters.
    """
    try:
        payload = read_checked_json(
            path, fault_site="memo.read", required_keys=_PAYLOAD_KEYS
        )
        note = payload.get("note")
        if note is not None and not isinstance(note, str):
            raise TypeError(f"note must be a string, got {type(note).__name__}")
        return _cm_from_payload(payload), note
    except FileNotFoundError:
        return None
    except CacheCorruption:
        return None  # already quarantined + logged by the reader
    except (TransientIOError, EngineFailure) as exc:
        log.warning("memo read of %s kept failing (%s); recomputing", path, exc)
        return None
    except (ValueError, KeyError, TypeError) as exc:
        # Checksum passed but the payload shape drifted: quarantine too.
        log.warning("memo entry %s has drifted schema (%s)", path, exc)
        quarantine_file(path)
        return None


def _compute_cm(
    module: Module,
    ops: Optional[Sequence[Op]],
    hierarchy: CacheHierarchy,
    threads: int,
    parallel: bool,
    engine_name: str,
    max_accesses: int,
    deadline: Optional[Deadline],
) -> Tuple[CacheModelResult, Optional[str]]:
    """The uncached evaluation: symbolic first when asked, trace otherwise.

    Returns ``(cm, note)``: ``note`` is ``None`` except when the symbolic
    engine declared the unit outside its quasi-affine class and the
    evaluation fell back to the trace-based ``fast`` engine.
    """
    note: Optional[str] = None
    if engine_name == "parametric":
        # At the cache layer ``parametric`` is the symbolic evaluation
        # (identical numbers by construction); the family-artifact reuse
        # it enables lives in the service layer.
        engine_name = "symbolic"
    if engine_name == "symbolic":
        # Imported lazily: symbolic_model depends on this module's
        # siblings and the isllite counting stack.
        from repro.cache.symbolic_model import (
            SymbolicUnsupported,
            symbolic_cm,
        )

        try:
            return (
                symbolic_cm(
                    module, ops, hierarchy, threads=threads,
                    parallel=parallel, deadline=deadline,
                ),
                None,
            )
        except SymbolicUnsupported as exc:
            note = f"symbolic engine fell back to fast: {exc}"
            log.info(
                "symbolic CM of %s unsupported (%s); using the fast "
                "trace engine", module.name, exc,
            )
            engine_name = "fast"
    trace = memoized_trace(
        module, ops, max_accesses=max_accesses, deadline=deadline
    )
    cm = polyufc_cm(
        trace, hierarchy, threads=threads, parallel=parallel,
        engine=engine_name, deadline=deadline,
    )
    return cm, note


def memoized_cm_with_note(
    module: Module,
    ops: Optional[Sequence[Op]],
    hierarchy: CacheHierarchy,
    threads: int = 1,
    parallel: bool = False,
    engine: Optional[str] = None,
    max_accesses: int = 60_000_000,
    memo_dir=None,
    deadline: Optional[Deadline] = None,
) -> Tuple[CacheModelResult, Optional[str]]:
    """The trace+CM evaluation of one unit, memoized, with its note.

    Layering: in-process LRU, then the on-disk JSON store (when a
    directory is configured), then the real computation -- whose trace
    goes through :func:`memoized_trace` so an immediately following
    different-hierarchy request reuses it.  Disk entries are atomic,
    checksummed and quarantined-on-corruption (``repro.runtime.io``);
    a ``deadline`` interrupts the underlying computation at chunk
    boundaries and nothing partial is ever cached.

    The second element is the structured symbolic-fallback note
    (``None`` unless ``engine="symbolic"`` had to fall back), preserved
    through both memo layers.
    """
    engine_name = resolve_engine(engine)
    if not memo_enabled():
        return _compute_cm(
            module, ops, hierarchy, threads, parallel, engine_name,
            max_accesses, deadline,
        )
    key = unit_fingerprint(
        module, ops, hierarchy, threads, parallel, engine, max_accesses
    )
    cached = _cm_lru.get(key)
    if cached is not None:
        return cached
    directory = _resolve_memo_dir(memo_dir)
    path = directory / f"cm_{key}.json" if directory else None
    if path is not None and path.exists():
        entry = _read_disk_entry(path)
        if entry is not None:
            _cm_lru.put(key, entry)
            return entry
    cm, note = _compute_cm(
        module, ops, hierarchy, threads, parallel, engine_name,
        max_accesses, deadline,
    )
    _cm_lru.put(key, (cm, note))
    if path is not None:
        payload = _cm_to_payload(cm)
        if note is not None:
            payload["note"] = note
        try:
            atomic_write_json(path, payload, fault_site="memo.write")
        except (TransientIOError, EngineFailure) as exc:
            # Losing a memo entry costs a recompute later, never a crash.
            log.warning("memo write of %s failed (%s); continuing", path, exc)
    return cm, note


def memoized_cm(
    module: Module,
    ops: Optional[Sequence[Op]],
    hierarchy: CacheHierarchy,
    threads: int = 1,
    parallel: bool = False,
    engine: Optional[str] = None,
    max_accesses: int = 60_000_000,
    memo_dir=None,
    deadline: Optional[Deadline] = None,
) -> CacheModelResult:
    """:func:`memoized_cm_with_note` without the note (compat shim)."""
    cm, _note = memoized_cm_with_note(
        module, ops, hierarchy, threads=threads, parallel=parallel,
        engine=engine, max_accesses=max_accesses, memo_dir=memo_dir,
        deadline=deadline,
    )
    return cm
