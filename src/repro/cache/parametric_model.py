"""Parametric kernel-family characterization: one artifact, every size.

A :class:`ParametricCharacterization` packages the characterization of a
*kernel family* -- the same access geometry at any problem size -- as
per-unit counter polynomials in the problem-size parameters, built on the
Ehrhart-lite polynomial algebra of :mod:`repro.isllite.parametric`.  The
service keeps one artifact per ``family_digest`` and answers any size in
the artifact's validity domain by evaluating the polynomials: bit-for-bit
the counters the concrete engines would have produced, at O(microseconds)
instead of a full characterization.

Two counter sources back the artifact:

* **Sampled + interpolated** (the serving path): every exact per-size
  characterization contributes one :class:`FamilySample` (the full
  integer counter vector per unit).  Once the samples line up on a 1-D
  lattice ray through size space, each counter is interpolated with
  exact ``Fraction`` arithmetic into a polynomial and validated
  **bit-for-bit on held-out samples** before the chart is trusted.
  Quasi-polynomial counters (capacity cliffs, footprint ``ceil``\\ s off
  the lattice) fail the holdout and the family honestly stays on the
  per-size path -- or on a shorter validated sub-segment, since the
  :class:`RayChart` is piecewise.
* **Structural** (the cross-check): :func:`structural_polynomials` lifts
  a kernel builder's loop bounds to affine functions of the size names
  by finite differencing and counts each statement domain symbolically
  (:func:`repro.isllite.parametric.parametric_count`), yielding closed
  forms for ``omega`` and ``total_accesses``.  :meth:`try_fit` can
  require the fitted polynomials for those counters to match the
  symbolic counts term-for-term, so an interpolation artifact can never
  contradict the polyhedral ground truth.

The artifact covers the *model* side only: ``omega``, the trace length,
the OpenMP thread count and the three engine-comparable
:class:`~repro.cache.static_model.LevelCounters` fields per level.  The
hardware-side counters (the exact set-associative simulator) are
deliberately excluded -- their eviction-order and aliasing effects are
quasi-polynomial at best (measured: gemm L2 traffic jumps at the L1
capacity cliff), and the service already content-addresses them per size
in the workload store.  Everything downstream (CM result, roofline
summary, cap search) reconstructs from this vector plus the per-family
invariants via :meth:`ParametricCharacterization.cm_result`.

**Never an extrapolated guess**: :meth:`evaluate` serves a stored sample
directly, or evaluates the chart polynomials when the query lies on a
validated lattice segment, and returns ``None`` for everything else
(off-ray, off-lattice, outside every segment, non-integral evaluation).
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.cache.static_model import CacheModelResult, LevelModelStats
from repro.isllite import BasicSet, Constraint, LinExpr, Space
from repro.isllite.parametric import (
    ParametricCount,
    UnsupportedParametricSet,
    parametric_count,
)


class FamilyFitError(Exception):
    """A sample contradicts the family, or the artifact is poisoned."""


#: Highest polynomial degree the interpolation fit will attempt.  The
#: countable model polynomials are at most cubic in one size (gemm's
#: ``2*ni*nj*nk``); one spare degree absorbs mixed terms on skew rays.
MAX_FIT_DEGREE = 4

#: Fields whose fitted polynomials :meth:`try_fit` cross-checks against
#: :func:`structural_polynomials` when a structural table is supplied.
STRUCTURAL_FIELDS = ("omega", "total_accesses")


def counter_fields(level_count: int) -> Tuple[str, ...]:
    """The fixed per-unit counter layout for ``level_count`` cache levels.

    See the module docstring: model side only -- ``omega``, the trace
    length, the thread count and the three engine-comparable
    ``LevelCounters`` fields per level.
    """
    fields: List[str] = ["omega", "total_accesses", "threads"]
    for index in range(level_count):
        fields.append(f"level{index}_accesses")
        fields.append(f"level{index}_cold_misses")
        fields.append(f"level{index}_capacity_conflict_misses")
    return tuple(fields)


def _check_invariants(invariants: Mapping) -> dict:
    """Validate + normalize the per-family invariant block."""
    if not isinstance(invariants, Mapping):
        raise FamilyFitError(
            f"invariants must be a mapping, got {type(invariants).__name__}"
        )
    required = {"param_names", "unit_names", "level_names", "line_bytes"}
    missing = sorted(required - set(invariants))
    if missing:
        raise FamilyFitError(f"invariants missing {missing}")
    for key in ("param_names", "unit_names", "level_names"):
        values = tuple(invariants[key])
        if not values or not all(
            isinstance(v, str) and v for v in values
        ):
            raise FamilyFitError(f"invariants[{key!r}] must name at least "
                                 f"one non-empty string, got {values!r}")
    line_bytes = invariants["line_bytes"]
    if not isinstance(line_bytes, int) or line_bytes <= 0:
        raise FamilyFitError(
            f"invariants['line_bytes'] must be a positive int, "
            f"got {line_bytes!r}"
        )
    return {
        "param_names": tuple(invariants["param_names"]),
        "unit_names": tuple(invariants["unit_names"]),
        "level_names": tuple(invariants["level_names"]),
        "line_bytes": line_bytes,
    }


# ---------------------------------------------------------------------------
# Exact 1-D polynomial helpers (coefficients low-to-high over the ray
# coordinate ``t``)
# ---------------------------------------------------------------------------


def poly_to_json(poly: Sequence[Fraction]) -> list:
    return [[coeff.numerator, coeff.denominator] for coeff in poly]


def poly_from_json(data) -> Tuple[Fraction, ...]:
    return tuple(Fraction(int(num), int(den)) for num, den in data)


def _interpolate(points: Sequence[Tuple[int, int]]) -> Tuple[Fraction, ...]:
    """Exact Lagrange interpolation through ``(t, value)`` points."""
    coeffs = [Fraction(0)] * len(points)
    for i, (ti, yi) in enumerate(points):
        # Expand yi * prod_{j != i} (t - tj) / (ti - tj) into monomials.
        basis = [Fraction(1)]
        denom = Fraction(1)
        for j, (tj, _yj) in enumerate(points):
            if j == i:
                continue
            denom *= ti - tj
            shifted = [Fraction(0)] + basis
            for k in range(len(basis)):
                shifted[k] -= tj * basis[k]
            basis = shifted
        scale = Fraction(yi) / denom
        for k in range(len(basis)):
            coeffs[k] += scale * basis[k]
    while len(coeffs) > 1 and coeffs[-1] == 0:
        coeffs.pop()
    return tuple(coeffs)


def _eval_poly(poly: Sequence[Fraction], t: int) -> Fraction:
    total = Fraction(0)
    for coeff in reversed(poly):
        total = total * t + coeff
    return total


def _evaluate_polys(
    polys: Sequence[Sequence[Fraction]], t: int
) -> Optional[Tuple[int, ...]]:
    """Evaluate one unit's field polynomials; None unless all are
    non-negative integers (a non-integral value means the query is off
    the validated lattice and must fall back)."""
    values: List[int] = []
    for poly in polys:
        value = _eval_poly(poly, t)
        if value.denominator != 1 or value < 0:
            return None
        values.append(int(value))
    return tuple(values)


def _primitive(vector: Sequence[int]) -> Tuple[int, ...]:
    """The primitive (gcd-reduced, sign-normalized) lattice direction."""
    g = 0
    for value in vector:
        g = math.gcd(g, abs(value))
    if g == 0:
        return tuple(vector)
    reduced = [value // g for value in vector]
    for value in reduced:
        if value:
            if value < 0:
                reduced = [-v for v in reduced]
            break
    return tuple(reduced)


# ---------------------------------------------------------------------------
# The artifact
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FamilySample:
    """One exact per-size characterization: sizes + per-unit vectors."""

    sizes: Tuple[Tuple[str, int], ...]
    units: Tuple[Tuple[int, ...], ...]

    @property
    def sizes_dict(self) -> Dict[str, int]:
        return dict(self.sizes)


@dataclass(frozen=True)
class RaySegment:
    """One validated contiguous window of the ray: ``t_lo <= t <= t_hi``
    with per-unit per-field polynomial coefficients."""

    t_lo: int
    t_hi: int
    polys: Tuple[Tuple[Tuple[Fraction, ...], ...], ...]

    def covers(self, t: int) -> bool:
        return self.t_lo <= t <= self.t_hi


@dataclass(frozen=True)
class RayChart:
    """The validity domain: a lattice ray plus validated segments.

    A query is servable iff ``sizes = offset + t * direction`` for an
    integer ``t`` inside some segment.
    """

    param_names: Tuple[str, ...]
    offset: Tuple[int, ...]
    direction: Tuple[int, ...]
    segments: Tuple[RaySegment, ...]

    def locate(self, size_values: Sequence[int]) -> Optional[int]:
        """The ray coordinate of ``size_values``, or None when off-ray."""
        t: Optional[int] = None
        for value, base, step in zip(size_values, self.offset, self.direction):
            if step == 0:
                if value != base:
                    return None
                continue
            delta = value - base
            if delta % step:
                return None
            here = delta // step
            if t is None:
                t = here
            elif t != here:
                return None
        return t

    def segment_for(self, t: int) -> Optional[RaySegment]:
        for segment in self.segments:
            if segment.covers(t):
                return segment
        return None


@dataclass(frozen=True)
class FamilyAnswer:
    """One served query: per-unit counter vectors plus provenance."""

    units: Tuple[Tuple[int, ...], ...]
    source: str  # "sample" | "chart"
    t: Optional[int] = None


@dataclass
class ParametricCharacterization:
    """The cached family artifact (see module docstring)."""

    param_names: Tuple[str, ...]
    unit_names: Tuple[str, ...]
    level_names: Tuple[str, ...]
    line_bytes: int
    samples: Dict[Tuple[int, ...], Tuple[Tuple[int, ...], ...]] = field(
        default_factory=dict
    )
    chart: Optional[RayChart] = None
    note: Optional[str] = None

    def __post_init__(self):
        normalized = _check_invariants(self.invariants())
        self.param_names = normalized["param_names"]
        self.unit_names = normalized["unit_names"]
        self.level_names = normalized["level_names"]

    # -- identity ----------------------------------------------------------

    @property
    def fields(self) -> Tuple[str, ...]:
        return counter_fields(len(self.level_names))

    def invariants(self) -> dict:
        return {
            "param_names": tuple(self.param_names),
            "unit_names": tuple(self.unit_names),
            "level_names": tuple(self.level_names),
            "line_bytes": self.line_bytes,
        }

    def _key(self, sizes: Mapping[str, int]) -> Tuple[int, ...]:
        if set(sizes) != set(self.param_names):
            raise ValueError(
                f"sizes must bind exactly {self.param_names}, "
                f"got {sorted(sizes)}"
            )
        values = tuple(int(sizes[name]) for name in self.param_names)
        if any(v < 0 for v in values):
            raise ValueError(f"sizes must be non-negative, got {dict(sizes)}")
        return values

    def _poison(self, reason: str) -> None:
        self.note = reason
        self.chart = None

    # -- accumulation ------------------------------------------------------

    def add_sample(self, sizes, unit_counters, invariants) -> bool:
        """Record one exact per-size result; returns True when new.

        Raises :class:`FamilyFitError` when the sample contradicts the
        family -- invariant drift, a counter vector that differs from an
        earlier sample at the same sizes, or disagreement with an
        already-validated chart.  The artifact marks itself poisoned
        (``note``) before raising, so callers can persist the verdict.
        """
        if self.note:
            raise FamilyFitError(f"family poisoned: {self.note}")
        given = _check_invariants(invariants)
        if given != self.invariants():
            self._poison(
                f"invariant drift: {given!r} vs {self.invariants()!r}"
            )
            raise FamilyFitError(self.note)
        width = len(self.fields)
        vectors = tuple(
            tuple(int(value) for value in unit) for unit in unit_counters
        )
        if len(vectors) != len(self.unit_names) or any(
            len(vec) != width or any(v < 0 for v in vec) for vec in vectors
        ):
            raise FamilyFitError(
                f"expected {len(self.unit_names)} units x {width} "
                f"non-negative counters"
            )
        key = self._key(sizes)
        stored = self.samples.get(key)
        if stored is not None:
            if stored != vectors:
                self._poison(
                    f"sample contradiction at sizes {dict(sizes)}: "
                    f"{stored} vs {vectors}"
                )
                raise FamilyFitError(self.note)
            return False
        if self.chart is not None:
            t = self.chart.locate(key)
            segment = (
                self.chart.segment_for(t) if t is not None else None
            )
            if segment is not None:
                predicted = tuple(
                    _evaluate_polys(unit_polys, t)
                    for unit_polys in segment.polys
                )
                if predicted != vectors:
                    self._poison(
                        f"chart contradiction at sizes {dict(sizes)} "
                        f"(t={t}): predicted {predicted}, got {vectors}"
                    )
                    raise FamilyFitError(self.note)
        self.samples[key] = vectors
        return True

    def sample_list(self) -> List[FamilySample]:
        return [
            FamilySample(
                sizes=tuple(zip(self.param_names, key)), units=vectors
            )
            for key, vectors in sorted(self.samples.items())
        ]

    # -- fitting -----------------------------------------------------------

    def _ray(self):
        """(offset, lattice direction, sorted (t, key) list) or None.

        The direction is the *sampled* lattice stride -- the primitive
        direction scaled by the gcd of the sample coordinates -- so the
        chart never claims validity at intermediate lattice points no
        holdout ever checked (counters can differ between sub-lattices:
        gemm's L2 capacity misses alternate between two affine lines on
        the 32- vs 64-stride ni lattice).
        """
        if len(self.samples) < 2:
            return None
        keys = sorted(self.samples)
        offset = keys[0]
        direction = None
        for key in keys[1:]:
            delta = tuple(k - o for k, o in zip(key, offset))
            if any(delta):
                direction = _primitive(delta)
                break
        if direction is None:
            return None
        axis = next(i for i, d in enumerate(direction) if d)
        raw: List[Tuple[int, Tuple[int, ...]]] = []
        for key in keys:
            delta = tuple(k - o for k, o in zip(key, offset))
            if delta[axis] % direction[axis]:
                return None
            t = delta[axis] // direction[axis]
            if delta != tuple(t * d for d in direction):
                return None  # off-ray: no 1-D chart for this family
            raw.append((t, key))
        stride = 0
        for t, _key in raw:
            stride = math.gcd(stride, t)
        if stride > 1:
            direction = tuple(d * stride for d in direction)
            raw = [(t // stride, key) for t, key in raw]
        raw.sort()
        return offset, direction, raw

    def _fit_window(self, window):
        """Fit + holdout-validate one contiguous sample window, or None.

        Interpolation uses up to ``MAX_FIT_DEGREE + 1`` points spread
        evenly across the window; every remaining sample is a bit-for-bit
        holdout (always >= 1).  A holdout miss means the counters are not
        polynomial on this window's lattice -- the window is rejected,
        never served.
        """
        count = len(window)
        if count < 3:
            return None
        n_fit = min(count - 1, MAX_FIT_DEGREE + 1)
        picked = sorted(
            {round(i * (count - 1) / (n_fit - 1)) for i in range(n_fit)}
        )
        holdout = [i for i in range(count) if i not in set(picked)]
        if not holdout:
            return None
        unit_polys: List[Tuple[Tuple[Fraction, ...], ...]] = []
        for u in range(len(self.unit_names)):
            polys: List[Tuple[Fraction, ...]] = []
            for f in range(len(self.fields)):
                points = [(window[i][0], window[i][1][u][f]) for i in picked]
                poly = _interpolate(points)
                for i in holdout:
                    if _eval_poly(poly, window[i][0]) != window[i][1][u][f]:
                        return None
                polys.append(poly)
            unit_polys.append(tuple(polys))
        return RaySegment(
            t_lo=window[0][0], t_hi=window[-1][0], polys=tuple(unit_polys)
        )

    def try_fit(self, structural=None) -> bool:
        """Fit + holdout-validate a chart from the accumulated samples.

        Returns True when a trusted chart is available afterwards.  With
        ``structural`` (unit name -> {"omega"/"total_accesses":
        :class:`~repro.isllite.parametric.ParametricCount`}, see
        :func:`structural_polynomials`) the fitted polynomials for those
        counters must match the symbolic counts term-for-term or the fit
        is rejected.
        """
        if self.note:
            return False
        ray = self._ray()
        if ray is None:
            self.chart = None
            return False
        offset, direction, located = ray
        rows = [(t, self.samples[key]) for t, key in located]
        segments: List[RaySegment] = []
        start = 0
        while start < len(rows):
            fitted = None
            for end in range(len(rows), start + 2, -1):
                fitted = self._fit_window(rows[start:end])
                if fitted is not None:
                    segments.append(fitted)
                    start = end
                    break
            if fitted is None:
                start += 1
        if not segments:
            self.chart = None
            return False
        chart = RayChart(
            param_names=tuple(self.param_names),
            offset=offset,
            direction=direction,
            segments=tuple(segments),
        )
        if structural is not None and not self._structural_ok(
            chart, structural
        ):
            self.chart = None
            return False
        self.chart = chart
        return True

    def _structural_ok(self, chart: RayChart, structural) -> bool:
        """Fitted omega / access polynomials must equal the symbolic
        counts composed onto the ray (sizes = offset + direction * t)."""
        indices = {
            name: index
            for index, name in enumerate(self.fields)
            if name in STRUCTURAL_FIELDS
        }
        for u, unit_name in enumerate(self.unit_names):
            counts = structural.get(unit_name)
            if counts is None:
                return False
            for field_name, count in counts.items():
                if field_name not in indices:
                    continue
                composed = _compose_on_ray(
                    count, chart.param_names, chart.offset, chart.direction
                )
                for segment in chart.segments:
                    if not _poly_equal(
                        segment.polys[u][indices[field_name]], composed
                    ):
                        return False
        return True

    # -- serving -----------------------------------------------------------

    def evaluate(self, sizes: Mapping[str, int]) -> Optional[FamilyAnswer]:
        """Answer ``sizes`` from the artifact, or None (fall back).

        An exact stored sample is served directly; otherwise the chart
        polynomials are evaluated when ``sizes`` lies on a validated
        lattice segment.  Off-lattice, off-segment and unfitted queries
        return None -- never an extrapolated guess.
        """
        if self.note:
            return None
        key = self._key(sizes)
        stored = self.samples.get(key)
        if stored is not None:
            return FamilyAnswer(units=stored, source="sample")
        if self.chart is None:
            return None
        t = self.chart.locate(key)
        if t is None:
            return None
        segment = self.chart.segment_for(t)
        if segment is None:
            return None
        vectors: List[Tuple[int, ...]] = []
        for unit_polys in segment.polys:
            values = _evaluate_polys(unit_polys, t)
            if values is None:
                return None
            vectors.append(values)
        return FamilyAnswer(units=tuple(vectors), source="chart", t=t)

    def counters_dict(self, vector: Sequence[int]) -> Dict[str, int]:
        return dict(zip(self.fields, vector))

    def cm_result(self, vector: Sequence[int]) -> CacheModelResult:
        """Reconstruct the per-unit CM result a concrete engine would
        have produced (``q_dram_bytes`` etc. are derived properties)."""
        values = self.counters_dict(vector)
        levels = tuple(
            LevelModelStats(
                name=name,
                accesses=values[f"level{index}_accesses"],
                cold_misses=values[f"level{index}_cold_misses"],
                capacity_conflict_misses=values[
                    f"level{index}_capacity_conflict_misses"
                ],
            )
            for index, name in enumerate(self.level_names)
        )
        return CacheModelResult(
            levels=levels,
            line_bytes=self.line_bytes,
            total_accesses=values["total_accesses"],
            threads=values["threads"],
        )

    # -- persistence -------------------------------------------------------

    def to_json(self) -> dict:
        chart = None
        if self.chart is not None:
            chart = {
                "offset": list(self.chart.offset),
                "direction": list(self.chart.direction),
                "segments": [
                    {
                        "t_lo": segment.t_lo,
                        "t_hi": segment.t_hi,
                        "polys": [
                            [poly_to_json(poly) for poly in unit_polys]
                            for unit_polys in segment.polys
                        ],
                    }
                    for segment in self.chart.segments
                ],
            }
        return {
            "param_names": list(self.param_names),
            "unit_names": list(self.unit_names),
            "level_names": list(self.level_names),
            "line_bytes": self.line_bytes,
            "samples": [
                {"sizes": list(key), "units": [list(vec) for vec in vectors]}
                for key, vectors in sorted(self.samples.items())
            ],
            "chart": chart,
            "note": self.note,
        }

    @classmethod
    def from_json(cls, payload) -> "ParametricCharacterization":
        if not isinstance(payload, dict):
            raise FamilyFitError(
                f"family payload must be an object, "
                f"got {type(payload).__name__}"
            )
        try:
            artifact = cls(
                param_names=tuple(payload["param_names"]),
                unit_names=tuple(payload["unit_names"]),
                level_names=tuple(payload["level_names"]),
                line_bytes=payload["line_bytes"],
                note=payload.get("note"),
            )
            for row in payload.get("samples", ()):
                key = tuple(int(v) for v in row["sizes"])
                artifact.samples[key] = tuple(
                    tuple(int(v) for v in vec) for vec in row["units"]
                )
            chart = payload.get("chart")
            if chart is not None:
                artifact.chart = RayChart(
                    param_names=artifact.param_names,
                    offset=tuple(int(v) for v in chart["offset"]),
                    direction=tuple(int(v) for v in chart["direction"]),
                    segments=tuple(
                        RaySegment(
                            t_lo=int(segment["t_lo"]),
                            t_hi=int(segment["t_hi"]),
                            polys=tuple(
                                tuple(
                                    poly_from_json(poly)
                                    for poly in unit_polys
                                )
                                for unit_polys in segment["polys"]
                            ),
                        )
                        for segment in chart["segments"]
                    ),
                )
        except (KeyError, TypeError, ValueError) as exc:
            raise FamilyFitError(f"malformed family payload: {exc}") from exc
        return artifact


def _poly_equal(
    poly: Sequence[Fraction], other: Sequence[Fraction]
) -> bool:
    width = max(len(poly), len(other))
    pad = lambda p: tuple(p) + (Fraction(0),) * (width - len(p))  # noqa: E731
    return pad(poly) == pad(other)


def _compose_on_ray(
    count: ParametricCount,
    param_names: Sequence[str],
    offset: Sequence[int],
    direction: Sequence[int],
) -> Tuple[Fraction, ...]:
    """Substitute ``size_p = offset_p + direction_p * t`` into a
    :class:`ParametricCount`, returning coefficients over ``t``."""
    base = {
        name: (Fraction(o), Fraction(d))
        for name, o, d in zip(param_names, offset, direction)
    }
    total: List[Fraction] = [Fraction(0)]

    def add(poly: List[Fraction]) -> None:
        while len(total) < len(poly):
            total.append(Fraction(0))
        for k, coeff in enumerate(poly):
            total[k] += coeff

    for monomial, coeff in count.terms:
        term = [Fraction(coeff)]
        for name, power in monomial:
            if name not in base:
                raise UnsupportedParametricSet(
                    f"count references {name!r}, not a family parameter"
                )
            o, d = base[name]
            for _ in range(power):
                shifted = [Fraction(0)] + [c * d for c in term]
                for k in range(len(term)):
                    shifted[k] += o * term[k]
                term = shifted
        add(term)
    while len(total) > 1 and total[-1] == 0:
        total.pop()
    return tuple(total)


# ---------------------------------------------------------------------------
# Structural lifting: concrete builder -> parametric statement domains
# ---------------------------------------------------------------------------


def lift_statement_domains(build, base_sizes: Mapping[str, int]):
    """Each statement's domain as a *parametric* BasicSet in the size names.

    The builder is invoked at the base sizes and with each size bumped by
    +1 and +3; constraint constants that move are lifted to affine
    functions of the sizes (the +3 build proves linearity).  Any
    structural drift between builds -- statement count, loop names,
    constraint coefficients, flop counts -- or a nonlinear constant
    raises :class:`UnsupportedParametricSet`.

    Returns ``(affine_module, [(statement, parametric_domain), ...])``
    where both the module and the statements come from the base-size
    build, so callers can group statements into units on that module.
    """
    from repro.pipeline import _lower_to_affine
    from repro.poly.scop import extract_scop

    base_sizes = {name: int(value) for name, value in base_sizes.items()}
    names = sorted(base_sizes)
    if not names:
        raise UnsupportedParametricSet("a family needs at least one size")

    def scop_at(sizes):
        module = _lower_to_affine(build(dict(sizes)))
        return module, extract_scop(module)

    module, base_scop = scop_at(base_sizes)
    probes: Dict[Tuple[str, int], list] = {}
    for name in names:
        for bump in (1, 3):
            sizes = dict(base_sizes)
            sizes[name] += bump
            probes[(name, bump)] = scop_at(sizes)[1].statements

    def bound_rows(statements):
        """Flattened (loop, which, index) bound expressions per statement."""
        rows = []
        for statement in statements:
            exprs = []
            for loop in statement.loops:
                exprs.append(tuple(loop.lowers))
                exprs.append(tuple(loop.uppers))
            rows.append(
                (
                    statement.name,
                    statement.loop_names,
                    statement.flops_per_point,
                    len(statement.accesses),
                    tuple(exprs),
                )
            )
        return rows

    base_rows = bound_rows(base_scop.statements)
    probe_rows = {key: bound_rows(stmts) for key, stmts in probes.items()}
    for key, rows in probe_rows.items():
        if len(rows) != len(base_rows):
            raise UnsupportedParametricSet(
                f"statement count drifts with size {key[0]!r}: "
                f"{len(base_rows)} vs {len(rows)}"
            )
        for base_row, row in zip(base_rows, rows):
            if base_row[:4] != row[:4] or any(
                len(b) != len(p) for b, p in zip(base_row[4], row[4])
            ):
                raise UnsupportedParametricSet(
                    f"structural drift with size {key[0]!r} at statement "
                    f"{base_row[0]}: {base_row[:4]} vs {row[:4]}"
                )

    def lift_expr(stmt_index, group_index, expr_index, expr) -> LinExpr:
        lifted = expr
        for name in names:
            def probe_expr(bump):
                return probe_rows[(name, bump)][stmt_index][4][group_index][
                    expr_index
                ]
            one, three = probe_expr(1), probe_expr(3)
            if one.coeffs != expr.coeffs or three.coeffs != expr.coeffs:
                raise UnsupportedParametricSet(
                    f"bound coefficients drift with size {name!r} "
                    f"in {expr!r}"
                )
            delta = one.const - expr.const
            if three.const - expr.const != 3 * delta:
                raise UnsupportedParametricSet(
                    f"bound constant of {expr!r} is not affine in {name!r}"
                )
            if delta:
                lifted = (
                    lifted
                    + LinExpr.var(name) * delta
                    - delta * base_sizes[name]
                )
        return lifted

    lifted_pairs = []
    for stmt_index, statement in enumerate(base_scop.statements):
        constraints: List[Constraint] = []
        used_params = set()
        loop_names = statement.loop_names
        for loop_index, loop in enumerate(statement.loops):
            iv = LinExpr.var(loop.iv_name)
            for which, exprs in ((0, loop.lowers), (1, loop.uppers)):
                group_index = 2 * loop_index + which
                for expr_index, expr in enumerate(exprs):
                    lifted = lift_expr(
                        stmt_index, group_index, expr_index, expr
                    )
                    used_params |= lifted.names() - set(loop_names)
                    if which == 0:
                        constraints.append(Constraint(iv - lifted))
                    else:
                        constraints.append(Constraint(lifted - iv - 1))
        unknown = used_params - set(names)
        if unknown:
            raise UnsupportedParametricSet(
                f"lifted bounds use unknown symbols {sorted(unknown)}"
            )
        space = Space(loop_names, params=tuple(sorted(used_params)))
        domain = BasicSet(space, constraints)
        lifted_pairs.append((statement, domain))
    return module, lifted_pairs


def structural_polynomials(
    build, base_sizes: Mapping[str, int], granularity: str = "linalg"
) -> Dict[str, Dict[str, ParametricCount]]:
    """Per-unit ``omega`` and ``total_accesses`` polynomials in the sizes.

    The lifted statement domains are counted symbolically
    (:func:`repro.isllite.parametric.parametric_count`: rectangle or
    ordered simplex) and aggregated per capping unit using the same
    grouping as the characterization pipeline, so the keys line up
    with unit names in reports.  Raises
    :class:`UnsupportedParametricSet` outside the countable class.
    """
    from repro.mlpolyufc.characterization import group_affine_units

    module, lifted_pairs = lift_statement_domains(build, base_sizes)
    units = group_affine_units(module, granularity)
    owner: Dict[int, str] = {}
    result: Dict[str, Dict[str, ParametricCount]] = {}
    for unit_name, ops in units:
        result[unit_name] = {
            "omega": ParametricCount.constant(0),
            "total_accesses": ParametricCount.constant(0),
        }
        for op in ops:
            owner[id(op)] = unit_name
    for statement, domain in lifted_pairs:
        unit_name = owner.get(id(statement.loops[0]))
        if unit_name is None:
            raise UnsupportedParametricSet(
                f"statement {statement.name} is outside every unit"
            )
        count = parametric_count(domain).polynomial()
        result[unit_name]["omega"] = result[unit_name]["omega"] + count.scale(
            statement.flops_per_point
        )
        result[unit_name]["total_accesses"] = result[unit_name][
            "total_accesses"
        ] + count.scale(len(statement.accesses))
    return result
