"""Trace-free symbolic evaluation of the PolyUFC-CM cache model.

The trace engines (:mod:`repro.cache.static_model`,
:mod:`repro.cache.fast_model`) enumerate every access of the scheduled
access relation.  This module computes the *same* per-level
cold / capacity-conflict classification by counting points in the
quasi-affine reuse sets instead -- the compile-time formulation of the
paper's Sec. IV (there evaluated with barvinok), so analysis cost is a
function of the loop-nest *structure*, not the trip counts.

Pipeline, per unit:

1. **Extraction** -- the affine nest is walked symbolically into
   *statements* (maximal load/store runs) with mixed-radix flattened
   timestamps ``t(u) = base + sum_d w_d u_d + pos``, and one *access
   geometry* per textual access: an affine map from the iteration box to
   cache-line ids.  Triangular / trapezoidal nests -- loop bounds
   affine in outer iterators, the trisolv / lu walks -- are handled by
   *outer-iterator unrolling*: the dependent iterator is bound as a
   constant parameter per iteration, which folds every inner bound and
   subscript rectangular again (budgeted by :data:`_MAX_BOXES`).
   Non-affine subscripts or non-injective line maps raise
   :class:`SymbolicUnsupported`.
2. **Classification** -- an access misses iff its backward per-set reuse
   distance reaches the associativity.  The predecessor (previous access
   to the same line) is found in closed form; the distinct same-set lines
   inside the reuse window are counted per member geometry from the
   window's mixed-radix box decomposition with AP-mod-``S`` closed forms.
   Instances are grouped into classes that provably share every quantity
   the decision depends on, so each class is decided once.
3. **Propagation** -- write-through: misses re-emit as next-level reads
   and every store is forwarded, as per-dimension filtered sub-boxes, and
   the next level is classified the same way.

Exactness is non-negotiable: whenever a closed form does not apply the
engine *escapes* (enumerates a bounded representative window, or evaluates
the residual levels with the vectorized trace kernel on a synthesized
stream) rather than approximating, and when even that is impossible it
raises :class:`SymbolicUnsupported` so the caller falls back to the
``fast`` engine -- recorded as a structured note on the unit.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field, replace
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.cache.config import CacheHierarchy, CacheLevelConfig
from repro.cache.fast_model import model_level as _fast_model_level
from repro.cache.static_model import (
    CacheModelResult,
    LevelModelStats,
    _divide,
)
from repro.ir.core import Buffer, IRError, Module, Op
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.ir.dialects.linalg import LinalgOp
from repro.ir.dialects.polyufc import SetUncoreCapOp
from repro.runtime import Deadline, check as _check_deadline, faults


class SymbolicUnsupported(Exception):
    """The unit is outside the symbolic engine's supported class."""


#: Residue-splitting a non-line-divisible dimension multiplies the box
#: count by the period; beyond this the splits stop paying for themselves.
_MAX_RESIDUE_PERIOD = 64

#: Hard ceiling on boxes produced while splitting one unit's geometries.
_MAX_BOXES = 4096

#: Budget (window instances) for one representative-window enumeration.
_ENUM_BUDGET = 1 << 24

#: Maximum outer-product factors when a fetch mask does not factor as a
#: single per-dim selection (e.g. the first row of a misaligned buffer
#: sharing its leading line with the previous row).
_MAX_MASK_FACTORS = 8

#: Budget for brute-force multi-AP per-set counting (product of the
#: enumerated extents; the largest extent stays closed-form).
_AP_ENUM_BUDGET = 4096


# ---------------------------------------------------------------------------
# Extraction: affine IR -> statements + access geometries
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _Dim:
    """One normalized loop dimension of an access box.

    ``w`` is the mixed-radix time weight (time advances by ``w`` per unit
    step), ``e`` the element-offset coefficient, ``n`` the extent; the
    instance set is ``{0, ..., n-1}`` filtered by ``vals`` when present
    (a sorted subset, used for next-level sub-streams).
    """

    w: int
    e: int
    n: int
    vals: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return int(self.vals.size) if self.vals is not None else self.n

    def values(self) -> np.ndarray:
        if self.vals is not None:
            return self.vals
        return np.arange(self.n, dtype=np.int64)


@dataclass(frozen=True)
class _Box:
    """One access geometry over a rectangular (possibly filtered) box.

    ``tbase`` is the global time of the ``(0, ..., 0)`` instance (the
    access's slot inside its statement already added); ``ebase`` the
    element offset at the origin; ``dims`` ordered by decreasing time
    weight.  ``stmt`` identifies the originating statement, ``acc`` the
    access slot within it (stable identity across levels).
    """

    buffer_id: int
    is_write: bool
    tbase: int
    ebase: int
    dims: Tuple[_Dim, ...]
    stmt: int
    acc: int
    #: Start time of the enclosing top-level nest and the time span of one
    #: iteration of its outermost loop -- the slab-translation unit used
    #: by the class compressor (0 outer_w = not inside a loop).
    nest_base: int = 0
    outer_w: int = 0

    @property
    def size(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim.size
        return total

    @property
    def tmax(self) -> int:
        """Time of the last instance of the box."""
        t = self.tbase
        for dim in self.dims:
            values = dim.values()
            if values.size:
                t += dim.w * int(values[-1])
        return t


@dataclass
class _Unit:
    """A symbolic unit: geometries plus the buffer layout."""

    buffers: List[Buffer]
    boxes: List[_Box]
    total_accesses: int
    total_time: int


class _Extractor:
    """Walks affine IR into statements with flattened timestamps.

    Mirrors the trace generator's program order exactly (including buffer
    registration order) so line ids are bit-for-bit those of the trace
    layout.  Two passes: the first measures every subtree's time span,
    the second assigns bases and emits access boxes.
    """

    def __init__(self, module: Module):
        self.module = module
        self.params = dict(module.params)
        self.buffers: List[Buffer] = []
        self.buffer_index: Dict[str, int] = {}
        self.boxes: List[_Box] = []
        self.total_accesses = 0
        self._stmt_counter = 0

    # -- bounds ------------------------------------------------------------

    def _const(self, expr) -> int:
        partial = expr.partial(self.params)
        if partial.names():
            raise SymbolicUnsupported(
                f"non-affine-foldable bound {expr!r} "
                f"(depends on unbound names {sorted(partial.names())})"
            )
        value = partial.const
        if not float(value).is_integer():
            raise SymbolicUnsupported(f"non-integer bound {expr!r}")
        return int(value)

    def _loop_range(self, loop: AffineForOp) -> Tuple[int, int, int]:
        lowers = [self._const(e) for e in loop.lowers]
        uppers = [self._const(e) for e in loop.uppers]
        lower, upper = max(lowers), min(uppers)
        step = loop.step
        if step <= 0:
            raise SymbolicUnsupported(f"non-positive step {step}")
        extent = max(0, -(-(upper - lower) // step))
        return lower, step, extent

    def _bounds_depend(self, op: Op, name: str) -> bool:
        """True iff any loop bound in ``op``'s subtree references ``name``."""
        if isinstance(op, AffineForOp):
            for expr in list(op.lowers) + list(op.uppers):
                if name in expr.names():
                    return True
            return any(
                self._bounds_depend(child, name) for child in op.body.ops
            )
        return False

    def _unrolls(self, op: AffineForOp) -> bool:
        """True iff the loop must be unrolled (triangular/trapezoidal).

        A loop whose *descendant bounds* depend on its own iterator does
        not sweep a rectangle; binding the iterator as a constant
        parameter per iteration folds every inner bound (and subscript)
        back into the rectangular class.
        """
        return any(
            self._bounds_depend(child, op.iv_name) for child in op.body.ops
        )

    def _bind(self, name: str, value: int):
        """Set ``params[name] = value``; returns the restore thunk."""
        missing = object()
        previous = self.params.get(name, missing)
        self.params[name] = value

        def restore() -> None:
            if previous is missing:
                del self.params[name]
            else:
                self.params[name] = previous

        return restore

    def _unrolled_span(self, op: AffineForOp) -> int:
        lower, step, extent = self._loop_range(op)
        total = 0
        for k in range(extent):
            restore = self._bind(op.iv_name, lower + step * k)
            try:
                total += sum(self._span(child) for child in op.body.ops)
            finally:
                restore()
        return total

    def _buffer_id(self, buffer: Buffer) -> int:
        index = self.buffer_index.get(buffer.name)
        if index is None:
            index = len(self.buffers)
            self.buffer_index[buffer.name] = index
            self.buffers.append(buffer)
        return index

    # -- pass 1: spans -----------------------------------------------------

    def _span(self, op: Op) -> int:
        """Time units consumed by one execution of ``op``."""
        if isinstance(op, (AffineLoadOp, AffineStoreOp)):
            return 1
        if isinstance(op, AffineForOp):
            if self._unrolls(op):
                return self._unrolled_span(op)
            _, _, extent = self._loop_range(op)
            body = sum(self._span(child) for child in op.body.ops)
            return extent * body
        if isinstance(op, LinalgOp):
            raise IRError(
                f"symbolic CM needs affine IR; lower {op!r} first"
            )
        # Pure compute / annotation ops (arith, uncore caps) take no time
        # and touch no memory -- the trace generator skips them too.
        return 0

    # -- pass 2: emission --------------------------------------------------

    def run(self, ops: Sequence[Op]) -> _Unit:
        cursor = 0
        for op in ops:
            self._nest_base = cursor
            # Unrolled (triangular) nests have a different body span per
            # outer iteration, so slab translation does not apply: 0
            # disables the class compressor for their boxes.
            self._outer_w = (
                sum(self._span(child) for child in op.body.ops)
                if isinstance(op, AffineForOp) and not self._unrolls(op)
                else 0
            )
            cursor += self._emit(op, cursor, [])
        return _Unit(self.buffers, self.boxes, self.total_accesses, cursor)

    def _emit(self, op: Op, base: int, nest) -> int:
        """Emit ``op`` starting at time ``base``; returns its time span.

        ``nest`` carries ``(w, lower, step, iv_name, extent)`` per
        enclosing loop, outer to inner, with ``w`` the per-step weight.
        """
        if isinstance(op, (AffineLoadOp, AffineStoreOp)):
            self._emit_access(op, base, nest)
            return 1
        if isinstance(op, AffineForOp):
            lower, step, extent = self._loop_range(op)
            if self._unrolls(op):
                cursor = base
                for k in range(extent):
                    restore = self._bind(op.iv_name, lower + step * k)
                    try:
                        for child in op.body.ops:
                            cursor += self._emit(child, cursor, nest)
                    finally:
                        restore()
                    if len(self.boxes) > _MAX_BOXES:
                        raise SymbolicUnsupported(
                            f"unrolling {op.iv_name} exceeds the "
                            f"{_MAX_BOXES}-box budget"
                        )
                return cursor - base
            body_span = sum(self._span(child) for child in op.body.ops)
            if extent == 0 or body_span == 0:
                return extent * body_span
            nest.append((body_span, lower, step, op.iv_name, extent))
            cursor = base
            for child in op.body.ops:
                cursor += self._emit(child, cursor, nest)
            nest.pop()
            return extent * body_span
        if isinstance(op, LinalgOp):
            raise IRError(
                f"symbolic CM needs affine IR; lower {op!r} first"
            )
        return 0

    def _emit_access(self, op, base: int, nest) -> None:
        buffer = op.buffer
        buffer_id = self._buffer_id(buffer)
        ebase = 0
        coeffs = [0] * len(nest)
        names = [entry[3] for entry in nest]
        for expr, stride in zip(op.indices, buffer.strides()):
            partial = expr.partial(self.params)
            const = partial.const
            if not float(const).is_integer():
                raise SymbolicUnsupported(f"non-integer subscript {expr!r}")
            ebase += int(const) * stride
            leftover = set(partial.names())
            for d, name in enumerate(names):
                coeff = partial.coeff(name)
                if coeff:
                    if not float(coeff).is_integer():
                        raise SymbolicUnsupported(
                            f"non-integer coefficient in {expr!r}"
                        )
                    coeffs[d] += int(coeff) * stride
                    leftover.discard(name)
            if leftover:
                raise SymbolicUnsupported(
                    f"subscript {expr!r} uses unbound names {sorted(leftover)}"
                )
        dims: List[_Dim] = []
        for (w, lower, step, _name, extent), coeff in zip(nest, coeffs):
            ebase += coeff * lower
            dims.append(_Dim(w=w, e=coeff * step, n=extent))
        box = _Box(
            buffer_id=buffer_id,
            is_write=isinstance(op, AffineStoreOp),
            tbase=base,
            ebase=ebase,
            dims=tuple(dims),
            stmt=0,
            acc=len(self.boxes),
            nest_base=self._nest_base,
            outer_w=self._outer_w,
        )
        self.boxes.append(box)
        self.total_accesses += box.size


def _extract_unit(module: Module, ops: Optional[Sequence[Op]]) -> _Unit:
    """Extract the symbolic unit for ``ops`` (default: whole module)."""
    extractor = _Extractor(module)
    return extractor.run(list(ops) if ops is not None else list(module.ops))


# ---------------------------------------------------------------------------
# Line geometry: element-affine boxes -> cache-line-affine boxes
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class _LDim:
    """One dimension of a line-space box.

    ``w``: time weight; ``n``: extent; ``s``: line stride (line ids move
    by ``s`` per step); ``b``: residual byte coefficient (non-zero only on
    the single *fine* dimension, ``0 < b < line_bytes``); ``vals``: sorted
    value subset (``None`` = full range ``0..n-1``).
    """

    w: int
    n: int
    s: int
    b: int = 0
    vals: Optional[np.ndarray] = None

    @property
    def size(self) -> int:
        return int(self.vals.size) if self.vals is not None else self.n

    def values(self) -> np.ndarray:
        if self.vals is not None:
            return self.vals
        return np.arange(self.n, dtype=np.int64)


@dataclass(frozen=True)
class _LineBox:
    """An access geometry in line space over a (filtered) box.

    ``line(u) = lbase + sum_d s_d u_d + (phi + b_f u_f) // L`` where ``L``
    is the line size, ``phi = byte_base % L`` and the single fine
    dimension (if any) carries ``b_f``.  The injectivity certificate
    guarantees distinct in-box coordinates map to distinct lines
    (free dims with ``s == 0 and b == 0`` excluded).
    """

    buffer_id: int
    is_write: bool
    tbase: int
    lbase: int
    phi: int
    dims: Tuple[_LDim, ...]
    acc: int
    line_bytes: int
    injective: bool
    nest_base: int = 0
    outer_w: int = 0
    #: Upper bound on how many instance-disjoint sibling sub-boxes of the
    #: same textual access (residue variants, mask factors) can map *any*
    #: one line -- the over-count factor of summing their distinct-line
    #: counts.  1 for aligned accesses; 2 for a split dim whose finer
    #: span almost reaches its stride (row-major misalignment).
    mult: int = 1

    @property
    def size(self) -> int:
        total = 1
        for dim in self.dims:
            total *= dim.size
        return total

    @property
    def tmax(self) -> int:
        """Time of the last instance of the box."""
        t = self.tbase
        for dim in self.dims:
            values = dim.values()
            if values.size:
                t += dim.w * int(values[-1])
        return t

    @property
    def fine(self) -> Optional[int]:
        for index, dim in enumerate(self.dims):
            if dim.b:
                return index
        return None

    def block_span(self) -> int:
        """Max of ``(phi + b_f u_f) // L`` over the fine values (0 if none)."""
        f = self.fine
        if f is None:
            return 0
        dim = self.dims[f]
        values = dim.values()
        if not values.size:
            return 0
        return (self.phi + dim.b * int(values[-1])) // self.line_bytes

    def times(self, coords: np.ndarray) -> np.ndarray:
        """Global times for coordinate rows ``(rows, ndims)``."""
        t = np.full(coords.shape[0], self.tbase, dtype=np.int64)
        for d, dim in enumerate(self.dims):
            if dim.w:
                t += dim.w * coords[:, d]
        return t

    def lines(self, coords: np.ndarray) -> np.ndarray:
        """Global line ids for coordinate rows."""
        lines = np.full(coords.shape[0], self.lbase, dtype=np.int64)
        rem = np.full(coords.shape[0], self.phi, dtype=np.int64)
        for d, dim in enumerate(self.dims):
            if dim.s:
                lines += dim.s * coords[:, d]
            if dim.b:
                rem += dim.b * coords[:, d]
        return lines + rem // self.line_bytes


def _split_residue(
    dims: List[Tuple[int, int, int]], line_bytes: int
) -> List[List[Tuple[int, int, int, int, int]]]:
    """Residue-split dims so at most one keeps a sub-line coefficient.

    Input dims are ``(w, byte_coeff, n)``; output is a list of
    alternatives (cartesian residue choices), each a list of
    ``(w, byte_coeff, n, byte_shift, time_shift)`` where the shifts are
    the contributions of the fixed residue.  The dimension with the
    smallest-magnitude misaligned byte coefficient is kept as the fine
    dim; every other line-misaligned dim ``u = r + period * q`` is split
    into ``period`` sub-boxes whose ``q`` stride is line-aligned.
    """
    misaligned = [
        i for i, (_w, b, _n) in enumerate(dims) if b % line_bytes != 0
    ]
    fine_dim = None
    if misaligned:
        fine_dim = min(misaligned, key=lambda i: abs(dims[i][1]))
    variants: List[List[Tuple[int, int, int, int, int]]] = [[]]
    for i, (w, b, n) in enumerate(dims):
        if i == fine_dim or b % line_bytes == 0:
            for variant in variants:
                variant.append((w, b, n, 0, 0))
            continue
        period = line_bytes // math.gcd(abs(b), line_bytes)
        if period > _MAX_RESIDUE_PERIOD or len(variants) * period > _MAX_BOXES:
            raise SymbolicUnsupported(
                f"residue period {period} over {len(variants)} variants "
                "exceeds the splitting budget"
            )
        new_variants = []
        for variant in variants:
            for r in range(min(period, n)):
                q_extent = (n - r + period - 1) // period
                new_variants.append(
                    variant + [(w * period, b * period, q_extent, b * r, w * r)]
                )
        variants = new_variants
    return variants


def _normalize_box(
    box: _Box, line_bytes: int, bases: np.ndarray, elem_bytes: int
) -> List[_LineBox]:
    """Lower an element-affine box to line-affine boxes.

    ``bases`` are per-buffer byte bases (the trace layout).  Negative
    line strides and multiple surviving fine dims are unsupported; free
    dims (coefficient 0) pass through as pure time multiplicity.
    """
    byte_dims = [
        (dim.w, dim.e * elem_bytes, dim.n) for dim in box.dims
    ]
    base_bytes = int(bases[box.buffer_id]) + box.ebase * elem_bytes
    # Per-line multiplicity across the residue variants: for every dim
    # that _split_residue will split (misaligned, except the fine dim it
    # keeps), a line is reachable from at most ``hits`` of its values --
    # hence from at most that many residue classes.  Values of unsplit
    # dims do not distinguish variants, so they do not multiply.
    misaligned = [
        i for i, (_w, b, _n) in enumerate(byte_dims) if b % line_bytes
    ]
    fine_dim = (
        min(misaligned, key=lambda i: abs(byte_dims[i][1]))
        if misaligned
        else None
    )
    mult = 1
    for i, (w, b, n) in enumerate(byte_dims):
        if i == fine_dim or b % line_bytes == 0 or n <= 1:
            continue
        finer = sum(
            abs(b2) * (n2 - 1)
            for _w2, b2, n2 in byte_dims
            if b2 and abs(b2) < abs(b)
        ) + (elem_bytes - 1)
        mult *= int((line_bytes - 1 + finer) // abs(b) + 1)
    out: List[_LineBox] = []
    for variant in _split_residue(byte_dims, line_bytes):
        vbase = base_bytes + sum(bs for (_w, _b, _n, bs, _ts) in variant)
        tbase = box.tbase + sum(ts for (_w, _b, _n, _bs, ts) in variant)
        lbase, phi = divmod(vbase, line_bytes)
        dims: List[_LDim] = []
        fine_seen = False
        for w, b, n, _bs, _ts in variant:
            if b % line_bytes == 0:
                s = b // line_bytes
                if s < 0:
                    raise SymbolicUnsupported(
                        f"negative line stride {s} (reversed access)"
                    )
                dims.append(_LDim(w=w, n=n, s=s, b=0))
            else:
                if fine_seen:
                    raise SymbolicUnsupported("two sub-line dims survive")
                if b < 0:
                    raise SymbolicUnsupported(
                        f"negative fine coefficient {b}"
                    )
                fine_seen = True
                dims.append(_LDim(w=w, n=n, s=0, b=b))
        # Degenerate dims (single value 0) contribute nothing to time or
        # lines but can wreck the mixed-radix weight ordering: a residue
        # split multiplies the quotient dim's weight by the period, and
        # when the extent collapses to 1 (n <= period) that inflated
        # weight may exceed an *outer* loop's weight, so sorting by -w
        # would place a non-dominant digit above a wider one.
        ordered = tuple(
            sorted((d for d in dims if d.n > 1), key=lambda d: -d.w)
        )
        span = 0
        for d in reversed(ordered):
            if d.w <= span:
                raise SymbolicUnsupported(
                    "time weights are not mixed-radix separable"
                )
            span += d.w * (d.n - 1)
        fine_idx = next((i for i, d in enumerate(ordered) if d.b), None)
        if fine_idx == 0 and any(d.s for d in ordered[1:]):
            # A sub-line dim as the *outermost* loop over line-strided
            # inner dims (a column-wise walk, e.g. A[j][i] with i outer)
            # puts every reuse-window delta at the fine level, where the
            # interval families genuinely overlap in lines -- the closed
            # forms degenerate to enumeration and the trace engines
            # handle this traversal class faster than we can.
            raise SymbolicUnsupported(
                "sub-line dim is the outermost loop of a line-strided "
                "access (column-wise traversal)"
            )
        lbox = _LineBox(
            buffer_id=box.buffer_id,
            is_write=box.is_write,
            tbase=tbase,
            lbase=lbase,
            phi=phi,
            dims=ordered,
            acc=box.acc,
            line_bytes=line_bytes,
            injective=False,
            nest_base=box.nest_base,
            outer_w=box.outer_w,
            mult=mult,
        )
        out.append(replace(lbox, injective=_is_injective(lbox)))
    return out


# ---------------------------------------------------------------------------
# Mixed-radix rank machinery (vectorized over query rows)
# ---------------------------------------------------------------------------


def _inner_sizes(box: _LineBox) -> List[int]:
    """Instances per unit step of each dim (product of inner dim sizes)."""
    sizes = [1] * len(box.dims)
    for d in range(len(box.dims) - 2, -1, -1):
        sizes[d] = sizes[d + 1] * box.dims[d + 1].size
    return sizes


def _dim_lt(dim: _LDim, q: np.ndarray) -> np.ndarray:
    """How many allowed values of ``dim`` are strictly below ``q``."""
    if dim.vals is None:
        return np.clip(q, 0, dim.n)
    return np.searchsorted(dim.vals, q, side="left")


def _dim_has(dim: _LDim, q: np.ndarray) -> np.ndarray:
    """Whether ``q`` is an allowed value of ``dim`` (bool array)."""
    if dim.vals is None:
        return (q >= 0) & (q < dim.n)
    idx = np.searchsorted(dim.vals, q, side="left")
    idx_c = np.minimum(idx, dim.vals.size - 1)
    return (idx < dim.vals.size) & (dim.vals[np.maximum(idx_c, 0)] == q)


def _rank_lt(box: _LineBox, t: np.ndarray) -> np.ndarray:
    """#instances of ``box`` with time strictly below ``t`` (per row).

    Standard mixed-radix digit descent: at each level the instances with
    a smaller digit contribute a full inner block; descent continues only
    while the digit is an allowed value.  Exact for filtered dims because
    weights dominate inner spans by construction.
    """
    t = np.asarray(t, dtype=np.int64)
    rem = t - box.tbase
    count = np.zeros(t.shape, dtype=np.int64)
    alive = np.ones(t.shape, dtype=bool)
    inner = _inner_sizes(box)
    for d, dim in enumerate(box.dims):
        if not alive.any():
            break
        q = rem // dim.w
        count += np.where(alive, _dim_lt(dim, q) * inner[d], 0)
        alive = alive & _dim_has(dim, q)
        rem = rem - q * dim.w
    count += alive & (rem > 0)
    return count


def _unrank(box: _LineBox, r: np.ndarray) -> np.ndarray:
    """Coordinates (values, not indices) of the ``r``-th instances."""
    r = np.asarray(r, dtype=np.int64)
    coords = np.empty((r.size, len(box.dims)), dtype=np.int64)
    rem = r.copy()
    inner = _inner_sizes(box)
    for d, dim in enumerate(box.dims):
        idx, rem = np.divmod(rem, inner[d])
        if dim.vals is None:
            coords[:, d] = idx
        else:
            coords[:, d] = dim.vals[idx]
    return coords


def _indices(box: _LineBox, coords: np.ndarray) -> np.ndarray:
    """Per-dim positions of coordinate values within the allowed sets."""
    idx = np.empty_like(coords)
    for d, dim in enumerate(box.dims):
        if dim.vals is None:
            idx[:, d] = coords[:, d]
        else:
            idx[:, d] = np.searchsorted(dim.vals, coords[:, d])
    return idx


# ---------------------------------------------------------------------------
# Per-set distinct-line counting over rank-interval families
# ---------------------------------------------------------------------------

#: One family of sub-boxes, vectorized over rows: per dim an index
#: interval [lo, hi] into the dim's allowed values (inclusive), plus a
#: validity mask and a structural tag ``(kind, level)`` with kind "P"
#: (point), "M" (middle, level = the first differing dim) or "A"/"B"
#: (boundary tails, level = the dim they vary).  Two families are
#: instance-disjoint at a known dim: tails against anything deeper at
#: their own level, everything else at the row's first differing dim.
#: Fixed digits are lo == hi.
_Family = Tuple[np.ndarray, List[Tuple[np.ndarray, np.ndarray]], Tuple[str, int]]


def _interval_families(
    box: _LineBox, a: np.ndarray, b: np.ndarray
) -> Tuple[List[_Family], np.ndarray]:
    """Decompose rank intervals ``[a, b)`` into per-dim index boxes.

    Returns up to ``2 * ndims + 1`` families plus the per-row first
    differing digit (``ndims`` for single-point intervals).  Rows with
    ``a >= b`` are masked invalid everywhere.  Index intervals address
    positions within each dim's allowed-value array.
    """
    ndims = len(box.dims)
    nonempty = a < b
    safe_a = np.where(nonempty, a, 0)
    safe_b = np.where(nonempty, b - 1, 0)
    da = _indices(box, _unrank(box, safe_a))
    db = _indices(box, _unrank(box, safe_b))
    sizes = np.array([dim.size for dim in box.dims], dtype=np.int64)

    same = np.ones(a.shape, dtype=bool)
    first_diff = np.full(a.shape, ndims, dtype=np.int64)
    for d in range(ndims):
        differs = same & (da[:, d] != db[:, d])
        first_diff = np.where(differs, d, first_diff)
        same &= ~differs

    families: List[_Family] = []

    def add(valid, spec, tag):
        if valid.any():
            families.append((valid, spec, tag))

    # Single point / full-prefix-equal interval: one box where dims up to
    # first_diff are fixed and the rest... cannot differ, so a == b - 1.
    point_valid = nonempty & (first_diff == ndims)
    add(
        point_valid,
        [(da[:, d], da[:, d]) for d in range(ndims)],
        ("P", ndims),
    )

    for delta in range(ndims):
        is_delta = nonempty & (first_diff == delta)
        # Middle: prefix fixed, dim delta strictly between (inclusive at
        # the innermost level, where there is no deeper tail), inner full.
        last = delta == ndims - 1
        mid_lo = da[:, delta] + (0 if last else 1)
        mid_hi = db[:, delta] - (0 if last else 1)
        valid = is_delta & (mid_lo <= mid_hi)
        spec = []
        for d in range(ndims):
            if d < delta:
                spec.append((da[:, d], da[:, d]))
            elif d == delta:
                spec.append((mid_lo, mid_hi))
            else:
                spec.append((np.zeros_like(a), sizes[d] - 1 + np.zeros_like(a)))
        add(valid, spec, ("M", delta))
        # A-side / B-side tails for every deeper level.
        for level in range(delta + 1, ndims):
            lo = da[:, level] + (1 if level < ndims - 1 else 0)
            valid = is_delta & (lo <= sizes[level] - 1)
            spec = []
            for d in range(ndims):
                if d < level:
                    spec.append((da[:, d], da[:, d]))
                elif d == level:
                    spec.append((lo, sizes[level] - 1 + np.zeros_like(a)))
                else:
                    spec.append(
                        (np.zeros_like(a), sizes[d] - 1 + np.zeros_like(a))
                    )
            add(valid, spec, ("A", level))
            hi = db[:, level] - (1 if level < ndims - 1 else 0)
            valid = is_delta & (hi >= 0)
            spec = []
            for d in range(ndims):
                if d < level:
                    spec.append((db[:, d], db[:, d]))
                elif d == level:
                    spec.append((np.zeros_like(a), hi))
                else:
                    spec.append(
                        (np.zeros_like(a), sizes[d] - 1 + np.zeros_like(a))
                    )
            add(valid, spec, ("B", level))
    return families, first_diff


def _dim_value_ap(dim: _LDim) -> Tuple[int, int]:
    """The dim's allowed values as ``(v0, dv)`` of an AP, else raise.

    Full dims are ``(0, 1)``.  Filtered dims must be arithmetic (the
    factorized next-level selectors usually are); arbitrary subsets
    escalate to the explicit-stream escape via the caller.
    """
    if dim.vals is None:
        return 0, 1
    vals = dim.vals
    if vals.size == 1:
        return int(vals[0]), 1
    diffs = np.diff(vals)
    if not (diffs == diffs[0]).all():
        raise SymbolicUnsupported("non-arithmetic dim filter")
    return int(vals[0]), int(diffs[0])


def _ap_count_mod(
    first: np.ndarray, step: int, cnt: np.ndarray, sigma: np.ndarray, S: int
) -> np.ndarray:
    """#terms of ``first + step * t`` (``t in [0, cnt)``) congruent to
    ``sigma`` mod ``S``; vectorized over rows with scalar step/S."""
    cnt = np.maximum(cnt, 0)
    if S == 1:
        return cnt.astype(np.int64)
    step_m = step % S
    delta = (sigma - first) % S
    if step_m == 0:
        return np.where(delta == 0, cnt, 0).astype(np.int64)
    d = math.gcd(step_m, S)
    Sd = S // d
    inv = pow(step_m // d, -1, Sd)
    ok = delta % d == 0
    t0 = (delta // d * inv) % Sd
    hit = ok & (t0 < cnt)
    return np.where(hit, (cnt - 1 - t0) // Sd + 1, 0).astype(np.int64)


def _count_sigma(
    box: _LineBox,
    families: List[_Family],
    first_diff: np.ndarray,
    sigma: np.ndarray,
    S: int,
) -> Tuple[np.ndarray, np.ndarray]:
    """Distinct lines of ``box`` congruent to ``sigma`` within families.

    Returns ``(lower, upper)`` bounds.  Families are disjoint in
    instance space, and any two are disjoint at a *known* dim: a
    boundary tail against every deeper family at its own level,
    everything else at the row's first differing digit.  When that dim
    is strided, injectivity makes the two line sets disjoint, so counts
    add; when it is free or fine, the same lines can appear in both
    (the lower bound takes a max there, the upper bound still adds).
    Fully strided boxes therefore get ``lower == upper`` exactly.  Per
    family, every contributing dimension is an AP of line ids; all but
    the longest are enumerated (padded, budgeted) and the longest is
    counted with the mod-``S`` closed form.
    """
    if not box.injective:
        raise SymbolicUnsupported("non-injective access geometry")
    rows = sigma.shape[0]
    ndims = len(box.dims)
    mid = np.zeros(rows, dtype=np.int64)
    tails: Dict[Tuple[str, int], np.ndarray] = {}
    total = np.zeros(rows, dtype=np.int64)
    L = box.line_bytes
    fine = box.fine
    for valid, spec, tag in families:
        aps: List[Tuple[np.ndarray, int, np.ndarray]] = []
        base = np.full(rows, box.lbase, dtype=np.int64)
        degenerate = np.zeros(rows, dtype=bool)
        for d, dim in enumerate(box.dims):
            lo, hi = spec[d]
            cnt = hi - lo + 1
            degenerate |= valid & (cnt <= 0)
            if dim.s == 0 and dim.b == 0:
                continue
            v0, dv = _dim_value_ap(dim)
            first_val = v0 + dv * lo
            if d == fine:
                bstep = dim.b * dv
                if bstep % L == 0:
                    aps.append(
                        (
                            (box.phi + dim.b * first_val) // L,
                            bstep // L,
                            cnt,
                        )
                    )
                elif bstep < L:
                    blk_lo = (box.phi + dim.b * first_val) // L
                    blk_hi = (
                        box.phi + dim.b * (first_val + dv * (hi - lo))
                    ) // L
                    aps.append((blk_lo, 1, blk_hi - blk_lo + 1))
                else:
                    raise SymbolicUnsupported(
                        "fine dim filter crosses lines irregularly"
                    )
            else:
                aps.append((dim.s * first_val, dim.s * dv, cnt))
        use = valid & ~degenerate
        if not use.any():
            continue
        if not aps:
            # No line-contributing dims: a single line per family.
            contrib = np.where(
                use, ((base - sigma) % S == 0) if S > 1 else 1, 0
            ).astype(np.int64)
            total += contrib
            if tag[0] in ("P", "M"):
                mid += contrib
            else:
                tails[tag] = tails.get(tag, 0) + contrib
            continue
        # Keep the AP with the largest worst-case count closed-form.
        widths = [int(np.max(np.where(use, cnt, 0))) for (_f, _s, cnt) in aps]
        closed = int(np.argmax(widths))
        enum_budget = 1
        for j, width in enumerate(widths):
            if j != closed:
                enum_budget *= max(width, 1)
        if enum_budget > _AP_ENUM_BUDGET:
            raise SymbolicUnsupported(
                f"AP enumeration budget exceeded ({enum_budget})"
            )
        offsets = base[:, None]
        combo_ok = use[:, None]
        for j, (first, step, cnt) in enumerate(aps):
            if j == closed:
                continue
            width = max(widths[j], 1)
            t = np.arange(width, dtype=np.int64)
            term = first[:, None] + step * t[None, :]
            term_ok = t[None, :] < cnt[:, None]
            offsets = (offsets[:, :, None] + term[:, None, :]).reshape(
                rows, -1
            )
            combo_ok = (combo_ok[:, :, None] & term_ok[:, None, :]).reshape(
                rows, -1
            )
        first_c, step_c, cnt_c = aps[closed]
        counts = _ap_count_mod(
            offsets + first_c[:, None],
            step_c,
            np.broadcast_to(cnt_c[:, None], offsets.shape),
            sigma[:, None],
            S,
        )
        contrib = np.where(combo_ok, counts, 0).sum(axis=1)
        total += contrib
        if tag[0] in ("P", "M"):
            mid += contrib
        else:
            tails[tag] = tails.get(tag, 0) + contrib
    # Lower bound: chain the boundary tails innermost-out.  A tail at
    # level ``l`` is disjoint from every deeper family at dim ``l``:
    # strided there -> line-disjoint, counts add; *free* there -> the
    # deeper families' lines are subsets of the tail's (same strided
    # prefix, deeper dims covered fully), so the max IS the union;
    # *fine* there -> genuine partial overlap, the max is only a bound.
    # The middle/point part combines with both chains the same way at
    # the row's first differing digit.  Rows whose assembly never hit a
    # lossy fine-level max have an exact count, so the upper bound
    # collapses onto the lower one for them.
    strided = [bool(dim.s) for dim in box.dims]
    is_fine = [bool(dim.b) and not dim.s for dim in box.dims]
    zero = np.zeros(rows, dtype=np.int64)
    acc_a = zero
    acc_b = zero
    exact = np.ones(rows, dtype=bool)
    for level in range(ndims - 1, -1, -1):
        ca = tails.get(("A", level))
        cb = tails.get(("B", level))
        if strided[level]:
            acc_a = acc_a if ca is None else ca + acc_a
            acc_b = acc_b if cb is None else cb + acc_b
        else:
            if is_fine[level]:
                if ca is not None:
                    exact &= ~((ca > 0) & (acc_a > 0))
                if cb is not None:
                    exact &= ~((cb > 0) & (acc_b > 0))
            acc_a = acc_a if ca is None else np.maximum(ca, acc_a)
            acc_b = acc_b if cb is None else np.maximum(cb, acc_b)
    delta_strided = np.array(strided + [True], dtype=bool)[
        np.minimum(first_diff, ndims)
    ]
    delta_fine = np.array(is_fine + [False], dtype=bool)[
        np.minimum(first_diff, ndims)
    ]
    lower = np.where(
        delta_strided,
        mid + acc_a + acc_b,
        np.maximum(mid, np.maximum(acc_a, acc_b)),
    )
    # Free first-differing digit: the middle family (deeper dims full)
    # contains both chains, so the max is exact unless the middle is
    # empty while both chains contribute.  Fine digit: any two nonzero
    # parts may partially overlap.
    nz = (
        (mid > 0).astype(np.int64)
        + (acc_a > 0).astype(np.int64)
        + (acc_b > 0).astype(np.int64)
    )
    lossy_free = (
        ~delta_strided & ~delta_fine & (mid == 0) & (acc_a > 0) & (acc_b > 0)
    )
    lossy_fine = delta_fine & (nz >= 2)
    exact &= ~(lossy_free | lossy_fine)
    return lower, np.where(exact, lower, total)


# ---------------------------------------------------------------------------
# Closed-form predecessor (last touch of a line before a time)
# ---------------------------------------------------------------------------


def _last_touch(
    member: _LineBox, line: np.ndarray, t: np.ndarray
) -> np.ndarray:
    """Latest time ``< t`` at which ``member`` touches ``line`` (-1 none).

    Two phases, both exact thanks to the injectivity certificate and the
    mixed-radix weight dominance: (1) greedy stride descent recovers the
    unique strided coordinates that can produce the line (or proves there
    are none); (2) the remaining per-row sub-box (free dims full, fine dim
    restricted to the block's preimage interval) is ranked against ``t``
    and the latest instance is the one at rank ``r - 1``.
    """
    if not member.injective:
        raise SymbolicUnsupported("non-injective access geometry")
    rows = line.shape[0]
    L = member.line_bytes
    fine = member.fine
    valid = np.ones(rows, dtype=bool)
    target = line - member.lbase

    order = sorted(
        (d for d, dim in enumerate(member.dims) if dim.s),
        key=lambda d: -member.dims[d].s,
    )
    # Residual line span below each strided dim (deeper strides + blocks).
    fixed_vals: Dict[int, np.ndarray] = {}
    for pos, d in enumerate(order):
        dim = member.dims[d]
        span = member.block_span()
        for d2 in order[pos + 1 :]:
            dim2 = member.dims[d2]
            values2 = dim2.values()
            if values2.size:
                span += dim2.s * int(values2[-1] - values2[0])
        vmin = 0 if dim.vals is None else int(dim.values()[0])
        shifted = target - dim.s * vmin
        v = vmin + shifted // dim.s
        rem = shifted % dim.s
        # The unique candidate leaves the residual within [0, span]; a
        # too-large residual can only be absorbed by bumping v by one when
        # the stride is tight -- impossible here because span < s.
        valid &= rem <= span
        valid &= _dim_has(dim, v)
        fixed_vals[d] = v
        target = target - dim.s * np.where(valid, v, vmin)

    # ``target`` must now be realizable as the fine block offset.
    if fine is not None:
        bdim = member.dims[fine]
        blk = target
        f_lo = -(-(blk * L - member.phi) // bdim.b)
        f_hi = ((blk + 1) * L - 1 - member.phi) // bdim.b
        valid &= f_lo <= f_hi
    else:
        valid &= target == 0
        f_lo = f_hi = None

    # Phase 2: per-row sub-box rank.  Strided dims are pinned to the
    # recovered digit, the fine dim is restricted to the block preimage
    # interval, free dims stay full.  Greedy maximization is wrong here
    # (a tight fine lower bound may require backtracking an outer free
    # digit); counting instances below ``t`` and unranking ``r - 1`` is
    # exact by the same weight-dominance argument as :func:`_rank_lt`.
    ndims = len(member.dims)
    sizes = np.ones((rows, ndims), dtype=np.int64)
    lo_idx = np.zeros((rows, ndims), dtype=np.int64)
    for d, dim in enumerate(member.dims):
        if dim.s:
            continue
        if d == fine:
            if dim.vals is None:
                lo = np.clip(f_lo, 0, dim.n)
                hi = np.clip(f_hi, -1, dim.n - 1)
            else:
                lo = np.searchsorted(dim.vals, f_lo, side="left")
                hi = np.searchsorted(dim.vals, f_hi, side="right") - 1
            nonempty = lo <= hi
            valid &= nonempty
            lo_idx[:, d] = np.where(nonempty, lo, 0)
            sizes[:, d] = np.where(nonempty, hi - lo + 1, 1)
        else:
            sizes[:, d] = dim.size
    inner = np.ones((rows, ndims), dtype=np.int64)
    for d in range(ndims - 2, -1, -1):
        inner[:, d] = inner[:, d + 1] * sizes[:, d + 1]

    rem = t - member.tbase
    count = np.zeros(rows, dtype=np.int64)
    alive = valid.copy()
    for d, dim in enumerate(member.dims):
        q = rem // dim.w
        if dim.s:
            v = fixed_vals[d]
            cnt_lt = (q > v).astype(np.int64)
            has = q == v
        elif dim.vals is None:
            pos = np.clip(q, 0, dim.n)
            cnt_lt = np.clip(pos - lo_idx[:, d], 0, sizes[:, d])
            has = (q >= lo_idx[:, d]) & (q < lo_idx[:, d] + sizes[:, d])
        else:
            pos = np.searchsorted(dim.vals, q, side="left")
            cnt_lt = np.clip(pos - lo_idx[:, d], 0, sizes[:, d])
            in_set = (pos < dim.vals.size) & (
                dim.vals[np.minimum(pos, dim.vals.size - 1)] == q
            )
            has = (
                in_set
                & (pos >= lo_idx[:, d])
                & (pos < lo_idx[:, d] + sizes[:, d])
            )
        count += np.where(alive, cnt_lt * inner[:, d], 0)
        alive &= has
        rem = rem - q * dim.w
    count += (alive & (rem > 0)).astype(np.int64)

    exists = valid & (count >= 1)
    rem2 = np.where(exists, count - 1, 0)
    tpred = np.full(rows, member.tbase, dtype=np.int64)
    for d, dim in enumerate(member.dims):
        idx, rem2 = np.divmod(rem2, inner[:, d])
        if dim.s:
            value = fixed_vals[d]
        else:
            pos = lo_idx[:, d] + idx
            if dim.vals is None:
                value = pos
            else:
                value = dim.vals[np.clip(pos, 0, dim.vals.size - 1)]
        tpred = tpred + dim.w * value
    return np.where(exists, tpred, np.int64(-1))


def _is_injective(box: _LineBox) -> bool:
    """Distinct non-free coordinates imply distinct lines.

    Classic super-increasing certificate: sorted ascending, every stride
    must exceed the total line span of everything below it (including the
    fine dim's block span).
    """
    span = box.block_span()
    strided = sorted(
        (dim for dim in box.dims if dim.s), key=lambda d: d.s
    )
    for dim in strided:
        if dim.n <= 1:
            continue
        if dim.s <= span:
            return False
        values = dim.values()
        if values.size == 0:
            return True
        span += dim.s * int(values[-1] - values[0])
    return True


# ---------------------------------------------------------------------------
# Level classification
# ---------------------------------------------------------------------------

_INF = np.int64(1) << 60


def _grid(box: _LineBox) -> np.ndarray:
    """All coordinates of the box, C-order over its dim values."""
    if not box.dims:
        return np.zeros((1, 0), dtype=np.int64)
    inner = _inner_sizes(box)
    total = inner[0] * box.dims[0].size
    out = np.empty((total, len(box.dims)), dtype=np.int64)
    for d, dim in enumerate(box.dims):
        block = np.repeat(dim.values(), inner[d])
        out[:, d] = np.tile(block, total // block.size) if block.size else 0
    return out


def _lattice_sig(box: _LineBox):
    """Members with equal signatures share the rank -> line map exactly,
    so their window rank intervals may be unioned (gap-checked)."""
    return (
        box.buffer_id,
        box.lbase,
        box.phi,
        tuple(
            (
                dim.n,
                dim.s,
                dim.b,
                None if dim.vals is None else dim.vals.tobytes(),
            )
            for dim in box.dims
        ),
    )


def _lines_at_ranks(box: _LineBox, ranks: np.ndarray) -> np.ndarray:
    """Line ids of the ``ranks``-th instances (fused unrank + lines)."""
    rem = ranks
    acc = np.full(ranks.shape, box.lbase, dtype=np.int64)
    off = np.full(ranks.shape, box.phi, dtype=np.int64)
    inner = _inner_sizes(box)
    for d, dim in enumerate(box.dims):
        idx, rem = np.divmod(rem, inner[d])
        if not dim.s and not dim.b:
            continue
        value = idx if dim.vals is None else dim.vals[idx]
        if dim.s:
            acc += dim.s * value
        if dim.b:
            off += dim.b * value
    return acc + off // box.line_bytes


def _line_range(box: _LineBox) -> Tuple[int, int]:
    """Inclusive [min, max] line ids the box can touch (coeffs are >= 0)."""
    lo = hi = box.lbase
    olo = ohi = box.phi
    for dim in box.dims:
        values = dim.values()
        if not values.size:
            continue
        v0, v1 = int(values[0]), int(values[-1])
        lo += dim.s * v0
        hi += dim.s * v1
        olo += dim.b * v0
        ohi += dim.b * v1
    L = box.line_bytes
    return lo + olo // L, hi + ohi // L


def _monotone_lines(box: _LineBox) -> bool:
    """Line ids never decrease along the box's rank (time) order.

    Stepping dim ``d`` resets every deeper dim from its last value to its
    first, so monotonicity needs each dim's minimum line increase to
    absorb the worst-case deeper drop.  Row-major walks qualify; free or
    fine dims above line-contributing ones do not.
    """
    L = box.line_bytes
    fine = box.fine
    drop = 0
    for d in range(len(box.dims) - 1, -1, -1):
        dim = box.dims[d]
        if dim.s:
            min_step = dim.s
        else:
            # Free dims repeat the deeper walk; fine steps can stay
            # within a line.  Either way the minimum increase is 0.
            min_step = 0
        if min_step < drop:
            return False
        values = dim.values()
        if not values.size:
            continue
        if d == fine:
            fmin = (box.phi + dim.b * int(values[0])) // L
            fmax = (box.phi + dim.b * int(values[-1])) // L
            drop += fmax - fmin
        else:
            drop += dim.s * int(values[-1] - values[0])
    return True


def _contiguous_lines(box: _LineBox) -> bool:
    """No step ever skips a line the deeper walk has not covered.

    Together with :func:`_monotone_lines` this makes the line image of
    any contiguous rank interval a contiguous line interval: each step of
    dim ``d`` advances at most one line past the ``[0, drop]`` range the
    deeper dims just swept.  Checked with upper bounds, so ``False`` only
    costs the closed form, never correctness.
    """
    L = box.line_bytes
    fine = box.fine
    drop = 0
    for d in range(len(box.dims) - 1, -1, -1):
        dim = box.dims[d]
        values = dim.values()
        if not values.size:
            continue
        gmax = int(np.max(np.diff(values))) if values.size > 1 else 0
        if gmax:
            if d == fine:
                if (dim.b * gmax) // L > drop:
                    return False
            elif dim.s * gmax > drop + 1:
                return False
        if d == fine:
            fmin = (box.phi + dim.b * int(values[0])) // L
            fmax = (box.phi + dim.b * int(values[-1])) // L
            drop += fmax - fmin
        else:
            drop += dim.s * int(values[-1] - values[0])
    return True


def _enumerate_windows(
    members: List[_LineBox],
    a_by: Dict[int, np.ndarray],
    b_by: Dict[int, np.ndarray],
    mask: np.ndarray,
    sigma: np.ndarray,
    s_sets: int,
) -> np.ndarray:
    """Exact per-row distinct same-set line counts by enumeration (E1).

    Only the rows selected by ``mask`` are enumerated; the summed window
    volume is budgeted, and overflow raises so the caller escapes to the
    explicit-stream evaluator instead of approximating.  A single member
    whose lines are monotone along rank order skips the sort: its kept
    subsequence per row is already sorted, so the distinct count is the
    number of run starts.
    """
    rows_u = np.flatnonzero(mask)
    n_u = rows_u.size
    sigma_u = sigma[rows_u]
    if all(
        _monotone_lines(member) and _contiguous_lines(member)
        for member in members
    ):
        # Every member's window image is a contiguous line interval, so
        # the union is a k-interval sweep with a mod-class closed form
        # per segment -- no rank enumeration at all.
        k = len(members)
        los = np.full((k, n_u), _INF, dtype=np.int64)
        his = np.full((k, n_u), -_INF, dtype=np.int64)
        for i, member in enumerate(members):
            a = a_by[id(member)][rows_u]
            b = b_by[id(member)][rows_u]
            ok = a < b
            if not ok.any():
                continue
            lo = _lines_at_ranks(member, np.where(ok, a, 0))
            hi = _lines_at_ranks(member, np.where(ok, b - 1, 0))
            los[i] = np.where(ok, lo, _INF)
            his[i] = np.where(ok, hi, -_INF)
        order = np.argsort(los, axis=0)
        los = np.take_along_axis(los, order, axis=0)
        his = np.take_along_axis(his, order, axis=0)
        cur = np.full(n_u, -_INF, dtype=np.int64)
        dist = np.zeros(n_u, dtype=np.int64)
        for i in range(k):
            valid = los[i] < _INF
            start = np.maximum(los[i], cur + 1)
            counted = (his[i] - sigma_u) // s_sets - (
                start - 1 - sigma_u
            ) // s_sets
            dist += np.where(valid & (his[i] >= start), counted, 0)
            cur = np.maximum(cur, np.where(valid, his[i], -_INF))
        return dist
    work = 0
    for member in members:
        span = b_by[id(member)][rows_u] - a_by[id(member)][rows_u]
        work += int(np.clip(span, 0, None).sum())
    if work > _ENUM_BUDGET:
        raise SymbolicUnsupported(
            f"window enumeration budget exceeded ({work})"
        )
    sortfree = len(members) == 1 and _monotone_lines(members[0])
    pairs: List[Tuple[np.ndarray, np.ndarray]] = []
    dist = np.zeros(n_u, dtype=np.int64)
    for member in members:
        a = a_by[id(member)][rows_u]
        c = np.clip(b_by[id(member)][rows_u] - a, 0, None)
        total = int(c.sum())
        if not total:
            continue
        # Hard rows of one box share most of their windows: the summed
        # span is often far larger than the global rank range they
        # cover.  Unrank each rank once over that range and bucket the
        # positions by set residue -- each row then slices only its own
        # set's positions out of its window, so the per-instance arrays
        # scale with the *kept* volume (total / s_sets), not the raw
        # window volume (the residue-split SA boxes hit this hardest).
        live = c > 0
        rmin = int(a[live].min())
        rmax = int((a + c)[live].max())
        rng = rmax - rmin
        if rng <= total:
            lines_all = _lines_at_ranks(
                member, np.arange(rmin, rmax, dtype=np.int64)
            )
            if s_sets > 1:
                order = np.argsort(
                    lines_all % s_sets, kind="stable"
                ).astype(np.int64)
                keys = (lines_all % s_sets)[order] * rng + order
                lo_i = np.searchsorted(keys, sigma_u * rng + (a - rmin))
                hi_i = np.searchsorted(
                    keys, sigma_u * rng + (a + c - rmin)
                )
                c2 = hi_i - lo_i
                row_rep = np.repeat(np.arange(n_u, dtype=np.int64), c2)
                pos = np.repeat(
                    lo_i - (np.cumsum(c2) - c2), c2
                ) + np.arange(int(c2.sum()), dtype=np.int64)
                lines = lines_all[order[pos]]
            else:
                row_rep = np.repeat(np.arange(n_u, dtype=np.int64), c)
                ranks = np.repeat(a - (np.cumsum(c) - c), c) + np.arange(
                    total, dtype=np.int64
                )
                lines = lines_all[ranks - rmin]
        else:
            row_rep = np.repeat(np.arange(n_u, dtype=np.int64), c)
            ranks = np.repeat(a - (np.cumsum(c) - c), c) + np.arange(
                total, dtype=np.int64
            )
            lines = _lines_at_ranks(member, ranks)
            if s_sets > 1:
                keep = lines % s_sets == sigma_u[row_rep]
                row_rep = row_rep[keep]
                lines = lines[keep]
        if sortfree:
            if lines.size:
                run_start = np.empty(lines.size, dtype=bool)
                run_start[0] = True
                run_start[1:] = (lines[1:] != lines[:-1]) | (
                    row_rep[1:] != row_rep[:-1]
                )
                dist += np.bincount(row_rep[run_start], minlength=n_u)
            return dist
        pairs.append((row_rep, lines))
    if not pairs:
        return dist
    # Members share one buffer, so every line falls in the buffer's own
    # line range: a per-(row, line) presence bitmap unions the members
    # with O(N) scatters instead of an O(N log N) sort.
    lo = min(_line_range(member)[0] for member in members)
    hi = max(_line_range(member)[1] for member in members)
    width = int(hi - lo + 1)
    if 0 < width and n_u * width <= _ENUM_BUDGET:
        presence = np.zeros(n_u * width, dtype=bool)
        for row_rep, lines in pairs:
            presence[row_rep * width + (lines - lo)] = True
        return presence.reshape(n_u, width).sum(axis=1, dtype=np.int64)
    keys = [
        row_rep * (np.int64(1) << 40) + lines for row_rep, lines in pairs
    ]
    unique = np.unique(np.concatenate(keys))
    counts = np.bincount(unique >> 40, minlength=n_u)
    dist[: counts.size] = counts[:n_u]
    return dist


def _sweep_intervals(
    members: List[_LineBox],
    a_by: Dict[int, np.ndarray],
    b_by: Dict[int, np.ndarray],
    sigma: np.ndarray,
    s_sets: int,
) -> np.ndarray:
    """Exact distinct same-set line counts for interval-image members.

    Every member must be monotone and contiguous, so its window ``[a,
    b)`` touches exactly the lines ``[lines(a), lines(b - 1)]``.  The
    per-row union of those k intervals is swept in sorted order with the
    mod-``S`` closed form per segment (the same sweep the enumeration
    fast path uses, vectorized over all rows at once).
    """
    rows = sigma.shape[0]
    k = len(members)
    los = np.full((k, rows), _INF, dtype=np.int64)
    his = np.full((k, rows), -_INF, dtype=np.int64)
    for i, member in enumerate(members):
        a = a_by[id(member)]
        b = b_by[id(member)]
        ok = a < b
        if not ok.any():
            continue
        los[i] = np.where(
            ok, _lines_at_ranks(member, np.where(ok, a, 0)), _INF
        )
        his[i] = np.where(
            ok, _lines_at_ranks(member, np.where(ok, b - 1, 0)), -_INF
        )
    if k > 1:
        order = np.argsort(los, axis=0)
        los = np.take_along_axis(los, order, axis=0)
        his = np.take_along_axis(his, order, axis=0)
    cur = np.full(rows, -_INF, dtype=np.int64)
    dist = np.zeros(rows, dtype=np.int64)
    for i in range(k):
        valid = los[i] < _INF
        start = np.maximum(los[i], cur + 1)
        counted = (his[i] - sigma) // s_sets - (start - 1 - sigma) // s_sets
        dist += np.where(valid & (his[i] >= start), counted, 0)
        cur = np.maximum(cur, np.where(valid, his[i], -_INF))
    return dist


def _decide_hard(
    members: List[_LineBox],
    t: np.ndarray,
    pred: np.ndarray,
    sigma: np.ndarray,
    s_sets: int,
    assoc: int,
) -> np.ndarray:
    """Miss/hit decision for instances whose window may reach ``assoc``.

    Per lattice group the window rank intervals are unioned (exact when
    they chain without gaps) and counted with the AP closed forms.
    Buffers occupy disjoint line ranges, so the reuse distance is the
    *sum* of per-buffer distinct-line counts: each buffer keeps its own
    lower/upper bound, and the enumeration fallback (E1) only touches
    the buffers whose bounds disagree (or whose window hulls had gaps)
    -- the exact buffers contribute their closed-form counts directly.
    """
    rows = t.shape[0]
    a_by: Dict[int, np.ndarray] = {}
    b_by: Dict[int, np.ndarray] = {}
    for member in members:
        a_by[id(member)] = _rank_lt(member, pred + 1)
        b_by[id(member)] = _rank_lt(member, t)

    members_by: Dict[int, List[_LineBox]] = {}
    for member in members:
        members_by.setdefault(member.buffer_id, []).append(member)

    # Buffers all of whose members walk monotone, gapless line orders
    # admit an exact count without the interval-family machinery: each
    # member's window image is one contiguous line interval, and the
    # k-interval sweep counts the union's sigma-class members in closed
    # form.  On SA hierarchies this takes the row-major boxes (the bulk
    # of a matmul's accesses) off the per-family AP path entirely.
    exact_by: Dict[int, np.ndarray] = {}
    for buffer_id, buf_members in members_by.items():
        if all(
            _monotone_lines(m) and _contiguous_lines(m)
            for m in buf_members
        ):
            exact_by[buffer_id] = _sweep_intervals(
                buf_members, a_by, b_by, sigma, s_sets
            )

    groups: Dict[object, List[_LineBox]] = {}
    for member in members:
        if member.buffer_id in exact_by:
            continue
        groups.setdefault(_lattice_sig(member), []).append(member)

    gap_by: Dict[int, np.ndarray] = {}
    for member in members:
        if member.buffer_id in exact_by:
            continue
        gap_by.setdefault(
            member.buffer_id, np.zeros(rows, dtype=bool)
        )
    by_buffer: Dict[
        int,
        List[Tuple[np.ndarray, np.ndarray, Optional[Tuple[int, bool, int]]]],
    ] = {}
    for group in groups.values():
        if len(group) == 1:
            a = a_by[id(group[0])]
            b = b_by[id(group[0])]
        else:
            a_stack = np.stack([a_by[id(m)] for m in group])
            b_stack = np.stack([b_by[id(m)] for m in group])
            empty = a_stack >= b_stack
            a_sort = np.where(empty, _INF, a_stack)
            b_sort = np.where(empty, -_INF, b_stack)
            order = np.argsort(a_sort, axis=0)
            a_sorted = np.take_along_axis(a_sort, order, axis=0)
            b_sorted = np.take_along_axis(b_sort, order, axis=0)
            cover = b_sorted[0]
            for i in range(1, len(group)):
                live = a_sorted[i] < _INF
                gap_by[group[0].buffer_id] |= live & (a_sorted[i] > cover)
                cover = np.maximum(cover, b_sorted[i])
            a = a_sort.min(axis=0)
            b = b_sort.max(axis=0)
            nonempty = a < b
            a = np.where(nonempty, a, 0)
            b = np.where(nonempty, b, 0)
        families, first_diff = _interval_families(group[0], a, b)
        count_lo, count_hi = _count_sigma(
            group[0], families, first_diff, sigma, s_sets
        )
        # Class tag for the additive lower bound: groups of one
        # (access, direction) are instance-disjoint sub-boxes (residue
        # variants, mask factors) whose distinct-line counts over-count
        # any line at most ``mult`` times, so their sum / mult is a
        # sound per-buffer distance bound that -- unlike the plain max
        # -- sees the whole access, not one residue class.
        # Only unfiltered groups qualify: value-filtered sub-boxes (mask
        # factors) can partition along free or fine dims, where many
        # instances share one line beyond what ``mult`` accounts for.
        meta: Optional[Tuple[int, bool, int]] = None
        if all(
            m.acc == group[0].acc
            and m.is_write == group[0].is_write
            and all(dim.vals is None for dim in m.dims)
            for m in group
        ):
            meta = (group[0].acc, group[0].is_write, group[0].mult)
        by_buffer.setdefault(group[0].buffer_id, []).append(
            (count_lo, count_hi, meta)
        )
    lb = np.zeros(rows, dtype=np.int64)
    ub = np.zeros(rows, dtype=np.int64)
    lb_by: Dict[int, np.ndarray] = {}
    ub_by: Dict[int, np.ndarray] = {}
    for buffer_id, dist in exact_by.items():
        lb_by[buffer_id] = dist
        ub_by[buffer_id] = dist
        lb += dist
        ub += dist
    for buffer_id, entries in by_buffer.items():
        best = np.max(np.stack([lo for lo, _hi, _meta in entries]), axis=0)
        classes: Dict[Tuple[int, bool], List[int]] = {}
        for i, (_lo, _hi, meta) in enumerate(entries):
            if meta is not None:
                classes.setdefault((meta[0], meta[1]), []).append(i)
        for idxs in classes.values():
            if len(idxs) < 2:
                continue
            mult = max(entries[i][2][2] for i in idxs)
            total = np.sum([entries[i][0] for i in idxs], axis=0)
            best = np.maximum(best, -(-total // mult))
        gap = gap_by[buffer_id]
        # A gapped hull may count instances outside the true window, so
        # the buffer's lower bound is forfeited there (upper stays: the
        # hull covers the window).
        lb_by[buffer_id] = np.where(gap, 0, best)
        ub_by[buffer_id] = np.sum(
            [hi for _lo, hi, _meta in entries], axis=0
        )
        lb += lb_by[buffer_id]
        ub += ub_by[buffer_id]

    miss = lb >= assoc
    undecided = ~miss & (ub >= assoc)
    if undecided.any():
        und_idx = np.flatnonzero(undecided)
        dist = np.zeros(und_idx.size, dtype=np.int64)
        for buffer_id, buf_members in members_by.items():
            lo_u = lb_by[buffer_id][und_idx]
            hi_u = ub_by[buffer_id][und_idx]
            ambiguous = lo_u < hi_u
            dist += np.where(ambiguous, 0, lo_u)
            if ambiguous.any():
                sel = np.zeros(rows, dtype=bool)
                sel[und_idx[ambiguous]] = True
                dist[ambiguous] += _enumerate_windows(
                    buf_members, a_by, b_by, sel, sigma, s_sets
                )
        miss[und_idx] = dist >= assoc
    return miss


def _lcm(a: int, b: int) -> int:
    return a // math.gcd(a, b) * b


def _compress_plan(
    box: _LineBox, live: List[_LineBox], s_sets: int
) -> Optional[Tuple[int, int, int, bool]]:
    """Slab-translation certificate for ``box``; ``None`` = evaluate all.

    Returns ``(x_r, dx, qp, aligned)``: shifting an instance by ``dx``
    steps of the box's outermost dim advances time by ``qp`` outer-loop
    slabs and shifts every live same-nest member's lines by an integer
    amount that is *equal* across members of the box's own buffer.  A
    window confined to the last ``qp`` slabs then maps 1-1 onto the
    translated window (same predecessor gap, same per-buffer
    distinct-line sets up to a uniform shift), so cold / shortcut
    decisions replicate from the representative slab block ``[x_r,
    x_r + dx)`` to every later one.  ``aligned`` further certifies that
    all member line shifts are congruent mod the set count, making the
    per-set counts -- and hence *hard*-row decisions -- replicable too.

    Members whose support is confined to the first slabs (cold-only
    fetch boxes) or that only miss the first slabs (contiguous suffix
    filters) are admitted by pushing the representative block past their
    irregular region instead of rejecting the nest.  Other nests are
    wholly earlier/later in time and cannot intersect a confined window,
    so they are ignored.
    """
    tau = box.outer_w
    if tau <= 0 or not box.dims:
        return None
    top = box.dims[0]
    if top.vals is not None or top.w % tau or top.w // tau < 1:
        return None
    p_c = top.w // tau
    L = box.line_bytes
    nb = box.nest_base
    members: List[Tuple[_LineBox, int]] = []
    q_struct = 1
    edge = 0  # slabs at the nest start with non-translatable structure
    for m in live:
        if m.nest_base != nb:
            continue
        suffix_from = 0
        ok = bool(m.dims) and m.outer_w == tau
        if ok:
            mtop = m.dims[0]
            if mtop.vals is not None:
                vals = mtop.vals
                contiguous = vals.size and vals[-1] == mtop.n - 1 and (
                    vals.size == vals[-1] - vals[0] + 1
                )
                if contiguous:
                    suffix_from = int(vals[0])
                else:
                    ok = False
            if ok and (mtop.w % tau or mtop.w // tau < 1):
                ok = False
            if ok:
                p_m = mtop.w // tau
                if (mtop.s and mtop.b) or (mtop.s * L) % p_m:
                    ok = False
        if not ok:
            if m is box:
                return None
            # A member outside the certificate is harmless if its whole
            # time support fits in the leading edge: confined windows of
            # slabs past the edge never intersect it.
            e_m = -(-(m.tmax + 1 - nb) // tau)
            if e_m > _MAX_RESIDUE_PERIOD * 4:
                return None
            edge = max(edge, e_m)
            continue
        if suffix_from:
            edge = max(edge, (suffix_from + 1) * p_m)
        bps = (mtop.s * L) // p_m + mtop.b  # bytes moved per slab
        # Line-exact translation: qp * bps must be a whole number of
        # lines and qp a whole number of member top-digit steps.
        q_struct = _lcm(q_struct, p_m)
        q_struct = _lcm(q_struct, L // math.gcd(L, bps % L))
        if q_struct > _MAX_RESIDUE_PERIOD:
            return None
        members.append((m, bps))
    bps_c = next(b for m, b in members if m is box)
    for m, bps in members:
        # Predecessors come from same-buffer members; their translation
        # must shift the classified lines by exactly the same amount.
        if m.buffer_id == box.buffer_id and bps != bps_c:
            return None

    def feasible(qp: int) -> Optional[Tuple[int, int]]:
        if qp % p_c:
            return None
        dx = qp // p_c
        x_r = max(dx, -(-(edge + qp) // p_c))
        if dx < 1 or top.n < x_r + dx + 1:
            return None
        return x_r, dx

    def is_aligned(qp: int) -> bool:
        dl_c = qp * bps_c // L
        return all(
            (qp * bps // L - dl_c) % s_sets == 0 for _m, bps in members
        )

    plan = feasible(q_struct)
    if plan is None:
        return None
    if not is_aligned(q_struct):
        # Scale the translation until every member's line shift is
        # congruent mod the set count: hard rows then replicate too.
        scale = 1
        dl_c = q_struct * bps_c // L
        for _m, bps in members:
            diff = (q_struct * bps // L - dl_c) % s_sets
            if diff:
                scale = _lcm(scale, s_sets // math.gcd(s_sets, diff))
        scaled = feasible(q_struct * scale)
        if scaled is not None:
            x_r, dx = scaled
            return x_r, dx, q_struct * scale, True
        x_r, dx = plan
        return x_r, dx, q_struct, False
    x_r, dx = plan
    return x_r, dx, q_struct, True


def _eval_rows(
    box: _LineBox,
    same_buffer: List[_LineBox],
    live: List[_LineBox],
    coords: np.ndarray,
    s_sets: int,
    assoc: int,
    conf_qp: Optional[int] = None,
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Optional[np.ndarray]]:
    """Classify a row subset of ``box``: (cold, miss, hard, confined).

    ``confined`` (requested via ``conf_qp``) marks rows whose reuse
    window lies entirely within the last ``conf_qp`` outer-loop slabs of
    the nest -- the translation-safety predicate of the class compressor.
    Cold rows are never confined (their window reaches before the nest).
    """
    t = box.times(coords)
    line = box.lines(coords)
    sigma = line % s_sets
    pred = np.full(t.shape[0], -1, dtype=np.int64)
    for member in same_buffer:
        np.maximum(pred, _last_touch(member, line, t), out=pred)
    cold = pred < 0
    # A window of time length d contains at most d - 1 accesses, so the
    # reuse distance cannot reach the associativity.
    hard = ~cold & (t - pred - 1 >= assoc)
    miss = np.zeros(t.shape[0], dtype=bool)
    if hard.any():
        miss[np.flatnonzero(hard)] = _decide_hard(
            live, t[hard], pred[hard], sigma[hard], s_sets, assoc
        )
    conf = None
    if conf_qp is not None:
        tau = box.outer_w
        nb = box.nest_base
        conf = pred >= nb + ((t - nb) // tau - conf_qp) * tau
    return cold, miss, hard, conf


def _classify_level(
    boxes: List[_LineBox],
    config: CacheLevelConfig,
    deadline: Optional[Deadline],
) -> Tuple[int, int, int, List[np.ndarray]]:
    """Classify one level; returns (accesses, cold, cap_conflict, masks).

    ``masks[i]`` is the fetch mask (cold | capacity-conflict) of
    ``boxes[i]`` in C-order over its dim values.  Boxes holding a
    slab-translation certificate are *compressed*: only the leading
    boundary block, one representative block, and the rows whose
    decisions provably cannot replicate (unconfined windows; hard rows
    under set-misaligned shifts) are evaluated instance-wise, and the
    representative decisions are tiled across the remaining slabs.
    """
    s_sets = config.num_sets
    assoc = config.associativity
    live = [box for box in boxes if box.size]
    by_buffer: Dict[int, List[_LineBox]] = {}
    for box in live:
        by_buffer.setdefault(box.buffer_id, []).append(box)
    accesses = 0
    cold_total = 0
    cap_total = 0
    masks: List[np.ndarray] = []
    for box in boxes:
        size = box.size
        if not size:
            masks.append(np.zeros(0, dtype=bool))
            continue
        faults.fire("cm.chunk")
        _check_deadline(deadline, "cm.symbolic")
        accesses += size
        grid = _grid(box)
        same_buffer = by_buffer[box.buffer_id]
        plan = _compress_plan(box, live, s_sets)
        if plan is None:
            cold, miss, _hard, _conf = _eval_rows(
                box, same_buffer, live, grid, s_sets, assoc
            )
        else:
            x_r, dx, qp, aligned = plan
            n_top = box.dims[0].n
            inner0 = size // n_top
            cold = np.zeros(size, dtype=bool)
            miss = np.zeros(size, dtype=bool)
            # Boundary blocks [0, x_r) and the representative block
            # [x_r, x_r + dx), evaluated instance-wise with the
            # confinement predicate.
            n_a = (x_r + dx) * inner0
            cold_a, miss_a, hard_a, conf_a = _eval_rows(
                box, same_buffer, live, grid[:n_a], s_sets, assoc, conf_qp=qp
            )
            cold[:n_a] = cold_a
            miss[:n_a] = miss_a
            rep = slice(x_r * inner0, n_a)
            copyable = conf_a[rep]
            if not aligned:
                copyable = copyable & ~hard_a[rep]
            # Tile the representative decisions across the later slabs
            # (chain x -> x_r + ((x - x_r) mod dx)), then overwrite the
            # non-replicable rows with explicit evaluations.
            xs = np.arange(x_r + dx, n_top)
            src = x_r + ((xs - x_r) % dx)
            cold_v = cold.reshape(n_top, inner0)
            miss_v = miss.reshape(n_top, inner0)
            cold_v[xs] = cold_v[src]
            miss_v[xs] = miss_v[src]
            if not copyable.all():
                pend_v = (~copyable).reshape(dx, inner0)
                chunks = []
                for x in range(x_r + dx, n_top):
                    rest = np.flatnonzero(pend_v[(x - x_r) % dx])
                    if rest.size:
                        chunks.append(x * inner0 + rest)
                if chunks:
                    idx_b = np.concatenate(chunks)
                    cold_b, miss_b, _hb, _cb = _eval_rows(
                        box, same_buffer, live, grid[idx_b], s_sets, assoc
                    )
                    cold[idx_b] = cold_b
                    miss[idx_b] = miss_b
        cold_total += int(cold.sum())
        cap_total += int(miss.sum())
        masks.append(cold | miss)
    return accesses, cold_total, cap_total, masks


# ---------------------------------------------------------------------------
# Next-level propagation (write-through) and the explicit-stream escape
# ---------------------------------------------------------------------------


class _MaskNotSeparable(Exception):
    """A fetch mask does not factor into per-dim selections."""


def _mask_factors(grid_mask: np.ndarray) -> List[Tuple[np.ndarray, ...]]:
    """Partition a boolean nd-mask into per-dim outer-product factors.

    Greedy along the leading axis: rows sharing the same inner pattern
    form one selection, and each distinct pattern factors recursively.
    A mask that *is* an outer product yields exactly one factor; masks
    with a bounded number of leading-row patterns (a misaligned buffer's
    first row sharing its leading line with the previous nest, say)
    yield one factor per pattern.  Raises :class:`_MaskNotSeparable`
    past :data:`_MAX_MASK_FACTORS`.
    """
    shape = grid_mask.shape
    if not grid_mask.any():
        return []
    if grid_mask.all():
        return [tuple(np.ones(n, dtype=bool) for n in shape)]
    if len(shape) == 1:
        return [(grid_mask,)]
    flat = grid_mask.reshape(shape[0], -1)
    any_rows = flat.any(axis=1)
    rows = np.flatnonzero(any_rows)
    sub = flat[rows]
    # First-appearance pattern scan: the factor cap bounds the number of
    # distinct row patterns, so comparing each row against at most
    # ``_MAX_MASK_FACTORS`` representatives (pre-filtered by popcount)
    # beats sorting every row as a giant structured key.
    sums = sub.sum(axis=1)
    reps: List[int] = []
    inverse = np.empty(rows.size, dtype=np.int64)
    for i in range(rows.size):
        for pattern, r in enumerate(reps):
            if sums[i] == sums[r] and np.array_equal(sub[i], sub[r]):
                inverse[i] = pattern
                break
        else:
            if len(reps) >= _MAX_MASK_FACTORS:
                raise _MaskNotSeparable()
            inverse[i] = len(reps)
            reps.append(i)
    factors: List[Tuple[np.ndarray, ...]] = []
    for pattern, r in enumerate(reps):
        sel0 = np.zeros(shape[0], dtype=bool)
        sel0[rows[inverse == pattern]] = True
        for sub_factor in _mask_factors(sub[r].reshape(shape[1:])):
            factors.append((sel0,) + sub_factor)
            if len(factors) > _MAX_MASK_FACTORS:
                raise _MaskNotSeparable()
    return factors


def _filter_box(
    box: _LineBox, mask: np.ndarray, slot: int, is_write: bool
) -> List[_LineBox]:
    """The sub-boxes of instances selected by ``mask`` at the next level.

    Times double and take ``slot`` (0 fetch / 1 forwarded write) so the
    fetch emitted by a missing store precedes its forwarded write, as in
    the trace engines.  Raises :class:`_MaskNotSeparable` when the mask
    does not partition into a few per-dim outer-product selections.
    """
    if not mask.any():
        return []
    shape = tuple(dim.size for dim in box.dims)
    out: List[_LineBox] = []
    for factor in _mask_factors(mask.reshape(shape)):
        dims = []
        for dim, sel in zip(box.dims, factor):
            vals = dim.vals
            if not sel.all():
                vals = dim.values()[sel]
            dims.append(
                _LDim(w=dim.w * 2, n=dim.n, s=dim.s, b=dim.b, vals=vals)
            )
        out.append(
            replace(
                box,
                is_write=is_write,
                tbase=box.tbase * 2 + slot,
                dims=tuple(dims),
                nest_base=box.nest_base * 2,
                outer_w=box.outer_w * 2,
            )
        )
    return out


def _next_level_boxes(
    boxes: List[_LineBox], masks: List[np.ndarray]
) -> List[_LineBox]:
    out: List[_LineBox] = []
    for box, mask in zip(boxes, masks):
        if not box.size:
            continue
        out.extend(_filter_box(box, mask, slot=0, is_write=False))
        if box.is_write:
            out.extend(
                _filter_box(
                    box,
                    np.ones(box.size, dtype=bool),
                    slot=1,
                    is_write=True,
                )
            )
    return out


def _sorted_stream(
    chunks_t: List[np.ndarray],
    chunks_l: List[np.ndarray],
    chunks_w: List[np.ndarray],
) -> Tuple[np.ndarray, np.ndarray]:
    if not chunks_t:
        return np.zeros(0, dtype=np.int64), np.zeros(0, dtype=bool)
    t = np.concatenate(chunks_t)
    order = np.argsort(t, kind="stable")
    lines = np.concatenate(chunks_l)[order]
    writes = np.concatenate(chunks_w)[order]
    return np.ascontiguousarray(lines), np.ascontiguousarray(writes)


def _stream_from_boxes(
    boxes: List[_LineBox],
) -> Tuple[np.ndarray, np.ndarray]:
    """The level's input stream, explicitly (escape E2, pre-classification)."""
    ts, ls, ws = [], [], []
    for box in boxes:
        if not box.size:
            continue
        coords = _grid(box)
        ts.append(box.times(coords))
        ls.append(box.lines(coords))
        ws.append(np.full(box.size, box.is_write, dtype=bool))
    return _sorted_stream(ts, ls, ws)


def _stream_from_emissions(
    boxes: List[_LineBox], masks: List[np.ndarray]
) -> Tuple[np.ndarray, np.ndarray]:
    """The next level's stream from this level's fetch masks (escape E2)."""
    ts, ls, ws = [], [], []
    for box, mask in zip(boxes, masks):
        if not box.size:
            continue
        coords = _grid(box)
        t = box.times(coords)
        line = box.lines(coords)
        if mask.any():
            ts.append(2 * t[mask])
            ls.append(line[mask])
            ws.append(np.zeros(int(mask.sum()), dtype=bool))
        if box.is_write:
            ts.append(2 * t + 1)
            ls.append(line)
            ws.append(np.ones(box.size, dtype=bool))
    return _sorted_stream(ts, ls, ws)


# ---------------------------------------------------------------------------
# Public entry point
# ---------------------------------------------------------------------------


def symbolic_cm(
    module: Module,
    ops: Optional[Sequence[Op]] = None,
    hierarchy: Optional[CacheHierarchy] = None,
    threads: int = 1,
    parallel: bool = False,
    deadline: Optional[Deadline] = None,
) -> CacheModelResult:
    """Run PolyUFC-CM symbolically, without materializing the trace.

    Matches :func:`repro.cache.static_model.polyufc_cm` bit-for-bit where
    the quasi-affine class applies.  Units outside the class raise
    :class:`SymbolicUnsupported` *during extraction* so the caller can
    fall back to the trace engines; after extraction the engine never
    raises it -- internal escapes re-evaluate the affected levels exactly
    on a synthesized stream with the vectorized trace kernel.
    """
    if hierarchy is None:
        raise ValueError("symbolic_cm requires a cache hierarchy")
    if threads < 1:
        raise ValueError(f"threads must be >= 1, got {threads}")
    faults.fire("cm.engine")
    _check_deadline(deadline, "cm.engine")
    unit = _extract_unit(module, ops)
    line_bytes = hierarchy.line_bytes
    bases = np.zeros(max(len(unit.buffers), 1), dtype=np.int64)
    cursor = 0
    for index, buffer in enumerate(unit.buffers):
        bases[index] = cursor
        cursor += -(-buffer.size_bytes // line_bytes) * line_bytes
    boxes: List[_LineBox] = []
    for box in unit.boxes:
        elem_bytes = unit.buffers[box.buffer_id].dtype.size_bytes
        boxes.extend(_normalize_box(box, line_bytes, bases, elem_bytes))
    divider = threads if (parallel and threads > 1) else 1
    levels = hierarchy.levels
    stats: List[LevelModelStats] = []
    stream: Optional[np.ndarray] = None
    stream_writes: Optional[np.ndarray] = None
    for index, config in enumerate(levels):
        faults.fire("cm.chunk")
        _check_deadline(deadline, f"cm.level:{config.name}")
        shared_level = index == len(levels) - 1
        if stream is None:
            try:
                accesses, cold, cap, masks = _classify_level(
                    boxes, config, deadline
                )
            except SymbolicUnsupported:
                # Escape E2a: the symbolic form broke down at this level;
                # synthesize its input stream and continue exactly with
                # the vectorized trace kernel.
                stream, stream_writes = _stream_from_boxes(boxes)
            else:
                if index < len(levels) - 1:
                    try:
                        boxes = _next_level_boxes(boxes, masks)
                    except _MaskNotSeparable:
                        # Escape E2b: the level classified fine but the
                        # fetch masks don't factor; stream the emissions.
                        next_stream = _stream_from_emissions(boxes, masks)
                        stream, stream_writes = next_stream
                stats.append(
                    LevelModelStats(
                        config.name,
                        accesses=accesses,
                        cold_misses=cold,
                        capacity_conflict_misses=_divide(
                            cap, divider if shared_level else 1
                        ),
                    )
                )
                continue
        accesses = len(stream)
        cold, cap, stream, stream_writes = _fast_model_level(
            stream, stream_writes, config, deadline=deadline
        )
        stats.append(
            LevelModelStats(
                config.name,
                accesses=accesses,
                cold_misses=cold,
                capacity_conflict_misses=_divide(
                    cap, divider if shared_level else 1
                ),
            )
        )
    return CacheModelResult(
        tuple(stats), line_bytes, unit.total_accesses, threads
    )
