"""Memory-trace generation from affine IR.

The trace is the numeric evaluation of the polyhedral access relation
composed with the schedule: statement instances are visited in schedule
(program) order and each instance emits its accesses in body order.  The
innermost loop of every statement is vectorized with numpy, so trace
generation is fast enough for the simulated problem sizes.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

import numpy as np

from repro.ir.core import Buffer, IRError, Module, Op
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.ir.dialects.linalg import LinalgOp
from repro.ir.dialects.polyufc import SetUncoreCapOp
from repro.isllite import LinExpr
from repro.runtime import Deadline, faults


class TraceBudgetExceeded(IRError):
    """The module generates more accesses than the configured cap."""


class _TraceTruncated(Exception):
    """Internal: stop tracing and keep the prefix (truncate mode)."""


#: Accesses between cooperative deadline checkpoints while tracing.
_TRACE_CHECK_EVERY = 4096


@dataclass
class AccessTrace:
    """A flat memory trace.

    ``buffer_ids[i]`` indexes into ``buffers``; ``offsets[i]`` is the element
    offset within that buffer; ``is_write[i]`` marks stores.
    """

    buffers: List[Buffer]
    buffer_ids: np.ndarray
    offsets: np.ndarray
    is_write: np.ndarray
    #: Memoized ``line_ids`` results keyed by ``line_bytes`` -- SA and FA
    #: hierarchies share the line geometry, so re-deriving the array per
    #: level/hierarchy is pure waste.
    _line_cache: Dict[int, np.ndarray] = field(
        default_factory=dict, repr=False, compare=False
    )
    #: Per-access byte offsets within their buffer (independent of the
    #: line size), computed once and shared by every ``line_ids`` call.
    _byte_offsets: Optional[np.ndarray] = field(
        default=None, repr=False, compare=False
    )

    def __len__(self) -> int:
        return len(self.buffer_ids)

    def buffer_bases(self, line_bytes: int) -> np.ndarray:
        """Per-buffer base byte addresses for a line-aligned layout."""
        bases = np.zeros(len(self.buffers), dtype=np.int64)
        cursor = 0
        for index, buffer in enumerate(self.buffers):
            bases[index] = cursor
            lines = -(-buffer.size_bytes // line_bytes)  # ceil
            cursor += lines * line_bytes
        return bases

    def line_ids(self, line_bytes: int) -> np.ndarray:
        """Global cache-line ids: buffers laid out line-aligned end to end.

        Results are memoized per ``line_bytes`` and the line-size-agnostic
        within-buffer byte offsets are hoisted out, so multi-level and
        multi-hierarchy evaluations of the same trace do the address
        arithmetic exactly once.
        """
        cached = self._line_cache.get(line_bytes)
        if cached is not None:
            return cached
        if self._byte_offsets is None:
            element_sizes = np.array(
                [b.dtype.size_bytes for b in self.buffers], dtype=np.int64
            )
            if len(self.buffers):
                self._byte_offsets = (
                    self.offsets * element_sizes[self.buffer_ids]
                )
            else:
                self._byte_offsets = np.zeros(0, dtype=np.int64)
        bases = self.buffer_bases(line_bytes)
        if len(self.buffers):
            byte_addr = bases[self.buffer_ids] + self._byte_offsets
        else:
            byte_addr = self._byte_offsets
        ids = byte_addr // line_bytes
        self._line_cache[line_bytes] = ids
        return ids

    def footprint_bytes(self) -> int:
        """Total bytes of distinct elements touched.

        One vectorized unique over a combined ``(buffer_id, offset)`` key;
        per-buffer distinct counts fall out of the unique keys' ids.
        """
        if not len(self):
            return 0
        span = int(self.offsets.max()) + 1 if len(self) else 1
        key = self.buffer_ids.astype(np.int64) * span + self.offsets
        unique_ids = np.unique(key) // span
        counts = np.bincount(unique_ids, minlength=len(self.buffers))
        sizes = np.array(
            [b.dtype.size_bytes for b in self.buffers], dtype=np.int64
        )
        return int(counts @ sizes)


def generate_trace(
    module: Module,
    ops: Optional[Sequence[Op]] = None,
    max_accesses: int = 60_000_000,
    truncate: bool = False,
    deadline: Optional[Deadline] = None,
) -> AccessTrace:
    """Trace the given top-level ops (default: the whole module).

    With ``truncate=True`` an exhausted access budget (or an expired
    ``deadline``) stops tracing and returns the prefix generated so far
    instead of raising -- the sampling mode the degradation ladder's
    approximate rung runs on.  Without it, budget exhaustion raises
    :class:`TraceBudgetExceeded` and deadline expiry raises
    :class:`repro.runtime.DeadlineExceeded`, both at chunk granularity.
    """
    faults.fire("cm.trace")
    if deadline is not None and not truncate:
        deadline.check("cm.trace")
    generator = _TraceGenerator(
        module, max_accesses, truncate=truncate, deadline=deadline
    )
    try:
        for op in ops if ops is not None else module.ops:
            generator.visit_top(op)
    except _TraceTruncated:
        pass
    return generator.finish()


class _TraceGenerator:
    def __init__(
        self,
        module: Module,
        max_accesses: int,
        truncate: bool = False,
        deadline: Optional[Deadline] = None,
    ):
        self.module = module
        self.max_accesses = max_accesses
        self.truncate = truncate
        self.deadline = deadline
        self._until_check = _TRACE_CHECK_EVERY
        self.buffers: List[Buffer] = []
        self.buffer_index: Dict[str, int] = {}
        self.chunks_ids: List[np.ndarray] = []
        self.chunks_offsets: List[np.ndarray] = []
        self.chunks_write: List[np.ndarray] = []
        # Scalar accesses buffer into plain lists and convert in one go
        # (one three-element array per access costs more than the access).
        self.scalar_ids: List[int] = []
        self.scalar_offsets: List[int] = []
        self.scalar_write: List[bool] = []
        self.count = 0

    # -- helpers -----------------------------------------------------------

    def _buffer_id(self, buffer: Buffer) -> int:
        index = self.buffer_index.get(buffer.name)
        if index is None:
            index = len(self.buffers)
            self.buffer_index[buffer.name] = index
            self.buffers.append(buffer)
        return index

    def _charge(self, count: int) -> None:
        self.count += count
        self._until_check -= count
        if self._until_check <= 0:
            self._until_check = _TRACE_CHECK_EVERY
            if self.deadline is not None and self.deadline.expired():
                if self.truncate:
                    raise _TraceTruncated()
                self.deadline.check("cm.trace")
        if self.count > self.max_accesses:
            if self.truncate:
                raise _TraceTruncated()
            raise TraceBudgetExceeded(
                f"trace exceeds {self.max_accesses} accesses; "
                "shrink the problem size or raise max_accesses"
            )

    # -- walking -----------------------------------------------------------

    def visit_top(self, op: Op) -> None:
        if isinstance(op, AffineForOp):
            self._run_loop(op, dict(self.module.params))
        elif isinstance(op, (SetUncoreCapOp, arith.ConstantOp)):
            pass
        elif isinstance(op, LinalgOp):
            raise IRError(
                f"trace generation needs affine IR; lower {op!r} first"
            )
        else:
            raise IRError(f"cannot trace top-level op {op!r}")

    def _run_loop(self, loop: AffineForOp, env: Dict[str, int]) -> None:
        chain = self._rect_chain(loop, env)
        if chain is not None:
            self._run_rect_subtree(chain, env)
            return
        lower, upper = loop.eval_bounds(env)
        for iv in range(lower, upper, loop.step):
            env[loop.iv_name] = iv
            for op in loop.body.ops:
                if isinstance(op, AffineForOp):
                    self._run_loop(op, env)
                elif isinstance(op, (AffineLoadOp, AffineStoreOp)):
                    self._emit_scalar(op, env)
        env.pop(loop.iv_name, None)

    @staticmethod
    def _rect_chain(loop: AffineForOp, env: Dict[str, int]):
        """A perfectly-nested, rectangular-under-env subtree, or None.

        Every loop's bounds must only use names already bound in ``env``
        (so the whole subtree is a dense grid given the current outer
        iteration) and the leaf body must contain no further loops.  Such a
        subtree is traced with a single vectorized emission.
        """
        bound = set(env)
        chain = []
        current = loop
        while True:
            for expr in current.lowers + current.uppers:
                if not expr.names() <= bound:
                    return None
            chain.append(current)
            body = current.body.ops
            if any(isinstance(op, AffineForOp) for op in body):
                if len(body) == 1 and isinstance(body[0], AffineForOp):
                    current = body[0]
                    continue
                return None
            return chain

    def _run_rect_subtree(self, chain, env: Dict[str, int]) -> None:
        lows = []
        extents = []
        steps = []
        for loop in chain:
            lower, upper = loop.eval_bounds(env)
            span = max(0, (upper - lower + loop.step - 1) // loop.step)
            lows.append(lower)
            extents.append(span)
            steps.append(loop.step)
        total = 1
        for extent in extents:
            total *= extent
        if total == 0:
            return
        accesses = [
            op
            for op in chain[-1].body.ops
            if isinstance(op, (AffineLoadOp, AffineStoreOp))
        ]
        if not accesses:
            return
        emit_total = total
        if self.truncate:
            # Partial emission: clamp this chunk to the remaining budget so
            # the prefix trace still covers vectorized (rect-traced)
            # kernels instead of dropping the whole chunk.
            budget_left = self.max_accesses - self.count
            emit_total = min(total, max(0, budget_left // len(accesses)))
            if emit_total == 0:
                raise _TraceTruncated()
        self._charge(emit_total * len(accesses))

        # iv value of chain dim d at flat iteration n:
        #   lows[d] + steps[d] * ((n // inner_d) % extents[d])
        inner_sizes = [1] * len(chain)
        for d in range(len(chain) - 2, -1, -1):
            inner_sizes[d] = inner_sizes[d + 1] * extents[d + 1]
        iv_names = [loop.iv_name for loop in chain]
        iv_cache: Dict[int, np.ndarray] = {}

        def iv_values(d: int) -> np.ndarray:
            cached = iv_cache.get(d)
            if cached is None:
                if emit_total == total:
                    pattern = (
                        lows[d]
                        + steps[d] * np.arange(extents[d], dtype=np.int64)
                    )
                    cached = np.tile(
                        np.repeat(pattern, inner_sizes[d]),
                        total // (extents[d] * inner_sizes[d]),
                    )
                else:
                    # Truncated chunk: evaluate the flat-index formula
                    # directly for the emitted prefix.
                    flat = np.arange(emit_total, dtype=np.int64)
                    cached = lows[d] + steps[d] * (
                        (flat // inner_sizes[d]) % extents[d]
                    )
                iv_cache[d] = cached
            return cached

        ids = np.empty((emit_total, len(accesses)), dtype=np.int32)
        offsets = np.empty((emit_total, len(accesses)), dtype=np.int64)
        writes = np.empty((emit_total, len(accesses)), dtype=bool)
        for column, op in enumerate(accesses):
            buffer = op.buffer
            ids[:, column] = self._buffer_id(buffer)
            writes[:, column] = isinstance(op, AffineStoreOp)
            base = 0
            coeffs = [0] * len(chain)
            for expr, stride in zip(op.indices, buffer.strides()):
                partial = expr.partial(env)
                base += partial.const * stride
                leftover = set(partial.names())
                for d, name in enumerate(iv_names):
                    coeff = partial.coeff(name)
                    if coeff:
                        coeffs[d] += coeff * stride
                        leftover.discard(name)
                if leftover:
                    raise IRError(
                        f"subscript {expr!r} uses unbound names "
                        f"{sorted(leftover)}"
                    )
            column_offsets = np.full(emit_total, base, dtype=np.int64)
            for d, coeff in enumerate(coeffs):
                if coeff:
                    column_offsets += coeff * iv_values(d)
            offsets[:, column] = column_offsets
        self._flush_scalars()  # keep program order ahead of this chunk
        self.chunks_ids.append(ids.reshape(-1))
        self.chunks_offsets.append(offsets.reshape(-1))
        self.chunks_write.append(writes.reshape(-1))
        if emit_total < total:
            raise _TraceTruncated()

    def _emit_scalar(self, op, env: Dict[str, int]) -> None:
        self._charge(1)
        buffer = op.buffer
        offset = 0
        for expr, stride in zip(op.indices, buffer.strides()):
            offset += expr.evaluate_int(env) * stride
        self.scalar_ids.append(self._buffer_id(buffer))
        self.scalar_offsets.append(offset)
        self.scalar_write.append(isinstance(op, AffineStoreOp))

    def _flush_scalars(self) -> None:
        if not self.scalar_ids:
            return
        self.chunks_ids.append(np.array(self.scalar_ids, dtype=np.int32))
        self.chunks_offsets.append(
            np.array(self.scalar_offsets, dtype=np.int64)
        )
        self.chunks_write.append(np.array(self.scalar_write, dtype=bool))
        self.scalar_ids = []
        self.scalar_offsets = []
        self.scalar_write = []

    def finish(self) -> AccessTrace:
        self._flush_scalars()
        if self.chunks_ids:
            ids = np.concatenate(self.chunks_ids)
            offsets = np.concatenate(self.chunks_offsets)
            writes = np.concatenate(self.chunks_write)
        else:
            ids = np.empty(0, dtype=np.int32)
            offsets = np.empty(0, dtype=np.int64)
            writes = np.empty(0, dtype=bool)
        return AccessTrace(self.buffers, ids, offsets, writes)
