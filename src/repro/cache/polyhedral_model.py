"""The exact polyhedral formulation of PolyUFC-CM (paper Sec. IV-A/B).

:func:`repro.cache.static_model.polyufc_cm` evaluates the cache model over
the scheduled access stream, which scales to the benchmark sizes.  This
module implements the *set-and-map formulation the paper actually writes
down*, using the integer set library:

* the **schedule map** ``S`` sends statement instances to 2d+1 schedule
  vectors (Sec. II-B),
* the **access map** ``A_ci`` sends statement instances to
  ``(line, set)`` pairs, where ``line = floor(offset*e / l)`` is expressed
  with the standard quasi-affine existential and ``set = line mod N_ci``
  with a second one,
* **COLDMISS** = per-line lexicographically-minimal accesses
  (``lexmin(A^-1 . S) . S^-1`` in the paper's notation): their cardinality
  counts the compulsory misses,
* the **backward reuse distance** of an access is the number of distinct
  lines mapped to the same set that were touched since the previous access
  to its line (the ``F_ci / B_ci`` reuse-pair construction); a distance of
  at least the associativity ``k_ci`` is a capacity/conflict miss.

Everything here is *exact* and evaluated by explicit manipulation of the
polyhedral objects, so it is only practical for small kernels; the test
suite uses it as the ground truth that the scalable streaming evaluation in
``static_model`` must reproduce (and the two agree bit-for-bit on every
kernel both can handle).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.config import CacheHierarchy, CacheLevelConfig
from repro.isllite import (
    BasicMap,
    BasicSet,
    Constraint,
    LinExpr,
    MapSpace,
    Space,
    count_points,
    ge,
    le,
    lexmin,
)
from repro.poly.scop import SCoP, Statement


@dataclass(frozen=True)
class ScheduledAccess:
    """One access of one statement, with its polyhedral artifacts."""

    statement: Statement
    access_index: int
    schedule_map: BasicMap  # domain -> 2d+1 schedule vector
    line_map: BasicMap  # domain -> (line,) for a given cache line size
    set_map: BasicMap  # domain -> (set,) for a given level
    is_write: bool


def schedule_map_for(statement: Statement, depth: int,
                     access_position: int) -> BasicMap:
    """The 2d+1-style schedule: interleave syntactic constants and ivs.

    The final coordinate is the access position inside the statement body
    so that accesses of one instance are totally ordered as well.
    """
    dims = statement.loop_names
    prefix = statement.schedule_prefix
    out_exprs: Dict[str, LinExpr] = {}
    out_names: List[str] = []
    for level in range(len(prefix)):
        name = f"c{level}"
        out_names.append(name)
        out_exprs[name] = LinExpr.cst(prefix[level])
        if level < len(dims):
            iv_out = f"s{level}"
            out_names.append(iv_out)
            out_exprs[iv_out] = LinExpr.var(dims[level])
    out_exprs["acc"] = LinExpr.cst(access_position)
    return BasicMap.from_exprs(
        dims, out_exprs, params=statement.domain.space.params,
        extra=statement.domain.constraints,
    )


def line_map_for(
    statement: Statement,
    access_index: int,
    element_offsets: Dict[str, int],
    line_bytes: int,
) -> BasicMap:
    """``domain -> (line,)`` with the floor-division existential.

    ``line_bytes * line <= byte_offset <= line_bytes * line + line_bytes-1``
    encodes ``line = floor(byte_offset / line_bytes)`` exactly.
    """
    access = statement.accesses[access_index]
    buffer = access.buffer
    byte_expr = LinExpr.cst(
        element_offsets[buffer.name]
    )
    for expr, stride in zip(access.indices, buffer.strides()):
        byte_expr = byte_expr + expr * (stride * buffer.dtype.size_bytes)
    line = LinExpr.var("line")
    constraints = [
        ge(byte_expr, line * line_bytes),
        le(byte_expr, line * line_bytes + (line_bytes - 1)),
    ]
    space = MapSpace(
        statement.loop_names, ("line",), statement.domain.space.params
    )
    return BasicMap(
        space,
        list(statement.domain.constraints) + constraints,
    )


def set_map_for(line_map: BasicMap, num_sets: int) -> BasicMap:
    """``domain -> (set,)`` where ``set = line mod num_sets``.

    Encoded with the existential quotient ``q``:
    ``line = num_sets*q + set`` and ``0 <= set < num_sets``.
    """
    in_dims = line_map.space.in_dims
    params = line_map.space.params
    wrapped = line_map.wrap()  # dims = in_dims + (line,)
    line = LinExpr.var("line")
    cset = LinExpr.var("cset")
    quotient = LinExpr.var("q")
    space = Space(
        wrapped.space.dims + ("cset", "q"), params
    )
    with_mod = BasicSet(
        space,
        list(wrapped.constraints)
        + [
            Constraint(line - cset - quotient * num_sets, is_eq=True),
            ge(cset, 0),
            le(cset, num_sets - 1),
        ],
    )
    projected = with_mod.project_out(["line", "q"])
    return BasicMap(
        MapSpace(in_dims, ("cset",), params),
        projected.constraints,
    )


@dataclass(frozen=True)
class ExactLevelCounts:
    """Exact miss counts for one cache level."""

    name: str
    accesses: int
    cold_misses: int
    capacity_conflict_misses: int

    @property
    def misses(self) -> int:
        return self.cold_misses + self.capacity_conflict_misses


class ExactPolyhedralCM:
    """Exact evaluation of the Sec. IV formulation for one SCoP.

    The constructor materializes schedule/line/set maps for every access;
    :meth:`count_level` evaluates the reuse-distance classification of one
    cache level exactly over the polyhedral objects.  Only the first-level
    analysis is offered (the paper's deeper levels need the write-through
    stream, which is not a polyhedral object -- the streaming evaluation in
    ``static_model`` handles that part).
    """

    def __init__(self, scop: SCoP, line_bytes: int):
        self.scop = scop
        self.line_bytes = line_bytes
        self.element_offsets = self._layout()
        self.params = dict(scop.params)
        max_depth = max(
            (len(s.schedule_prefix) for s in scop.statements), default=0
        )
        self.accesses: List[ScheduledAccess] = []
        for statement in scop.statements:
            for index, access in enumerate(statement.accesses):
                line_map = line_map_for(
                    statement, index, self.element_offsets, line_bytes
                )
                self.accesses.append(
                    ScheduledAccess(
                        statement=statement,
                        access_index=index,
                        schedule_map=schedule_map_for(
                            statement, max_depth, index
                        ),
                        line_map=line_map,
                        set_map=line_map,  # specialized per level later
                        is_write=access.is_write,
                    )
                )

    def _layout(self) -> Dict[str, int]:
        """Line-aligned element offsets of every buffer (bytes)."""
        offsets: Dict[str, int] = {}
        cursor = 0
        seen = set()
        for statement in self.scop.statements:
            for access in statement.accesses:
                buffer = access.buffer
                if buffer.name in seen:
                    continue
                seen.add(buffer.name)
                offsets[buffer.name] = cursor
                lines = -(-buffer.size_bytes // self.line_bytes)
                cursor += lines * self.line_bytes
        return offsets

    # -- evaluated artifacts -------------------------------------------------

    def scheduled_stream(self) -> List[Tuple[Tuple[int, ...], int, bool]]:
        """All accesses as (schedule_vector, line, is_write), sorted.

        This is the evaluation of ``S^-1`` composed with the access maps:
        the polyhedral objects are enumerated and ordered by their schedule
        vectors.  It is the bridge between the symbolic formulation and the
        classification below.
        """
        entries: List[Tuple[Tuple[int, ...], int, bool]] = []
        for access in self.accesses:
            domain_points = list(
                access.statement.domain.enumerate_points(self.params)
            )
            for point in domain_points:
                schedule = access.schedule_map.image_of(
                    point, self.params
                ).sample()
                line_img = access.line_map.image_of(
                    point, self.params
                ).sample()
                assert schedule is not None and line_img is not None
                entries.append((schedule, line_img[0], access.is_write))
        entries.sort(key=lambda e: e[0])
        return entries

    def cold_misses(self) -> int:
        """|COLDMISS|: distinct lines over all access-map ranges.

        Evaluates ``lexmin(A^-1 . S) . S^-1`` by counting the union of the
        line-map ranges (each line's lexicographically first access is
        unique, so the count of first accesses equals the count of distinct
        lines).
        """
        union_range = None
        for access in self.accesses:
            fixed = access.line_map.fix_params(self.params)
            rng = fixed.range().to_set()
            union_range = rng if union_range is None else union_range.union(rng)
        if union_range is None:
            return 0
        return int(count_points(union_range))

    def first_access_schedule(self, line: int) -> Optional[Tuple[int, ...]]:
        """The COLDMISS schedule vector of one line (lexmin over accesses)."""
        best: Optional[Tuple[int, ...]] = None
        for access in self.accesses:
            restricted = access.line_map.fix_params(self.params)
            preimage_cons = [
                c.partial({"line": line}) for c in restricted.constraints
            ]
            domain = BasicSet(
                Space(access.statement.loop_names), preimage_cons
            )
            point = lexmin(domain, {})
            if point is None:
                continue
            schedule = access.schedule_map.image_of(
                point, self.params
            ).sample()
            candidates = [schedule]
            # the lexmin domain point is not necessarily the lexmin schedule
            # point for non-identity schedules; scan all preimage points
            # (exact-but-small by design)
            for other in domain.enumerate_points():
                img = access.schedule_map.image_of(other, self.params).sample()
                candidates.append(img)
            local = min(candidates)
            if best is None or local < best:
                best = local
        return best

    def count_level(self, config: CacheLevelConfig) -> ExactLevelCounts:
        """Exact cold + capacity/conflict classification of one level.

        For each access, the backward reuse distance is the cardinality of
        the set of distinct same-set lines touched since the previous
        access to the same line (the ``RD_ci`` relation); a distance of at
        least ``k_ci`` is a capacity/conflict miss.
        """
        stream = self.scheduled_stream()
        num_sets = config.num_sets
        assoc = config.associativity
        last_seen: Dict[int, int] = {}
        cold = 0
        cap_conflict = 0
        for position, (_sched, line, _write) in enumerate(stream):
            previous = last_seen.get(line)
            if previous is None:
                cold += 1
            else:
                set_index = line % num_sets
                intervening = {
                    other_line
                    for (_s, other_line, _w) in stream[previous + 1 : position]
                    if other_line % num_sets == set_index
                    and other_line != line
                }
                if len(intervening) >= assoc:
                    cap_conflict += 1
            last_seen[line] = position
        return ExactLevelCounts(
            config.name, len(stream), cold, cap_conflict
        )


def exact_first_level_counts(
    scop: SCoP, hierarchy: CacheHierarchy
) -> ExactLevelCounts:
    """Convenience: exact L1 counts for a SCoP."""
    model = ExactPolyhedralCM(scop, hierarchy.line_bytes)
    return model.count_level(hierarchy.levels[0])
