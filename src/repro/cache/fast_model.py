"""Vectorized (array-at-a-time) evaluation of the PolyUFC-CM level model.

:func:`repro.cache.static_model._model_level` walks the access stream one
element at a time and maintains per-set LRU stacks in Python lists -- an
O(assoc) list walk per access that dominates the compile time attributed
to PolyUFC-CM (paper Tab. IV).  This module computes the *same* cold /
capacity-conflict classification for every access at once with NumPy.

The backward reuse distance of an access ``i`` (number of distinct
same-set lines touched since the previous access ``p`` to its line) obeys
a counting identity over the set's collapsed subsequence::

    distance(i) = #{ j : p < j < i, prev(j) <= p }

an access ``j`` inside the window introduces a *new* distinct line exactly
when its own previous occurrence ``prev(j)`` falls at or before ``p``.
The engine evaluates that identity in bulk through a filtering cascade,
cheapest rule first, so the (dominant) trivially-classified accesses never
reach the expensive counting machinery:

1. **Per-set grouping** -- one packed-key sort (``set << B | time``, int32
   when the ranges fit) groups the stream into contiguous per-set
   subsequences in program order.  NumPy's stable argsort is a mergesort,
   so packing plus a plain value sort is several times faster.
2. **Run collapsing** -- consecutive same-line accesses inside a set have
   distance zero: guaranteed hits, removed before any further analysis
   (windows keep exactly the same distinct-line population).
3. **Conflict-free shortcut** -- when every set's total distinct-line
   population fits its ways, capacity/conflict misses cannot exist and
   the level reduces to cold-miss counting.
4. **Short-window rule** -- ``distance(i) <= i - p - 1``, so a window
   shorter than the associativity is a guaranteed hit.
5. **Cold lower bound** -- first-ever accesses inside the window are
   always "new", so a prefix-sum of cold flags confirms misses whose
   window already contains ``assoc`` cold accesses.
6. **Chunked offline counting** -- remaining hard accesses count
   first-in-window elements over 32-wide chunks: edge chunks are masked
   gathers, interior chunks run in batched gather/compare/sum rounds with
   early termination once a count reaches ``assoc``; queries that survive
   :data:`_ROUND_LIMIT` rounds (huge hit-bound windows) escalate to
   :func:`_prefix_count`, a radix-8 Fenwick-style offline prefix counter
   that is O(log m) per query regardless of window length.

The write-through next-level stream (miss fetch, then the forwarded write
for stores, in program order) is materialized with a cumulative-sum
scatter, so the whole hierarchy is evaluated without Python-level
per-access work.  The engine is bit-for-bit equivalent to the reference
loop (asserted by the randomized suite in ``tests/cache/test_fast_model.py``
and by the exact polyhedral model on small kernels) -- it changes
evaluation speed, not the Sec. IV model semantics.
"""

from __future__ import annotations

from typing import Optional, Tuple

import numpy as np

from repro.cache.config import CacheLevelConfig
from repro.runtime import Deadline, check as _check_deadline, faults

# Chunk width of the offline counting (stage 6).
_CHUNK = 32

# Block width of the brute-force base case of ``le_rank``.
_BASE_BLOCK = 32

# Interior-chunk rounds before a hard query escalates to prefix counting.
_ROUND_LIMIT = 64

# Queries whose interior exceeds this many chunks skip the rounds loop and
# go straight to prefix counting: a hit-bound query never terminates
# early, so scanning more than this many chunks is guaranteed wasted work
# whenever the query turns out to be a hit.
_PREFIX_DIRECT = 4 * _ROUND_LIMIT


def le_rank(values: np.ndarray) -> np.ndarray:
    """``r[i] = #{ j < i : values[j] <= values[i] }`` for the whole array.

    Offline dominance counting via a bottom-up merge tree: every ordered
    pair ``(j, i)`` with ``j < i`` lands exactly once in a (left block,
    right block) sibling pair, where the contribution of all left elements
    to each right query is a batched ``searchsorted`` into the sorted left
    block.  Blocks are made globally comparable by offsetting each pair's
    values into disjoint ranges so one flat ``searchsorted`` serves every
    block at a level.  O(n log^2 n) total work, O(log n) NumPy passes.
    """
    values = np.ascontiguousarray(values, dtype=np.int64)
    n = values.size
    if n == 0:
        return np.zeros(0, dtype=np.int64)
    pad_value = int(values.max()) + 1
    base = _BASE_BLOCK
    blocks = 1
    while blocks * base < n:
        blocks *= 2
    padded_len = blocks * base
    work = np.full(padded_len, pad_value, dtype=np.int64)
    work[:n] = values
    rank = np.zeros(padded_len, dtype=np.int64)

    # Base case: brute-force pairwise comparison inside each base block.
    rows = work.reshape(-1, base)
    below = np.tril(np.ones((base, base), dtype=bool), -1)
    pairwise = rows[:, None, :] <= rows[:, :, None]  # [p, i, j]: w[j] <= w[i]
    rank += (pairwise & below).sum(axis=2, dtype=np.int64).reshape(-1)

    size = base
    while size < padded_len:
        pairs = work.reshape(-1, 2 * size)
        num_pairs = pairs.shape[0]
        left_sorted = np.sort(pairs[:, :size], axis=1)
        queries = pairs[:, size:]
        offsets = np.arange(num_pairs, dtype=np.int64) * np.int64(pad_value + 1)
        flat_left = (left_sorted + offsets[:, None]).ravel()
        flat_queries = (queries + offsets[:, None]).ravel()
        counts = np.searchsorted(flat_left, flat_queries, side="right")
        counts -= np.repeat(
            np.arange(num_pairs, dtype=np.int64) * size, size
        )
        rank.reshape(-1, 2 * size)[:, size:] += counts.reshape(num_pairs, size)
        size *= 2
    return rank[:n]


def _empty_level() -> Tuple[int, int, np.ndarray, np.ndarray]:
    return 0, 0, np.empty(0, dtype=np.int64), np.empty(0, dtype=bool)


def _packed_sort(major: np.ndarray, width: int, bits: int) -> np.ndarray:
    """Sort ``major`` stably by value, returning the order as positions.

    Packs ``major[i] << bits | i`` into one integer per element (int32
    when the packed range fits, int64 otherwise) and value-sorts; the low
    bits of the sorted keys are the stable order.  Ties broken by
    position, i.e. exactly a stable argsort, but running on NumPy's fast
    scalar sort instead of its mergesort-based stable argsort.
    """
    n = major.size
    if (int(width) << bits) | (n - 1) <= np.iinfo(np.int32).max:
        key = (major.astype(np.int32) << np.int32(bits)) | np.arange(
            n, dtype=np.int32
        )
    else:
        key = (major.astype(np.int64) << np.int64(bits)) | np.arange(
            n, dtype=np.int64
        )
    key.sort()
    order = key & ((1 << bits) - 1)
    return order


def _prev_occurrence(kept_lines: np.ndarray) -> np.ndarray:
    """Previous same-line occurrence index (-1 if none), via one key sort."""
    m = kept_lines.size
    bits = int(m - 1).bit_length() if m > 1 else 1
    max_line = int(kept_lines.max()) if m else 0
    if (max_line << bits) | (m - 1) <= np.iinfo(np.int32).max:
        key = (kept_lines.astype(np.int32) << np.int32(bits)) | np.arange(
            m, dtype=np.int32
        )
    else:
        key = (kept_lines.astype(np.int64) << np.int64(bits)) | np.arange(
            m, dtype=np.int64
        )
    key.sort()
    idx = (key & ((1 << bits) - 1)).astype(np.int64)
    sorted_lines = key >> bits
    prev_idx = np.full(m, -1, dtype=np.int64)
    if m > 1:
        same = sorted_lines[1:] == sorted_lines[:-1]
        prev_idx[idx[1:][same]] = idx[:-1][same]
    return prev_idx


#: Interior-chunk rounds between cooperative checkpoints (stage 6a).
_ROUNDS_PER_CHECK = 8


def _count_hard_queries(
    prev_pos: np.ndarray,
    hard_idx: np.ndarray,
    hard_gp: np.ndarray,
    hard_p: np.ndarray,
    assoc: int,
    deadline: Optional[Deadline] = None,
) -> Tuple[np.ndarray, np.ndarray]:
    """First-in-window counts for the hard queries (stage 6a).

    For each query ``i`` with previous occurrence at global kept index
    ``gp`` and block-local position ``p``, counts elements ``j`` in
    ``(gp, i)`` with ``prev_pos[j] <= p``.  Edge chunks are counted with
    masked 32-wide gathers; interior chunks in batched rounds (one
    32-lane gather + compare + sum per round over the still-active
    queries -- throughput-bound vector work on three cache lines per
    query, which beats per-chunk binary searches by a wide margin),
    terminating a query early once its count reaches ``assoc`` -- the
    capped-stack rule needs no exact distance beyond that, and on
    miss-dense windows nearly every query dies within a round or two.
    Returns ``(counts, pending)`` where ``pending`` indexes queries still
    unresolved after :data:`_ROUND_LIMIT` rounds (their counts are
    partial); the caller finishes those with the O(log m)-per-query
    prefix counting.
    """
    m = prev_pos.size
    num_queries = hard_idx.size
    counts = np.zeros(num_queries, dtype=np.int64)
    chunk = _CHUNK
    padded = -(-m // chunk) * chunk
    # Keep the working copy (and the query thresholds) in the narrowest
    # dtype that fits: every gather round streams Q x 32 values, so width
    # is bandwidth.  A row-reshaped view turns per-chunk access into one
    # contiguous row gather -- no (Q, 32) index materialization.
    dtype = np.int32 if m + 2 <= np.iinfo(np.int32).max else np.int64
    sentinel = dtype(m + 2)
    work = np.full(padded, sentinel, dtype=dtype)
    work[:m] = prev_pos
    work2d = work.reshape(-1, chunk)
    hp = hard_p.astype(dtype)

    first_chunk = (hard_gp >> 5) + 1  # chunks strictly after gp's chunk
    last_chunk = hard_idx >> 5  # chunk containing the query itself
    lane = np.arange(chunk, dtype=np.int64)

    same_chunk = (hard_gp >> 5) == last_chunk
    # Edge handling: when gp and i share one chunk the whole window is a
    # masked row gather; otherwise count gp's partial chunk and i's
    # partial chunk, leaving full chunks [first_chunk, last_chunk) to the
    # rounds loop.
    shared = np.flatnonzero(same_chunk)
    if shared.size:
        rows = work2d[hard_gp[shared] >> 5]
        gpos = ((hard_gp[shared] >> 5) << 5)[:, None] + lane[None, :]
        valid = (gpos > hard_gp[shared, None]) & (
            gpos < hard_idx[shared, None]
        )
        counts[shared] = np.sum(
            (rows <= hp[shared, None]) & valid, axis=1, dtype=np.int64
        )
    split = np.flatnonzero(~same_chunk)
    if split.size:
        rows = work2d[hard_gp[split] >> 5]
        gpos = ((hard_gp[split] >> 5) << 5)[:, None] + lane[None, :]
        valid = gpos > hard_gp[split, None]
        counts[split] = np.sum(
            (rows <= hp[split, None]) & valid, axis=1, dtype=np.int64
        )
        rows = work2d[last_chunk[split]]
        gpos = (last_chunk[split] << 5)[:, None] + lane[None, :]
        valid = gpos < hard_idx[split, None]
        counts[split] += np.sum(
            (rows <= hp[split, None]) & valid, axis=1, dtype=np.int64
        )

    mid = np.maximum(last_chunk - first_chunk, 0)
    mid[same_chunk] = 0
    cursor = first_chunk.copy()
    active = np.flatnonzero((mid > 0) & (counts < assoc))
    for round_index in range(_ROUND_LIMIT):
        if not active.size:
            break
        if round_index % _ROUNDS_PER_CHECK == 0:
            faults.fire("cm.chunk")
            _check_deadline(deadline, "cm.chunk")
        counts[active] += np.sum(
            work2d[cursor[active]] <= hp[active, None],
            axis=1,
            dtype=np.int64,
        )
        cursor[active] += 1
        still = (cursor[active] < last_chunk[active]) & (
            counts[active] < assoc
        )
        active = active[still]
    return counts, active


def _prefix_count(
    w: np.ndarray,
    gi: np.ndarray,
    wq: np.ndarray,
    deadline: Optional[Deadline] = None,
) -> np.ndarray:
    """``#{ j < gi[q] : w[j] <= wq[q] }`` for every query ``q`` (stage 6b).

    Offline Fenwick-style counting in radix-8: the prefix ``[0, gi)``
    decomposes into the trailing partial 32-chunk (a masked gather) plus
    at most seven aligned segments per level of geometrically growing
    segment size (32 * 8^k).  Each level is one ``np.sort`` over its
    segments and one flat batched ``searchsorted`` over every
    (query, segment) pair, so the work per query is O(log m) regardless
    of the window length -- this is what keeps huge reuse windows (long
    streaming phases, fully-associative levels) from degenerating.
    """
    m = w.size
    counts = np.zeros(gi.size, dtype=np.int64)
    lane = np.arange(_CHUNK, dtype=np.int64)
    base = (gi >> 5) << 5
    idx = base[:, None] + lane[None, :]
    valid = idx < gi[:, None]
    vals = w[np.minimum(idx, m - 1)]
    counts += np.sum((vals <= wq[:, None]) & valid, axis=1, dtype=np.int64)

    chunks = gi >> 5  # whole 32-chunks in each query's prefix
    sentinel = np.int64(2 * m + 3)
    stride = sentinel + 2
    max_chunks = int(chunks.max())
    k = 0
    while (max_chunks >> (3 * k)) > 0:
        _check_deadline(deadline, "cm.chunk")
        level_units = chunks >> (3 * k)
        digit = level_units & 7
        seg_len = _CHUNK << (3 * k)
        padded = -(-m // seg_len) * seg_len
        work = np.full(padded, sentinel, dtype=np.int64)
        work[:m] = w
        level_sorted = np.sort(work.reshape(-1, seg_len), axis=1)
        nseg = level_sorted.shape[0]
        flat = (
            level_sorted
            + (np.arange(nseg, dtype=np.int64) * stride)[:, None]
        ).ravel()
        qsel = np.flatnonzero(digit > 0)
        if qsel.size:
            d = digit[qsel]
            first_seg = (level_units[qsel] >> 3) << 3
            total = int(d.sum())
            starts = np.cumsum(d) - d
            qq = np.repeat(qsel, d)
            sidx = first_seg.repeat(d) + (
                np.arange(total, dtype=np.int64) - starts.repeat(d)
            )
            found = np.searchsorted(flat, sidx * stride + wq[qq], "right")
            found -= sidx * seg_len
            counts[qsel] += np.add.reduceat(found, starts)
        k += 1
    return counts


def model_level(
    lines: np.ndarray,
    writes: np.ndarray,
    config: CacheLevelConfig,
    deadline: Optional[Deadline] = None,
) -> Tuple[int, int, np.ndarray, np.ndarray]:
    """One write-through level, vectorized.

    Returns ``(cold, capacity_conflict, next_lines, next_writes)`` with the
    identical counters and identically ordered next-level stream as the
    reference loop in :mod:`repro.cache.static_model`.  The filtering
    cascade checkpoints ``deadline`` (and the ``cm.chunk`` fault site) at
    its stage boundaries and inside the chunked counting rounds, mirroring
    the reference engine's cooperative interruption points.
    """
    lines = np.ascontiguousarray(lines, dtype=np.int64)
    writes = np.ascontiguousarray(writes, dtype=bool)
    n = lines.size
    if n == 0:
        return _empty_level()
    num_sets = config.num_sets
    assoc = config.associativity

    # Stage 1: group the stream per cache set (program order kept).
    if num_sets > 1:
        bits = int(n - 1).bit_length() if n > 1 else 1
        times = _packed_sort(lines % num_sets, num_sets - 1, bits)
        grouped = lines[times]
        grouped_sets = grouped % num_sets
        new_block = np.empty(n, dtype=bool)
        new_block[0] = True
        np.not_equal(grouped_sets[1:], grouped_sets[:-1], out=new_block[1:])
    else:
        times = None
        grouped = lines
        new_block = np.zeros(n, dtype=bool)
        new_block[0] = True

    # Stage 2: collapse runs of the same line inside a set (distance 0).
    keep = np.empty(n, dtype=bool)
    keep[0] = True
    np.not_equal(grouped[1:], grouped[:-1], out=keep[1:])
    keep |= new_block
    kept_idx = np.flatnonzero(keep)
    kept_lines = grouped[kept_idx]
    m = kept_idx.size

    kept_new_block = new_block[kept_idx]
    block_id = np.cumsum(kept_new_block) - 1
    block_start = np.flatnonzero(kept_new_block)[block_id]
    pos = np.arange(m, dtype=np.int64) - block_start

    # Stage 3: previous occurrence (a line's set never changes, so the
    # previous occurrence always lies in the same block).
    faults.fire("cm.chunk")
    _check_deadline(deadline, "cm.chunk")
    prev_idx = _prev_occurrence(kept_lines)
    cold_mask = prev_idx < 0
    cold = int(cold_mask.sum())
    prev_pos = np.where(cold_mask, np.int64(-1), pos[prev_idx])

    # Conflict-free shortcut: if every set's distinct-line population fits
    # its ways, no reuse distance can reach the associativity.
    distinct_per_set = np.bincount(
        kept_lines[cold_mask] % num_sets, minlength=1
    )
    if int(distinct_per_set.max()) <= assoc:
        miss_kept = cold_mask
        cap_conflict = 0
    else:
        # Stage 4: short windows are guaranteed hits.
        window = pos - prev_pos - 1
        undecided = np.flatnonzero((~cold_mask) & (window >= assoc))

        # Stage 5: enough cold accesses inside the window confirm a miss
        # (every cold access is first-in-window wherever it appears).
        cum_cold = np.cumsum(cold_mask)
        und_gp = prev_idx[undecided]
        colds_inside = cum_cold[undecided - 1] - cum_cold[und_gp]
        confirmed = colds_inside >= assoc
        hard = undecided[~confirmed]

        miss_kept = cold_mask.copy()
        miss_kept[undecided[confirmed]] = True
        if hard.size:
            faults.fire("cm.chunk")
            _check_deadline(deadline, "cm.chunk")
            hard_gp = prev_idx[hard]
            hard_p = prev_pos[hard]
            counts = np.zeros(hard.size, dtype=np.int64)
            # Route very wide windows straight to prefix counting; scan
            # the rest chunk-by-chunk (with early termination), escalating
            # whatever survives the round limit.
            interior = (hard >> 5) - (hard_gp >> 5) - 1
            narrow = np.flatnonzero(interior <= _PREFIX_DIRECT)
            to_prefix = np.flatnonzero(interior > _PREFIX_DIRECT)
            if narrow.size:
                narrow_counts, pending = _count_hard_queries(
                    prev_pos,
                    hard[narrow],
                    hard_gp[narrow],
                    hard_p[narrow],
                    assoc,
                    deadline=deadline,
                )
                counts[narrow] = narrow_counts
                if pending.size:
                    to_prefix = np.concatenate((to_prefix, narrow[pending]))
            if to_prefix.size:
                # Count over the whole prefix instead.  With
                # w(j) = block_start(j) + prev_pos(j) + 1 every in-block
                # element before the window start qualifies trivially and
                # cross-block elements contribute exactly block_start(i),
                # so distance(i) = #{j < i : w(j) <= w(i)} - w(i).
                w = block_start + prev_pos + 1
                wq = (
                    block_start[hard[to_prefix]] + hard_p[to_prefix] + 1
                )
                counts[to_prefix] = (
                    _prefix_count(w, hard[to_prefix], wq, deadline=deadline)
                    - wq
                )
            miss_kept[hard[counts >= assoc]] = True
        cap_conflict = int(miss_kept.sum()) - cold

    # Scatter misses back to program order (collapsed accesses never miss).
    missed = np.zeros(n, dtype=bool)
    if times is not None:
        missed[times[kept_idx[miss_kept]]] = True
    else:
        missed[kept_idx[miss_kept]] = True

    # Write-through next-level stream: fetch (read) per miss, then the
    # forwarded write for stores, in access order.
    emit = missed.astype(np.int32) + writes
    slot = np.cumsum(emit, dtype=np.int64) - emit
    total = int(slot[-1] + emit[-1])
    next_lines = np.empty(total, dtype=np.int64)
    next_writes = np.empty(total, dtype=bool)
    fetch_slots = slot[missed]
    next_lines[fetch_slots] = lines[missed]
    next_writes[fetch_slots] = False
    write_slots = slot[writes] + missed[writes]
    next_lines[write_slots] = lines[writes]
    next_writes[write_slots] = True
    return cold, cap_conflict, next_lines, next_writes
