"""Cuttlefish-style online adaptive uncore controller.

The static PolyUFC cap is a *compile-time* decision; this module supplies
its production counterpart: an online controller that *seeds* each kernel's
uncore frequency from the service-provided static cap and then hill-climbs
per control interval on simulated RAPL/counter feedback -- memory
boundedness, DRAM traffic, and instant package power.  The climb minimizes
the per-kernel EDP density ``power * full_time**2`` (proportional to the
kernel's EDP at that frequency), the same objective ``polyufc_search``
optimizes analytically.

Costs are modelled honestly:

* every frequency move pays the platform's driver-write overhead at idle
  power, exactly as ``run_capped_sequence`` charges cap changes;
* a probe that made things worse must *revert* (a second paid move);
* converged kernels still re-probe periodically (``settle_intervals``), the
  price a trust-nothing online controller pays on steady traces.

Learned per-kernel frequencies persist across occurrences within an
:class:`AdaptiveController`, so a phase-change trace pays the climb once
per distinct kernel, not once per occurrence.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.execution import (
    KernelWorkload,
    RunResult,
    compute_time_s,
    instant_power_w,
    memory_time_s,
    uncore_time_s,
)
from repro.hw.governor import SequenceResult, exhaustion_warning
from repro.hw.platform import PlatformSpec


@dataclass(frozen=True)
class AdaptiveConfig:
    """Online controller parameters.

    ``step_ghz`` matches the platform cap grid so the climb lands on the
    same frequencies ``polyufc_search`` can select.  ``explore_margin`` is
    the relative score improvement a probe must show to be kept -- below
    it the move is judged noise and reverted.  ``settle_intervals`` is how
    long a converged kernel holds its frequency before re-probing.
    """

    interval_s: float = 200e-6
    step_ghz: float = 0.1
    explore_margin: float = 0.005
    settle_intervals: int = 50
    high_boundedness: float = 0.15
    start_fraction: float = 0.7
    max_intervals: int = 2_000_000


@dataclass
class AdaptiveController:
    """Per-kernel learned frequency state, persistent across a trace.

    Seeding priority for a kernel occurrence: previously *learned*
    frequency (feedback beats any prior) > the service's static PolyUFC
    cap > ``start_fraction * f_max``.
    """

    platform: PlatformSpec
    config: AdaptiveConfig = AdaptiveConfig()
    learned: Dict[str, float] = field(default_factory=dict)

    def seed_freq(
        self, workload: KernelWorkload, cap_ghz: Optional[float]
    ) -> float:
        uncore = self.platform.uncore
        if workload.name in self.learned:
            return uncore.clamp(self.learned[workload.name])
        if cap_ghz is not None:
            return uncore.clamp(cap_ghz)
        return uncore.clamp(self.config.start_fraction * uncore.f_max_ghz)

    def remember(self, workload: KernelWorkload, freq_ghz: float) -> None:
        self.learned[workload.name] = freq_ghz


def run_adaptive_sequence(
    platform: PlatformSpec,
    items: Sequence[Tuple[KernelWorkload, Optional[float]]],
    config: AdaptiveConfig = AdaptiveConfig(),
    prefetch: bool = True,
    controller: Optional[AdaptiveController] = None,
) -> SequenceResult:
    """Run kernels under the adaptive controller.

    ``items`` pairs each kernel with its static cap (``None`` = no cap
    known, e.g. a cold service miss), like ``run_capped_sequence``.  Pass a
    shared ``controller`` to persist learned frequencies across calls.
    """
    ctl = controller or AdaptiveController(platform, config)
    uncore = platform.uncore
    runs: List[RunResult] = []
    total_time = 0.0
    total_energy = 0.0
    switches = 0
    warnings: List[str] = []
    intervals = 0
    current: Optional[float] = None
    for index, (workload, cap) in enumerate(items):
        if warnings:
            break
        kernel_time = 0.0
        kernel_energy = 0.0
        # -- seed from the static cap / learned state, paying the driver
        # write if the frequency actually moves (run_capped_sequence
        # charges the identical cost for a cap change).
        freq = ctl.seed_freq(workload, cap)
        if current is None or abs(freq - current) > 1e-9:
            switches += 1
            overhead = platform.cap_overhead_s
            idle_power = platform.p_constant_w + platform.uncore_power_w(
                freq, 0.0
            )
            kernel_time += overhead
            kernel_energy += idle_power * overhead
        current = freq

        # -- hill-climb state for this kernel occurrence
        base_freq = freq
        base_score: Optional[float] = None
        probing = False
        direction = 0
        failed_directions = 0
        settle = 0
        interval_left = config.interval_s
        score_weighted = 0.0
        interval_elapsed = 0.0
        progress = 0.0
        while progress < 1.0:
            intervals += 1
            if intervals > config.max_intervals:
                warnings.append(exhaustion_warning(
                    config.max_intervals, workload.name,
                    index, len(items), progress,
                ))
                break
            t_compute = compute_time_s(platform, workload)
            t_memory = memory_time_s(platform, workload, freq, prefetch)
            full_time = max(t_compute, t_memory) + platform.overlap_rho * min(
                t_compute, t_memory
            )
            power = instant_power_w(
                platform, workload, freq, t_compute, t_memory, full_time
            )
            # EDP density: minimizing power * T^2 at fixed work minimizes
            # the kernel's EDP -- the controller's "counter feedback" is
            # instant power (RAPL) and the time model (cycles/traffic).
            score = power * full_time * full_time
            remaining = (1.0 - progress) * full_time
            slice_s = min(interval_left, remaining)
            progress += slice_s / full_time if full_time else 1.0
            kernel_time += slice_s
            kernel_energy += power * slice_s
            score_weighted += score * slice_s
            interval_elapsed += slice_s
            interval_left -= slice_s
            if interval_left > 1e-12:
                continue
            # -- interval boundary: one controller decision
            measured = (
                score_weighted / interval_elapsed if interval_elapsed else 0.0
            )
            interval_left = config.interval_s
            score_weighted = 0.0
            interval_elapsed = 0.0
            if settle > 0:
                settle -= 1
                if settle == 0:
                    base_score = None  # stale after holding; re-measure
                continue
            if direction == 0:
                # initial probe direction from memory boundedness: a
                # bandwidth-hungry kernel explores up, a compute-bound
                # kernel explores down.
                t_uncore = uncore_time_s(platform, workload, freq, prefetch)
                bound = t_uncore / full_time if full_time else 0.0
                direction = 1 if bound > config.high_boundedness else -1
            if not probing:
                base_score = measured
                target = uncore.clamp(base_freq + direction * config.step_ghz)
                if abs(target - base_freq) <= 1e-9:
                    # pinned against a bound: try the other way once
                    direction = -direction
                    failed_directions += 1
                    if failed_directions >= 2:
                        failed_directions = 0
                        settle = config.settle_intervals
                    continue
                freq = target
                switches += 1
                overhead = platform.cap_overhead_s
                idle_power = (
                    platform.p_constant_w + platform.uncore_power_w(freq, 0.0)
                )
                kernel_time += overhead
                kernel_energy += idle_power * overhead
                probing = True
                continue
            # -- a probe interval just finished
            probing = False
            improved = (
                base_score is not None
                and measured < base_score * (1.0 - config.explore_margin)
            )
            if improved:
                base_freq = freq
                base_score = measured
                failed_directions = 0
                continue  # keep climbing the same direction next interval
            # worse (or flat): revert to base, flip direction
            freq = base_freq
            switches += 1
            overhead = platform.cap_overhead_s
            idle_power = (
                platform.p_constant_w + platform.uncore_power_w(freq, 0.0)
            )
            kernel_time += overhead
            kernel_energy += idle_power * overhead
            direction = -direction
            failed_directions += 1
            if failed_directions >= 2:
                # both directions rejected: converged; hold, then re-probe
                failed_directions = 0
                settle = config.settle_intervals
        current = freq
        ctl.remember(workload, base_freq)
        runs.append(RunResult(workload.name, base_freq, kernel_time, kernel_energy))
        total_time += kernel_time
        total_energy += kernel_energy
    return SequenceResult(
        runs, total_time, total_energy, switches, warnings=warnings
    )


def oracle_caps(
    platform: PlatformSpec,
    workloads: Sequence[KernelWorkload],
    prefetch: bool = True,
) -> List[float]:
    """Per-kernel EDP-optimal frequency by exhaustive noise-free sweep.

    The unreachable lower bound every online policy is judged against: it
    knows each kernel's whole EDP landscape before running it.
    """
    from repro.hw.execution import execute_fixed

    caps: List[float] = []
    for workload in workloads:
        best_f = platform.uncore.f_max_ghz
        best_edp = float("inf")
        for f in platform.uncore.frequencies():
            run = execute_fixed(platform, workload, f, prefetch, noisy=False)
            if run.edp < best_edp:
                best_edp = run.edp
                best_f = f
        caps.append(best_f)
    return caps
