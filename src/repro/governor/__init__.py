"""REPRO-GOVERNOR: online adaptive capping and traffic scenarios.

The layer above the static-cap pipeline: a Cuttlefish-style online
controller seeded from the service's PolyUFC caps
(:mod:`repro.governor.adaptive`), a seeded traffic-trace engine with a
four-way policy shoot-out (:mod:`repro.governor.traces`), and a
multi-tenant contention model where 2-4 co-scheduled tenants share one
socket's LLC, DRAM pipe, and uncore frequency domain
(:mod:`repro.governor.tenancy`).  Methodology: ``docs/GOVERNOR.md``.
"""

from repro.governor.adaptive import (
    AdaptiveConfig,
    AdaptiveController,
    oracle_caps,
    run_adaptive_sequence,
)
from repro.governor.tenancy import (
    AdaptiveSocketPolicy,
    FixedFrequencyPolicy,
    IsolationMaxPolicy,
    JointModelPolicy,
    OracleSocketPolicy,
    ReactiveSocketPolicy,
    SocketPolicy,
    SocketStep,
    Tenant,
    TenantKernel,
    TenancyConfig,
    contended_workload,
    hindsight_oracle,
    run_multitenant,
    socket_step,
)
from repro.governor.traces import (
    TRACE_KINDS,
    TRACE_SCHEMA_VERSION,
    TraceReplay,
    TraceSegment,
    TraceSpec,
    TraceSpecError,
    generate_trace,
    replay_trace,
    scale_workload,
    service_resolver,
)

__all__ = [
    "AdaptiveConfig",
    "AdaptiveController",
    "oracle_caps",
    "run_adaptive_sequence",
    "AdaptiveSocketPolicy",
    "FixedFrequencyPolicy",
    "IsolationMaxPolicy",
    "JointModelPolicy",
    "OracleSocketPolicy",
    "ReactiveSocketPolicy",
    "SocketPolicy",
    "SocketStep",
    "Tenant",
    "TenantKernel",
    "TenancyConfig",
    "contended_workload",
    "hindsight_oracle",
    "run_multitenant",
    "socket_step",
    "TRACE_KINDS",
    "TRACE_SCHEMA_VERSION",
    "TraceReplay",
    "TraceSegment",
    "TraceSpec",
    "TraceSpecError",
    "generate_trace",
    "replay_trace",
    "scale_workload",
    "service_resolver",
]
