"""Traffic traces: seeded generation, JSON round-trip, four-way replay.

A :class:`TraceSpec` is a long multi-kernel schedule: segments name
registry benchmarks, phase changes happen at ``linalg``-op boundaries
(each benchmark expands to its capping units, exactly the granularity the
compiler caps at), and ``reps`` stretches each phase to paper-scale
durations -- the execution model is linear in the counters, so repeating
a kernel back-to-back is one ``reps``-scaled workload.

Replay pushes the trace through the service cap-lookup path (warm
family/store cache hits feed static caps to the controllers) and runs the
shoot-out policies:

* ``static``  -- PolyUFC caps via ``run_capped_sequence``,
* ``reactive`` -- the stock UFS-like driver,
* ``adaptive`` -- the online hill-climb seeded from the static caps,
* ``oracle``  -- per-kernel exhaustive EDP optimum (lower bound),

plus ``joint`` on multi-tenant traces (the model-side shared-cap solve).
All replay arithmetic is deterministic -- seeded generator, noise-free
sequence runs -- so a fixed-seed trace replays bit-for-bit.
"""

from __future__ import annotations

import dataclasses
import random
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple

from repro.governor.adaptive import (
    AdaptiveConfig,
    run_adaptive_sequence,
    oracle_caps,
)
from repro.governor.tenancy import (
    AdaptiveSocketPolicy,
    IsolationMaxPolicy,
    JointModelPolicy,
    ReactiveSocketPolicy,
    Tenant,
    TenantKernel,
    TenancyConfig,
    hindsight_oracle,
    run_multitenant,
)
from repro.hw.execution import KernelWorkload
from repro.hw.governor import (
    GovernorConfig,
    SequenceResult,
    run_capped_sequence,
    run_governed_sequence,
)
from repro.hw.platform import get_platform
from repro.model.parametric import KernelSummary

TRACE_SCHEMA_VERSION = 1
TRACE_KINDS = ("steady", "phase_change", "multi_tenant")

#: registry picks by typical boundedness at default sizes
COMPUTE_POOL = ("gemm", "2mm", "3mm", "syrk")
BANDWIDTH_POOL = ("atax", "bicg", "mvt", "gesummv", "trisolv")


class TraceSpecError(ValueError):
    """A serialized trace does not match the schema."""


@dataclass(frozen=True)
class TraceSegment:
    """One phase: a registry benchmark repeated ``reps`` times."""

    benchmark: str
    reps: int = 1
    tenant: int = 0

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "reps": self.reps,
            "tenant": self.tenant,
        }

    @classmethod
    def from_json(cls, data: dict) -> "TraceSegment":
        extra = set(data) - {"benchmark", "reps", "tenant"}
        if extra:
            raise TraceSpecError(f"unknown segment keys: {sorted(extra)}")
        try:
            segment = cls(
                benchmark=data["benchmark"],
                reps=int(data.get("reps", 1)),
                tenant=int(data.get("tenant", 0)),
            )
        except (KeyError, TypeError, ValueError) as exc:
            raise TraceSpecError(f"segment field error: {exc}") from exc
        if segment.reps < 1:
            raise TraceSpecError(f"reps must be >= 1, got {segment.reps}")
        if segment.tenant < 0:
            raise TraceSpecError("tenant must be >= 0")
        return segment


@dataclass(frozen=True)
class TraceSpec:
    """A named, seeded, JSON-round-trippable traffic trace."""

    name: str
    platform: str
    kind: str
    segments: Tuple[TraceSegment, ...]
    seed: int = 0

    def __post_init__(self):
        if self.kind not in TRACE_KINDS:
            raise TraceSpecError(
                f"kind must be one of {TRACE_KINDS}, got {self.kind!r}"
            )
        if not self.segments:
            raise TraceSpecError("a trace needs at least one segment")

    @property
    def tenant_count(self) -> int:
        return max(segment.tenant for segment in self.segments) + 1

    def to_json(self) -> dict:
        return {
            "version": TRACE_SCHEMA_VERSION,
            "name": self.name,
            "platform": self.platform,
            "kind": self.kind,
            "seed": self.seed,
            "segments": [segment.to_json() for segment in self.segments],
        }

    @classmethod
    def from_json(cls, data: dict) -> "TraceSpec":
        version = data.get("version")
        if version != TRACE_SCHEMA_VERSION:
            raise TraceSpecError(
                f"trace schema v{version}, expected v{TRACE_SCHEMA_VERSION}"
            )
        extra = set(data) - {
            "version", "name", "platform", "kind", "seed", "segments",
        }
        if extra:
            raise TraceSpecError(f"unknown trace keys: {sorted(extra)}")
        try:
            return cls(
                name=data["name"],
                platform=data["platform"],
                kind=data["kind"],
                segments=tuple(
                    TraceSegment.from_json(seg) for seg in data["segments"]
                ),
                seed=int(data.get("seed", 0)),
            )
        except (KeyError, TypeError) as exc:
            raise TraceSpecError(f"trace field error: {exc}") from exc


def generate_trace(
    kind: str,
    platform: str = "rpl",
    seed: int = 0,
    length: int = 6,
    tenants: int = 2,
    reps_range: Tuple[int, int] = (400, 1200),
) -> TraceSpec:
    """Seeded trace generator; the same arguments always yield the same
    trace (``random.Random(seed)``, no global state).

    ``reps_range`` stretches each phase to paper-scale durations so the
    interval-driven controllers get room to react within a phase.
    """
    if kind not in TRACE_KINDS:
        raise TraceSpecError(f"kind must be one of {TRACE_KINDS}")
    rng = random.Random((kind, platform, seed).__repr__())
    segments: List[TraceSegment] = []
    if kind == "steady":
        benchmark = rng.choice(BANDWIDTH_POOL + COMPUTE_POOL)
        for _ in range(length):
            segments.append(TraceSegment(
                benchmark, reps=rng.randint(*reps_range)
            ))
    elif kind == "phase_change":
        for i in range(length):
            pool = COMPUTE_POOL if i % 2 == 0 else BANDWIDTH_POOL
            segments.append(TraceSegment(
                rng.choice(pool), reps=rng.randint(*reps_range)
            ))
    else:  # multi_tenant
        if not 2 <= tenants <= 4:
            raise TraceSpecError("multi_tenant traces take 2-4 tenants")
        pools = [COMPUTE_POOL + BANDWIDTH_POOL] * tenants
        for tenant in range(tenants):
            for _ in range(length):
                segments.append(TraceSegment(
                    rng.choice(pools[tenant]),
                    reps=rng.randint(*reps_range),
                    tenant=tenant,
                ))
    return TraceSpec(
        name=f"{kind}-{platform}-s{seed}",
        platform=platform,
        kind=kind,
        segments=tuple(segments),
        seed=seed,
    )


def scale_workload(workload: KernelWorkload, reps: int) -> KernelWorkload:
    """``reps`` back-to-back runs as one workload (the model is linear)."""
    if reps <= 1:
        return workload
    return dataclasses.replace(
        workload,
        flops=workload.flops * reps,
        level_accesses=tuple(a * reps for a in workload.level_accesses),
        dram_fetch_bytes=workload.dram_fetch_bytes * reps,
        dram_writeback_bytes=workload.dram_writeback_bytes * reps,
        dram_lines=workload.dram_lines * reps,
    )


#: benchmark, platform -> capping units with caps (and model summaries)
TraceResolver = Callable[[str, str], List[TenantKernel]]


def service_resolver(benchmark: str, platform: str) -> List[TenantKernel]:
    """Default resolver: the service cap-lookup path.

    Warm runs are family/store cache hits -- the same content-addressed
    report the batch scheduler and HTTP front serve.
    """
    from repro.experiments.runner import kernel_report

    plat = get_platform(platform)
    report = kernel_report(benchmark, platform)
    units: List[TenantKernel] = []
    for unit in report.units:
        summary = KernelSummary(
            name=unit.name,
            omega=unit.omega,
            q_dram_bytes=unit.q_dram_model,
            dram_lines=unit.model_dram_lines,
            level_bytes=tuple(unit.model_level_bytes),
            cores_fraction=unit.cores_fraction,
        )
        units.append(TenantKernel(
            workload=unit.workload(plat.threads),
            cap_ghz=unit.cap_ghz,
            summary=summary,
        ))
    return units


@dataclass
class TraceReplay:
    """One trace through every policy."""

    spec: TraceSpec
    results: Dict[str, SequenceResult]

    def edp_table(self) -> Dict[str, dict]:
        table: Dict[str, dict] = {}
        for policy, result in self.results.items():
            table[policy] = {
                "time_s": result.time_s,
                "energy_j": result.energy_j,
                "edp": result.edp,
                "cap_switches": result.cap_switches,
                "truncated": result.truncated,
            }
        return table

    def to_json(self) -> dict:
        """Deterministic serialization (the determinism-check artifact)."""
        return {
            "spec": self.spec.to_json(),
            "policies": {
                policy: {
                    **self.edp_table()[policy],
                    "runs": [
                        {
                            "name": run.name,
                            "f_uncore_ghz": run.f_uncore_ghz,
                            "time_s": run.time_s,
                            "energy_j": run.energy_j,
                        }
                        for run in result.runs
                    ],
                    "warnings": list(result.warnings),
                }
                for policy, result in sorted(self.results.items())
            },
        }


def _resolve_units(
    spec: TraceSpec, resolver: TraceResolver
) -> Dict[str, List[TenantKernel]]:
    resolved: Dict[str, List[TenantKernel]] = {}
    for segment in spec.segments:
        if segment.benchmark not in resolved:
            resolved[segment.benchmark] = resolver(
                segment.benchmark, spec.platform
            )
    return resolved


def _expand_single(
    spec: TraceSpec, resolved: Dict[str, List[TenantKernel]]
) -> List[TenantKernel]:
    items: List[TenantKernel] = []
    for segment in spec.segments:
        for unit in resolved[segment.benchmark]:
            items.append(dataclasses.replace(
                unit, workload=scale_workload(unit.workload, segment.reps)
            ))
    return items


def _expand_tenants(
    spec: TraceSpec, resolved: Dict[str, List[TenantKernel]]
) -> List[Tenant]:
    queues: Dict[int, List[TenantKernel]] = {}
    for segment in spec.segments:
        queue = queues.setdefault(segment.tenant, [])
        for unit in resolved[segment.benchmark]:
            queue.append(dataclasses.replace(
                unit, workload=scale_workload(unit.workload, segment.reps)
            ))
    return [
        Tenant(name=f"t{tenant}", kernels=tuple(queue))
        for tenant, queue in sorted(queues.items())
    ]


def replay_trace(
    spec: TraceSpec,
    resolver: Optional[TraceResolver] = None,
    governor: Optional[GovernorConfig] = None,
    adaptive: Optional[AdaptiveConfig] = None,
    tenancy: Optional[TenancyConfig] = None,
) -> TraceReplay:
    """Run the full policy shoot-out over one trace.

    Pass a custom ``resolver`` to bypass the service (tests inject
    synthetic workloads); the default is the warm service store.
    """
    resolver = resolver or service_resolver
    plat = get_platform(spec.platform)
    resolved = _resolve_units(spec, resolver)
    results: Dict[str, SequenceResult] = {}
    if spec.kind == "multi_tenant":
        config = tenancy or TenancyConfig()
        from repro.pipeline import get_constants

        constants = get_constants(plat)

        def policies():
            yield "static", IsolationMaxPolicy(plat)
            yield "joint", JointModelPolicy(plat, constants)
            yield "reactive", ReactiveSocketPolicy(plat)
            yield "adaptive", AdaptiveSocketPolicy(plat)

        for name, policy in policies():
            tenants = _expand_tenants(spec, resolved)
            results[name] = run_multitenant(
                plat, tenants, policy, config
            )
        results["oracle"] = hindsight_oracle(
            plat, _expand_tenants(spec, resolved), config
        )
    else:
        items = _expand_single(spec, resolved)
        capped = [(unit.workload, unit.cap_ghz) for unit in items]
        results["static"] = run_capped_sequence(plat, capped, noisy=False)
        results["reactive"] = run_governed_sequence(
            plat,
            [unit.workload for unit in items],
            governor or GovernorConfig(),
        )
        results["adaptive"] = run_adaptive_sequence(
            plat, capped, adaptive or AdaptiveConfig()
        )
        oracle = oracle_caps(plat, [unit.workload for unit in items])
        results["oracle"] = run_capped_sequence(
            plat,
            [(unit.workload, cap) for unit, cap in zip(items, oracle)],
            noisy=False,
        )
    return TraceReplay(spec=spec, results=results)
