"""Multi-tenant contention on one simulated socket.

2-4 co-scheduled tenants share the socket's uncore: one LLC, one DRAM
pipe, and -- critically for capping -- *one* uncore frequency domain.  The
per-kernel-in-isolation cap the PolyUFC pipeline emits is no longer
obviously right: the socket frequency must serve the whole co-resident
combination.

Contention is modelled in two places:

* **LLC capacity**: with ``n`` active tenants each effectively owns a
  ``1/n`` slice, so a fraction of each kernel's LLC *hits* are displaced
  to DRAM (``llc_displacement`` scales how many), growing its DRAM
  traffic via :func:`contended_workload`;
* **DRAM bandwidth**: per interval, each tenant's standalone demand is
  summed; past the roofline the shared pipe stretches everyone's memory
  time proportionally, applied through the ``dram_bw_fraction`` hook in
  :func:`repro.hw.execution.memory_time_s`.

:func:`run_multitenant` co-simulates the tenants interval by interval
under a pluggable :class:`SocketPolicy` choosing the shared frequency:
isolation-max static caps, the model-side joint solve
(:func:`repro.search.joint.joint_cap_search`), a reactive UFS-style
stepper, the online adaptive hill-climb, and a ground-truth per-combo
oracle.  Frequency changes pay the driver overhead at idle power, exactly
as single-tenant drivers charge it.
"""

from __future__ import annotations

import dataclasses
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.execution import (
    KernelWorkload,
    RunResult,
    compute_time_s,
    instant_power_w,
    memory_time_s,
    uncore_time_s,
)
from repro.hw.governor import SequenceResult, exhaustion_warning
from repro.hw.platform import PlatformSpec
from repro.model.parametric import KernelSummary


@dataclass(frozen=True)
class TenantKernel:
    """One kernel in a tenant's queue: hw workload + optional model side."""

    workload: KernelWorkload
    cap_ghz: Optional[float] = None
    summary: Optional[KernelSummary] = None


@dataclass(frozen=True)
class Tenant:
    """One co-scheduled tenant: an ordered queue of kernels."""

    name: str
    kernels: Tuple[TenantKernel, ...]


@dataclass(frozen=True)
class TenancyConfig:
    """Co-simulation parameters."""

    interval_s: float = 200e-6
    #: fraction of the LLC hits displaced by capacity sharing that become
    #: DRAM line fetches (the rest still hit, e.g. shared read-only data)
    llc_displacement: float = 0.5
    max_intervals: int = 2_000_000


def contended_workload(
    workload: KernelWorkload,
    share: float,
    line_bytes: int,
    llc_displacement: float = 0.5,
) -> KernelWorkload:
    """The workload as seen with only ``share`` of the LLC capacity.

    Displaced hits are re-billed as DRAM line fetches; private-cache
    traffic and flops are untouched.
    """
    if share >= 1.0 or len(workload.level_accesses) < 3:
        return workload
    llc_hits = max(0, workload.level_accesses[2] - workload.dram_lines)
    moved = int(llc_displacement * (1.0 - share) * llc_hits)
    if moved <= 0:
        return workload
    return dataclasses.replace(
        workload,
        dram_fetch_bytes=workload.dram_fetch_bytes + moved * line_bytes,
        dram_lines=workload.dram_lines + moved,
    )


@dataclass(frozen=True)
class SocketStep:
    """Ground-truth socket state for one combination at one frequency."""

    full_times: Tuple[float, ...]
    tenant_powers: Tuple[float, ...]  # attributable (core + DRAM) per tenant
    socket_power_w: float
    boundedness: float  # aggregate uncore-side pressure, drives reactive
    #: EDP-density proxy P * max_i(T_i)^2 -- socket power times the
    #: squared critical path, the combo-level twin of the per-kernel
    #: ``power * T**2`` score (socket EDP is energy times *makespan*)
    score: float


def socket_step(
    platform: PlatformSpec,
    workloads: Sequence[KernelWorkload],
    f_ghz: float,
    prefetch: bool = True,
) -> SocketStep:
    """Evaluate the co-resident combination at one shared frequency.

    Bandwidth sharing is proportional: standalone demands are summed and,
    past the pipe's capacity, every tenant's DRAM-bound term is scaled by
    the same oversubscription fraction.
    """
    rho = platform.overlap_rho
    t_computes = [compute_time_s(platform, wl) for wl in workloads]
    t_mem0 = [
        memory_time_s(platform, wl, f_ghz, prefetch) for wl in workloads
    ]
    full0 = [
        max(tc, tm) + rho * min(tc, tm)
        for tc, tm in zip(t_computes, t_mem0)
    ]
    demand = sum(
        wl.dram_bytes / ft
        for wl, ft in zip(workloads, full0)
        if ft > 0 and wl.dram_bytes
    )
    capacity = platform.dram_bandwidth(f_ghz)
    fraction = 1.0
    if demand > 0 and capacity > 0:
        fraction = min(1.0, capacity / demand)
    t_memories = [
        memory_time_s(
            platform, wl, f_ghz, prefetch, dram_bw_fraction=fraction
        )
        for wl in workloads
    ]
    full_times = [
        max(tc, tm) + rho * min(tc, tm)
        for tc, tm in zip(t_computes, t_memories)
    ]
    # Socket power: the constant and the (shared-domain) uncore terms are
    # counted once; core and DRAM terms are per-tenant and attributable.
    uncore_util = 0.0
    tenant_powers: List[float] = []
    for wl, tc, tm, ft in zip(workloads, t_computes, t_memories, full_times):
        if ft <= 0:
            tenant_powers.append(0.0)
            continue
        mem_util = min(1.0, tm / ft)
        uncore_util = max(uncore_util, mem_util)
        total = instant_power_w(platform, wl, f_ghz, tc, tm, ft)
        tenant_powers.append(
            total
            - platform.p_constant_w
            - platform.uncore_power_w(f_ghz, mem_util)
        )
    socket_power = (
        platform.p_constant_w
        + platform.uncore_power_w(f_ghz, uncore_util)
        + sum(tenant_powers)
    )
    makespan = max(full_times, default=0.0)
    score = socket_power * makespan * makespan
    bound_num = 0.0
    bound_den = 0.0
    for wl, ft in zip(workloads, full_times):
        if ft <= 0:
            continue
        t_unc = uncore_time_s(
            platform, wl, f_ghz, prefetch, dram_bw_fraction=fraction
        )
        bound_num += min(1.0, t_unc / ft) * ft
        bound_den += ft
    boundedness = bound_num / bound_den if bound_den else 0.0
    return SocketStep(
        full_times=tuple(full_times),
        tenant_powers=tuple(tenant_powers),
        socket_power_w=socket_power,
        boundedness=boundedness,
        score=score,
    )


ComboKey = Tuple[Tuple[str, str], ...]  # ((tenant, kernel), ...)


class SocketPolicy:
    """Chooses the shared uncore frequency, once per control interval.

    ``frequency`` receives the active combination (contended units), the
    frequency currently set, and the ground-truth feedback measured over
    the interval that just elapsed at that frequency.
    """

    name = "socket-policy"

    def frequency(
        self,
        combo: ComboKey,
        units: Sequence[TenantKernel],
        current_ghz: float,
        feedback: Optional[SocketStep],
    ) -> float:
        raise NotImplementedError


class IsolationMaxPolicy(SocketPolicy):
    """Static caps as shipped: the socket runs at the *max* of the active
    tenants' isolation caps (the uncore domain cannot be split), missing
    caps defaulting to ``f_max``.  The per-kernel-in-isolation baseline
    every joint scheme is judged against."""

    name = "static-isolation"

    def __init__(self, platform: PlatformSpec):
        self.platform = platform

    def frequency(self, combo, units, current_ghz, feedback):
        caps = [
            unit.cap_ghz
            if unit.cap_ghz is not None
            else self.platform.uncore.f_max_ghz
            for unit in units
        ]
        return max(caps) if caps else self.platform.uncore.f_max_ghz


class JointModelPolicy(SocketPolicy):
    """Compile-time joint solve per combination, from the PolyUFC models.

    Falls back to isolation-max for combinations where any tenant lacks
    model-side counters (e.g. a cold service miss).
    """

    name = "joint-model"

    def __init__(self, platform: PlatformSpec, constants):
        self.platform = platform
        self.constants = constants
        self._fallback = IsolationMaxPolicy(platform)
        self._memo: Dict[ComboKey, float] = {}

    def frequency(self, combo, units, current_ghz, feedback):
        cached = self._memo.get(combo)
        if cached is not None:
            return cached
        summaries = [unit.summary for unit in units]
        if any(summary is None for summary in summaries) or not summaries:
            freq = self._fallback.frequency(combo, units, current_ghz, feedback)
        else:
            from repro.search.joint import joint_cap_search

            freq = joint_cap_search(
                self.constants,
                summaries,
                self.platform.uncore.frequencies(),
            ).f_ghz
        self._memo[combo] = freq
        return freq


class ReactiveSocketPolicy(SocketPolicy):
    """UFS-style stepper on aggregate socket boundedness (sticky-high)."""

    name = "reactive"

    def __init__(
        self,
        platform: PlatformSpec,
        up_step_ghz: float = 0.2,
        down_step_ghz: float = 0.05,
        high_boundedness: float = 0.25,
        low_boundedness: float = 0.04,
        start_fraction: float = 0.85,
    ):
        self.platform = platform
        self.up_step_ghz = up_step_ghz
        self.down_step_ghz = down_step_ghz
        self.high_boundedness = high_boundedness
        self.low_boundedness = low_boundedness
        self.start_fraction = start_fraction
        self._started = False

    def frequency(self, combo, units, current_ghz, feedback):
        if not self._started:
            self._started = True
            return self.platform.uncore.clamp(
                self.start_fraction * self.platform.uncore.f_max_ghz
            )
        if feedback is None:
            return current_ghz
        if feedback.boundedness > self.high_boundedness:
            return self.platform.uncore.clamp(current_ghz + self.up_step_ghz)
        if feedback.boundedness < self.low_boundedness:
            return self.platform.uncore.clamp(current_ghz - self.down_step_ghz)
        return current_ghz


class AdaptiveSocketPolicy(SocketPolicy):
    """Online hill-climb on the measured socket score, per combination.

    Seeds each new combination from isolation-max caps, then probes
    +-``step_ghz`` on the ground-truth feedback score, reverting failed
    probes and settling once both directions reject -- the socket-level
    twin of :func:`repro.governor.adaptive.run_adaptive_sequence`.
    """

    name = "adaptive"

    def __init__(
        self,
        platform: PlatformSpec,
        step_ghz: float = 0.1,
        explore_margin: float = 0.005,
        settle_intervals: int = 50,
    ):
        self.platform = platform
        self.step_ghz = step_ghz
        self.explore_margin = explore_margin
        self.settle_intervals = settle_intervals
        self._seed = IsolationMaxPolicy(platform)
        self._state: Dict[ComboKey, dict] = {}

    def frequency(self, combo, units, current_ghz, feedback):
        state = self._state.get(combo)
        if state is None:
            seed = self.platform.uncore.clamp(
                self._seed.frequency(combo, units, current_ghz, feedback)
            )
            state = {
                "base": seed,
                "base_score": None,
                "direction": -1,
                "probing": False,
                "failed": 0,
                "settle": 0,
            }
            self._state[combo] = state
            return seed
        if feedback is None:
            return state["base"]
        uncore = self.platform.uncore
        if state["settle"] > 0:
            state["settle"] -= 1
            if state["settle"] == 0:
                state["base_score"] = None
            return state["base"]
        if state["probing"]:
            state["probing"] = False
            base_score = state["base_score"]
            improved = (
                base_score is not None
                and feedback.score < base_score * (1.0 - self.explore_margin)
            )
            if improved:
                state["base"] = current_ghz
                state["base_score"] = feedback.score
                state["failed"] = 0
                return current_ghz
            state["direction"] = -state["direction"]
            state["failed"] += 1
            if state["failed"] >= 2:
                state["failed"] = 0
                state["settle"] = self.settle_intervals
            return state["base"]
        # sitting at base: record its score, then probe
        state["base_score"] = feedback.score
        target = uncore.clamp(
            state["base"] + state["direction"] * self.step_ghz
        )
        if abs(target - state["base"]) <= 1e-9:
            state["direction"] = -state["direction"]
            state["failed"] += 1
            if state["failed"] >= 2:
                state["failed"] = 0
                state["settle"] = self.settle_intervals
            return state["base"]
        state["probing"] = True
        return target


class FixedFrequencyPolicy(SocketPolicy):
    """One pinned socket frequency for the whole run (hindsight sweeps)."""

    name = "fixed"

    def __init__(self, platform: PlatformSpec, f_ghz: float):
        self.f_ghz = platform.uncore.clamp(f_ghz)

    def frequency(self, combo, units, current_ghz, feedback):
        return self.f_ghz


class OracleSocketPolicy(SocketPolicy):
    """Ground-truth per-combination greedy: grid argmin of the contended
    socket score.  Unreachable online (it evaluates the real contention
    model at every frequency before running), but still *myopic* -- it
    cannot see across combination boundaries, so :func:`hindsight_oracle`
    is the reported lower bound."""

    name = "oracle"

    def __init__(self, platform: PlatformSpec, prefetch: bool = True):
        self.platform = platform
        self.prefetch = prefetch
        self._memo: Dict[ComboKey, float] = {}

    def frequency(self, combo, units, current_ghz, feedback):
        cached = self._memo.get(combo)
        if cached is not None:
            return cached
        share = 1.0 / len(units) if units else 1.0
        line = self.platform.hierarchy.line_bytes
        workloads = [
            contended_workload(unit.workload, share, line)
            for unit in units
        ]
        best_f = self.platform.uncore.f_max_ghz
        best = float("inf")
        for f in self.platform.uncore.frequencies():
            step = socket_step(self.platform, workloads, f, self.prefetch)
            if step.score < best:
                best = step.score
                best_f = f
        self._memo[combo] = best_f
        return best_f


def hindsight_oracle(
    platform: PlatformSpec,
    tenants: Sequence[Tenant],
    config: TenancyConfig = TenancyConfig(),
    prefetch: bool = True,
) -> SequenceResult:
    """The reported multi-tenant lower bound: the best *realized* EDP over
    every fixed grid frequency held for the whole trace plus the
    per-combination greedy.  Per-combo greedy argmins do not compose into
    a trace-level optimum (combination boundaries shift), so the sweep
    over full-run schedules is what actually bounds the online policies.
    """
    best: Optional[SequenceResult] = None
    for f in platform.uncore.frequencies():
        result = run_multitenant(
            platform, tenants, FixedFrequencyPolicy(platform, f),
            config, prefetch,
        )
        if best is None or result.edp < best.edp:
            best = result
    greedy = run_multitenant(
        platform, tenants, OracleSocketPolicy(platform, prefetch),
        config, prefetch,
    )
    if greedy.edp < best.edp:
        best = greedy
    return best


def run_multitenant(
    platform: PlatformSpec,
    tenants: Sequence[Tenant],
    policy: SocketPolicy,
    config: TenancyConfig = TenancyConfig(),
    prefetch: bool = True,
) -> SequenceResult:
    """Co-simulate tenants under one shared uncore frequency.

    Returns socket totals: ``time_s`` is the makespan, ``energy_j`` the
    socket energy; ``runs`` records each kernel completion with its
    attributed (core + DRAM + shared-term share) energy.  Driver-write
    overhead on frequency changes stalls the whole socket and is charged
    to the socket totals.
    """
    if not 1 <= len(tenants) <= 8:
        raise ValueError("run_multitenant expects 1-8 tenants")
    line = platform.hierarchy.line_bytes
    indices = [0] * len(tenants)
    progress = [0.0] * len(tenants)
    kernel_time = [0.0] * len(tenants)
    kernel_energy = [0.0] * len(tenants)
    runs: List[RunResult] = []
    total_time = 0.0
    total_energy = 0.0
    switches = 0
    warnings: List[str] = []
    intervals = 0
    freq: Optional[float] = None
    feedback: Optional[SocketStep] = None
    last_combo: Optional[ComboKey] = None
    total_kernels = sum(len(t.kernels) for t in tenants)
    done_kernels = 0

    def finish(ti: int, f: float) -> None:
        nonlocal done_kernels
        tenant = tenants[ti]
        unit = tenant.kernels[indices[ti]]
        runs.append(RunResult(
            f"{tenant.name}:{unit.workload.name}",
            f,
            kernel_time[ti],
            kernel_energy[ti],
        ))
        indices[ti] += 1
        progress[ti] = 0.0
        kernel_time[ti] = 0.0
        kernel_energy[ti] = 0.0
        done_kernels += 1

    while True:
        active = [
            ti for ti in range(len(tenants))
            if indices[ti] < len(tenants[ti].kernels)
        ]
        if not active:
            break
        n = len(active)
        share = 1.0 / n
        units = [tenants[ti].kernels[indices[ti]] for ti in active]
        workloads = [
            contended_workload(
                unit.workload, share, line, config.llc_displacement
            )
            for unit in units
        ]
        combo: ComboKey = tuple(
            (tenants[ti].name, unit.workload.name)
            for ti, unit in zip(active, units)
        )
        if combo != last_combo:
            feedback = None  # stale: measured on a different combination
            last_combo = combo
        intervals += 1
        if intervals > config.max_intervals:
            warnings.append(exhaustion_warning(
                config.max_intervals,
                "+".join(name for _, name in combo),
                done_kernels,
                total_kernels,
                sum(progress[ti] for ti in active) / n,
            ))
            break
        if freq is None:
            freq = platform.uncore.clamp(
                policy.frequency(combo, units, platform.uncore.f_max_ghz, None)
            )
        else:
            target = platform.uncore.clamp(
                policy.frequency(combo, units, freq, feedback)
            )
            if abs(target - freq) > 1e-9:
                switches += 1
                overhead = platform.cap_overhead_s
                idle_power = platform.p_constant_w + platform.uncore_power_w(
                    target, 0.0
                )
                total_time += overhead
                total_energy += idle_power * overhead
                freq = target
        step = socket_step(platform, workloads, freq, prefetch)
        feedback = step
        # zero-duration kernels complete instantly at the current frequency
        finished_now = [
            ti for ti, ft in zip(active, step.full_times) if ft <= 0
        ]
        if finished_now:
            for ti in finished_now:
                finish(ti, freq)
            continue
        dt = min(
            [config.interval_s]
            + [
                (1.0 - progress[pos_i]) * ft
                for pos_i, ft in zip(active, step.full_times)
            ]
        )
        shared_power = platform.p_constant_w + (
            step.socket_power_w
            - platform.p_constant_w
            - sum(step.tenant_powers)
        )  # constant + the single shared uncore term
        for pos, (ti, ft) in enumerate(zip(active, step.full_times)):
            progress[ti] = min(1.0, progress[ti] + dt / ft)
            kernel_time[ti] += dt
            kernel_energy[ti] += (
                step.tenant_powers[pos] + shared_power / n
            ) * dt
        total_time += dt
        total_energy += step.socket_power_w * dt
        for ti in list(active):
            if progress[ti] >= 1.0 - 1e-12:
                finish(ti, freq)
    return SequenceResult(
        runs, total_time, total_energy, switches, warnings=warnings
    )
