"""Compile-and-measure driver shared by every table/figure harness.

``kernel_report`` runs the full PolyUFC flow on one benchmark for one
platform and attaches, per capping unit, both the model-side numbers
(PolyUFC-CM counters, OI, CB/BB, selected cap) and the hardware-side
workload (exact cache-simulator counters).  Since the service PR it is a
thin synchronous wrapper over :mod:`repro.service`: the request becomes
a content-addressed :class:`~repro.service.JobSpec`, results are served
from (and persisted to) the shared
:class:`~repro.service.store.ResultStore`, and the computation itself is
:func:`repro.service.execute_report` -- the exact same path the batch
scheduler and the HTTP front use.  ``REPRO_NO_CACHE=1`` disables
persistence, ``REPRO_CACHE_DIR`` / ``REPRO_STORE_DIR`` relocate it.

``baseline_comparison`` and ``frequency_sweep`` then evaluate the cached
workloads through the execution model -- those calls are cheap, so sweeps
and governor comparisons never re-run the expensive trace analyses.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from pathlib import Path
from typing import List, Optional, Tuple

from repro.hw.execution import execute_fixed
from repro.hw.governor import (
    GovernorConfig,
    SequenceResult,
    run_capped_sequence,
    run_governed_sequence,
)
from repro.hw.platform import get_platform
from repro.mlpolyufc.reports import (  # re-exported for compatibility
    REPORT_SCHEMA_VERSION,
    KernelReport,
    UnitReport,
)
from repro.runtime import resolve_timeout

log = logging.getLogger("repro.runtime")


def cache_dir() -> Path:
    """The persistent-cache root (the service store lives under it)."""
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".polyufc_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") != "1"


def kernel_report(
    benchmark: str,
    platform: str,
    granularity: str = "linalg",
    objective: str = "edp",
    set_associative: bool = True,
    tile_size: int = 32,
    epsilon: float = 1e-3,
    cap_overhead_factor: float = 50.0,
    use_cache: bool = True,
    workers: Optional[int] = None,
    cm_engine: Optional[str] = None,
    cm_timeout_s: Optional[float] = None,
) -> KernelReport:
    """Compile one benchmark for one platform; results are store-backed.

    ``workers`` tunes *how* the cache model runs (thread pool width); it
    never changes the numbers and is not part of the content digest.
    ``cm_timeout_s`` (default ``$REPRO_CM_TIMEOUT_S``) bounds the
    PolyUFC-CM stage; reports containing degraded units are returned but
    never persisted (store policy), so a transient timeout cannot poison
    the cache.
    """
    from repro.service import JobSpec, ResultStore, execute_report

    spec = JobSpec(
        benchmark=benchmark,
        platform=platform,
        granularity=granularity,
        objective=objective,
        set_associative=set_associative,
        tile_size=tile_size,
        epsilon=epsilon,
        cap_overhead_factor=cap_overhead_factor,
        engine=cm_engine,
    )
    store = ResultStore() if _cache_enabled() else None
    if store is not None and use_cache:
        cached = store.get_report(spec.digest())
        if cached is not None:
            return cached
    report = execute_report(
        spec,
        store=store if use_cache else None,
        workers=workers,
        cm_timeout_s=resolve_timeout(cm_timeout_s),
    )
    if store is not None:
        store.put_report(spec, report)  # refuses degraded reports
    return report


def kernel_reports(
    benchmarks: List[str],
    platform: str,
    workers: Optional[int] = None,
    **report_kwargs,
) -> List[KernelReport]:
    """``kernel_report`` over many benchmarks, optionally in parallel.

    With ``workers > 1`` the per-kernel compile+simulate work fans across
    a thread pool; the returned list always matches the input order.
    Worker width resolution is shared with the per-unit pool
    (:func:`repro.mlpolyufc.characterization.resolve_workers`).
    """
    from repro.mlpolyufc.characterization import resolve_workers

    width = resolve_workers(workers)

    if width > 1 and len(benchmarks) > 1:
        # Per-kernel parallelism wins; keep each kernel's unit pool serial.
        def one(benchmark: str) -> KernelReport:
            return kernel_report(
                benchmark, platform, workers=1, **report_kwargs
            )

        with ThreadPoolExecutor(max_workers=width) as pool:
            # map preserves input order -> deterministic result list.
            return list(pool.map(one, benchmarks))
    return [
        kernel_report(benchmark, platform, workers=workers, **report_kwargs)
        for benchmark in benchmarks
    ]


@dataclass
class Comparison:
    """PolyUFC static caps vs the reactive-driver baseline."""

    benchmark: str
    platform: str
    baseline: SequenceResult
    capped: SequenceResult

    @property
    def speedup(self) -> float:
        return self.baseline.time_s / self.capped.time_s

    @property
    def energy_gain(self) -> float:
        return self.baseline.energy_j / self.capped.energy_j

    @property
    def edp_gain(self) -> float:
        return self.baseline.edp / self.capped.edp

    @property
    def edp_improvement_pct(self) -> float:
        return (1.0 - self.capped.edp / self.baseline.edp) * 100.0


def baseline_comparison(
    benchmark: str,
    platform: str,
    governor: Optional[GovernorConfig] = None,
    reps: Optional[int] = None,
    target_runtime_s: float = 5e-3,
    **report_kwargs,
) -> Comparison:
    """Run PolyUFC-capped code vs the UFS-like reactive baseline.

    The kernel sequence is repeated ``reps`` times back to back (real
    measurements run paper-scale kernels whose durations dwarf the per-cap
    driver overhead; repetitions restore that time scale -- redundant cap
    calls after the first iteration cost nothing because the rewrite keeps
    only cap *changes*).  By default ``reps`` is sized so the baseline run
    lasts about ``target_runtime_s``.
    """
    report = kernel_report(benchmark, platform, **report_kwargs)
    plat = get_platform(platform)
    workloads = [unit.workload(plat.threads) for unit in report.units]
    if reps is None:
        once = sum(
            execute_fixed(plat, wl, plat.uncore.f_max_ghz, noisy=False).time_s
            for wl in workloads
        )
        reps = max(1, min(5000, int(round(target_runtime_s / max(once, 1e-9)))))
    sequence = workloads * reps
    caps = [
        (wl, unit.cap_ghz) for wl, unit in zip(workloads, report.units)
    ] * reps
    baseline = run_governed_sequence(
        plat, sequence, governor or GovernorConfig()
    )
    capped = run_capped_sequence(plat, caps)
    return Comparison(benchmark, plat.name, baseline, capped)


def frequency_sweep(
    benchmark: str,
    platform: str,
    **report_kwargs,
) -> List[Tuple[float, float, float, float]]:
    """(f, time, energy, EDP) of the whole kernel at each fixed cap."""
    report = kernel_report(benchmark, platform, **report_kwargs)
    plat = get_platform(platform)
    workloads = [unit.workload(plat.threads) for unit in report.units]
    rows = []
    for f in plat.uncore.frequencies():
        time_s = 0.0
        energy_j = 0.0
        for workload in workloads:
            run = execute_fixed(plat, workload, f)
            time_s += run.time_s
            energy_j += run.energy_j
        rows.append((f, time_s, energy_j, energy_j * time_s))
    return rows
