"""Compile-and-measure driver shared by every table/figure harness.

``kernel_report`` runs the full PolyUFC flow on one benchmark for one
platform and attaches, per capping unit, both the model-side numbers
(PolyUFC-CM counters, OI, CB/BB, selected cap) and the hardware-side
workload (exact cache-simulator counters), all cached to disk as JSON.

``baseline_comparison`` and ``frequency_sweep`` then evaluate the cached
workloads through the execution model -- those calls are cheap, so sweeps
and governor comparisons never re-run the expensive trace analyses.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Dict, List, Optional, Tuple

from repro.benchsuite import get_benchmark
from repro.cache.simulator import simulate_hierarchy
from repro.cache.trace import generate_trace
from repro.hw.execution import KernelWorkload, execute_fixed
from repro.hw.governor import (
    GovernorConfig,
    SequenceResult,
    run_capped_sequence,
    run_governed_sequence,
)
from repro.hw.platform import PlatformSpec, get_platform
from repro.mlpolyufc.characterization import DEGRADABLE_ERRORS
from repro.pipeline import polyufc_compile
from repro.runtime import (
    CacheCorruption,
    EngineFailure,
    TransientIOError,
    atomic_write_json,
    read_checked_json,
    resolve_timeout,
)

log = logging.getLogger("repro.runtime")

# Bump to invalidate caches after model/platform changes.
# v9: entries moved to the checksummed ``repro-envelope`` format and
# units gained ``degraded``/``warning`` resilience metadata.
CACHE_VERSION = 9


def cache_dir() -> Path:
    root = os.environ.get("REPRO_CACHE_DIR")
    path = Path(root) if root else Path(__file__).resolve().parents[3] / ".polyufc_cache"
    path.mkdir(parents=True, exist_ok=True)
    return path


def _cache_enabled() -> bool:
    return os.environ.get("REPRO_NO_CACHE", "") != "1"


@dataclass
class UnitReport:
    """One capping unit: model-side and hardware-side numbers."""

    name: str
    omega: int
    oi_fpb: float
    boundedness: str
    cap_ghz: float
    parallel: bool
    q_dram_model: int
    level_accesses_hw: Tuple[int, ...]
    dram_fetch_bytes_hw: int
    dram_writeback_bytes_hw: int
    dram_lines_hw: int
    model_level_bytes: Tuple[int, ...]
    model_dram_lines: int
    cores_fraction: float
    search_iterations: int
    degraded: str = "exact"
    warning: Optional[str] = None

    def workload(self, threads: int) -> KernelWorkload:
        """The hardware workload for the execution model."""
        return KernelWorkload(
            name=self.name,
            flops=self.omega,
            level_accesses=tuple(self.level_accesses_hw),
            dram_fetch_bytes=self.dram_fetch_bytes_hw,
            dram_writeback_bytes=self.dram_writeback_bytes_hw,
            dram_lines=self.dram_lines_hw,
            parallel=self.parallel,
            threads=threads,
        )

    @property
    def oi_hw(self) -> float:
        total = self.dram_fetch_bytes_hw + self.dram_writeback_bytes_hw
        return self.omega / total if total else float("inf")


@dataclass
class KernelReport:
    """Full per-benchmark artifact."""

    benchmark: str
    platform: str
    granularity: str
    objective: str
    set_associative: bool
    balance_fpb: float = 0.0
    units: List[UnitReport] = field(default_factory=list)
    timings_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def total_flops(self) -> int:
        return sum(unit.omega for unit in self.units)

    @property
    def total_q_dram_model(self) -> int:
        return sum(unit.q_dram_model for unit in self.units)

    @property
    def oi_model(self) -> float:
        q = self.total_q_dram_model
        return self.total_flops / q if q else float("inf")

    @property
    def degraded_units(self) -> List[str]:
        """Names of units that did not characterize exactly."""
        return [unit.name for unit in self.units if unit.degraded != "exact"]

    @property
    def fully_exact(self) -> bool:
        return not self.degraded_units

    @property
    def boundedness(self) -> str:
        """Whole-kernel label: aggregate OI against the fitted balance."""
        if self.balance_fpb > 0:
            return "CB" if self.oi_model >= self.balance_fpb else "BB"
        weights: Dict[str, float] = {"CB": 0.0, "BB": 0.0}
        for unit in self.units:
            weight = max(unit.omega, unit.q_dram_model)
            weights[unit.boundedness] += weight
        return "CB" if weights["CB"] >= weights["BB"] else "BB"

    def caps(self) -> List[float]:
        return [unit.cap_ghz for unit in self.units]


def _report_key(
    benchmark: str, platform: str, granularity: str, objective: str,
    set_associative: bool, tile_size: int, epsilon: float,
    cap_overhead_factor: float = 50.0,
) -> str:
    blob = json.dumps(
        [CACHE_VERSION, benchmark, platform, granularity, objective,
         set_associative, tile_size, epsilon, cap_overhead_factor],
        sort_keys=True,
    )
    return hashlib.sha256(blob.encode()).hexdigest()[:20]


_REPORT_KEYS = (
    "benchmark", "platform", "granularity", "objective",
    "set_associative", "timings_ms", "units",
)


def _load_cached_report(path: Path) -> Optional[KernelReport]:
    """One hardened report-cache read.

    Corrupted, truncated or schema-drifted entries are quarantined by the
    envelope reader (or here, when the envelope validates but the unit
    shape drifted) and ``None`` is returned so the caller recomputes.
    """
    from repro.runtime import quarantine_file

    try:
        data = read_checked_json(
            path, fault_site="report.read", required_keys=_REPORT_KEYS
        )
    except FileNotFoundError:
        return None
    except CacheCorruption:
        return None  # already quarantined + logged
    except (TransientIOError, EngineFailure) as exc:
        log.warning(
            "report read of %s kept failing (%s); recomputing", path, exc
        )
        return None
    try:
        report = KernelReport(
            benchmark=data["benchmark"],
            platform=data["platform"],
            granularity=data["granularity"],
            objective=data["objective"],
            set_associative=data["set_associative"],
            balance_fpb=data.get("balance_fpb", 0.0),
            timings_ms=data["timings_ms"],
        )
        for unit in data["units"]:
            unit["level_accesses_hw"] = tuple(unit["level_accesses_hw"])
            unit["model_level_bytes"] = tuple(unit["model_level_bytes"])
            report.units.append(UnitReport(**unit))
    except (KeyError, TypeError, ValueError) as exc:
        log.warning("report entry %s has drifted schema (%s)", path, exc)
        quarantine_file(path)
        return None
    return report


def kernel_report(
    benchmark: str,
    platform: str,
    granularity: str = "linalg",
    objective: str = "edp",
    set_associative: bool = True,
    tile_size: int = 32,
    epsilon: float = 1e-3,
    cap_overhead_factor: float = 50.0,
    use_cache: bool = True,
    workers: Optional[int] = None,
    cm_engine: Optional[str] = None,
    cm_timeout_s: Optional[float] = None,
) -> KernelReport:
    """Compile one benchmark for one platform; heavy results are cached.

    ``workers``/``cm_engine`` tune *how* the cache model runs (thread
    pool width, fast vs reference engine); they never change the numbers,
    so they are deliberately not part of the disk-cache key.
    ``cm_timeout_s`` (default ``$REPRO_CM_TIMEOUT_S``) bounds the
    PolyUFC-CM stage; reports containing degraded units are returned but
    never persisted, so a transient timeout cannot poison the cache.
    """
    cm_timeout_s = resolve_timeout(cm_timeout_s)
    key = _report_key(
        benchmark, platform, granularity, objective, set_associative,
        tile_size, epsilon, cap_overhead_factor,
    )
    path = cache_dir() / f"report_{benchmark}_{platform}_{key}.json"
    if use_cache and _cache_enabled() and path.exists():
        cached = _load_cached_report(path)
        if cached is not None:
            return cached

    spec = get_benchmark(benchmark)
    plat = get_platform(platform)
    result = polyufc_compile(
        spec.module(),
        plat,
        granularity=granularity,
        objective=objective,
        tile_size=tile_size,
        epsilon=epsilon,
        set_associative=set_associative,
        cap_overhead_factor=cap_overhead_factor,
        workers=workers,
        cm_engine=cm_engine,
        cm_timeout_s=cm_timeout_s,
    )
    report = KernelReport(
        benchmark=benchmark,
        platform=plat.name,
        granularity=granularity,
        objective=objective,
        set_associative=set_associative,
        balance_fpb=result.constants.b_t_dram,
        timings_ms={
            "preprocess": result.timings.preprocess_ms,
            "pluto": result.timings.pluto_ms,
            "polyufc_cm": result.timings.polyufc_cm_ms,
            "steps_4_6": result.timings.steps_4_6_ms,
        },
    )
    for unit, decision in zip(result.units, result.decisions):
        degraded, warning = unit.degraded, unit.warning
        sim = None
        if degraded != "timeout-cap":
            # The hardware-side workload needs the exact trace; guard it
            # with the same per-unit isolation the CM side has -- a unit
            # that cannot be simulated gets zero hardware counters, not a
            # crashed report.
            try:
                trace = generate_trace(result.tiled_module, unit.ops)
                sim = simulate_hierarchy(trace, plat.hierarchy)
            except DEGRADABLE_ERRORS as exc:
                log.warning(
                    "hardware-side simulation of %s failed (%s); "
                    "zero hardware counters", unit.name, exc,
                )
                warning = (warning + "; " if warning else "") + (
                    f"hardware simulation failed: {exc}"
                )
        if sim is not None:
            level_accesses_hw = tuple(
                level.accesses for level in sim.levels
            )
            dram_fetch = sim.dram_fetch_bytes
            dram_writeback = sim.dram_writeback_bytes
            dram_lines = sim.llc.misses + sim.llc.writebacks
        else:
            level_accesses_hw = tuple(0 for _ in plat.hierarchy.levels)
            dram_fetch = dram_writeback = dram_lines = 0
        report.units.append(
            UnitReport(
                name=unit.name,
                omega=unit.omega,
                oi_fpb=float(unit.oi_fpb),
                boundedness=str(unit.boundedness),
                cap_ghz=decision.f_cap_ghz,
                parallel=unit.parallel,
                q_dram_model=unit.cm.q_dram_bytes,
                level_accesses_hw=level_accesses_hw,
                dram_fetch_bytes_hw=dram_fetch,
                dram_writeback_bytes_hw=dram_writeback,
                dram_lines_hw=dram_lines,
                model_level_bytes=tuple(unit.summary.level_bytes),
                model_dram_lines=unit.summary.dram_lines,
                cores_fraction=unit.summary.cores_fraction,
                search_iterations=decision.search.iterations,
                degraded=degraded,
                warning=warning,
            )
        )
    if _cache_enabled() and report.fully_exact:
        # Degraded reports are never persisted: a transient timeout or
        # injected fault must not poison the cache for later exact runs.
        try:
            atomic_write_json(path, asdict(report), fault_site="report.write")
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "report write of %s failed (%s); continuing", path, exc
            )
    return report


def kernel_reports(
    benchmarks: List[str],
    platform: str,
    workers: Optional[int] = None,
    **report_kwargs,
) -> List[KernelReport]:
    """``kernel_report`` over many benchmarks, optionally in parallel.

    With ``workers > 1`` the per-kernel compile+simulate work fans across
    a thread pool; the returned list always matches the input order.
    Worker width resolution is shared with the per-unit pool
    (:func:`repro.mlpolyufc.characterization.resolve_workers`).
    """
    from repro.mlpolyufc.characterization import resolve_workers

    width = resolve_workers(workers)

    if width > 1 and len(benchmarks) > 1:
        # Per-kernel parallelism wins; keep each kernel's unit pool serial.
        def one(benchmark: str) -> KernelReport:
            return kernel_report(
                benchmark, platform, workers=1, **report_kwargs
            )

        with ThreadPoolExecutor(max_workers=width) as pool:
            # map preserves input order -> deterministic result list.
            return list(pool.map(one, benchmarks))
    return [
        kernel_report(benchmark, platform, workers=workers, **report_kwargs)
        for benchmark in benchmarks
    ]


@dataclass
class Comparison:
    """PolyUFC static caps vs the reactive-driver baseline."""

    benchmark: str
    platform: str
    baseline: SequenceResult
    capped: SequenceResult

    @property
    def speedup(self) -> float:
        return self.baseline.time_s / self.capped.time_s

    @property
    def energy_gain(self) -> float:
        return self.baseline.energy_j / self.capped.energy_j

    @property
    def edp_gain(self) -> float:
        return self.baseline.edp / self.capped.edp

    @property
    def edp_improvement_pct(self) -> float:
        return (1.0 - self.capped.edp / self.baseline.edp) * 100.0


def baseline_comparison(
    benchmark: str,
    platform: str,
    governor: Optional[GovernorConfig] = None,
    reps: Optional[int] = None,
    target_runtime_s: float = 5e-3,
    **report_kwargs,
) -> Comparison:
    """Run PolyUFC-capped code vs the UFS-like reactive baseline.

    The kernel sequence is repeated ``reps`` times back to back (real
    measurements run paper-scale kernels whose durations dwarf the per-cap
    driver overhead; repetitions restore that time scale -- redundant cap
    calls after the first iteration cost nothing because the rewrite keeps
    only cap *changes*).  By default ``reps`` is sized so the baseline run
    lasts about ``target_runtime_s``.
    """
    report = kernel_report(benchmark, platform, **report_kwargs)
    plat = get_platform(platform)
    workloads = [unit.workload(plat.threads) for unit in report.units]
    if reps is None:
        once = sum(
            execute_fixed(plat, wl, plat.uncore.f_max_ghz, noisy=False).time_s
            for wl in workloads
        )
        reps = max(1, min(5000, int(round(target_runtime_s / max(once, 1e-9)))))
    sequence = workloads * reps
    caps = [
        (wl, unit.cap_ghz) for wl, unit in zip(workloads, report.units)
    ] * reps
    baseline = run_governed_sequence(
        plat, sequence, governor or GovernorConfig()
    )
    capped = run_capped_sequence(plat, caps)
    return Comparison(benchmark, plat.name, baseline, capped)


def frequency_sweep(
    benchmark: str,
    platform: str,
    **report_kwargs,
) -> List[Tuple[float, float, float, float]]:
    """(f, time, energy, EDP) of the whole kernel at each fixed cap."""
    report = kernel_report(benchmark, platform, **report_kwargs)
    plat = get_platform(platform)
    workloads = [unit.workload(plat.threads) for unit in report.units]
    rows = []
    for f in plat.uncore.frequencies():
        time_s = 0.0
        energy_j = 0.0
        for workload in workloads:
            run = execute_fixed(plat, workload, f)
            time_s += run.time_s
            energy_j += run.energy_j
        rows.append((f, time_s, energy_j, energy_j * time_s))
    return rows
