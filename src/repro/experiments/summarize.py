"""Regenerate the EXPERIMENTS.md headline numbers from the cache.

Run:  python -m repro.experiments.summarize [rpl|bdw|all]

Prints, per platform: the PolyBench-22 CB/BB split, the per-kernel Fig. 7
comparison, geomean EDP improvement, and the Tab. I calibration summary.
"""

from __future__ import annotations

import math
import sys
from typing import List

from repro.benchsuite import ml_benchmarks, paper22_names
from repro.experiments.runner import baseline_comparison, kernel_report
from repro.hw.platform import get_platform
from repro.pipeline import get_constants


def summarize_platform(platform_name: str) -> None:
    platform = get_platform(platform_name)
    constants = get_constants(platform)
    print(f"\n================ {platform.name} ================")
    print(
        f"Tab. I: peak {1 / constants.t_fpu / 1e9:.1f} Gflop/s, "
        f"B^t {constants.b_t_dram:.2f} FpB, "
        f"f_sat {constants.saturation_freq():.2f} GHz, "
        f"p_con {constants.p_con:.1f} W, rho {constants.overlap_rho:.2f}"
    )

    cb = bb = 0
    for kernel in paper22_names():
        report = kernel_report(kernel, platform_name)
        if report.boundedness == "CB":
            cb += 1
        else:
            bb += 1
    print(f"Fig. 6: PolyBench-22 split {cb} CB / {bb} BB")

    print("Fig. 7: PolyUFC vs UFS baseline")
    print(f"  {'kernel':<20}{'class':>6}{'time':>9}{'energy':>9}{'EDP':>9}")
    gains: List[float] = []
    caveats: List[str] = []
    kernels = sorted(set(paper22_names()) | set(ml_benchmarks()))
    for kernel in kernels:
        report = kernel_report(kernel, platform_name)
        comparison = baseline_comparison(kernel, platform_name)
        if kernel in set(paper22_names()):
            gains.append(comparison.edp_gain)
        for unit in report.units:
            if unit.degraded != "exact" or unit.cm_note or unit.warning:
                note = unit.cm_note or unit.warning or ""
                caveats.append(
                    f"{kernel}/{unit.name}: {unit.degraded}"
                    + (f" ({note})" if note else "")
                )

        def imp(gain: float) -> str:
            return f"{(1 - 1 / gain) * 100:+.1f}%"

        # "*" flags kernels whose caps rest on degraded/annotated units.
        flag = "*" if not report.fully_exact or report.noted_units else ""
        print(
            f"  {kernel + flag:<20}{report.boundedness:>6}"
            f"{imp(comparison.speedup):>9}{imp(comparison.energy_gain):>9}"
            f"{imp(comparison.edp_gain):>9}"
        )
    geomean = math.exp(sum(math.log(g) for g in gains) / len(gains))
    print(
        f"  PolyBench geomean EDP improvement: "
        f"{(1 - 1 / geomean) * 100:+.1f}%"
    )
    if caveats:
        print("  * non-exact / annotated units:")
        for line in caveats:
            print(f"      {line}")


def main(argv: List[str] = None) -> int:
    argv = sys.argv[1:] if argv is None else argv
    target = argv[0] if argv else "all"
    platforms = ["rpl", "bdw"] if target == "all" else [target]
    for platform_name in platforms:
        summarize_platform(platform_name)
    return 0


if __name__ == "__main__":
    sys.exit(main())
