"""Experiment runner: compile + measure benchmarks, store-backed.

The heavy artifacts (PolyUFC compilation, trace simulation) persist in
the content-addressed service store (``repro.service.store``) under
``.polyufc_cache/store/``, so regenerating a table or figure is fast
after the first run -- and the batch scheduler, HTTP front and this
runner all share one source of truth.  Set ``REPRO_CACHE_DIR`` /
``REPRO_STORE_DIR`` to relocate the store or ``REPRO_NO_CACHE=1`` to
disable it.
"""

from repro.experiments.runner import (
    KernelReport,
    UnitReport,
    baseline_comparison,
    frequency_sweep,
    kernel_report,
    kernel_reports,
    cache_dir,
)

__all__ = [
    "KernelReport",
    "UnitReport",
    "baseline_comparison",
    "frequency_sweep",
    "kernel_report",
    "kernel_reports",
    "cache_dir",
]
