"""Experiment runner: compile + measure benchmarks, with disk caching.

The heavy artifacts (PolyUFC compilation, trace simulation) are cached as
JSON under ``.polyufc_cache/`` keyed by benchmark, platform and
configuration, so regenerating a table or figure is fast after the first
run.  Set ``REPRO_CACHE_DIR`` to relocate the cache or
``REPRO_NO_CACHE=1`` to disable it.
"""

from repro.experiments.runner import (
    KernelReport,
    UnitReport,
    baseline_comparison,
    frequency_sweep,
    kernel_report,
    kernel_reports,
    cache_dir,
)

__all__ = [
    "KernelReport",
    "UnitReport",
    "baseline_comparison",
    "frequency_sweep",
    "kernel_report",
    "kernel_reports",
    "cache_dir",
]
