"""POLYUFC-SEARCH (paper Sec. VI-C).

Eqns 4 and 10 are non-linear in ``f_c`` and ``I`` and induce a non-convex
space; rather than convex relaxations the paper uses a **binary search with
0.1 GHz steps**, guided by the bottleneck characterization, over the model's
performance/bandwidth/EDP estimates:

* the binary search halves the frequency interval, comparing the objective
  at adjacent grid points to decide which half contains the optimum
  (~log2(39) probes on RPL's 39-step range, "search precision" Sec. VII-F),
* an epsilon-guided refinement then applies the paper's tuning rule: for CB
  kernels the cap keeps *descending* while the relative performance loss
  does not exceed the relative bandwidth loss by more than ``epsilon``; for
  BB kernels the cap keeps *ascending* while performance gains track
  bandwidth gains within ``epsilon``,
* the search terminates when the frequency stabilizes between iterations or
  the space is exhausted.

Objectives: ``edp`` (default), ``energy``, ``performance``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, List, Tuple

from repro.hw.platform import UncoreSpec
from repro.model.parametric import PolyUFCModel

OBJECTIVES = ("edp", "energy", "performance")


@dataclass(frozen=True)
class SearchConfig:
    """Search knobs; epsilon defaults to the paper's 1e-3 (Sec. VII-E)."""

    objective: str = "edp"
    epsilon: float = 1e-3
    max_iterations: int = 64

    def __post_init__(self):
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"objective {self.objective!r} not in {OBJECTIVES}"
            )


@dataclass(frozen=True)
class SearchStep:
    """One evaluated frequency (for the search trace)."""

    f_ghz: float
    perf_flops: float
    bandwidth_bps: float
    edp: float
    energy_j: float


@dataclass
class SearchResult:
    """The selected cap and how it was found."""

    f_cap_ghz: float
    objective: str
    objective_value: float
    boundedness: str
    steps: List[SearchStep] = field(default_factory=list)
    converged: bool = True

    @property
    def iterations(self) -> int:
        return len(self.steps)


def polyufc_search(
    model: PolyUFCModel,
    uncore: UncoreSpec,
    config: SearchConfig = SearchConfig(),
) -> SearchResult:
    """Select an uncore frequency cap for one kernel."""
    freqs = uncore.frequencies()
    steps: List[SearchStep] = []

    def evaluate(f: float) -> SearchStep:
        bandwidth = model.bandwidth_bps(f)
        # Flop-free units (e.g. linalg.fill) have zero flop "performance";
        # their progress rate is their bandwidth.
        perf = model.perf_flops(f) if model.kernel.omega > 0 else bandwidth
        step = SearchStep(
            f_ghz=f,
            perf_flops=perf,
            bandwidth_bps=bandwidth,
            edp=model.edp(f),
            energy_j=model.energy_j(f),
        )
        steps.append(step)
        return step

    objective_of: Callable[[SearchStep], float] = {
        "edp": lambda s: s.edp,
        "energy": lambda s: s.energy_j,
        "performance": lambda s: -s.perf_flops,
    }[config.objective]

    # --- phase 1: binary search over the frequency grid ----------------------
    lo, hi = 0, len(freqs) - 1
    iterations = 0
    while hi - lo > 1 and iterations < config.max_iterations:
        iterations += 1
        mid = (lo + hi) // 2
        here = objective_of(evaluate(freqs[mid]))
        there = objective_of(evaluate(freqs[mid + 1]))
        if here <= there:
            hi = mid
        else:
            lo = mid + 1
    candidates = [evaluate(freqs[index]) for index in sorted({lo, hi})]
    best = min(candidates, key=objective_of)

    # --- phase 2: epsilon-guided directional refinement ----------------------
    converged = iterations < config.max_iterations
    index = freqs.index(best.f_ghz)

    def ratio(num: float, den: float) -> float:
        # Zero-work units (degraded fallbacks) have zero perf/bandwidth
        # everywhere; treat their ratios as flat rather than dividing by 0.
        return num / den if den > 0.0 else 1.0

    if model.characterization.is_compute_bound:
        # Descend while performance loss stays within epsilon of BW loss.
        while index > 0:
            lower = evaluate(freqs[index - 1])
            perf_loss = 1.0 - ratio(lower.perf_flops, best.perf_flops)
            bw_loss = 1.0 - ratio(lower.bandwidth_bps, best.bandwidth_bps)
            improves = objective_of(lower) <= objective_of(best)
            if perf_loss - bw_loss > config.epsilon or not improves:
                break
            best = lower
            index -= 1
    else:
        # Ascend to prioritize performance while bandwidth and performance
        # gains stay aligned (the kernel is still bandwidth-limited), up to
        # the fitted bandwidth-saturation frequency -- beyond it extra
        # uncore frequency buys no bandwidth, only power.
        saturation = model.constants.saturation_freq()
        while index < len(freqs) - 1:
            next_freq = freqs[index + 1]
            if next_freq > saturation + 0.05:
                break
            higher = evaluate(next_freq)
            perf_gain = ratio(higher.perf_flops, best.perf_flops) - 1.0
            bw_gain = ratio(higher.bandwidth_bps, best.bandwidth_bps) - 1.0
            aligned = bw_gain - perf_gain <= config.epsilon
            if not aligned or perf_gain <= -config.epsilon:
                break
            best = higher
            index += 1

    return SearchResult(
        f_cap_ghz=best.f_ghz,
        objective=config.objective,
        objective_value=objective_of(best),
        boundedness=str(model.boundedness),
        steps=steps,
        converged=converged,
    )
