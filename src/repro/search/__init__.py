"""POLYUFC-SEARCH: uncore frequency cap selection (paper Sec. VI-C)."""

from repro.search.polyufc_search import (
    SearchConfig,
    SearchResult,
    SearchStep,
    polyufc_search,
)

__all__ = ["SearchConfig", "SearchResult", "SearchStep", "polyufc_search"]
