"""POLYUFC-SEARCH: uncore frequency cap selection (paper Sec. VI-C)."""

from repro.search.polyufc_search import (
    SearchConfig,
    SearchResult,
    SearchStep,
    polyufc_search,
)
from repro.search.joint import (
    JOINT_OBJECTIVES,
    JointCapResult,
    joint_cap_search,
)

__all__ = [
    "SearchConfig",
    "SearchResult",
    "SearchStep",
    "polyufc_search",
    "JOINT_OBJECTIVES",
    "JointCapResult",
    "joint_cap_search",
]
