"""Joint socket-wide cap selection for co-scheduled tenants.

``polyufc_search`` picks each kernel's cap *in isolation* -- correct when
the kernel owns the socket.  With 2-4 co-scheduled tenants the uncore
clock is one shared knob and DRAM bandwidth is one shared pipe, so the
right cap is a property of the *combination*: a bandwidth-bound tenant
pushes the joint choice up (its traffic now shares a saturated pipe), a
compute-bound one pulls it down.

The solve is a grid sweep over the platform's cap frequencies using the
same Eqns 2-11 models isolation search uses, plus a proportional
bandwidth-saturation correction: at frequency ``f`` each tenant would
demand ``b_i = Q_i / t_i(f)`` bytes/s in isolation; when the sum exceeds
the roofline bandwidth ``B(f)`` everyone's *memory portion* stretches by
the oversubscription ratio.  The socket objective is

    EDP_socket(f) = (sum_i E_i'(f)) * max_i t_i'(f)

(total energy times makespan); ``energy`` and ``performance`` objectives
mirror ``SearchConfig``'s vocabulary.

This is the compile-time member of the tenancy shoot-out: it knows only
the PolyUFC model counters, not the ground-truth contention the simulator
applies (LLC displacement, exact sharing), so the simulated oracle can
still beat it -- that gap is the result, not a bug.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Sequence, Tuple

from repro.model.parametric import KernelSummary, PolyUFCModel
from repro.roofline.constants import RooflineConstants

JOINT_OBJECTIVES = ("edp", "energy", "performance")


@dataclass(frozen=True)
class JointCapResult:
    """One joint solve: the shared cap and its predicted per-tenant cost."""

    f_ghz: float
    objective: str
    socket_edp: float
    socket_energy_j: float
    makespan_s: float
    tenant_times_s: Tuple[float, ...]
    tenant_energies_j: Tuple[float, ...]


def _combined_cost(
    models: Sequence[PolyUFCModel],
    constants: RooflineConstants,
    f_ghz: float,
) -> Tuple[float, float, List[float], List[float]]:
    """(energy, makespan, per-tenant times, energies) at one shared cap."""
    times = [model.time_s(f_ghz) for model in models]
    demand = sum(
        model.kernel.q_dram_bytes / t
        for model, t in zip(models, times)
        if t > 0
    )
    capacity = constants.bandwidth_at(f_ghz)
    scale = 1.0
    if demand > 0 and capacity > 0:
        scale = min(1.0, capacity / demand)
    stretched: List[float] = []
    energies: List[float] = []
    for model, t in zip(models, times):
        if t <= 0:
            stretched.append(0.0)
            energies.append(0.0)
            continue
        memory_fraction = min(1.0, model.memory_time_s(f_ghz) / t)
        t_prime = t * (1.0 + memory_fraction * (1.0 / scale - 1.0))
        stretched.append(t_prime)
        energies.append(model.power_w(f_ghz) * t_prime)
    return sum(energies), max(stretched, default=0.0), stretched, energies


def joint_cap_search(
    constants: RooflineConstants,
    kernels: Sequence[KernelSummary],
    frequencies: Optional[Sequence[float]] = None,
    objective: str = "edp",
) -> JointCapResult:
    """Pick one shared uncore cap for co-resident kernels.

    ``frequencies`` is the platform's cap grid
    (``platform.uncore.frequencies()``); pass it explicitly so the solve
    lands on selectable caps.
    """
    if objective not in JOINT_OBJECTIVES:
        raise ValueError(
            f"objective must be one of {JOINT_OBJECTIVES}, got {objective!r}"
        )
    if not kernels:
        raise ValueError("joint_cap_search needs at least one kernel")
    grid = list(frequencies) if frequencies is not None else []
    if not grid:
        raise ValueError(
            "joint_cap_search needs a non-empty frequency grid "
            "(platform.uncore.frequencies())"
        )
    models = [PolyUFCModel(constants, kernel) for kernel in kernels]
    best: Optional[JointCapResult] = None
    best_key = float("inf")
    for f in grid:
        energy, makespan, times, energies = _combined_cost(
            models, constants, f
        )
        edp = energy * makespan
        key = {
            "edp": edp,
            "energy": energy,
            "performance": makespan,
        }[objective]
        if key < best_key:
            best_key = key
            best = JointCapResult(
                f_ghz=f,
                objective=objective,
                socket_edp=edp,
                socket_energy_j=energy,
                makespan_s=makespan,
                tenant_times_s=tuple(times),
                tenant_energies_j=tuple(energies),
            )
    assert best is not None
    return best
