"""Fourier-Motzkin elimination over lists of affine constraints.

Equalities are used as exact substitutions whenever possible; inequalities
are combined pairwise.  The result is the *rational* projection: it may be
slightly larger than the integer projection (isl computes the exact integer
hull).  On the quasi-affine sets produced by the PolyUFC front end the two
coincide; see DESIGN.md for the substitution note.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Sequence, Tuple

from repro.isllite.constraint import Constraint
from repro.isllite.linexpr import LinExpr

#: A constraint that is always false, used to mark infeasible systems.
FALSE_CONSTRAINT = Constraint(LinExpr.cst(-1))


def simplify(constraints: Iterable[Constraint]) -> List[Constraint]:
    """Drop trivially-true and syntactically dominated constraints.

    Returns ``[FALSE_CONSTRAINT]`` when a trivially false constraint is
    present, so callers can test infeasibility cheaply.
    """
    equalities: List[Constraint] = []
    by_coeffs: Dict[frozenset, Constraint] = {}
    for con in constraints:
        if con.is_trivially_false():
            return [FALSE_CONSTRAINT]
        if con.is_trivially_true():
            continue
        if con.is_eq:
            if con not in equalities:
                equalities.append(con)
            continue
        key = frozenset(con.expr.coeffs.items())
        existing = by_coeffs.get(key)
        # Same slope: the smaller constant is the tighter ``expr >= 0``.
        if existing is None or con.expr.const < existing.expr.const:
            by_coeffs[key] = con
    result = equalities + list(by_coeffs.values())
    # Detect directly contradicting inequality pairs e >= 0 and -e - k >= 0.
    for con in by_coeffs.values():
        negated_key = frozenset(
            (name, -coeff) for name, coeff in con.expr.coeffs.items()
        )
        other = by_coeffs.get(negated_key)
        if other is not None and con.expr.const + other.expr.const < 0:
            return [FALSE_CONSTRAINT]
    return result


def substitute_equality(
    con: Constraint, name: str, coeff: int, rest: LinExpr
) -> Constraint:
    """Substitute using the equality ``coeff * name + rest == 0``."""
    d = con.expr.coeff(name)
    if d == 0:
        return con
    magnitude = abs(coeff)
    sign = 1 if coeff > 0 else -1
    scaled = con.expr * magnitude
    without = scaled + LinExpr.var(name, -d * magnitude)
    return Constraint(without + rest * (-d * sign), con.is_eq)


def eliminate(constraints: Sequence[Constraint], name: str) -> List[Constraint]:
    """Eliminate one variable, returning the projected constraint list."""
    # Prefer an exact substitution through an equality involving ``name``.
    for con in constraints:
        if con.is_eq and con.expr.coeff(name) != 0:
            coeff = con.expr.coeff(name)
            rest = con.expr + LinExpr.var(name, -coeff)
            substituted = [
                substitute_equality(other, name, coeff, rest)
                for other in constraints
                if other is not con
            ]
            return simplify(substituted)

    lowers: List[Constraint] = []  # coeff > 0:  c*x + r >= 0  ->  x >= -r/c
    uppers: List[Constraint] = []  # coeff < 0
    free: List[Constraint] = []
    for con in constraints:
        coeff = con.expr.coeff(name)
        if coeff == 0:
            free.append(con)
        elif coeff > 0:
            lowers.append(con)
        else:
            uppers.append(con)
    combined: List[Constraint] = list(free)
    for low in lowers:
        cl = low.expr.coeff(name)
        for up in uppers:
            cu = up.expr.coeff(name)
            combined.append(Constraint(low.expr * (-cu) + up.expr * cl))
    return simplify(combined)


def project(
    constraints: Sequence[Constraint], names: Iterable[str]
) -> List[Constraint]:
    """Eliminate several variables (in the given order)."""
    current = simplify(constraints)
    for name in names:
        if current == [FALSE_CONSTRAINT]:
            return current
        current = eliminate(current, name)
    return current


def triangularize(
    constraints: Sequence[Constraint], dims: Sequence[str]
) -> List[List[Constraint]]:
    """Per-level constraint systems for polyhedron scanning.

    ``levels[i]`` constrains ``dims[:i+1]`` (plus any remaining free names
    such as parameters): it is the input system with ``dims[i+1:]``
    eliminated.  Enumeration walks level 0 outermost.
    """
    levels: List[List[Constraint]] = [list(simplify(constraints))] * len(dims)
    if not dims:
        return levels
    levels = [None] * len(dims)  # type: ignore[list-item]
    levels[len(dims) - 1] = simplify(constraints)
    for index in range(len(dims) - 2, -1, -1):
        levels[index] = eliminate(levels[index + 1], dims[index + 1])
    return levels


def constant_bounds(
    constraints: Sequence[Constraint], name: str
) -> Tuple[float, float]:
    """Rational bounds (lo, hi) for ``name`` from constraints where it is the
    only variable.  Returns ``(-inf, inf)`` components when unbounded."""
    lo = float("-inf")
    hi = float("inf")
    for con in constraints:
        coeff = con.expr.coeff(name)
        if coeff == 0 or con.expr.names() != frozenset({name}):
            continue
        bound = -con.expr.const / coeff
        if con.is_eq:
            lo = max(lo, bound)
            hi = min(hi, bound)
        elif coeff > 0:
            lo = max(lo, bound)
        else:
            hi = min(hi, bound)
    return lo, hi
