"""Lexicographic optimization over sets with fixed parameters.

``lexmin`` exploits the fact that :meth:`BasicSet.enumerate_points` yields
points in lexicographic order, so the first point is the lexicographic
minimum.  ``lexmax`` mirrors every dimension (``d -> -d``) and negates the
result, avoiding a descending scan implementation.
"""

from __future__ import annotations

from typing import Mapping, Optional, Tuple

from repro.isllite.linexpr import LinExpr
from repro.isllite.sets import BasicSet, Set


def _mirror(bset: BasicSet) -> BasicSet:
    constraints = bset.constraints
    for dim in bset.space.dims:
        constraints = tuple(
            c.substitute(dim, LinExpr.var(dim, -1)) for c in constraints
        )
    return BasicSet(bset.space, constraints)


def lexmin(
    obj, env: Mapping[str, int] = None
) -> Optional[Tuple[int, ...]]:
    """The lexicographically smallest integer point, or None if empty."""
    if isinstance(obj, BasicSet):
        return obj.sample(env)
    if isinstance(obj, Set):
        best: Optional[Tuple[int, ...]] = None
        for piece in obj.pieces:
            candidate = piece.sample(env)
            if candidate is not None and (best is None or candidate < best):
                best = candidate
        return best
    raise TypeError(f"cannot take lexmin of {type(obj).__name__}")


def lexmax(
    obj, env: Mapping[str, int] = None
) -> Optional[Tuple[int, ...]]:
    """The lexicographically largest integer point, or None if empty."""
    if isinstance(obj, BasicSet):
        point = _mirror(obj).sample(env)
        return None if point is None else tuple(-v for v in point)
    if isinstance(obj, Set):
        best: Optional[Tuple[int, ...]] = None
        for piece in obj.pieces:
            candidate = lexmax(piece, env)
            if candidate is not None and (best is None or candidate > best):
                best = candidate
        return best
    raise TypeError(f"cannot take lexmax of {type(obj).__name__}")
