"""Affine constraints: ``expr >= 0`` (inequality) or ``expr == 0`` (equality).

Constraints are normalized: coefficients are divided by their gcd (for
inequalities the constant is floored after division, which tightens the
constraint to its integer hull along that facet -- the same normalization isl
applies).
"""

from __future__ import annotations

import math
from typing import Mapping

from repro.isllite.linexpr import LinExpr, Number


class Constraint:
    """``expr >= 0`` when ``is_eq`` is False, ``expr == 0`` otherwise."""

    __slots__ = ("expr", "is_eq")

    def __init__(self, expr: LinExpr, is_eq: bool = False):
        object.__setattr__(self, "expr", _normalize(expr, is_eq))
        object.__setattr__(self, "is_eq", bool(is_eq))

    def __setattr__(self, name, value):
        raise AttributeError("Constraint is immutable")

    # -- inspection --------------------------------------------------------

    def names(self) -> frozenset:
        return self.expr.names()

    def is_trivially_true(self) -> bool:
        if not self.expr.is_constant():
            return False
        return self.expr.const == 0 if self.is_eq else self.expr.const >= 0

    def is_trivially_false(self) -> bool:
        if not self.expr.is_constant():
            return False
        return self.expr.const != 0 if self.is_eq else self.expr.const < 0

    def satisfied(self, env: Mapping[str, Number]) -> bool:
        value = self.expr.evaluate(env)
        return value == 0 if self.is_eq else value >= 0

    # -- transformation ----------------------------------------------------

    def partial(self, env: Mapping[str, Number]) -> "Constraint":
        return Constraint(self.expr.partial(env), self.is_eq)

    def rename(self, mapping: Mapping[str, str]) -> "Constraint":
        return Constraint(self.expr.rename(mapping), self.is_eq)

    def substitute(self, name: str, replacement: LinExpr) -> "Constraint":
        return Constraint(self.expr.substitute(name, replacement), self.is_eq)

    def negate(self) -> "Constraint":
        """Integer negation of an inequality: ``not (e >= 0)`` is ``-e - 1 >= 0``.

        Equalities cannot be negated into a single constraint; callers split
        them into two inequalities first.
        """
        if self.is_eq:
            raise ValueError("cannot negate an equality into one constraint")
        return Constraint(-self.expr - 1, is_eq=False)

    def as_inequalities(self):
        """An equality as the pair (e >= 0, -e >= 0); an inequality as itself."""
        if self.is_eq:
            return (Constraint(self.expr), Constraint(-self.expr))
        return (self,)

    # -- equality ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, Constraint):
            return NotImplemented
        return self.is_eq == other.is_eq and self.expr == other.expr

    def __hash__(self) -> int:
        return hash((self.expr, self.is_eq))

    def __repr__(self) -> str:
        op = "=" if self.is_eq else ">="
        return f"{self.expr!r} {op} 0"


def _normalize(expr: LinExpr, is_eq: bool) -> LinExpr:
    coeffs = expr.coeffs
    if not coeffs:
        return expr
    g = 0
    for coeff in coeffs.values():
        g = math.gcd(g, abs(coeff))
    if g <= 1:
        return expr
    if is_eq:
        if expr.const % g != 0:
            # ``g | const`` fails: the equality has no integer solutions.
            # Keep it un-normalized; emptiness checks will catch it.  We
            # cannot represent "false" as a single normalized equality.
            return expr
        return LinExpr({n: c // g for n, c in coeffs.items()}, expr.const // g)
    return LinExpr(
        {n: c // g for n, c in coeffs.items()}, math.floor(expr.const / g)
    )


def _pair(lhs, rhs):
    return LinExpr.coerce(lhs), LinExpr.coerce(rhs)


def eq(lhs, rhs=0) -> Constraint:
    """``lhs == rhs``."""
    left, right = _pair(lhs, rhs)
    return Constraint(left - right, is_eq=True)


def ge(lhs, rhs=0) -> Constraint:
    """``lhs >= rhs``."""
    left, right = _pair(lhs, rhs)
    return Constraint(left - right)


def le(lhs, rhs=0) -> Constraint:
    """``lhs <= rhs``."""
    left, right = _pair(lhs, rhs)
    return Constraint(right - left)


def gt(lhs, rhs=0) -> Constraint:
    """``lhs > rhs`` (integer: ``lhs >= rhs + 1``)."""
    left, right = _pair(lhs, rhs)
    return Constraint(left - right - 1)


def lt(lhs, rhs=0) -> Constraint:
    """``lhs < rhs`` (integer: ``lhs <= rhs - 1``)."""
    left, right = _pair(lhs, rhs)
    return Constraint(right - left - 1)
