"""Integer affine expressions over named variables.

A :class:`LinExpr` is ``sum_i c_i * x_i + const`` with integer coefficients
``c_i`` over named variables ``x_i`` (loop iterators, parameters, map input
and output dimensions are all just names).  Expressions are immutable and
hashable; arithmetic returns new expressions.
"""

from __future__ import annotations

from fractions import Fraction
from typing import Dict, Iterable, Mapping, Union

Number = Union[int, Fraction]


def _as_int(value: Number) -> int:
    """Coerce ``value`` to int, rejecting non-integral fractions."""
    if isinstance(value, bool):
        raise TypeError("bool is not a valid coefficient")
    if isinstance(value, int):
        return value
    if isinstance(value, Fraction):
        if value.denominator != 1:
            raise TypeError(f"non-integral coefficient {value!r}")
        return int(value)
    if isinstance(value, float):
        if not value.is_integer():
            raise TypeError(f"non-integral coefficient {value!r}")
        return int(value)
    raise TypeError(f"unsupported coefficient type {type(value).__name__}")


class LinExpr:
    """An immutable integer affine expression."""

    __slots__ = ("coeffs", "const", "_hash")

    def __init__(self, coeffs: Mapping[str, Number] = None, const: Number = 0):
        clean: Dict[str, int] = {}
        if coeffs:
            for name, coeff in coeffs.items():
                c = _as_int(coeff)
                if c != 0:
                    clean[name] = c
        object.__setattr__(self, "coeffs", clean)
        object.__setattr__(self, "const", _as_int(const))
        object.__setattr__(self, "_hash", None)

    def __setattr__(self, name, value):
        raise AttributeError("LinExpr is immutable")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def var(name: str, coeff: Number = 1) -> "LinExpr":
        """The expression ``coeff * name``."""
        return LinExpr({name: coeff})

    @staticmethod
    def cst(value: Number) -> "LinExpr":
        """The constant expression ``value``."""
        return LinExpr({}, value)

    @staticmethod
    def coerce(value: "LinExpr | Number") -> "LinExpr":
        """Turn an int/Fraction into a constant expression, pass LinExpr through."""
        if isinstance(value, LinExpr):
            return value
        return LinExpr.cst(value)

    # -- inspection --------------------------------------------------------

    def names(self) -> frozenset:
        """Variables with non-zero coefficients."""
        return frozenset(self.coeffs)

    def coeff(self, name: str) -> int:
        return self.coeffs.get(name, 0)

    def is_constant(self) -> bool:
        return not self.coeffs

    def evaluate(self, env: Mapping[str, Number]) -> Fraction:
        """Evaluate under a (possibly rational) assignment of all variables."""
        total = Fraction(self.const)
        for name, coeff in self.coeffs.items():
            total += coeff * Fraction(env[name])
        return total

    def evaluate_int(self, env: Mapping[str, int]) -> int:
        """Evaluate under an integer assignment (fast path, no Fractions)."""
        total = self.const
        for name, coeff in self.coeffs.items():
            total += coeff * env[name]
        return total

    def partial(self, env: Mapping[str, Number]) -> "LinExpr":
        """Substitute the variables present in ``env`` with constants."""
        coeffs = {n: c for n, c in self.coeffs.items() if n not in env}
        const = self.const
        for name, coeff in self.coeffs.items():
            if name in env:
                const += coeff * _as_int(env[name])
        return LinExpr(coeffs, const)

    def substitute(self, name: str, replacement: "LinExpr") -> "LinExpr":
        """Substitute ``name`` with another affine expression."""
        coeff = self.coeffs.get(name, 0)
        if coeff == 0:
            return self
        coeffs = dict(self.coeffs)
        del coeffs[name]
        result = LinExpr(coeffs, self.const)
        return result + replacement * coeff

    def rename(self, mapping: Mapping[str, str]) -> "LinExpr":
        """Rename variables; identity for names not in ``mapping``."""
        return LinExpr(
            {mapping.get(n, n): c for n, c in self.coeffs.items()}, self.const
        )

    # -- arithmetic --------------------------------------------------------

    def __add__(self, other) -> "LinExpr":
        other = LinExpr.coerce(other)
        coeffs = dict(self.coeffs)
        for name, coeff in other.coeffs.items():
            coeffs[name] = coeffs.get(name, 0) + coeff
        return LinExpr(coeffs, self.const + other.const)

    __radd__ = __add__

    def __neg__(self) -> "LinExpr":
        return LinExpr({n: -c for n, c in self.coeffs.items()}, -self.const)

    def __sub__(self, other) -> "LinExpr":
        return self + (-LinExpr.coerce(other))

    def __rsub__(self, other) -> "LinExpr":
        return LinExpr.coerce(other) - self

    def __mul__(self, scalar: Number) -> "LinExpr":
        s = _as_int(scalar)
        return LinExpr({n: c * s for n, c in self.coeffs.items()}, self.const * s)

    __rmul__ = __mul__

    # -- equality ----------------------------------------------------------

    def __eq__(self, other) -> bool:
        if not isinstance(other, LinExpr):
            return NotImplemented
        return self.coeffs == other.coeffs and self.const == other.const

    def __hash__(self) -> int:
        cached = self._hash
        if cached is None:
            cached = hash((frozenset(self.coeffs.items()), self.const))
            object.__setattr__(self, "_hash", cached)
        return cached

    def __repr__(self) -> str:
        parts = []
        for name in sorted(self.coeffs):
            coeff = self.coeffs[name]
            if coeff == 1:
                parts.append(name)
            elif coeff == -1:
                parts.append(f"-{name}")
            else:
                parts.append(f"{coeff}*{name}")
        if self.const or not parts:
            parts.append(str(self.const))
        text = " + ".join(parts).replace("+ -", "- ")
        return text


def sum_exprs(exprs: Iterable[LinExpr]) -> LinExpr:
    """Sum an iterable of expressions (empty sum is 0)."""
    total = LinExpr.cst(0)
    for expr in exprs:
        total = total + expr
    return total
