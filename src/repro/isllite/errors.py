"""Exceptions raised by the integer set library."""


class IslError(Exception):
    """Base class for all isllite errors."""


class SpaceMismatchError(IslError):
    """Two objects live in incompatible spaces."""


class CountBudgetExceeded(IslError):
    """Exact counting would exceed the enumeration budget.

    Raised only when Monte-Carlo estimation is disabled; otherwise counting
    silently degrades to an estimate (and reports it via
    :class:`repro.isllite.count.CountResult.exact`).
    """


class NonAffineError(IslError):
    """An expression outside the supported quasi-affine class was used."""
