"""Parametric (symbolic) point counting: the Ehrhart-lite layer.

barvinok computes piecewise quasi-polynomial counts of *parametric*
polytopes.  PolyUFC's evaluation fixes its problem sizes, so the numeric
engine in :mod:`repro.isllite.count` carries the pipeline -- but symbolic
counts are what make compile-time reasoning about problem-size scaling
possible, so this module provides them for the classes the paper's IR
actually produces (DESIGN.md: "constant-size tiling, parametric tiling
restricted to hyper-rectangular regions"):

* **products of independent parametric intervals** (hyper-rectangles whose
  bounds are affine in the parameters), counted as a product of span
  polynomials, and
* **ordered simplices** ``lo <= x1 <= x2 <= ... <= xk < hi`` (triangular
  loop nests), counted with binomial-coefficient polynomials.

Counts are returned as :class:`ParametricCount` -- a polynomial over the
parameters with rational coefficients -- and every returned object is
validated against numeric enumeration in the test suite.  Sets outside the
supported classes raise :class:`UnsupportedParametricSet`; callers fall
back to numeric counting.
"""

from __future__ import annotations

import itertools
import math
from dataclasses import dataclass
from fractions import Fraction
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from repro.isllite.errors import IslError
from repro.isllite.linexpr import LinExpr
from repro.isllite.sets import BasicSet


class UnsupportedParametricSet(IslError):
    """The set is outside the symbolically-countable class."""


#: A monomial over parameter names: ((name, power), ...) sorted by name.
Monomial = Tuple[Tuple[str, int], ...]


@dataclass(frozen=True)
class ParametricCount:
    """A polynomial in the parameters with Fraction coefficients.

    ``terms`` maps monomials to coefficients.  The zero polynomial is the
    empty mapping.  Evaluation requires every parameter to be bound.
    Negative evaluations are clamped to zero by :meth:`evaluate` -- a span
    polynomial like ``n - 3`` counts nothing for ``n < 3``.
    """

    terms: Tuple[Tuple[Monomial, Fraction], ...]

    @staticmethod
    def constant(value) -> "ParametricCount":
        value = Fraction(value)
        if value == 0:
            return ParametricCount(())
        return ParametricCount((((), value),))

    @staticmethod
    def from_linexpr(expr: LinExpr) -> "ParametricCount":
        terms: Dict[Monomial, Fraction] = {}
        if expr.const:
            terms[()] = Fraction(expr.const)
        for name, coeff in expr.coeffs.items():
            terms[((name, 1),)] = Fraction(coeff)
        return ParametricCount(tuple(sorted(terms.items())))

    # -- algebra -----------------------------------------------------------

    def _as_dict(self) -> Dict[Monomial, Fraction]:
        return dict(self.terms)

    def __add__(self, other: "ParametricCount") -> "ParametricCount":
        terms = self._as_dict()
        for monomial, coeff in other.terms:
            total = terms.get(monomial, Fraction(0)) + coeff
            if total:
                terms[monomial] = total
            else:
                terms.pop(monomial, None)
        return ParametricCount(tuple(sorted(terms.items())))

    def __mul__(self, other: "ParametricCount") -> "ParametricCount":
        terms: Dict[Monomial, Fraction] = {}
        for mono_a, coeff_a in self.terms:
            for mono_b, coeff_b in other.terms:
                powers: Dict[str, int] = {}
                for name, power in mono_a + mono_b:
                    powers[name] = powers.get(name, 0) + power
                monomial = tuple(sorted(powers.items()))
                total = terms.get(monomial, Fraction(0)) + coeff_a * coeff_b
                if total:
                    terms[monomial] = total
                else:
                    terms.pop(monomial, None)
        return ParametricCount(tuple(sorted(terms.items())))

    def scale(self, value) -> "ParametricCount":
        return self * ParametricCount.constant(value)

    # -- inspection ----------------------------------------------------------

    def degree(self) -> int:
        best = 0
        for monomial, _coeff in self.terms:
            best = max(best, sum(power for _n, power in monomial))
        return best

    def parameters(self) -> frozenset:
        names = set()
        for monomial, _ in self.terms:
            for name, _power in monomial:
                names.add(name)
        return frozenset(names)

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = Fraction(0)
        for monomial, coeff in self.terms:
            value = coeff
            for name, power in monomial:
                value *= Fraction(env[name]) ** power
            total += value
        if total.denominator != 1:
            raise IslError(f"non-integral parametric count {total}")
        return max(0, int(total))

    def __repr__(self) -> str:
        if not self.terms:
            return "0"
        parts = []
        for monomial, coeff in self.terms:
            factors = [str(coeff)] if coeff != 1 or not monomial else []
            for name, power in monomial:
                factors.append(name if power == 1 else f"{name}^{power}")
            parts.append("*".join(factors) if factors else "1")
        return " + ".join(parts)


def _span(lower: LinExpr, upper: LinExpr) -> ParametricCount:
    """Points in ``lower <= x <= upper``: the polynomial ``upper-lower+1``."""
    return ParametricCount.from_linexpr(upper - lower + 1)


@dataclass(frozen=True)
class ProductCount:
    """A rectangle count: a product of per-dimension span polynomials.

    Evaluation clamps each span at zero *before* multiplying, which keeps
    the count correct outside the validity chamber where the plain
    polynomial product of mixed-sign spans would go positive.
    ``polynomial()`` returns the chamber-valid single polynomial (barvinok's
    per-chamber quasi-polynomial).
    """

    spans: Tuple[ParametricCount, ...]

    def polynomial(self) -> ParametricCount:
        result = ParametricCount.constant(1)
        for span in self.spans:
            result = result * span
        return result

    def degree(self) -> int:
        return self.polynomial().degree()

    def parameters(self) -> frozenset:
        names = frozenset()
        for span in self.spans:
            names |= span.parameters()
        return names

    def evaluate(self, env: Mapping[str, int]) -> int:
        total = 1
        for span in self.spans:
            value = span.evaluate(env)  # clamped at zero per span
            if value == 0:
                return 0
            total *= value
        return total


@dataclass(frozen=True)
class SimplexCount:
    """An ordered-simplex count: ``C(span + k - 1, k)`` with span clamping."""

    span: ParametricCount
    k: int

    def polynomial(self) -> ParametricCount:
        result = ParametricCount.constant(Fraction(1, math.factorial(self.k)))
        base = self.span + ParametricCount.constant(self.k - 1)
        for offset in range(self.k):
            result = result * (base + ParametricCount.constant(-offset))
        return result

    def degree(self) -> int:
        return self.k

    def parameters(self) -> frozenset:
        return self.span.parameters()

    def evaluate(self, env: Mapping[str, int]) -> int:
        span_value = self.span.evaluate(env)
        if span_value <= 0:
            return 0
        return math.comb(span_value + self.k - 1, self.k)


def _interval_bounds(
    bset: BasicSet, dim: str
) -> Tuple[Optional[LinExpr], Optional[LinExpr]]:
    """The dim's (lower, upper) when all its constraints are parametric
    intervals with unit coefficient; None entries when absent."""
    lower: Optional[LinExpr] = None
    upper: Optional[LinExpr] = None
    dims = set(bset.space.dims)
    for con in bset.constraints:
        coeff = con.expr.coeff(dim)
        if coeff == 0:
            continue
        other_dims = (con.expr.names() - {dim}) & dims
        if other_dims or con.is_eq or abs(coeff) != 1:
            raise UnsupportedParametricSet(
                f"constraint {con!r} is not a parametric interval on {dim}"
            )
        rest = con.expr + LinExpr.var(dim, -coeff)
        if coeff > 0:  # x + rest >= 0  ->  x >= -rest
            bound = -rest
            if lower is not None:
                raise UnsupportedParametricSet(
                    f"multiple lower bounds on {dim}"
                )
            lower = bound
        else:  # -x + rest >= 0  ->  x <= rest
            bound = rest
            if upper is not None:
                raise UnsupportedParametricSet(
                    f"multiple upper bounds on {dim}"
                )
            upper = bound
    return lower, upper


def count_rectangle(bset: BasicSet) -> ProductCount:
    """Symbolic count of a parametric hyper-rectangle.

    Every constraint must bound a single dimension with an expression over
    parameters only; the count is the product of per-dimension span
    polynomials (clamped per span at evaluation, see :class:`ProductCount`).
    """
    spans: List[ParametricCount] = []
    for dim in bset.space.dims:
        lower, upper = _interval_bounds(bset, dim)
        if lower is None or upper is None:
            raise UnsupportedParametricSet(f"dimension {dim} is unbounded")
        spans.append(_span(lower, upper))
    return ProductCount(tuple(spans))


def count_ordered_simplex(bset: BasicSet) -> SimplexCount:
    """Symbolic count of ``lo <= x1 <= x2 <= ... <= xk <= hi``.

    The number of non-decreasing k-tuples from a span of size ``s`` is the
    multiset coefficient ``C(s + k - 1, k)``.
    """
    dims = bset.space.dims
    k = len(dims)
    if k == 0:
        raise UnsupportedParametricSet("no dimensions")
    lower: Optional[LinExpr] = None
    upper: Optional[LinExpr] = None
    chain_pairs = {
        (dims[index], dims[index + 1]) for index in range(k - 1)
    }
    seen_chain = set()
    for con in bset.constraints:
        if con.is_eq:
            raise UnsupportedParametricSet("equalities unsupported")
        involved = tuple(
            sorted(con.expr.names() & set(dims), key=dims.index)
        )
        if len(involved) == 2:
            first, second = involved
            if (
                (first, second) in chain_pairs
                and con.expr.coeff(second) == 1
                and con.expr.coeff(first) == -1
                and con.expr.const == 0
                and not (con.expr.names() - set(dims))
            ):
                seen_chain.add((first, second))
                continue
            raise UnsupportedParametricSet(f"non-chain constraint {con!r}")
        if len(involved) == 1:
            dim = involved[0]
            coeff = con.expr.coeff(dim)
            rest = con.expr + LinExpr.var(dim, -coeff)
            if coeff == 1 and dim == dims[0]:
                if lower is not None:
                    raise UnsupportedParametricSet("multiple lower bounds")
                lower = -rest
            elif coeff == -1 and dim == dims[-1]:
                if upper is not None:
                    raise UnsupportedParametricSet("multiple upper bounds")
                upper = rest
            else:
                raise UnsupportedParametricSet(
                    f"bound {con!r} not on the chain extremes"
                )
            continue
        raise UnsupportedParametricSet(f"unsupported constraint {con!r}")
    if seen_chain != chain_pairs:
        raise UnsupportedParametricSet("incomplete ordering chain")
    if lower is None or upper is None:
        raise UnsupportedParametricSet("chain is unbounded")
    return SimplexCount(ParametricCount.from_linexpr(upper - lower + 1), k)


def parametric_count(bset: BasicSet):
    """Symbolic count: rectangle first, ordered simplex as fallback."""
    try:
        return count_rectangle(bset)
    except UnsupportedParametricSet:
        return count_ordered_simplex(bset)
