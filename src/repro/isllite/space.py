"""Spaces: the (ordered, named) dimensions a set or map lives in."""

from __future__ import annotations

from typing import Iterable, Tuple

from repro.isllite.errors import IslError, SpaceMismatchError


def _as_names(names: Iterable[str]) -> Tuple[str, ...]:
    result = tuple(names)
    for name in result:
        if not isinstance(name, str) or not name:
            raise IslError(f"invalid dimension name {name!r}")
    if len(set(result)) != len(result):
        raise IslError(f"duplicate dimension names in {result}")
    return result


class Space:
    """The space of a set: ordered parameters and set dimensions."""

    __slots__ = ("params", "dims")

    def __init__(self, dims: Iterable[str] = (), params: Iterable[str] = ()):
        object.__setattr__(self, "params", _as_names(params))
        object.__setattr__(self, "dims", _as_names(dims))
        overlap = set(self.params) & set(self.dims)
        if overlap:
            raise IslError(f"names used as both param and dim: {sorted(overlap)}")

    def __setattr__(self, name, value):
        raise AttributeError("Space is immutable")

    def all_names(self) -> Tuple[str, ...]:
        return self.params + self.dims

    def check_compatible(self, other: "Space") -> None:
        if self.dims != other.dims or self.params != other.params:
            raise SpaceMismatchError(f"{self} vs {other}")

    def drop_dims(self, names) -> "Space":
        names = set(names)
        return Space(
            dims=[d for d in self.dims if d not in names], params=self.params
        )

    def __eq__(self, other) -> bool:
        if not isinstance(other, Space):
            return NotImplemented
        return self.params == other.params and self.dims == other.dims

    def __hash__(self) -> int:
        return hash((self.params, self.dims))

    def __repr__(self) -> str:
        return f"[{', '.join(self.params)}] -> {{ [{', '.join(self.dims)}] }}"


class MapSpace:
    """The space of a map: parameters, input dims and output dims."""

    __slots__ = ("params", "in_dims", "out_dims")

    def __init__(
        self,
        in_dims: Iterable[str],
        out_dims: Iterable[str],
        params: Iterable[str] = (),
    ):
        object.__setattr__(self, "params", _as_names(params))
        object.__setattr__(self, "in_dims", _as_names(in_dims))
        object.__setattr__(self, "out_dims", _as_names(out_dims))
        names = list(self.params) + list(self.in_dims) + list(self.out_dims)
        if len(set(names)) != len(names):
            raise IslError(f"overlapping names in map space: {names}")

    def __setattr__(self, name, value):
        raise AttributeError("MapSpace is immutable")

    def all_names(self) -> Tuple[str, ...]:
        return self.params + self.in_dims + self.out_dims

    def check_compatible(self, other: "MapSpace") -> None:
        if (
            self.params != other.params
            or self.in_dims != other.in_dims
            or self.out_dims != other.out_dims
        ):
            raise SpaceMismatchError(f"{self} vs {other}")

    def reversed(self) -> "MapSpace":
        return MapSpace(self.out_dims, self.in_dims, self.params)

    def domain_space(self) -> Space:
        return Space(self.in_dims, self.params)

    def range_space(self) -> Space:
        return Space(self.out_dims, self.params)

    def wrapped_space(self) -> Space:
        """The set space with in and out dims concatenated."""
        return Space(self.in_dims + self.out_dims, self.params)

    def __eq__(self, other) -> bool:
        if not isinstance(other, MapSpace):
            return NotImplemented
        return (
            self.params == other.params
            and self.in_dims == other.in_dims
            and self.out_dims == other.out_dims
        )

    def __hash__(self) -> int:
        return hash((self.params, self.in_dims, self.out_dims))

    def __repr__(self) -> str:
        return (
            f"[{', '.join(self.params)}] -> "
            f"{{ [{', '.join(self.in_dims)}] -> [{', '.join(self.out_dims)}] }}"
        )


def fresh_names(base: str, count: int, taken) -> Tuple[str, ...]:
    """Generate ``count`` names ``base0..`` avoiding the ``taken`` set."""
    taken = set(taken)
    result = []
    index = 0
    while len(result) < count:
        candidate = f"{base}{index}"
        if candidate not in taken:
            result.append(candidate)
            taken.add(candidate)
        index += 1
    return tuple(result)
