"""Integer maps (binary relations on integer tuples) and unions thereof."""

from __future__ import annotations

from typing import Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

from repro.isllite.constraint import Constraint, eq
from repro.isllite.errors import IslError
from repro.isllite.fm import project, simplify
from repro.isllite.linexpr import LinExpr
from repro.isllite.sets import BasicSet, Set
from repro.isllite.space import MapSpace, Space, fresh_names


class BasicMap:
    """A relation ``{ in -> out : constraints }`` as one conjunction."""

    __slots__ = ("space", "constraints")

    def __init__(self, space: MapSpace, constraints: Iterable[Constraint] = ()):
        object.__setattr__(self, "space", space)
        cons = simplify(constraints)
        allowed = set(space.all_names())
        for con in cons:
            extra = con.names() - allowed
            if extra:
                raise IslError(
                    f"constraint {con!r} uses names {sorted(extra)} "
                    f"outside map space {space!r}"
                )
        object.__setattr__(self, "constraints", tuple(cons))

    def __setattr__(self, name, value):
        raise AttributeError("BasicMap is immutable")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def from_exprs(
        in_dims: Sequence[str],
        out_exprs: Mapping[str, LinExpr],
        params: Sequence[str] = (),
        extra: Iterable[Constraint] = (),
    ) -> "BasicMap":
        """The graph of an affine function: ``out == expr(in, params)``."""
        space = MapSpace(in_dims, tuple(out_exprs), params)
        constraints: List[Constraint] = [
            eq(LinExpr.var(name), expr) for name, expr in out_exprs.items()
        ]
        constraints.extend(extra)
        return BasicMap(space, constraints)

    @staticmethod
    def identity(dims: Sequence[str], params: Sequence[str] = ()) -> "BasicMap":
        out_dims = tuple(f"{d}'" for d in dims)
        space = MapSpace(dims, out_dims, params)
        cons = [
            eq(LinExpr.var(o), LinExpr.var(i)) for i, o in zip(dims, out_dims)
        ]
        return BasicMap(space, cons)

    # -- basic structure ---------------------------------------------------

    def wrap(self) -> BasicSet:
        """The map as a set over the concatenated in+out dims."""
        return BasicSet(self.space.wrapped_space(), self.constraints)

    @staticmethod
    def from_wrapped(space: MapSpace, bset: BasicSet) -> "BasicMap":
        return BasicMap(space, bset.constraints)

    def reverse(self) -> "BasicMap":
        return BasicMap(self.space.reversed(), self.constraints)

    def domain(self) -> BasicSet:
        cons = project(self.constraints, self.space.out_dims)
        return BasicSet(self.space.domain_space(), cons)

    def range(self) -> BasicSet:
        cons = project(self.constraints, self.space.in_dims)
        return BasicSet(self.space.range_space(), cons)

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "BasicMap") -> "BasicMap":
        self.space.check_compatible(other.space)
        return BasicMap(self.space, self.constraints + other.constraints)

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicMap":
        return BasicMap(self.space, self.constraints + tuple(constraints))

    def intersect_domain(self, bset: BasicSet) -> "BasicMap":
        if bset.space.dims != self.space.in_dims:
            raise IslError(
                f"domain space {bset.space!r} does not match {self.space!r}"
            )
        return self.add_constraints(bset.constraints)

    def intersect_range(self, bset: BasicSet) -> "BasicMap":
        if bset.space.dims != self.space.out_dims:
            raise IslError(
                f"range space {bset.space!r} does not match {self.space!r}"
            )
        return self.add_constraints(bset.constraints)

    def fix_params(self, env: Mapping[str, int]) -> "BasicMap":
        remaining = tuple(p for p in self.space.params if p not in env)
        space = MapSpace(self.space.in_dims, self.space.out_dims, remaining)
        return BasicMap(space, [c.partial(env) for c in self.constraints])

    def rename(self, mapping: Mapping[str, str]) -> "BasicMap":
        space = MapSpace(
            [mapping.get(d, d) for d in self.space.in_dims],
            [mapping.get(d, d) for d in self.space.out_dims],
            [mapping.get(p, p) for p in self.space.params],
        )
        return BasicMap(space, [c.rename(mapping) for c in self.constraints])

    def apply_range(self, other: "BasicMap") -> "BasicMap":
        """Composition: ``self: A -> B``, ``other: B -> C`` gives ``A -> C``.

        The B dims are matched positionally, renamed to fresh names,
        conjoined and projected out.
        """
        if len(self.space.out_dims) != len(other.space.in_dims):
            raise IslError(
                f"arity mismatch composing {self.space!r} with {other.space!r}"
            )
        other = _avoid_collisions(other, self.space.in_dims)
        params = _merge_params(self.space.params, other.space.params)
        taken = (
            set(params)
            | set(self.space.in_dims)
            | set(other.space.out_dims)
        )
        mid = fresh_names("mid", len(self.space.out_dims), taken)
        left = self.rename(dict(zip(self.space.out_dims, mid)))
        right = other.rename(dict(zip(other.space.in_dims, mid)))
        cons = project(left.constraints + right.constraints, mid)
        space = MapSpace(self.space.in_dims, other.space.out_dims, params)
        return BasicMap(space, cons)

    def deltas(self) -> BasicSet:
        """The set ``{ out - in }`` for equal-arity maps (distance vectors)."""
        n = len(self.space.in_dims)
        if n != len(self.space.out_dims):
            raise IslError("deltas requires equal in/out arity")
        taken = set(self.space.all_names())
        delta_dims = fresh_names("delta", n, taken)
        cons: List[Constraint] = list(self.constraints)
        for d_name, in_name, out_name in zip(
            delta_dims, self.space.in_dims, self.space.out_dims
        ):
            cons.append(
                eq(LinExpr.var(d_name), LinExpr.var(out_name) - LinExpr.var(in_name))
            )
        projected = project(
            cons, list(self.space.in_dims) + list(self.space.out_dims)
        )
        return BasicSet(Space(delta_dims, self.space.params), projected)

    # -- evaluation --------------------------------------------------------

    def image_of(
        self, point: Sequence[int], env: Mapping[str, int] = None
    ) -> BasicSet:
        """The image of one input point as a set over the range space."""
        if len(point) != len(self.space.in_dims):
            raise IslError("point arity mismatch")
        assignment = dict(env or {})
        assignment.update(zip(self.space.in_dims, point))
        cons = [c.partial(assignment) for c in self.constraints]
        space = Space(
            self.space.out_dims,
            [p for p in self.space.params if p not in assignment],
        )
        return BasicSet(space, cons)

    def contains(
        self,
        in_point: Sequence[int],
        out_point: Sequence[int],
        env: Mapping[str, int] = None,
    ) -> bool:
        assignment: Dict[str, int] = dict(env or {})
        assignment.update(zip(self.space.in_dims, in_point))
        assignment.update(zip(self.space.out_dims, out_point))
        return all(c.satisfied(assignment) for c in self.constraints)

    def is_empty(self, env: Mapping[str, int] = None) -> bool:
        return self.wrap().is_empty(env)

    def to_map(self) -> "Map":
        return Map(self.space, [self])

    def __eq__(self, other) -> bool:
        if not isinstance(other, BasicMap):
            return NotImplemented
        return self.space == other.space and set(self.constraints) == set(
            other.constraints
        )

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.constraints)))

    def __repr__(self) -> str:
        cons = " and ".join(repr(c) for c in self.constraints) or "true"
        return (
            f"{{ [{', '.join(self.space.in_dims)}] -> "
            f"[{', '.join(self.space.out_dims)}] : {cons} }}"
        )


class Map:
    """A finite union of :class:`BasicMap` pieces in one map space."""

    __slots__ = ("space", "pieces")

    def __init__(self, space: MapSpace, pieces: Iterable[BasicMap] = ()):
        kept: List[BasicMap] = []
        seen = set()
        for piece in pieces:
            space.check_compatible(piece.space)
            if piece.constraints and piece.wrap().gist_is_false():
                continue
            if piece in seen:
                continue
            seen.add(piece)
            kept.append(piece)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "pieces", tuple(kept))

    def __setattr__(self, name, value):
        raise AttributeError("Map is immutable")

    @staticmethod
    def empty(space: MapSpace) -> "Map":
        return Map(space, ())

    def union(self, other: "Map") -> "Map":
        self.space.check_compatible(other.space)
        return Map(self.space, self.pieces + other.pieces)

    def intersect(self, other: "Map") -> "Map":
        self.space.check_compatible(other.space)
        pieces = [a.intersect(b) for a in self.pieces for b in other.pieces]
        return Map(self.space, pieces)

    def reverse(self) -> "Map":
        return Map(self.space.reversed(), [p.reverse() for p in self.pieces])

    def domain(self) -> Set:
        return Set(self.space.domain_space(), [p.domain() for p in self.pieces])

    def range(self) -> Set:
        return Set(self.space.range_space(), [p.range() for p in self.pieces])

    def intersect_domain(self, dom: Set) -> "Map":
        pieces = [
            p.intersect_domain(b) for p in self.pieces for b in dom.pieces
        ]
        return Map(self.space, pieces)

    def apply_range(self, other: "Map") -> "Map":
        pieces = [a.apply_range(b) for a in self.pieces for b in other.pieces]
        space = pieces[0].space if pieces else MapSpace(
            self.space.in_dims, other.space.out_dims, self.space.params
        )
        return Map(space, pieces)

    def deltas(self) -> Set:
        pieces = [p.deltas() for p in self.pieces]
        if pieces:
            return Set(pieces[0].space, pieces)
        n = len(self.space.in_dims)
        dims = fresh_names("delta", n, self.space.all_names())
        return Set.empty(Space(dims, self.space.params))

    def wrap(self) -> Set:
        return Set(
            self.space.wrapped_space(), [p.wrap() for p in self.pieces]
        )

    def fix_params(self, env: Mapping[str, int]) -> "Map":
        pieces = [p.fix_params(env) for p in self.pieces]
        remaining = tuple(p for p in self.space.params if p not in env)
        space = MapSpace(self.space.in_dims, self.space.out_dims, remaining)
        return Map(space, pieces)

    def image_of(
        self, point: Sequence[int], env: Mapping[str, int] = None
    ) -> Set:
        images = [p.image_of(point, env) for p in self.pieces]
        space = images[0].space if images else self.space.range_space()
        return Set(space, images)

    def contains(
        self,
        in_point: Sequence[int],
        out_point: Sequence[int],
        env: Mapping[str, int] = None,
    ) -> bool:
        return any(p.contains(in_point, out_point, env) for p in self.pieces)

    def is_empty(self, env: Mapping[str, int] = None) -> bool:
        return all(p.is_empty(env) for p in self.pieces)

    def __eq__(self, other) -> bool:
        if not isinstance(other, Map):
            return NotImplemented
        return self.space == other.space and set(self.pieces) == set(other.pieces)

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.pieces)))

    def __repr__(self) -> str:
        if not self.pieces:
            return f"{self.space!r} : false"
        return " union ".join(repr(p) for p in self.pieces)


def _merge_params(left: Tuple[str, ...], right: Tuple[str, ...]):
    merged = list(left)
    for name in right:
        if name not in merged:
            merged.append(name)
    return tuple(merged)


def _avoid_collisions(other: BasicMap, reserved: Sequence[str]) -> BasicMap:
    collisions = [d for d in other.space.out_dims if d in set(reserved)]
    if not collisions:
        return other
    taken = set(other.space.all_names()) | set(reserved)
    fresh = fresh_names("o", len(collisions), taken)
    return other.rename(dict(zip(collisions, fresh)))
