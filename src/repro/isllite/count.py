"""Counting integer points in sets: the barvinok substitute.

Counting strategy for a basic set with all parameters fixed:

1. decompose the dimensions into independent components (variables that never
   share a constraint factor into a product of lower-dimensional counts),
2. per component, closed form for rectangular boxes,
3. otherwise exact recursive scanning where the innermost dimension is
   counted as a whole range (never enumerated),
4. if the scan's estimated cost exceeds the budget, a seeded Monte-Carlo
   estimate over the bounding box (flagged ``exact=False``).

The returned :class:`CountResult` coerces to ``int``/``float`` so most call
sites can use it directly as a number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, List, Mapping, Optional, Sequence

import numpy as np

from repro.isllite.constraint import Constraint
from repro.isllite.errors import CountBudgetExceeded, IslError
from repro.isllite.sets import BasicSet, Set
from repro.isllite.space import Space
from repro.runtime import Deadline, faults

#: Scan ranges between cooperative deadline checkpoints.
_SCAN_CHECK_EVERY = 1024


@dataclass(frozen=True)
class CountOptions:
    """Knobs for the counting engine.

    ``deadline`` makes exact scans cooperative: an expired deadline mid-
    scan degrades to the Monte-Carlo estimate (when ``allow_estimate``)
    instead of finishing the enumeration, or raises
    :class:`repro.runtime.DeadlineExceeded` otherwise.
    """

    budget: int = 2_000_000
    mc_samples: int = 50_000
    seed: int = 0
    allow_estimate: bool = True
    deadline: Optional[Deadline] = None


@dataclass(frozen=True)
class CountResult:
    """A point count; ``exact`` is False for Monte-Carlo estimates."""

    value: float
    exact: bool = True

    def __int__(self) -> int:
        return int(round(self.value))

    def __float__(self) -> float:
        return float(self.value)

    def __add__(self, other):
        if isinstance(other, CountResult):
            return CountResult(self.value + other.value, self.exact and other.exact)
        return CountResult(self.value + other, self.exact)

    __radd__ = __add__

    def __eq__(self, other) -> bool:
        if isinstance(other, CountResult):
            return self.value == other.value and self.exact == other.exact
        return self.value == other


def _components(dims: Sequence[str], constraints: Sequence[Constraint]):
    """Partition dims into connected components of the co-occurrence graph."""
    parent: Dict[str, str] = {d: d for d in dims}

    def find(x: str) -> str:
        while parent[x] != x:
            parent[x] = parent[parent[x]]
            x = parent[x]
        return x

    def union(a: str, b: str) -> None:
        ra, rb = find(a), find(b)
        if ra != rb:
            parent[ra] = rb

    for con in constraints:
        involved = [n for n in con.names() if n in parent]
        for a, b in zip(involved, involved[1:]):
            union(a, b)
    groups: Dict[str, List[str]] = {}
    for dim in dims:
        groups.setdefault(find(dim), []).append(dim)
    return list(groups.values())


def _box_count(bset: BasicSet, env: Mapping[str, int]) -> Optional[int]:
    """Closed-form count when every constraint is univariate."""
    for con in bset.constraints:
        names = [n for n in con.expr.partial(env).names()]
        if len(names) > 1:
            return None
    total = 1
    for dim in bset.space.dims:
        lo, hi = bset.dim_bounds(dim, env)
        if lo > hi:
            return 0
        if math.isinf(lo) or math.isinf(hi):
            raise IslError(f"dimension {dim!r} unbounded while counting")
        span = math.floor(hi) - math.ceil(lo) + 1
        if span <= 0:
            return 0
        total *= span
    return total


def _scan_cost_estimate(bset: BasicSet, env: Mapping[str, int]) -> float:
    """Upper bound on the number of scan prefixes (product of outer spans)."""
    cost = 1.0
    for dim in bset.space.dims[:-1]:
        lo, hi = bset.dim_bounds(dim, env)
        if lo > hi:
            return 0.0
        if math.isinf(lo) or math.isinf(hi):
            return math.inf
        cost *= max(0.0, math.floor(hi) - math.ceil(lo) + 1)
    return cost


def _monte_carlo(
    bset: BasicSet, env: Mapping[str, int], options: CountOptions
) -> CountResult:
    dims = bset.space.dims
    lows: List[int] = []
    highs: List[int] = []
    for dim in dims:
        lo, hi = bset.dim_bounds(dim, env)
        if lo > hi:
            return CountResult(0, exact=True)
        if math.isinf(lo) or math.isinf(hi):
            raise IslError(f"dimension {dim!r} unbounded while sampling")
        lows.append(math.ceil(lo))
        highs.append(math.floor(hi))
    volume = 1.0
    for lo, hi in zip(lows, highs):
        if hi < lo:
            return CountResult(0, exact=True)
        volume *= hi - lo + 1
    rng = np.random.default_rng(options.seed)
    samples = rng.integers(
        low=lows,
        high=[h + 1 for h in highs],
        size=(options.mc_samples, len(dims)),
        dtype=np.int64,
    )
    hits = _count_contained(bset, samples, env)
    return CountResult(volume * hits / options.mc_samples, exact=False)


def _count_contained(
    bset: BasicSet, samples: np.ndarray, env: Mapping[str, int]
) -> int:
    """How many sample rows satisfy every constraint of ``bset``.

    Evaluates all constraints over the full ``(mc_samples, dims)`` matrix:
    with integer coefficient matrix ``A`` and constants ``b``, a row ``x``
    is inside iff ``A @ x + b`` is ``== 0`` on equality rows and ``>= 0``
    on inequality rows.  Falls back to the scalar ``contains`` walk when a
    constraint has non-integer coefficients after substitution.
    """
    dims = bset.space.dims
    substituted = [c.partial(env) for c in bset.constraints]
    rows: List[List[int]] = []
    consts: List[int] = []
    eq_flags: List[bool] = []
    for con in substituted:
        if not con.expr.names() <= set(dims):
            break
        coeffs = [con.expr.coeff(dim) for dim in dims]
        values = coeffs + [con.expr.const]
        if not all(float(v).is_integer() for v in values):
            break
        rows.append([int(v) for v in coeffs])
        consts.append(int(con.expr.const))
        eq_flags.append(con.is_eq)
    else:
        if not rows:
            return samples.shape[0]
        matrix = np.array(rows, dtype=np.int64)
        const = np.array(consts, dtype=np.int64)
        values = samples @ matrix.T + const  # (samples, constraints)
        is_eq = np.array(eq_flags, dtype=bool)
        inside = np.ones(samples.shape[0], dtype=bool)
        if is_eq.any():
            inside &= (values[:, is_eq] == 0).all(axis=1)
        if (~is_eq).any():
            inside &= (values[:, ~is_eq] >= 0).all(axis=1)
        return int(inside.sum())
    return sum(
        1
        for row in samples
        if bset.contains(tuple(int(v) for v in row), env)
    )


def _count_basic(
    bset: BasicSet, env: Mapping[str, int], options: CountOptions
) -> CountResult:
    if bset.gist_is_false():
        return CountResult(0)
    if not bset.space.dims:
        empty = bset.is_empty(env)
        return CountResult(0 if empty else 1)

    box = _box_count(bset, env)
    if box is not None:
        return CountResult(box)

    substituted = [c.partial(env) for c in bset.constraints]
    components = _components(bset.space.dims, substituted)
    if len(components) > 1:
        total = CountResult(1)
        for dims in components:
            names = set(dims)
            cons = [c for c in substituted if c.names() & names]
            sub = BasicSet(Space(tuple(dims)), cons)
            part = _count_basic(sub, {}, options)
            total = CountResult(
                total.value * part.value, total.exact and part.exact
            )
            if total.value == 0:
                return CountResult(0, exact=True)
        return total

    if _scan_cost_estimate(bset, env) > options.budget:
        if not options.allow_estimate:
            raise CountBudgetExceeded(
                f"scan of {bset.space!r} exceeds budget {options.budget}"
            )
        return _monte_carlo(bset, env, options)

    faults.fire("cm.count")
    deadline = options.deadline
    until_check = _SCAN_CHECK_EVERY
    total = 0
    for _prefix, lo, hi in bset.iter_ranges(env):
        total += hi - lo + 1
        if deadline is not None:
            until_check -= 1
            if until_check <= 0:
                until_check = _SCAN_CHECK_EVERY
                if deadline.expired():
                    # Degrade mid-scan: the Monte-Carlo estimate is cheap
                    # and bounded, the exact scan is not.
                    if options.allow_estimate:
                        return _monte_carlo(bset, env, options)
                    deadline.check("cm.count")
    return CountResult(total)


def count_points(
    obj, env: Mapping[str, int] = None, options: CountOptions = None
) -> CountResult:
    """Count integer points in a :class:`BasicSet` or :class:`Set`.

    ``env`` must fix every parameter of the space.  Unions are made disjoint
    before summing piece counts.
    """
    options = options or CountOptions()
    env = dict(env or {})
    if isinstance(obj, BasicSet):
        missing = [p for p in obj.space.params if p not in env]
        if missing:
            raise IslError(f"parameters {missing} not fixed for counting")
        return _count_basic(obj, env, options)
    if isinstance(obj, Set):
        missing = [p for p in obj.space.params if p not in env]
        if missing:
            raise IslError(f"parameters {missing} not fixed for counting")
        if not obj.pieces:
            return CountResult(0)
        if len(obj.pieces) == 1:
            return _count_basic(obj.pieces[0], env, options)
        total = CountResult(0)
        for piece in obj.make_disjoint().pieces:
            total = total + _count_basic(piece, env, options)
        return total
    raise TypeError(f"cannot count {type(obj).__name__}")
