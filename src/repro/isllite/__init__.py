"""A small integer set library (isl/barvinok substitute).

This package implements the subset of isl [Verdoolaege 2010] and barvinok
[Verdoolaege et al. 2007] that PolyUFC needs:

* affine expressions and constraints over named dimensions and parameters
  (:mod:`repro.isllite.linexpr`),
* basic sets / unions of basic sets with intersection, union, subtraction,
  projection (Fourier-Motzkin) and coalescing
  (:mod:`repro.isllite.sets`, :mod:`repro.isllite.fm`),
* basic maps / unions of basic maps with composition, inversion,
  domain/range operations and deltas (:mod:`repro.isllite.maps`),
* integer point counting -- the barvinok substitute -- with closed forms for
  rectangular boxes, exact recursive/vectorized enumeration for coupled
  dimensions, and a budgeted Monte-Carlo fallback
  (:mod:`repro.isllite.count`),
* lexicographic optimization over fixed parameters
  (:mod:`repro.isllite.lexmin`).

Rational (Fourier-Motzkin) projection is used where isl would compute exact
integer projections; this is a documented approximation (see DESIGN.md) that
is exact on the quasi-affine access/iteration sets produced by the PolyUFC
front end.
"""

from repro.isllite.errors import IslError, SpaceMismatchError, CountBudgetExceeded
from repro.isllite.linexpr import LinExpr
from repro.isllite.constraint import Constraint, eq, ge, le, gt, lt
from repro.isllite.space import Space, MapSpace
from repro.isllite.sets import BasicSet, Set
from repro.isllite.maps import BasicMap, Map
from repro.isllite.count import count_points, CountOptions
from repro.isllite.lexmin import lexmin, lexmax
from repro.isllite.parametric import (
    ParametricCount,
    ProductCount,
    SimplexCount,
    UnsupportedParametricSet,
    count_ordered_simplex,
    count_rectangle,
    parametric_count,
)

__all__ = [
    "IslError",
    "SpaceMismatchError",
    "CountBudgetExceeded",
    "LinExpr",
    "Constraint",
    "eq",
    "ge",
    "le",
    "gt",
    "lt",
    "Space",
    "MapSpace",
    "BasicSet",
    "Set",
    "BasicMap",
    "Map",
    "count_points",
    "CountOptions",
    "lexmin",
    "lexmax",
    "ParametricCount",
    "ProductCount",
    "SimplexCount",
    "UnsupportedParametricSet",
    "count_ordered_simplex",
    "count_rectangle",
    "parametric_count",
]
