"""Integer sets: conjunctions of affine constraints and unions thereof."""

from __future__ import annotations

import math
from fractions import Fraction
from typing import Dict, Iterable, Iterator, List, Mapping, Optional, Sequence, Tuple

import numpy as np

from repro.isllite.constraint import Constraint
from repro.isllite.errors import IslError, SpaceMismatchError
from repro.isllite.fm import (
    FALSE_CONSTRAINT,
    constant_bounds,
    project,
    simplify,
    triangularize,
)
from repro.isllite.linexpr import LinExpr
from repro.isllite.space import Space


class BasicSet:
    """A conjunction of affine constraints over a :class:`Space`."""

    __slots__ = ("space", "constraints", "_levels")

    def __init__(self, space: Space, constraints: Iterable[Constraint] = ()):
        object.__setattr__(self, "space", space)
        cons = simplify(constraints)
        allowed = set(space.all_names())
        for con in cons:
            extra = con.names() - allowed
            if extra:
                raise IslError(
                    f"constraint {con!r} uses names {sorted(extra)} "
                    f"outside space {space!r}"
                )
        object.__setattr__(self, "constraints", tuple(cons))
        object.__setattr__(self, "_levels", None)

    def __setattr__(self, name, value):
        raise AttributeError("BasicSet is immutable")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def universe(space: Space) -> "BasicSet":
        return BasicSet(space, ())

    @staticmethod
    def empty(space: Space) -> "BasicSet":
        return BasicSet(space, (FALSE_CONSTRAINT,))

    @staticmethod
    def from_box(
        space: Space, bounds: Mapping[str, Tuple[int, int]]
    ) -> "BasicSet":
        """Rectangular set: ``lo <= dim <= hi`` per entry of ``bounds``."""
        cons: List[Constraint] = []
        for name, (lo, hi) in bounds.items():
            cons.append(Constraint(LinExpr.var(name) - lo))
            cons.append(Constraint(LinExpr.cst(hi) - LinExpr.var(name)))
        return BasicSet(space, cons)

    # -- algebra -----------------------------------------------------------

    def intersect(self, other: "BasicSet") -> "BasicSet":
        self.space.check_compatible(other.space)
        return BasicSet(self.space, self.constraints + other.constraints)

    def add_constraints(self, constraints: Iterable[Constraint]) -> "BasicSet":
        return BasicSet(self.space, self.constraints + tuple(constraints))

    def fix_params(self, env: Mapping[str, int]) -> "BasicSet":
        """Substitute (some) parameters with integer values."""
        remaining = tuple(p for p in self.space.params if p not in env)
        space = Space(self.space.dims, remaining)
        return BasicSet(space, [c.partial(env) for c in self.constraints])

    def fix_dim(self, name: str, value: int) -> "BasicSet":
        """Fix a set dimension to a constant (the dim is removed)."""
        if name not in self.space.dims:
            raise IslError(f"{name!r} is not a dim of {self.space!r}")
        space = self.space.drop_dims([name])
        return BasicSet(space, [c.partial({name: value}) for c in self.constraints])

    def project_out(self, names: Iterable[str]) -> "BasicSet":
        names = list(names)
        for name in names:
            if name not in self.space.dims:
                raise IslError(f"{name!r} is not a dim of {self.space!r}")
        space = self.space.drop_dims(names)
        return BasicSet(space, project(self.constraints, names))

    def project_onto(self, names: Sequence[str]) -> "BasicSet":
        drop = [d for d in self.space.dims if d not in set(names)]
        return self.project_out(drop)

    def rename(self, mapping: Mapping[str, str]) -> "BasicSet":
        space = Space(
            [mapping.get(d, d) for d in self.space.dims],
            [mapping.get(p, p) for p in self.space.params],
        )
        return BasicSet(space, [c.rename(mapping) for c in self.constraints])

    def gist_is_false(self) -> bool:
        """Syntactic check: the constraint system is a known contradiction."""
        return self.constraints == (FALSE_CONSTRAINT,)

    # -- queries -----------------------------------------------------------

    def contains(self, point: Sequence[int], env: Mapping[str, int] = None) -> bool:
        assignment: Dict[str, int] = dict(env or {})
        if len(point) != len(self.space.dims):
            raise IslError("point arity mismatch")
        assignment.update(zip(self.space.dims, point))
        return all(c.satisfied(assignment) for c in self.constraints)

    def dim_bounds(
        self, name: str, env: Mapping[str, int] = None
    ) -> Tuple[float, float]:
        """Rational (lo, hi) bounds of one dim after projecting out the rest."""
        others = [d for d in self.space.dims if d != name]
        cons = project(self.constraints, others)
        if env:
            cons = simplify([c.partial(env) for c in cons])
        if cons == [FALSE_CONSTRAINT]:
            # Empty set: an inverted interval so spans come out non-positive.
            return float("inf"), float("-inf")
        return constant_bounds(cons, name)

    def _scan_levels(self) -> List[List[Constraint]]:
        levels = self._levels
        if levels is None:
            levels = triangularize(self.constraints, self.space.dims)
            object.__setattr__(self, "_levels", levels)
        return levels

    def _level_range(
        self, level: Sequence[Constraint], name: str, env: Mapping[str, int]
    ) -> Optional[Tuple[int, int]]:
        """Integer range of ``name`` at a scan level under ``env``; None if empty."""
        lo: Optional[Fraction] = None
        hi: Optional[Fraction] = None
        for con in level:
            partial = con.expr.partial(env)
            coeff = partial.coeff(name)
            if coeff == 0:
                if partial.names():
                    raise IslError(
                        f"scan level not triangular: {con!r} under {env}"
                    )
                if con.is_eq:
                    if partial.const != 0:
                        return None
                elif partial.const < 0:
                    return None
                continue
            bound = Fraction(-partial.const, coeff)
            if con.is_eq:
                lo = bound if lo is None else max(lo, bound)
                hi = bound if hi is None else min(hi, bound)
            elif coeff > 0:
                lo = bound if lo is None else max(lo, bound)
            else:
                hi = bound if hi is None else min(hi, bound)
        if lo is None or hi is None:
            raise IslError(f"dimension {name!r} is unbounded during scan")
        lo_int = math.ceil(lo)
        hi_int = math.floor(hi)
        if lo_int > hi_int:
            return None
        return lo_int, hi_int

    def iter_ranges(
        self, env: Mapping[str, int] = None
    ) -> Iterator[Tuple[Tuple[int, ...], int, int]]:
        """Yield ``(prefix, lo, hi)`` triples: for each assignment of the
        leading dims, the contiguous integer range of the last dim.

        Parameters must be fully fixed by ``env``.  For 0-dim sets a single
        ``((), 0, 0)`` is yielded when the set is non-empty.
        """
        env = dict(env or {})
        missing = [p for p in self.space.params if p not in env]
        if missing:
            raise IslError(f"unfixed parameters {missing} during scan")
        dims = self.space.dims
        if self.gist_is_false():
            return
        if not dims:
            if all(c.partial(env).is_trivially_true() for c in self.constraints):
                yield ((), 0, 0)
            return
        levels = self._scan_levels()

        def recurse(index: int, prefix: Tuple[int, ...]):
            bounds = self._level_range(levels[index], dims[index], env)
            if bounds is None:
                return
            lo, hi = bounds
            if index == len(dims) - 1:
                yield prefix, lo, hi
                return
            name = dims[index]
            for value in range(lo, hi + 1):
                env[name] = value
                yield from recurse(index + 1, prefix + (value,))
            del env[name]

        yield from recurse(0, ())

    def enumerate_points(
        self, env: Mapping[str, int] = None
    ) -> Iterator[Tuple[int, ...]]:
        """All integer points, in lexicographic order of the dims."""
        if not self.space.dims:
            for _prefix, _lo, _hi in self.iter_ranges(env):
                yield ()
            return
        for prefix, lo, hi in self.iter_ranges(env):
            for value in range(lo, hi + 1):
                yield prefix + (value,)

    def points_array(self, env: Mapping[str, int] = None) -> np.ndarray:
        """All integer points as an ``(n, n_dims)`` int64 array."""
        n_dims = len(self.space.dims)
        chunks: List[np.ndarray] = []
        for prefix, lo, hi in self.iter_ranges(env):
            span = hi - lo + 1
            block = np.empty((span, n_dims), dtype=np.int64)
            if prefix:
                block[:, :-1] = prefix
            block[:, n_dims - 1] = np.arange(lo, hi + 1)
            chunks.append(block)
        if not chunks:
            return np.empty((0, n_dims), dtype=np.int64)
        return np.concatenate(chunks, axis=0)

    def is_empty(self, env: Mapping[str, int] = None) -> bool:
        """Integer emptiness when all params are fixed by ``env``; otherwise a
        rational emptiness check (sound: True implies truly empty)."""
        if self.gist_is_false():
            return True
        params_fixed = env is not None and all(
            p in env for p in self.space.params
        )
        if params_fixed:
            for _ in self.iter_ranges(env):
                return False
            return True
        cons = self.constraints
        if env:
            cons = [c.partial(env) for c in cons]
        remaining = project(cons, list(self.space.dims) + list(self.space.params))
        return remaining == [FALSE_CONSTRAINT]

    def sample(self, env: Mapping[str, int] = None) -> Optional[Tuple[int, ...]]:
        for point in self.enumerate_points(env):
            return point
        return None

    def to_set(self) -> "Set":
        return Set(self.space, [self])

    def __eq__(self, other) -> bool:
        if not isinstance(other, BasicSet):
            return NotImplemented
        return self.space == other.space and set(self.constraints) == set(
            other.constraints
        )

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.constraints)))

    def __repr__(self) -> str:
        cons = " and ".join(repr(c) for c in self.constraints) or "true"
        return f"{{ [{', '.join(self.space.dims)}] : {cons} }}"


class Set:
    """A finite union of :class:`BasicSet` pieces in one space."""

    __slots__ = ("space", "pieces")

    def __init__(self, space: Space, pieces: Iterable[BasicSet] = ()):
        kept: List[BasicSet] = []
        seen = set()
        for piece in pieces:
            space.check_compatible(piece.space)
            if piece.gist_is_false():
                continue
            if piece in seen:
                continue
            seen.add(piece)
            kept.append(piece)
        object.__setattr__(self, "space", space)
        object.__setattr__(self, "pieces", tuple(kept))

    def __setattr__(self, name, value):
        raise AttributeError("Set is immutable")

    # -- constructors ------------------------------------------------------

    @staticmethod
    def empty(space: Space) -> "Set":
        return Set(space, ())

    @staticmethod
    def universe(space: Space) -> "Set":
        return Set(space, [BasicSet.universe(space)])

    # -- algebra -----------------------------------------------------------

    def union(self, other: "Set") -> "Set":
        self.space.check_compatible(other.space)
        return Set(self.space, self.pieces + other.pieces)

    def intersect(self, other: "Set") -> "Set":
        self.space.check_compatible(other.space)
        pieces = [
            a.intersect(b)
            for a in self.pieces
            for b in other.pieces
        ]
        return Set(self.space, pieces)

    def intersect_basic(self, bset: BasicSet) -> "Set":
        return Set(self.space, [p.intersect(bset) for p in self.pieces])

    def subtract(self, other: "Set") -> "Set":
        """Set difference.  Produces disjoint pieces per subtracted basic set
        by peeling one constraint at a time (the isl strategy)."""
        result = self
        for bset in other.pieces:
            result = result._subtract_basic(bset)
        return result

    def _subtract_basic(self, bset: BasicSet) -> "Set":
        inequalities: List[Constraint] = []
        for con in bset.constraints:
            inequalities.extend(con.as_inequalities())
        pieces: List[BasicSet] = []
        for mine in self.pieces:
            held: List[Constraint] = []
            for con in inequalities:
                piece = mine.add_constraints(held + [con.negate()])
                if not piece.gist_is_false():
                    pieces.append(piece)
                held.append(con)
        return Set(self.space, pieces)

    def coalesce(self) -> "Set":
        """Drop pieces syntactically contained in another piece.

        Piece P is contained in piece Q when Q's constraints are a subset of
        P's (fewer constraints describe a larger set).  Duplicate pieces are
        already removed by the constructor.
        """
        kept: List[BasicSet] = []
        dropped = set()
        for index, piece in enumerate(self.pieces):
            contained = False
            for other_index, other in enumerate(self.pieces):
                if other_index == index or other_index in dropped:
                    continue
                if piece.to_set()._subtract_basic(other).is_empty():
                    contained = True
                    break
            if contained:
                dropped.add(index)
            else:
                kept.append(piece)
        return Set(self.space, kept)

    def fix_params(self, env: Mapping[str, int]) -> "Set":
        pieces = [p.fix_params(env) for p in self.pieces]
        space = pieces[0].space if pieces else Space(
            self.space.dims,
            [p for p in self.space.params if p not in env],
        )
        return Set(space, pieces)

    def project_out(self, names: Iterable[str]) -> "Set":
        names = list(names)
        pieces = [p.project_out(names) for p in self.pieces]
        return Set(self.space.drop_dims(names), pieces)

    def rename(self, mapping: Mapping[str, str]) -> "Set":
        pieces = [p.rename(mapping) for p in self.pieces]
        space = Space(
            [mapping.get(d, d) for d in self.space.dims],
            [mapping.get(p, p) for p in self.space.params],
        )
        return Set(space, pieces)

    # -- queries -----------------------------------------------------------

    def contains(self, point: Sequence[int], env: Mapping[str, int] = None) -> bool:
        return any(p.contains(point, env) for p in self.pieces)

    def is_empty(self, env: Mapping[str, int] = None) -> bool:
        return all(p.is_empty(env) for p in self.pieces)

    def make_disjoint(self) -> "Set":
        """Rewrite the union so the pieces are pairwise disjoint."""
        disjoint: List[BasicSet] = []
        accumulated = Set.empty(self.space)
        for piece in self.pieces:
            fresh = piece.to_set().subtract(accumulated)
            disjoint.extend(fresh.pieces)
            accumulated = accumulated.union(piece.to_set())
        return Set(self.space, disjoint)

    def enumerate_points(
        self, env: Mapping[str, int] = None
    ) -> Iterator[Tuple[int, ...]]:
        if len(self.pieces) == 1:
            yield from self.pieces[0].enumerate_points(env)
            return
        for piece in self.make_disjoint().pieces:
            yield from piece.enumerate_points(env)

    def points_array(self, env: Mapping[str, int] = None) -> np.ndarray:
        source = self if len(self.pieces) <= 1 else self.make_disjoint()
        arrays = [p.points_array(env) for p in source.pieces]
        if not arrays:
            return np.empty((0, len(self.space.dims)), dtype=np.int64)
        return np.concatenate(arrays, axis=0)

    def sample(self, env: Mapping[str, int] = None) -> Optional[Tuple[int, ...]]:
        for piece in self.pieces:
            point = piece.sample(env)
            if point is not None:
                return point
        return None

    def __eq__(self, other) -> bool:
        if not isinstance(other, Set):
            return NotImplemented
        return self.space == other.space and set(self.pieces) == set(other.pieces)

    def __hash__(self) -> int:
        return hash((self.space, frozenset(self.pieces)))

    def __repr__(self) -> str:
        if not self.pieces:
            return f"{{ [{', '.join(self.space.dims)}] : false }}"
        return " union ".join(repr(p) for p in self.pieces)
