"""Job specifications and content digests for the characterization service.

A :class:`JobSpec` names everything that determines a characterization
result: the kernel (a registered benchmark, which fixes the problem
size), the platform (which fixes the cache hierarchy), the unit
granularity, the capping objective, the search tolerance ``epsilon``,
the tiling, the cap-overhead scaling, and the CM engine.  Its
:meth:`~JobSpec.digest` is a canonical SHA-256 over those fields *plus
the model versions* (report schema, CM memo, envelope format), so the
result store is content-addressed: two requests share a slot iff they
are guaranteed to produce the same numbers, and any model change
invalidates every stale slot at once.

``cm_timeout_s`` is deliberately **excluded** from the digest: it bounds
how long the computation may take, never what the exact result is (a
degraded result is not persisted at all -- see ``repro.service.store``).

The hardware-side workload (exact cache-simulator counters) depends on a
strict subset of the fields -- not on ``objective``, ``epsilon`` or
``cap_overhead_factor``, which only steer cap selection -- so it has its
own coarser :meth:`~JobSpec.workload_digest`, letting jobs that differ
only in those knobs share the expensive trace + simulation work.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field, replace
from functools import lru_cache
from typing import Mapping, Optional

from repro.cache.memo import MEMO_VERSION
from repro.cache.static_model import CM_ENGINES, resolve_engine
from repro.mlpolyufc.characterization import GRANULARITIES
from repro.mlpolyufc.reports import REPORT_SCHEMA_VERSION
from repro.runtime.io import ENVELOPE_VERSION, canonical_json

#: Bump when the digest recipe itself changes shape.
SPEC_VERSION = 1

OBJECTIVES = ("edp", "energy", "performance")
PLATFORM_NAMES = ("rpl", "bdw")


def shard_for(digest: str, shards: int) -> int:
    """Consistent digest -> shard routing (stable across processes).

    The digest is already a uniform SHA-256, so its leading 64 bits mod
    ``shards`` is an even, deterministic partition: every process (and
    every host) maps the same digest to the same shard, which is what
    keeps in-flight dedup and workload-counter reuse shard-local.
    """
    if shards <= 1:
        return 0
    return int(digest[:16], 16) % shards


def model_versions() -> dict:
    """The version tuple folded into every digest."""
    return {
        "spec": SPEC_VERSION,
        "report": REPORT_SCHEMA_VERSION,
        "memo": MEMO_VERSION,
        "envelope": ENVELOPE_VERSION,
    }


def versions_compatible(remote: dict) -> bool:
    """True iff a remote host's model versions match ours exactly.

    Digests fold the versions in, so two hosts disagreeing on any of
    them compute *different* digests for the same spec -- forwarding a
    job across that skew would silently break content addressing.  The
    federation health checker treats a mismatch as an unhealthy shard
    (fail over locally) rather than a hard error, so a rolling upgrade
    degrades instead of corrupting.
    """
    if not isinstance(remote, dict):
        return False
    local = model_versions()
    return {key: remote.get(key) for key in local} == local


@dataclass(frozen=True)
class JobSpec:
    """One characterization request (see module docstring)."""

    benchmark: str
    platform: str = "rpl"
    granularity: str = "linalg"
    objective: str = "edp"
    set_associative: bool = True
    tile_size: int = 32
    epsilon: float = 1e-3
    cap_overhead_factor: float = 50.0
    engine: Optional[str] = None
    #: Problem-size overrides for the benchmark's named size parameters
    #: (normalized to a sorted tuple of ``(name, int)`` pairs; a mapping
    #: is accepted at construction).  Folded into :meth:`digest` and
    #: :meth:`workload_digest` but **erased** from :meth:`family_digest`,
    #: so every instantiation of one kernel family shares a parametric
    #: characterization artifact.
    sizes: tuple = field(default=())
    #: Execution knob, not identity: excluded from the digest.
    cm_timeout_s: Optional[float] = None

    def __post_init__(self):
        raw = self.sizes
        pairs = raw.items() if isinstance(raw, Mapping) else tuple(raw or ())
        normalized = []
        for pair in pairs:
            try:
                name, value = pair
            except (TypeError, ValueError):
                raise ValueError(
                    f"job spec 'sizes' must map size names to ints, "
                    f"got {raw!r}"
                ) from None
            if (
                not isinstance(name, str)
                or isinstance(value, bool)
                or not isinstance(value, int)
            ):
                raise ValueError(
                    f"job spec 'sizes' must map size names to ints, "
                    f"got {raw!r}"
                )
            normalized.append((name, value))
        object.__setattr__(self, "sizes", tuple(sorted(normalized)))

    def validate(self) -> "JobSpec":
        """Raise ``ValueError`` on any malformed field; return self."""
        from repro.benchsuite import REGISTRY

        if self.benchmark not in REGISTRY:
            raise ValueError(f"unknown benchmark {self.benchmark!r}")
        if self.platform not in PLATFORM_NAMES:
            raise ValueError(
                f"unknown platform {self.platform!r}; "
                f"expected one of {PLATFORM_NAMES}"
            )
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {self.granularity!r}; "
                f"expected one of {GRANULARITIES}"
            )
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if self.engine is not None and self.engine not in CM_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {CM_ENGINES}"
            )
        if not isinstance(self.tile_size, int) or self.tile_size <= 0:
            raise ValueError(f"tile_size must be a positive int, "
                             f"got {self.tile_size!r}")
        if not self.epsilon > 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon!r}")
        if not self.cap_overhead_factor >= 0:
            raise ValueError(
                f"cap_overhead_factor must be >= 0, "
                f"got {self.cap_overhead_factor!r}"
            )
        if self.cm_timeout_s is not None and self.cm_timeout_s < 0:
            raise ValueError(
                f"cm_timeout_s must be >= 0, got {self.cm_timeout_s!r}"
            )
        if self.sizes:
            size_names = set(REGISTRY[self.benchmark].size_names)
            unknown = sorted(
                name for name, _ in self.sizes if name not in size_names
            )
            if unknown:
                raise ValueError(
                    f"benchmark {self.benchmark!r} has no size parameters "
                    f"{unknown}; accepted: {sorted(size_names)}"
                )
            bad = [(n, v) for n, v in self.sizes if v < 1]
            if bad:
                raise ValueError(f"sizes must be positive ints, got {bad}")
        return self

    def resolved_engine(self) -> str:
        """The engine the job will actually run (arg > env > default)."""
        return resolve_engine(self.engine)

    def resolved(self) -> "JobSpec":
        """A copy with the engine pinned, for stable digests."""
        return replace(self, engine=self.resolved_engine())

    def digest(self) -> str:
        """The content address of this job's full report."""
        blob = canonical_json(
            [
                "polyufc-report",
                model_versions(),
                {
                    "benchmark": self.benchmark,
                    "platform": self.platform,
                    "granularity": self.granularity,
                    "objective": self.objective,
                    "set_associative": self.set_associative,
                    "tile_size": self.tile_size,
                    "epsilon": self.epsilon,
                    "cap_overhead_factor": self.cap_overhead_factor,
                    "engine": self.resolved_engine(),
                    "sizes": dict(self.sizes),
                },
            ]
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def workload_digest(self) -> str:
        """The content address of the hardware-side workload counters.

        Coarser than :meth:`digest`: the exact simulator sees the tiled
        module and the hierarchy, never the objective/epsilon/overhead
        knobs or the CM engine, so jobs differing only in those share
        this slot.
        """
        blob = canonical_json(
            [
                "polyufc-workload",
                model_versions(),
                {
                    "benchmark": self.benchmark,
                    "platform": self.platform,
                    "granularity": self.granularity,
                    "set_associative": self.set_associative,
                    "tile_size": self.tile_size,
                    "sizes": dict(self.sizes),
                },
            ]
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def effective_sizes(self) -> dict:
        """The full size-parameter valuation this job runs at.

        Registry defaults overlaid with the spec's overrides; empty for
        fixed-shape benchmarks (which have no size parameters).
        """
        from repro.benchsuite import get_benchmark

        full = dict(get_benchmark(self.benchmark).default_sizes)
        full.update(dict(self.sizes))
        return full

    def family_digest(self) -> str:
        """The content address of this job's **kernel family**.

        Size-erased and engine-erased: every concrete instantiation of
        one parametric kernel family -- any ``sizes``, any CM engine
        (they agree bit-for-bit where exact) -- maps to the same digest,
        which keys the store's parametric characterization artifacts
        (``repro.cache.parametric_model``).  The structural component is
        the *normalized* parametric kernel (loop dims positionally
        renamed, buffers renamed by first use, extents lifted to named
        size parameters), so a dim-renamed clone of a kernel shares the
        family slot while anything that changes the iteration space or
        access functions does not.  Granularity, platform, tiling and
        associativity stay in the recipe because they change the unit
        decomposition or the hierarchy the counters describe.
        """
        blob = canonical_json(
            [
                "polyufc-family",
                model_versions(),
                {
                    "platform": self.platform,
                    "granularity": self.granularity,
                    "set_associative": self.set_associative,
                    "tile_size": self.tile_size,
                    "structure": _family_structure(self.benchmark),
                },
            ]
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "platform": self.platform,
            "granularity": self.granularity,
            "objective": self.objective,
            "set_associative": self.set_associative,
            "tile_size": self.tile_size,
            "epsilon": self.epsilon,
            "cap_overhead_factor": self.cap_overhead_factor,
            "engine": self.engine,
            "sizes": dict(self.sizes),
            "cm_timeout_s": self.cm_timeout_s,
        }

    @classmethod
    def from_json(cls, data) -> "JobSpec":
        """Parse and validate a request payload (strict on shape)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"job spec must be an object, got {type(data).__name__}"
            )
        known = {
            "benchmark", "platform", "granularity", "objective",
            "set_associative", "tile_size", "epsilon",
            "cap_overhead_factor", "engine", "sizes", "cm_timeout_s",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job spec fields {unknown}")
        if "benchmark" not in data:
            raise ValueError("job spec is missing 'benchmark'")
        spec = cls(**data)
        return spec.validate()

    def shard(self, shards: int) -> int:
        """The scheduler shard this spec routes to.

        Routing hashes the **workload** digest, not the full digest, so
        jobs that share hardware-side counters land on the same shard
        and the counter reuse in ``execute_report`` stays shard-local.
        Identical full digests share a workload digest a fortiori, so
        in-flight dedup is shard-local too.
        """
        return shard_for(self.workload_digest(), shards)

    def label(self) -> str:
        """Short human-readable identity for logs and events."""
        return f"{self.benchmark}/{self.platform}/{self.objective}"


def _expr_blob(expr, rename: dict) -> list:
    """A canonical JSON rendering of a LinExpr under a dim-rename map."""
    coeffs = sorted(
        [rename.get(name, name), coeff]
        for name, coeff in expr.coeffs.items()
    )
    return [expr.const, coeffs]


@lru_cache(maxsize=None)
def _family_structure(benchmark: str):
    """The normalized parametric structure folded into a family digest.

    Lifts every statement domain to named size parameters (finite
    differencing over probe builds -- see
    :func:`repro.cache.parametric_model.lift_statement_domains`), then
    renders statements with loop dims renamed positionally (``d0, d1,
    ...`` per nest depth) and buffers renamed by first appearance, so
    the blob is invariant under iterator/buffer renames and under the
    concrete problem size.  Falls back to the benchmark name when the
    kernel has no size parameters or sits outside the liftable class --
    the family then degenerates to a name-keyed slot, which is still
    correct, just not structure-shared.
    """
    from repro.benchsuite import get_benchmark

    bench = get_benchmark(benchmark)
    if not bench.size_names:
        return {"benchmark": benchmark}
    from repro.cache.parametric_model import lift_statement_domains
    from repro.isllite.parametric import UnsupportedParametricSet

    base = dict(bench.default_sizes)
    try:
        _module, lifted = lift_statement_domains(bench.module, base)
    except UnsupportedParametricSet:
        return {"benchmark": benchmark}
    buffers: dict = {}
    statements = []
    for statement, domain in lifted:
        rename = {
            name: f"d{depth}"
            for depth, name in enumerate(statement.loop_names)
        }
        accesses = []
        for access in statement.accesses:
            alias = buffers.setdefault(
                access.buffer.name, f"b{len(buffers)}"
            )
            accesses.append([
                alias,
                list(access.buffer.shape),
                access.is_write,
                [_expr_blob(index, rename) for index in access.indices],
            ])
        statements.append({
            "dims": [rename[name] for name in domain.space.dims],
            "params": list(domain.space.params),
            "constraints": [
                [con.is_eq, _expr_blob(con.expr, rename)]
                for con in domain.constraints
            ],
            "flops": statement.flops_per_point,
            "accesses": accesses,
        })
    return {"statements": statements}
