"""Job specifications and content digests for the characterization service.

A :class:`JobSpec` names everything that determines a characterization
result: the kernel (a registered benchmark, which fixes the problem
size), the platform (which fixes the cache hierarchy), the unit
granularity, the capping objective, the search tolerance ``epsilon``,
the tiling, the cap-overhead scaling, and the CM engine.  Its
:meth:`~JobSpec.digest` is a canonical SHA-256 over those fields *plus
the model versions* (report schema, CM memo, envelope format), so the
result store is content-addressed: two requests share a slot iff they
are guaranteed to produce the same numbers, and any model change
invalidates every stale slot at once.

``cm_timeout_s`` is deliberately **excluded** from the digest: it bounds
how long the computation may take, never what the exact result is (a
degraded result is not persisted at all -- see ``repro.service.store``).

The hardware-side workload (exact cache-simulator counters) depends on a
strict subset of the fields -- not on ``objective``, ``epsilon`` or
``cap_overhead_factor``, which only steer cap selection -- so it has its
own coarser :meth:`~JobSpec.workload_digest`, letting jobs that differ
only in those knobs share the expensive trace + simulation work.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, replace
from typing import Optional

from repro.cache.memo import MEMO_VERSION
from repro.cache.static_model import CM_ENGINES, resolve_engine
from repro.mlpolyufc.characterization import GRANULARITIES
from repro.mlpolyufc.reports import REPORT_SCHEMA_VERSION
from repro.runtime.io import ENVELOPE_VERSION, canonical_json

#: Bump when the digest recipe itself changes shape.
SPEC_VERSION = 1

OBJECTIVES = ("edp", "energy", "performance")
PLATFORM_NAMES = ("rpl", "bdw")


def shard_for(digest: str, shards: int) -> int:
    """Consistent digest -> shard routing (stable across processes).

    The digest is already a uniform SHA-256, so its leading 64 bits mod
    ``shards`` is an even, deterministic partition: every process (and
    every host) maps the same digest to the same shard, which is what
    keeps in-flight dedup and workload-counter reuse shard-local.
    """
    if shards <= 1:
        return 0
    return int(digest[:16], 16) % shards


def model_versions() -> dict:
    """The version tuple folded into every digest."""
    return {
        "spec": SPEC_VERSION,
        "report": REPORT_SCHEMA_VERSION,
        "memo": MEMO_VERSION,
        "envelope": ENVELOPE_VERSION,
    }


def versions_compatible(remote: dict) -> bool:
    """True iff a remote host's model versions match ours exactly.

    Digests fold the versions in, so two hosts disagreeing on any of
    them compute *different* digests for the same spec -- forwarding a
    job across that skew would silently break content addressing.  The
    federation health checker treats a mismatch as an unhealthy shard
    (fail over locally) rather than a hard error, so a rolling upgrade
    degrades instead of corrupting.
    """
    if not isinstance(remote, dict):
        return False
    local = model_versions()
    return {key: remote.get(key) for key in local} == local


@dataclass(frozen=True)
class JobSpec:
    """One characterization request (see module docstring)."""

    benchmark: str
    platform: str = "rpl"
    granularity: str = "linalg"
    objective: str = "edp"
    set_associative: bool = True
    tile_size: int = 32
    epsilon: float = 1e-3
    cap_overhead_factor: float = 50.0
    engine: Optional[str] = None
    #: Execution knob, not identity: excluded from the digest.
    cm_timeout_s: Optional[float] = None

    def validate(self) -> "JobSpec":
        """Raise ``ValueError`` on any malformed field; return self."""
        from repro.benchsuite import REGISTRY

        if self.benchmark not in REGISTRY:
            raise ValueError(f"unknown benchmark {self.benchmark!r}")
        if self.platform not in PLATFORM_NAMES:
            raise ValueError(
                f"unknown platform {self.platform!r}; "
                f"expected one of {PLATFORM_NAMES}"
            )
        if self.granularity not in GRANULARITIES:
            raise ValueError(
                f"unknown granularity {self.granularity!r}; "
                f"expected one of {GRANULARITIES}"
            )
        if self.objective not in OBJECTIVES:
            raise ValueError(
                f"unknown objective {self.objective!r}; "
                f"expected one of {OBJECTIVES}"
            )
        if self.engine is not None and self.engine not in CM_ENGINES:
            raise ValueError(
                f"unknown engine {self.engine!r}; "
                f"expected one of {CM_ENGINES}"
            )
        if not isinstance(self.tile_size, int) or self.tile_size <= 0:
            raise ValueError(f"tile_size must be a positive int, "
                             f"got {self.tile_size!r}")
        if not self.epsilon > 0:
            raise ValueError(f"epsilon must be > 0, got {self.epsilon!r}")
        if not self.cap_overhead_factor >= 0:
            raise ValueError(
                f"cap_overhead_factor must be >= 0, "
                f"got {self.cap_overhead_factor!r}"
            )
        if self.cm_timeout_s is not None and self.cm_timeout_s < 0:
            raise ValueError(
                f"cm_timeout_s must be >= 0, got {self.cm_timeout_s!r}"
            )
        return self

    def resolved_engine(self) -> str:
        """The engine the job will actually run (arg > env > default)."""
        return resolve_engine(self.engine)

    def resolved(self) -> "JobSpec":
        """A copy with the engine pinned, for stable digests."""
        return replace(self, engine=self.resolved_engine())

    def digest(self) -> str:
        """The content address of this job's full report."""
        blob = canonical_json(
            [
                "polyufc-report",
                model_versions(),
                {
                    "benchmark": self.benchmark,
                    "platform": self.platform,
                    "granularity": self.granularity,
                    "objective": self.objective,
                    "set_associative": self.set_associative,
                    "tile_size": self.tile_size,
                    "epsilon": self.epsilon,
                    "cap_overhead_factor": self.cap_overhead_factor,
                    "engine": self.resolved_engine(),
                },
            ]
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def workload_digest(self) -> str:
        """The content address of the hardware-side workload counters.

        Coarser than :meth:`digest`: the exact simulator sees the tiled
        module and the hierarchy, never the objective/epsilon/overhead
        knobs or the CM engine, so jobs differing only in those share
        this slot.
        """
        blob = canonical_json(
            [
                "polyufc-workload",
                model_versions(),
                {
                    "benchmark": self.benchmark,
                    "platform": self.platform,
                    "granularity": self.granularity,
                    "set_associative": self.set_associative,
                    "tile_size": self.tile_size,
                },
            ]
        )
        return hashlib.sha256(blob.encode()).hexdigest()

    def to_json(self) -> dict:
        return {
            "benchmark": self.benchmark,
            "platform": self.platform,
            "granularity": self.granularity,
            "objective": self.objective,
            "set_associative": self.set_associative,
            "tile_size": self.tile_size,
            "epsilon": self.epsilon,
            "cap_overhead_factor": self.cap_overhead_factor,
            "engine": self.engine,
            "cm_timeout_s": self.cm_timeout_s,
        }

    @classmethod
    def from_json(cls, data) -> "JobSpec":
        """Parse and validate a request payload (strict on shape)."""
        if not isinstance(data, dict):
            raise ValueError(
                f"job spec must be an object, got {type(data).__name__}"
            )
        known = {
            "benchmark", "platform", "granularity", "objective",
            "set_associative", "tile_size", "epsilon",
            "cap_overhead_factor", "engine", "cm_timeout_s",
        }
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown job spec fields {unknown}")
        if "benchmark" not in data:
            raise ValueError("job spec is missing 'benchmark'")
        spec = cls(**data)
        return spec.validate()

    def shard(self, shards: int) -> int:
        """The scheduler shard this spec routes to.

        Routing hashes the **workload** digest, not the full digest, so
        jobs that share hardware-side counters land on the same shard
        and the counter reuse in ``execute_report`` stays shard-local.
        Identical full digests share a workload digest a fortiori, so
        in-flight dedup is shard-local too.
        """
        return shard_for(self.workload_digest(), shards)

    def label(self) -> str:
        """Short human-readable identity for logs and events."""
        return f"{self.benchmark}/{self.platform}/{self.objective}"
