"""Stdlib-only HTTP/JSON front for the characterization service.

Exposes the :class:`~repro.service.client.ServiceClient` API over
loopback (or any interface) with zero new dependencies -- plain
``http.server`` threads over the same scheduler the in-process client
uses, so batching, dedup and the event stream behave identically.

Routes (all JSON)::

    GET  /v1/healthz                 liveness + per-shard store stats +
                                     scheduler queue depths/admission
                                     bounds + federation breaker state +
                                     model versions (skew detection)
    POST /v1/jobs                    {"spec": {...}} or {"specs": [...]}
                                     (+ "wait": true, "timeout_s": t)
    POST /v1/jobs/stream             {"specs": [...], "timeout_s": t} ->
                                     chunked NDJSON, one line per job as
                                     it completes (no batch barrier)
    GET  /v1/jobs                    all job statuses
    GET  /v1/jobs/<id>               one job status
    GET  /v1/jobs/<id>/result        block (up to ?timeout_s=) for report
    GET  /v1/query?benchmark=&platform=&boundedness=&cap_below=...
    GET  /v1/events?kind=&limit=     recent lifecycle events

Malformed requests get ``400`` with ``{"error": ...}``; unknown jobs and
routes get ``404``.  Admission control surfaces as ``429`` (the caller
is at its per-client quota -- callers are identified by the
``X-Repro-Client`` header, falling back to the peer address) and ``503``
(a scheduler shard is at its hard queue bound); both carry the jobs that
were admitted before the refusal, plus a ``Retry-After`` header and a
``retry_after_s`` body field estimating the queue-drain time (the
federation's :class:`~repro.service.federation.RemoteShardClient`
honours the hint instead of blind backoff).  A federated front's
``/v1/query`` fans in across remote shards and reports ``partial: true``
with an ``unavailable`` list when a shard could not answer.  This front is a trusted-network tool
(benchmarking, fleet amortization); it binds loopback by default and has
no auth.
"""

from __future__ import annotations

import json
import logging
import threading
import urllib.error
import urllib.parse
import urllib.request
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional

from repro.service.client import ServiceClient
from repro.service.scheduler import AdmissionError, QuotaExceeded

log = logging.getLogger("repro.runtime")

#: Header naming the submitting client for per-client quotas.
CLIENT_HEADER = "X-Repro-Client"

DEFAULT_PORT = 8177
#: Cap on how long a single HTTP request may block on a result.
MAX_WAIT_S = 600.0


class ServiceHTTPServer(ThreadingHTTPServer):
    """HTTP server owning (or borrowing) a :class:`ServiceClient`."""

    daemon_threads = True
    allow_reuse_address = True

    def __init__(self, address, client: ServiceClient,
                 owns_client: bool = False):
        self.client = client
        self.owns_client = owns_client
        super().__init__(address, _Handler)

    def close(self) -> None:
        self.server_close()
        if self.owns_client:
            self.client.close()


class _Handler(BaseHTTPRequestHandler):
    server: ServiceHTTPServer
    protocol_version = "HTTP/1.1"

    # -- plumbing ------------------------------------------------------

    def log_message(self, fmt, *args):  # quiet by default
        log.debug("service.http %s -- %s", self.address_string(),
                  fmt % args)

    def _send(
        self, code: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode()
        self.send_response(code)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _error(self, code: int, message: str) -> None:
        self._send(code, {"error": message})

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        raw = self.rfile.read(length) if length else b""
        if not raw:
            raise ValueError("empty request body")
        data = json.loads(raw)
        if not isinstance(data, dict):
            raise ValueError("request body must be a JSON object")
        return data

    # -- routes --------------------------------------------------------

    def _client_id(self) -> str:
        return (
            self.headers.get(CLIENT_HEADER)
            or f"http:{self.client_address[0]}"
        )

    def _submit_specs(self, raw_specs):
        """Submit one by one: admission refusals keep the admitted jobs.

        Returns ``(jobs, refusal)`` where ``refusal`` is ``None`` or an
        ``(http_code, message, retry_after_s)`` triple from the
        admission controller (``retry_after_s`` is ``None`` for plain
        malformed-spec 400s).
        """
        client_id = self._client_id()
        jobs = []
        # Remote-routed jobs from one request fan out per shard, not per
        # job (one stream request each); a mid-batch refusal still
        # flushes the already-admitted jobs on context exit.
        with self.server.client.scheduler.batched_dispatch():
            for raw in raw_specs:
                try:
                    jobs.append(
                        self.server.client.submit(raw, client_id=client_id)
                    )
                except QuotaExceeded as exc:
                    return jobs, (
                        429, str(exc), getattr(exc, "retry_after_s", None)
                    )
                except AdmissionError as exc:
                    return jobs, (
                        503, str(exc), getattr(exc, "retry_after_s", None)
                    )
                except (ValueError, TypeError) as exc:  # malformed spec
                    return jobs, (400, str(exc), None)
        return jobs, None

    @staticmethod
    def _retry_headers(retry_after_s) -> Optional[dict]:
        if retry_after_s is None:
            return None
        # Retry-After is integer seconds; round up so "0.5" != "now".
        return {"Retry-After": str(max(1, int(retry_after_s + 0.999)))}

    @staticmethod
    def _parse_specs(body: dict):
        if "specs" in body:
            raw_specs = body["specs"]
            if not isinstance(raw_specs, list) or not raw_specs:
                raise ValueError("'specs' must be a non-empty list")
        elif "spec" in body:
            raw_specs = [body["spec"]]
        else:
            raise ValueError("body needs 'spec' or 'specs'")
        return raw_specs

    def do_POST(self):  # noqa: N802 (stdlib casing)
        parsed = urllib.parse.urlsplit(self.path)
        if parsed.path == "/v1/jobs/stream":
            return self._post_stream()
        if parsed.path != "/v1/jobs":
            return self._error(404, f"no such route {parsed.path}")
        try:
            body = self._read_body()
            raw_specs = self._parse_specs(body)
            wait = bool(body.get("wait", False))
            timeout_s = min(
                float(body.get("timeout_s", MAX_WAIT_S)), MAX_WAIT_S
            )
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            return self._error(400, str(exc))
        jobs, refusal = self._submit_specs(raw_specs)
        if refusal is not None and refusal[0] == 400:
            return self._error(400, refusal[1])
        rows = []
        for job in jobs:
            row = self.server.client.status(job.job_id)
            if wait:
                try:
                    report = job.result(timeout_s)
                    row = self.server.client.status(job.job_id)
                    row["report"] = report.to_json()
                except Exception as exc:  # surfaced per job, not per batch
                    row = self.server.client.status(job.job_id)
                    row["error"] = row.get("error") or str(exc)
            rows.append(row)
        if refusal is not None:
            code, message, retry_after_s = refusal
            payload = {"error": message, "jobs": rows}
            if retry_after_s is not None:
                payload["retry_after_s"] = retry_after_s
            return self._send(
                code, payload, headers=self._retry_headers(retry_after_s)
            )
        self._send(200, {"jobs": rows})

    def _post_stream(self) -> None:
        """Chunked NDJSON: one line per job, written as it completes."""
        try:
            body = self._read_body()
            raw_specs = self._parse_specs(body)
            timeout_s = min(
                float(body.get("timeout_s", MAX_WAIT_S)), MAX_WAIT_S
            )
        except (ValueError, TypeError, json.JSONDecodeError) as exc:
            return self._error(400, str(exc))
        jobs, refusal = self._submit_specs(raw_specs)
        if refusal is not None:
            # Refused before any bytes went out: plain status response
            # (already-admitted jobs keep running; the store keeps
            # their results).
            code, message, retry_after_s = refusal
            payload = {"error": message}
            if retry_after_s is not None:
                payload["retry_after_s"] = retry_after_s
            return self._send(
                code, payload, headers=self._retry_headers(retry_after_s)
            )
        self.send_response(200)
        self.send_header("Content-Type", "application/x-ndjson")
        self.send_header("Transfer-Encoding", "chunked")
        self.end_headers()

        def chunk(payload: dict) -> None:
            line = json.dumps(payload).encode() + b"\n"
            self.wfile.write(f"{len(line):X}\r\n".encode())
            self.wfile.write(line + b"\r\n")
            self.wfile.flush()

        try:
            stream = self.server.client.stream(jobs, timeout=timeout_s)
            for job, report, error in stream:
                row = self.server.client.status(job.job_id)
                if report is not None:
                    row["report"] = report.to_json()
                if error is not None:
                    row["error"] = row.get("error") or error
                chunk(row)
        except TimeoutError as exc:
            chunk({"error": str(exc), "timeout": True})
        except BrokenPipeError:  # client went away mid-stream
            return
        self.wfile.write(b"0\r\n\r\n")

    def do_GET(self):  # noqa: N802 (stdlib casing)
        parsed = urllib.parse.urlsplit(self.path)
        path = parsed.path.rstrip("/") or "/"
        query = {
            key: values[-1]
            for key, values in urllib.parse.parse_qs(parsed.query).items()
        }
        try:
            if path == "/v1/healthz":
                return self._send(200, self.server.client.health())
            if path == "/v1/jobs":
                return self._send(
                    200, {"jobs": self.server.client.scheduler.jobs()}
                )
            if path.startswith("/v1/jobs/"):
                rest = path[len("/v1/jobs/"):]
                if rest.endswith("/result"):
                    job_id = rest[: -len("/result")]
                    return self._get_result(job_id, query)
                return self._get_status(rest)
            if path == "/v1/query":
                return self._get_query(query)
            if path == "/v1/events":
                limit = int(query.get("limit", 200))
                events = [
                    event.to_json()
                    for event in self.server.client.events(
                        query.get("kind")
                    )
                ][-max(0, limit):]
                return self._send(200, {"events": events})
            return self._error(404, f"no such route {path}")
        except (ValueError, TypeError) as exc:
            return self._error(400, str(exc))

    _QUERY_STRING_KEYS = (
        "benchmark", "platform", "granularity", "objective",
        "engine", "boundedness",
    )

    def _get_query(self, query: dict) -> None:
        filters = {}
        for key in self._QUERY_STRING_KEYS:
            if key in query:
                filters[key] = query[key]
        for key in ("cap_below", "cap_above"):
            if key in query:
                filters[key] = float(query[key])
        if "limit" in query:
            filters["limit"] = int(query["limit"])
        unknown = set(query) - set(filters)
        if unknown:
            raise ValueError(f"unknown query filters: {sorted(unknown)}")
        if self.server.client.scheduler.remote_shards():
            # Federated fan-in: a dead shard yields partial=true, not
            # a failed query.
            return self._send(
                200, self.server.client.federated_query(**filters)
            )
        self._send(200, {
            "rows": self.server.client.query(**filters),
            "partial": False,
        })

    def _get_status(self, job_id: str) -> None:
        status = self.server.client.status(job_id)
        if status is None:
            return self._error(404, f"unknown job {job_id!r}")
        self._send(200, status)

    def _get_result(self, job_id: str, query: dict) -> None:
        status = self.server.client.status(job_id)
        if status is None:
            return self._error(404, f"unknown job {job_id!r}")
        timeout_s = min(
            float(query.get("timeout_s", MAX_WAIT_S)), MAX_WAIT_S
        )
        try:
            report = self.server.client.result(job_id, timeout_s)
        except Exception as exc:
            return self._send(500, {
                "error": f"job {job_id} failed: {exc}",
                "status": self.server.client.status(job_id),
            })
        self._send(200, {
            "status": self.server.client.status(job_id),
            "report": report.to_json(),
        })


def make_server(
    host: str = "127.0.0.1",
    port: int = 0,
    client: Optional[ServiceClient] = None,
    **client_kwargs,
) -> ServiceHTTPServer:
    """Bind a service server (``port=0`` picks a free port)."""
    owns = client is None
    if client is None:
        client = ServiceClient(**client_kwargs)
    return ServiceHTTPServer((host, port), client, owns_client=owns)


def serve(
    host: str = "127.0.0.1",
    port: int = DEFAULT_PORT,
    *,
    once: bool = False,
    port_file: Optional[str] = None,
    log_fn=print,
    **client_kwargs,
) -> int:
    """Run the HTTP front (the ``repro.cli serve`` entrypoint).

    ``once`` handles exactly one request then exits (smoke tests, CI);
    ``port_file`` writes the bound port for scripted callers racing the
    bind (e.g. when asking for ``port=0``).
    """
    server = make_server(host, port, **client_kwargs)
    bound = server.server_address[1]
    if port_file:
        from pathlib import Path

        Path(port_file).write_text(f"{bound}\n")
    log_fn(f"repro.service listening on http://{host}:{bound}")
    try:
        if once:
            server.handle_request()
        else:
            server.serve_forever()
    except KeyboardInterrupt:  # pragma: no cover - interactive exit
        pass
    finally:
        server.close()
    return 0


def serve_in_thread(
    host: str = "127.0.0.1", port: int = 0, **client_kwargs
):
    """(server, base_url, thread) for tests and scripts."""
    server = make_server(host, port, **client_kwargs)
    thread = threading.Thread(target=server.serve_forever, daemon=True)
    thread.start()
    url = f"http://{host}:{server.server_address[1]}"
    return server, url, thread


def request_json(
    url: str,
    payload: Optional[dict] = None,
    timeout_s: float = MAX_WAIT_S,
):
    """Tiny JSON-over-HTTP helper: ``(status_code, payload_dict)``.

    POSTs when ``payload`` is given, GETs otherwise; HTTP errors with a
    JSON body are returned, transport errors raise ``URLError``.
    """
    data = None
    headers = {"Accept": "application/json"}
    if payload is not None:
        data = json.dumps(payload).encode()
        headers["Content-Type"] = "application/json"
    request = urllib.request.Request(url, data=data, headers=headers)
    try:
        with urllib.request.urlopen(request, timeout=timeout_s) as resp:
            return resp.status, json.loads(resp.read() or b"{}")
    except urllib.error.HTTPError as exc:
        try:
            body = json.loads(exc.read() or b"{}")
        except ValueError:
            body = {"error": str(exc)}
        return exc.code, body
