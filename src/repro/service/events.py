"""Structured per-job lifecycle events and pluggable sinks.

Every job the scheduler touches emits a small, flat event stream:

``submitted``
    the job entered the system (every admitted submission gets one);
``queued``
    the job was admitted to a scheduler shard at full fidelity
    (``detail`` records ``shard=<k> depth=<n>``);
``coalesced``
    the submission was deduplicated onto an identical in-flight job
    (``detail`` names the primary job id);
``cache_hit``
    the result was served from the content-addressed store;
``started``
    a worker began an actual pipeline execution (exactly one per
    digest among concurrent duplicates -- this is the event the
    dedup guarantee is asserted on);
``degraded``
    the computed report contains non-exact units (``detail`` lists
    ``unit=rung`` pairs);
``failover``
    the job's remote shard was unreachable (retry budget exhausted,
    circuit open, or an undecodable response) and the job was re-routed
    to local recompute on the executor ladder (``detail`` names the
    shard and the triggering error).  Informational, not terminal: the
    job still ends in exactly one of completed/failed/shed, attributed
    ``served_by=local_failover``;
``completed`` / ``failed`` / ``shed``
    terminal states, with wall-clock ``duration_ms``.  ``shed`` is the
    terminal of a job the admission controller refused to run at full
    fidelity: either it executed on the cheap ``timeout-cap`` rung
    (``detail`` starts with ``timeout-cap``; its future still carries
    the degraded, never-persisted report) or it was rejected outright
    at the hard queue bound (``detail`` starts with ``rejected``; the
    submitter got :class:`~repro.service.scheduler.AdmissionError`).
    Every admitted job ends in exactly one of the three, so
    ``submitted == completed + failed + shed`` over any quiesced
    stream;
``quota_exceeded``
    a per-client quota rejected the submission before it entered the
    system (no ``submitted`` is emitted; the submitter got
    :class:`~repro.service.scheduler.QuotaExceeded`);
``family_served``
    a parametric job's CM counters were instantiated from a cached
    kernel-family artifact instead of computed (``detail`` records
    ``source=sample|chart units=<n>``); the job still emits its normal
    ``started``/``completed`` pair -- this event marks the O(1) CM fast
    path inside the execution;
``family_sample``
    a fully-exact parametric result was folded into its family artifact
    as a new per-size sample (``detail`` records the sizes);
``family_fit``
    after a new sample, the family's piecewise ray-chart fit succeeded
    with every holdout sample reproduced bit-for-bit -- subsequent
    lattice sizes can be served without any engine work;
``family_poisoned``
    a sample contradicted the family (nondeterminism or corruption);
    the artifact dropped its chart and stops serving.

Sinks are pluggable and must be thread-safe; the scheduler never lets a
sink error take a job down.
"""

from __future__ import annotations

import json
import threading
import time
from collections import Counter, deque
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import Iterable, List, Optional

EVENT_KINDS = (
    "submitted",
    "queued",
    "coalesced",
    "cache_hit",
    "started",
    "degraded",
    "failover",
    "completed",
    "failed",
    "shed",
    "quota_exceeded",
    "family_served",
    "family_sample",
    "family_fit",
    "family_poisoned",
)


@dataclass(frozen=True)
class JobEvent:
    """One lifecycle event of one job."""

    kind: str
    job_id: str
    digest: str
    benchmark: str
    platform: str
    ts: float
    detail: str = ""
    duration_ms: Optional[float] = None

    def to_json(self) -> dict:
        return asdict(self)


def make_event(
    kind: str,
    job_id: str,
    digest: str,
    benchmark: str,
    platform: str,
    detail: str = "",
    duration_ms: Optional[float] = None,
) -> JobEvent:
    if kind not in EVENT_KINDS:
        raise ValueError(f"unknown event kind {kind!r}")
    return JobEvent(
        kind=kind,
        job_id=job_id,
        digest=digest,
        benchmark=benchmark,
        platform=platform,
        ts=time.time(),
        detail=detail,
        duration_ms=duration_ms,
    )


class EventSink:
    """Sink interface: override :meth:`emit` (and optionally `close`)."""

    def emit(self, event: JobEvent) -> None:  # pragma: no cover - interface
        raise NotImplementedError

    def close(self) -> None:
        pass


class NullSink(EventSink):
    """Drops everything."""

    def emit(self, event: JobEvent) -> None:
        pass


class ListSink(EventSink):
    """Bounded in-memory ring of recent events (thread-safe)."""

    def __init__(self, maxlen: int = 10_000):
        self._events: deque = deque(maxlen=maxlen)
        self._lock = threading.Lock()

    def emit(self, event: JobEvent) -> None:
        with self._lock:
            self._events.append(event)

    def events(self, kind: Optional[str] = None) -> List[JobEvent]:
        with self._lock:
            snapshot = list(self._events)
        if kind is None:
            return snapshot
        return [event for event in snapshot if event.kind == kind]

    def counts(self) -> Counter:
        with self._lock:
            return Counter(event.kind for event in self._events)

    def clear(self) -> None:
        with self._lock:
            self._events.clear()


class JsonlSink(EventSink):
    """Appends one JSON line per event to ``path`` (thread-safe).

    The CI soak job uploads this file as an artifact on failure, so each
    line is flushed eagerly -- a crashed run still leaves a complete
    prefix of the stream on disk.
    """

    def __init__(self, path):
        self.path = Path(path)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self._handle = self.path.open("a")

    def emit(self, event: JobEvent) -> None:
        line = json.dumps(event.to_json(), sort_keys=True)
        with self._lock:
            if self._handle.closed:
                return
            self._handle.write(line + "\n")
            self._handle.flush()

    def close(self) -> None:
        with self._lock:
            if not self._handle.closed:
                self._handle.close()


class TeeSink(EventSink):
    """Fans every event out to several sinks."""

    def __init__(self, *sinks: EventSink):
        self.sinks = tuple(sinks)

    def emit(self, event: JobEvent) -> None:
        for sink in self.sinks:
            sink.emit(event)

    def close(self) -> None:
        for sink in self.sinks:
            sink.close()
