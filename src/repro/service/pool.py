"""Execution backends for the scheduler: in-thread or process pool.

Characterization is CPU-bound Python/NumPy, so a thread pool serializes
on the GIL and job-level parallelism only pays off across *processes*.
This module gives the scheduler a pluggable execution core:

``thread``
    the job runs inline on the scheduler's dispatcher thread (the
    pre-process-pool behaviour; zero marshalling overhead, no scaling).
``process``
    the job is shipped to a ``ProcessPoolExecutor`` worker as its
    serialized :class:`~repro.service.spec.JobSpec` JSON and comes back
    as serialized :class:`~repro.mlpolyufc.reports.KernelReport` JSON
    (the versioned report schema is the wire format, so there is no
    second serialization contract to maintain).  Worker-side lifecycle
    information (degradation details, error classification) rides the
    same payload and is re-emitted by the parent's event sinks -- worker
    processes never touch a sink.

Backend selection: explicit argument > ``REPRO_SERVICE_EXECUTOR`` env >
``process`` on multi-core hosts, ``thread`` on single-core ones (where a
process pool only adds fork + pickle overhead; this is also what keeps
1-CPU CI on the deterministic in-thread path).

Worker death is a first-class failure: a worker that disappears
mid-job (OOM kill, segfault, the armed ``service.worker:die`` fault)
breaks the whole ``ProcessPoolExecutor``, so the backend rebuilds the
pool, retries the job once on a fresh worker, and -- if the retry dies
too -- surfaces a structured :class:`~repro.runtime.EngineFailure`
instead of hanging the batch.
"""

from __future__ import annotations

import logging
import multiprocessing
import os
import threading
from concurrent.futures import ProcessPoolExecutor
from concurrent.futures.process import BrokenProcessPool
from typing import Optional

from repro.mlpolyufc.reports import KernelReport
from repro.runtime import EngineFailure, faults
from repro.service.spec import JobSpec

log = logging.getLogger("repro.runtime")

EXECUTOR_ENV = "REPRO_SERVICE_EXECUTOR"
EXECUTOR_KINDS = ("thread", "process")


def resolve_executor(kind: Optional[str] = None) -> str:
    """Backend choice: explicit arg > env > cpu-count default."""
    if kind is None:
        kind = os.environ.get(EXECUTOR_ENV) or None
    if kind is None:
        kind = "process" if (os.cpu_count() or 1) > 1 else "thread"
    if kind not in EXECUTOR_KINDS:
        raise ValueError(
            f"unknown service executor {kind!r}; "
            f"expected one of {EXECUTOR_KINDS}"
        )
    return kind


def _worker_main(payload: dict) -> dict:
    """Run one job inside a pool worker; everything crosses as JSON.

    Exceptions are classified and returned in-band (never re-raised):
    custom exception types do not reliably survive the futures pickle
    channel, and a structured payload lets the parent keep its event
    detail format (``TypeName: message``) byte-identical to thread mode.
    """
    faults.fire("service.worker")
    try:
        from repro.service.client import resolve_store
        from repro.service.executor import execute_report

        spec = JobSpec.from_json(payload["spec"])
        store = None
        if payload["store_root"] is not None:
            store = resolve_store(
                payload["store_root"], shards=payload["store_shards"]
            )
        family_info: dict = {}
        report = execute_report(
            spec,
            store=store,
            workers=payload["workers"],
            cm_timeout_s=payload["cm_timeout_s"],
            family_info=family_info,
        )
    except BaseException as exc:  # classified in-band, see docstring
        return {
            "ok": False,
            "error_type": type(exc).__name__,
            "error": str(exc),
        }
    return {"ok": True, "report": report.to_json(), "family": family_info}


class WorkerError(EngineFailure):
    """A job failed inside a pool worker (classification preserved).

    ``error_type`` names the original exception class; ``str()`` keeps
    the parent-side event detail identical to what thread mode logs.
    """

    def __init__(self, error_type: str, message: str):
        super().__init__(f"{error_type}: {message}", site="service.worker")
        self.error_type = error_type


class ThreadBackend:
    """Run jobs inline on the calling (dispatcher) thread."""

    kind = "thread"

    def __init__(self, width: int):
        self.width = width

    def run(self, spec: JobSpec, store, workers, cm_timeout_s,
            family_info: Optional[dict] = None):
        from repro.service.executor import execute_report

        return execute_report(
            spec, store=store, workers=workers, cm_timeout_s=cm_timeout_s,
            family_info=family_info,
        )

    def describe(self) -> dict:
        """Healthz row: this backend is also the federation's local
        failover slot, so remote operators can see its capacity."""
        return {"kind": self.kind, "width": self.width}

    def close(self) -> None:
        pass


class ProcessBackend:
    """Ship jobs to a ``ProcessPoolExecutor``, surviving worker death."""

    kind = "process"

    def __init__(
        self,
        width: int,
        store_root: Optional[str] = None,
        store_shards: int = 1,
    ):
        self.width = width
        self.store_root = store_root
        self.store_shards = store_shards
        # fork keeps worker start cheap (the repro modules are already
        # imported); fall back to the platform default where fork is
        # unavailable.
        try:
            self._ctx = multiprocessing.get_context("fork")
        except ValueError:  # pragma: no cover - non-fork platforms
            self._ctx = multiprocessing.get_context()
        self._lock = threading.Lock()
        self._pool = self._make_pool()

    def _make_pool(self) -> ProcessPoolExecutor:
        return ProcessPoolExecutor(
            max_workers=self.width, mp_context=self._ctx
        )

    def _rebuild(self, broken: ProcessPoolExecutor) -> None:
        """Replace the broken pool exactly once per breakage."""
        with self._lock:
            if self._pool is broken:
                broken.shutdown(wait=False)
                self._pool = self._make_pool()

    def run(self, spec: JobSpec, store, workers, cm_timeout_s,
            family_info: Optional[dict] = None):
        # ``store`` is ignored: workers open their own handle from
        # (store_root, store_shards) -- a live store object does not
        # cross the process boundary.  Atomic object writes make the
        # concurrent access safe.
        payload = {
            "spec": spec.to_json(),
            "store_root": self.store_root,
            "store_shards": self.store_shards,
            "workers": workers,
            "cm_timeout_s": cm_timeout_s,
        }
        attempts = 2
        for attempt in range(1, attempts + 1):
            with self._lock:
                pool = self._pool
            try:
                out = pool.submit(_worker_main, payload).result()
                break
            except BrokenProcessPool:
                self._rebuild(pool)
                if attempt == attempts:
                    raise EngineFailure(
                        f"worker process died running {spec.label()} "
                        f"({attempts} attempts); pool rebuilt",
                        site="service.worker",
                    ) from None
                log.warning(
                    "service pool worker died running %s; "
                    "retrying on a fresh pool (attempt %d/%d)",
                    spec.label(), attempt + 1, attempts,
                )
            except RuntimeError:
                # submit() after shutdown during a racing close.
                raise EngineFailure(
                    "service pool is shut down", site="service.worker"
                ) from None
        if not out["ok"]:
            raise WorkerError(out["error_type"], out["error"])
        if family_info is not None:
            family_info.clear()
            family_info.update(out.get("family") or {})
        return KernelReport.from_json(out["report"])

    def describe(self) -> dict:
        """Healthz row: this backend is also the federation's local
        failover slot, so remote operators can see its capacity."""
        return {
            "kind": self.kind,
            "width": self.width,
            "store_shards": self.store_shards,
        }

    def close(self) -> None:
        with self._lock:
            self._pool.shutdown(wait=False)


def make_backend(
    kind: Optional[str],
    width: int,
    store_root: Optional[str] = None,
    store_shards: int = 1,
):
    """Construct the resolved execution backend."""
    resolved = resolve_executor(kind)
    if resolved == "thread":
        return ThreadBackend(width)
    return ProcessBackend(
        width, store_root=store_root, store_shards=store_shards
    )
