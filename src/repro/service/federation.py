"""Cross-host shard federation: remote shards, breakers, failover.

PR 6 sharded the scheduler *within* one host by consistent hashing on
``workload_digest``.  This module takes the same routing across hosts: a
**shard map** assigns each shard slot either to the local pool or to a
remote ``repro.cli serve`` endpoint, and a hardened
:class:`RemoteShardClient` forwards submissions over the existing
``/v1/jobs`` API.  Content addressing is what makes this safe: a
resubmitted job is idempotent by construction (the far side's in-flight
dedup and result store coalesce duplicates), so the client may retry
transport failures freely -- and *only* retries operations marked
idempotent.

The failure ladder, outermost first:

1. **Per-attempt timeouts** bound every socket operation.
2. **Bounded exponential backoff with full jitter** spaces retries; a
   ``Retry-After``/``retry_after_s`` hint on 429/503 responses is
   honoured instead of blind backoff.
3. **Retry budget exhaustion** surfaces as
   :class:`~repro.runtime.TransientIOError` (the same class the
   hardened disk layers use for "a bounded retry loop gave up").
4. A **circuit breaker** per remote shard turns repeated structured
   failures into fast local failover: ``closed`` -> ``open`` after N
   consecutive failures -> ``half-open`` after a cooldown, where exactly
   one probe request is let through (success closes, failure reopens).
5. An async **health checker** polls each remote's ``/v1/healthz``:
   successes shortcut an open breaker straight to half-open, failures
   count toward opening it, and a model-version skew (digest recipes
   disagree) marks the shard unhealthy outright.

What failover *means* is the scheduler's business
(``repro.service.scheduler``): the job is recomputed locally on the
existing executor ladder, a ``failover`` lifecycle event is emitted and
the result is attributed ``served_by=local_failover`` -- so the global
invariant stays ``submitted == completed + failed + shed``.

Every network failure mode is deterministically injectable without real
sockets via the ``service.remote`` fault site
(``service.remote:refuse|timeout|droppedconn|garbage|slow[:arg]``),
which fires inside :meth:`RemoteShardClient._attempt` -- the exact seam
a real socket error would surface through.
"""

from __future__ import annotations

import json
import logging
import os
import random
import threading
import time
import urllib.error
import urllib.parse
import urllib.request
from dataclasses import dataclass, fields
from pathlib import Path
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.runtime import faults
from repro.runtime.errors import (
    CircuitOpenError,
    RemoteShardError,
    TransientIOError,
)
from repro.service.spec import versions_compatible

log = logging.getLogger("repro.runtime")

SHARD_MAP_ENV = "REPRO_SHARD_MAP"
FAULT_SITE = "service.remote"

#: Client identity the federation front forwards under, so a remote
#: shard's per-client quota sees one steady consumer per front.
CLIENT_PREFIX = "fed"


# ---------------------------------------------------------------------------
# shard-map config
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FederationPolicy:
    """Retry / breaker / health tunables shared by every remote slot."""

    attempts: int = 3
    base_backoff_s: float = 0.1
    max_backoff_s: float = 2.0
    retry_after_cap_s: float = 5.0
    request_timeout_s: float = 120.0
    health_timeout_s: float = 5.0
    failure_threshold: int = 3
    cooldown_s: float = 5.0
    #: <= 0 disables the background health checker (tests poll manually).
    health_interval_s: float = 2.0

    def __post_init__(self):
        if self.attempts < 1:
            raise ValueError(f"attempts must be >= 1, got {self.attempts}")
        if self.failure_threshold < 1:
            raise ValueError(
                f"failure_threshold must be >= 1, "
                f"got {self.failure_threshold}"
            )

    @classmethod
    def from_json(cls, data: dict) -> "FederationPolicy":
        if not isinstance(data, dict):
            raise ValueError(
                f"federation policy must be an object, "
                f"got {type(data).__name__}"
            )
        known = {field.name for field in fields(cls)}
        unknown = sorted(set(data) - known)
        if unknown:
            raise ValueError(f"unknown federation policy fields {unknown}")
        return cls(**data)


@dataclass(frozen=True)
class ShardSlot:
    """One shard-map entry: a local pool slot or a remote endpoint."""

    index: int
    url: Optional[str] = None  # None => local

    @property
    def is_remote(self) -> bool:
        return self.url is not None

    def label(self) -> str:
        return self.url if self.url is not None else "local"

    def to_json(self) -> Union[str, dict]:
        return "local" if self.url is None else {"url": self.url}


class ShardMap:
    """An ordered assignment of shard slots to local/remote backends.

    JSON shape (``"shards"`` may also be the top-level value)::

        {
          "shards": ["local", "http://10.0.0.2:8177",
                     {"url": "http://10.0.0.3:8177"}],
          "policy": {"attempts": 3, "cooldown_s": 5.0, ...}
        }

    The slot *order is identity*: ``shard_for(workload_digest) % len``
    picks the slot, so every front using the same map (and model
    versions) routes every digest identically.
    """

    def __init__(
        self,
        slots: Sequence[ShardSlot],
        policy: Optional[FederationPolicy] = None,
    ):
        if not slots:
            raise ValueError("shard map needs at least one slot")
        self.slots: List[ShardSlot] = list(slots)
        self.policy = policy if policy is not None else FederationPolicy()

    def __len__(self) -> int:
        return len(self.slots)

    def remote_slots(self) -> List[ShardSlot]:
        return [slot for slot in self.slots if slot.is_remote]

    def to_json(self) -> dict:
        return {"shards": [slot.to_json() for slot in self.slots]}

    @classmethod
    def from_json(cls, data) -> "ShardMap":
        policy = None
        if isinstance(data, dict):
            unknown = sorted(set(data) - {"shards", "policy"})
            if unknown:
                raise ValueError(f"unknown shard map fields {unknown}")
            if "policy" in data:
                policy = FederationPolicy.from_json(data["policy"])
            data = data.get("shards")
        if not isinstance(data, list) or not data:
            raise ValueError(
                "shard map needs a non-empty 'shards' list"
            )
        slots = []
        for index, entry in enumerate(data):
            if isinstance(entry, dict):
                entry_unknown = sorted(set(entry) - {"url"})
                if entry_unknown:
                    raise ValueError(
                        f"unknown shard slot fields {entry_unknown} "
                        f"(slot {index})"
                    )
                entry = entry.get("url")
                if entry is None:
                    raise ValueError(f"shard slot {index} is missing 'url'")
            if not isinstance(entry, str):
                raise ValueError(
                    f"shard slot {index} must be 'local', a URL string "
                    f"or {{'url': ...}}, got {type(entry).__name__}"
                )
            if entry == "local":
                slots.append(ShardSlot(index))
            elif entry.startswith(("http://", "https://")):
                slots.append(ShardSlot(index, url=entry.rstrip("/")))
            else:
                raise ValueError(
                    f"shard slot {index}: expected 'local' or an "
                    f"http(s) URL, got {entry!r}"
                )
        return cls(slots, policy=policy)

    @classmethod
    def load(cls, source: Union[str, Path]) -> "ShardMap":
        """Parse a shard map from a JSON file path or inline JSON text."""
        text = str(source)
        if text.lstrip().startswith(("{", "[")):
            raw = text
        else:
            path = Path(source)
            if not path.is_file():
                raise ValueError(f"shard map file not found: {path}")
            raw = path.read_text()
        try:
            data = json.loads(raw)
        except ValueError as exc:
            raise ValueError(f"malformed shard map JSON: {exc}") from None
        return cls.from_json(data)


def resolve_shard_map(
    shard_map: Union[None, str, Path, ShardMap] = None,
) -> Optional[ShardMap]:
    """Shard-map resolution: explicit arg > ``$REPRO_SHARD_MAP`` > none.

    A string/path argument (or env value) may be a JSON file path or the
    inline JSON itself; ``None`` with no env means no federation -- the
    scheduler keeps its all-local sharding.
    """
    if isinstance(shard_map, ShardMap):
        return shard_map
    if shard_map is None:
        shard_map = os.environ.get(SHARD_MAP_ENV) or None
    if shard_map is None:
        return None
    return ShardMap.load(shard_map)


# ---------------------------------------------------------------------------
# circuit breaker
# ---------------------------------------------------------------------------


class CircuitBreaker:
    """Classic three-state breaker (thread-safe, injectable clock).

    * ``closed``: requests flow; ``failure_threshold`` *consecutive*
      failures open it.
    * ``open``: requests are refused without touching the network until
      ``cooldown_s`` has elapsed (or an out-of-band health probe
      succeeds, see :meth:`note_health_ok`).
    * ``half-open``: exactly one probe request is let through; its
      success closes the breaker, its failure reopens it (and restarts
      the cooldown).
    """

    def __init__(
        self,
        failure_threshold: int = 3,
        cooldown_s: float = 5.0,
        clock=time.monotonic,
    ):
        self.failure_threshold = max(1, failure_threshold)
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = "closed"
        self._failures = 0
        self._opened_at = 0.0
        self._probing = False

    def _tick(self) -> None:
        # Lock held.  Open -> half-open purely by cooldown expiry.
        if (
            self._state == "open"
            and self._clock() - self._opened_at >= self.cooldown_s
        ):
            self._state = "half-open"
            self._probing = False

    @property
    def state(self) -> str:
        with self._lock:
            self._tick()
            return self._state

    def allow(self) -> bool:
        """May a request proceed?  Half-open grants exactly one probe."""
        with self._lock:
            self._tick()
            if self._state == "closed":
                return True
            if self._state == "half-open" and not self._probing:
                self._probing = True
                return True
            return False

    def record_success(self) -> None:
        with self._lock:
            self._state = "closed"
            self._failures = 0
            self._probing = False

    def record_failure(self) -> None:
        with self._lock:
            self._tick()
            self._failures += 1
            if (
                self._state == "half-open"
                or self._failures >= self.failure_threshold
            ):
                self._state = "open"
                self._opened_at = self._clock()
                self._probing = False

    def note_health_ok(self) -> None:
        """An out-of-band health probe succeeded: skip the cooldown.

        Only promotes ``open`` -> ``half-open``; the next real request
        is still the probe that must succeed to close the breaker.
        """
        with self._lock:
            if self._state == "open":
                self._state = "half-open"
                self._probing = False

    def snapshot(self) -> dict:
        with self._lock:
            self._tick()
            return {
                "state": self._state,
                "consecutive_failures": self._failures,
                "failure_threshold": self.failure_threshold,
            }


# ---------------------------------------------------------------------------
# remote shard client
# ---------------------------------------------------------------------------


class RemoteShardClient:
    """HTTP client for one remote shard, hardened per the module docs.

    Raises :class:`RemoteShardError` for a single failed attempt and
    :class:`TransientIOError` once the retry budget is exhausted;
    non-idempotent operations never retry.  All fault kinds armed at
    ``service.remote`` fire inside :meth:`_attempt`, before any real
    socket work.
    """

    def __init__(
        self,
        url: str,
        policy: Optional[FederationPolicy] = None,
        sleep=time.sleep,
    ):
        self.url = url.rstrip("/")
        self.policy = policy if policy is not None else FederationPolicy()
        self._sleep = sleep
        seed = os.environ.get(faults.SEED_ENV, "0")
        self._rng = random.Random(f"{seed}:{self.url}")
        self._rng_lock = threading.Lock()

    # -- transport ------------------------------------------------------

    def _attempt(
        self,
        path: str,
        payload: Optional[dict],
        timeout_s: float,
        client_id: Optional[str] = None,
    ):
        """One HTTP exchange -> ``(status_code, parsed_json)``.

        This is the injection seam: ``service.remote`` faults fire here,
        exactly where a real network failure would surface.
        """
        target = f"{self.url}{path}"
        try:
            faults.fire(FAULT_SITE)
            garbage = faults.network_garbage(FAULT_SITE)
            if garbage is not None:
                raw, code = garbage, 200
            else:
                request = self._build_request(target, payload, client_id)
                with urllib.request.urlopen(
                    request, timeout=timeout_s
                ) as resp:
                    code = resp.status
                    raw = resp.read().decode("utf-8", "replace")
        except urllib.error.HTTPError as exc:
            # An HTTP-level refusal still *answered*; keep its JSON body
            # (429/503 carry retry hints, 4xx carry the actual error).
            code = exc.code
            raw = exc.read().decode("utf-8", "replace")
        except OSError as exc:
            # ConnectionRefused/Reset, socket timeouts and URLError all
            # land here -- one transport-failure class for the breaker.
            raise RemoteShardError(
                f"{target}: {type(exc).__name__}: {exc}", url=self.url
            ) from exc
        try:
            body = json.loads(raw or "{}")
        except ValueError:
            raise RemoteShardError(
                f"{target}: undecodable response "
                f"(HTTP {code}, {len(raw)} bytes)",
                url=self.url,
            ) from None
        if not isinstance(body, dict):
            raise RemoteShardError(
                f"{target}: expected a JSON object, "
                f"got {type(body).__name__}",
                url=self.url,
            )
        return code, body

    @staticmethod
    def _build_request(target, payload, client_id):
        headers = {"Accept": "application/json"}
        data = None
        if payload is not None:
            data = json.dumps(payload).encode()
            headers["Content-Type"] = "application/json"
        if client_id is not None:
            from repro.service.http import CLIENT_HEADER

            headers[CLIENT_HEADER] = client_id
        return urllib.request.Request(target, data=data, headers=headers)

    def _backoff(self, attempt: int) -> float:
        base = min(
            self.policy.base_backoff_s * (2 ** (attempt - 1)),
            self.policy.max_backoff_s,
        )
        with self._rng_lock:
            jitter = self._rng.random()
        return base * (0.5 + jitter)  # full jitter in [0.5, 1.5) * base

    def request(
        self,
        path: str,
        payload: Optional[dict] = None,
        *,
        idempotent: bool,
        timeout_s: Optional[float] = None,
        client_id: Optional[str] = None,
    ):
        """``(code, body)`` with the retry ladder applied.

        Only idempotent operations retry -- content-addressed
        submissions and GETs are; anything else gets exactly one
        attempt.  429/503 responses are retried after their
        ``retry_after_s`` hint (capped) instead of blind backoff.
        """
        timeout_s = (
            self.policy.request_timeout_s if timeout_s is None else timeout_s
        )
        attempts = self.policy.attempts if idempotent else 1
        last_error: Optional[Exception] = None
        for attempt in range(1, attempts + 1):
            try:
                code, body = self._attempt(
                    path, payload, timeout_s, client_id
                )
            except RemoteShardError as exc:
                last_error = exc
                if attempt == attempts:
                    break
                delay = self._backoff(attempt)
                log.warning(
                    "remote shard attempt %d/%d failed (%s); "
                    "retrying in %.2fs", attempt, attempts, exc, delay,
                )
                self._sleep(delay)
                continue
            if code in (429, 503) and attempt < attempts:
                # Admission pushback: honour the server's hint.
                hint = body.get("retry_after_s")
                try:
                    delay = min(
                        float(hint), self.policy.retry_after_cap_s
                    ) if hint is not None else self._backoff(attempt)
                except (TypeError, ValueError):
                    delay = self._backoff(attempt)
                last_error = RemoteShardError(
                    f"{self.url}{path}: HTTP {code} "
                    f"({body.get('error', 'overloaded')})",
                    url=self.url,
                )
                log.warning(
                    "remote shard pushed back (HTTP %d); "
                    "retrying in %.2fs", code, delay,
                )
                self._sleep(delay)
                continue
            return code, body
        if not idempotent:
            raise last_error
        raise TransientIOError(
            f"remote shard {self.url} failed after {attempts} "
            f"attempt(s): {last_error}"
        ) from last_error

    # -- operations -----------------------------------------------------

    def submit_wait(
        self,
        spec: dict,
        *,
        timeout_s: Optional[float] = None,
        client_id: Optional[str] = None,
    ) -> dict:
        """Forward one spec, block for its row (idempotent: digests
        coalesce on the far side, so resubmission is safe)."""
        wait_s = (
            self.policy.request_timeout_s if timeout_s is None else timeout_s
        )
        code, body = self.request(
            "/v1/jobs",
            {"spec": spec, "wait": True, "timeout_s": wait_s},
            idempotent=True,
            # Socket timeout must outlive the server-side wait.
            timeout_s=wait_s + 30.0,
            client_id=client_id,
        )
        if code != 200:
            raise RemoteShardError(
                f"{self.url}/v1/jobs: HTTP {code}: "
                f"{body.get('error', body)}",
                url=self.url,
            )
        jobs = body.get("jobs")
        if not isinstance(jobs, list) or len(jobs) != 1:
            raise RemoteShardError(
                f"{self.url}/v1/jobs: expected exactly one job row, "
                f"got {jobs!r}",
                url=self.url,
            )
        return jobs[0]

    def stream(
        self,
        specs: Sequence[dict],
        *,
        timeout_s: Optional[float] = None,
        client_id: Optional[str] = None,
    ) -> Iterator[dict]:
        """Forward a batch over ``/v1/jobs/stream``, yielding NDJSON rows.

        Single attempt: a stream broken mid-flight is not transparently
        resumable (rows already yielded would replay), so transport
        trouble surfaces as :class:`RemoteShardError` and the caller
        decides -- the scheduler's per-job forwarding path retries; this
        batch path is for callers that handle partial streams.
        """
        wait_s = (
            self.policy.request_timeout_s if timeout_s is None else timeout_s
        )
        target = f"{self.url}/v1/jobs/stream"
        try:
            faults.fire(FAULT_SITE)
            if faults.network_garbage(FAULT_SITE) is not None:
                raise RemoteShardError(
                    f"{target}: undecodable stream payload", url=self.url
                )
            request = self._build_request(
                target,
                {"specs": list(specs), "timeout_s": wait_s},
                client_id,
            )
            with urllib.request.urlopen(
                request, timeout=wait_s + 30.0
            ) as resp:
                for line in resp:
                    line = line.strip()
                    if not line:
                        continue
                    try:
                        yield json.loads(line)
                    except ValueError:
                        raise RemoteShardError(
                            f"{target}: undecodable stream line",
                            url=self.url,
                        ) from None
        except urllib.error.HTTPError as exc:
            raise RemoteShardError(
                f"{target}: HTTP {exc.code}", url=self.url
            ) from exc
        except RemoteShardError:
            raise
        except OSError as exc:
            raise RemoteShardError(
                f"{target}: {type(exc).__name__}: {exc}", url=self.url
            ) from exc

    def healthz(self) -> dict:
        """One un-retried health probe (failures *are* the signal)."""
        code, body = self._attempt(
            "/v1/healthz", None, self.policy.health_timeout_s
        )
        if code != 200:
            raise RemoteShardError(
                f"{self.url}/v1/healthz: HTTP {code}", url=self.url
            )
        return body

    def query(self, filters: Optional[dict] = None) -> dict:
        """Fan-in leg of a federated ``query`` (idempotent, retried)."""
        path = "/v1/query"
        if filters:
            path += "?" + urllib.parse.urlencode(filters)
        code, body = self.request(path, idempotent=True)
        if code != 200:
            raise RemoteShardError(
                f"{self.url}{path}: HTTP {code}: "
                f"{body.get('error', body)}",
                url=self.url,
            )
        return body


# ---------------------------------------------------------------------------
# runtime state per remote slot + health checking
# ---------------------------------------------------------------------------


class RemoteShard:
    """One remote slot's runtime bundle: client + breaker + health."""

    def __init__(
        self,
        index: int,
        url: str,
        policy: Optional[FederationPolicy] = None,
        client: Optional[RemoteShardClient] = None,
        clock=time.monotonic,
    ):
        policy = policy if policy is not None else FederationPolicy()
        self.index = index
        self.url = url.rstrip("/")
        self.policy = policy
        self.client = (
            client if client is not None
            else RemoteShardClient(self.url, policy=policy)
        )
        self.breaker = CircuitBreaker(
            failure_threshold=policy.failure_threshold,
            cooldown_s=policy.cooldown_s,
            clock=clock,
        )
        self.healthy: Optional[bool] = None  # None until first probe
        self.version_skew = False
        self.last_error: Optional[str] = None
        self.last_health: Optional[dict] = None

    def check_health(self) -> bool:
        """One health probe; drives the breaker from the answer."""
        try:
            body = self.client.healthz()
        except (RemoteShardError, TransientIOError) as exc:
            self.healthy = False
            self.last_error = str(exc)
            self.breaker.record_failure()
            return False
        versions = body.get("versions")
        if versions is not None and not versions_compatible(versions):
            # Digest recipes disagree -- forwarding would break content
            # addressing.  Unhealthy, not fatal: jobs fail over locally.
            self.version_skew = True
            self.healthy = False
            self.last_error = (
                f"model-version skew (remote {versions!r})"
            )
            self.breaker.record_failure()
            return False
        self.version_skew = False
        self.healthy = True
        self.last_error = None
        self.last_health = body
        self.breaker.note_health_ok()
        return True

    def snapshot(self) -> dict:
        """The per-slot row ``/v1/healthz`` federation reporting shows."""
        row = {
            "slot": self.index,
            "kind": "remote",
            "url": self.url,
            "breaker": self.breaker.snapshot(),
            "healthy": self.healthy,
            "version_skew": self.version_skew,
        }
        if self.last_error is not None:
            row["last_error"] = self.last_error
        if self.last_health is not None:
            remote_sched = self.last_health.get("scheduler") or {}
            row["remote_queue_depths"] = remote_sched.get("queue_depths")
        return row


class HealthChecker:
    """Daemon thread polling every remote shard's ``/v1/healthz``."""

    def __init__(
        self, remotes: Sequence[RemoteShard], interval_s: float = 2.0
    ):
        self.remotes = list(remotes)
        self.interval_s = interval_s
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name="repro-federation-health", daemon=True
        )

    def start(self) -> None:
        self._thread.start()

    def poll_now(self) -> None:
        """Synchronous sweep (tests and startup warm-up)."""
        for remote in self.remotes:
            try:
                remote.check_health()
            except Exception:  # pragma: no cover - belt and braces
                log.exception("health check of %s blew up", remote.url)

    def _loop(self) -> None:
        while not self._stop.wait(self.interval_s):
            self.poll_now()

    def stop(self) -> None:
        self._stop.set()
        if self._thread.is_alive():
            self._thread.join(timeout=5)
