"""In-process client facade: store + scheduler behind one object.

:class:`ServiceClient` is what the experiment runner, the benchmarks and
the CLI's local mode use; the HTTP front (``repro.service.http``) wraps
the same object, so in-process and over-the-wire callers see identical
semantics.  Every submission carries a client identity (defaulting to
one per :class:`ServiceClient` instance), which is what the scheduler's
per-client quota meters; the HTTP front substitutes the remote caller's
identity so each HTTP client gets its own quota slot.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import Iterator, List, Optional, Sequence, Tuple, Union

from repro.mlpolyufc.reports import KernelReport
from repro.service.events import EventSink, ListSink
from repro.service.scheduler import Job, Scheduler
from repro.service.spec import JobSpec
from repro.service.store import (
    ResultStore,
    ShardedResultStore,
    resolve_store_shards,
)

#: Pass as ``store=`` to disable persistence outright.
NO_STORE = False


def resolve_store(
    store: Union[None, bool, str, Path, ResultStore, ShardedResultStore]
    = None,
    shards: Optional[int] = None,
) -> Union[None, ResultStore, ShardedResultStore]:
    """Store resolution: explicit object/path > env policy.

    ``None`` (default) honours ``REPRO_NO_CACHE=1``; ``False`` disables
    the store; a path or store object pins it.  ``shards`` (explicit arg
    > ``$REPRO_STORE_SHARDS`` > 1) selects the digest-sharded layout
    when greater than one; an explicit store *object* is used as-is.
    """
    if store is False:
        return None
    if isinstance(store, (ResultStore, ShardedResultStore)):
        return store
    if os.environ.get("REPRO_NO_CACHE", "") == "1" and not isinstance(
        store, (str, Path)
    ):
        return None
    root = Path(store) if isinstance(store, (str, Path)) else None
    shards = resolve_store_shards(shards)
    if shards > 1:
        return ShardedResultStore(root, shards=shards)
    return ResultStore(root)


class ServiceClient:
    """One characterization service endpoint, in process."""

    _instances = 0

    def __init__(
        self,
        store: Union[None, bool, str, Path, ResultStore,
                     ShardedResultStore] = None,
        workers: Optional[int] = None,
        sink: Optional[EventSink] = None,
        cm_timeout_s: Optional[float] = None,
        executor: Optional[str] = None,
        shards: Optional[int] = None,
        store_shards: Optional[int] = None,
        max_pending: Optional[int] = None,
        reject_pending: Optional[int] = None,
        client_quota: Optional[int] = None,
        client_id: Optional[str] = None,
        shard_map=None,
    ):
        self.store = resolve_store(store, shards=store_shards)
        self.sink = sink if sink is not None else ListSink()
        if client_id is None:
            ServiceClient._instances += 1
            client_id = f"local-{os.getpid()}-{ServiceClient._instances}"
        self.client_id = client_id
        self.scheduler = Scheduler(
            store=self.store,
            workers=workers,
            sink=self.sink,
            cm_timeout_s=cm_timeout_s,
            executor=executor,
            shards=shards,
            max_pending=max_pending,
            reject_pending=reject_pending,
            client_quota=client_quota,
            shard_map=shard_map,
        )

    # -- job API -------------------------------------------------------

    def submit(
        self,
        spec: Union[JobSpec, dict],
        client_id: Optional[str] = None,
        **kwargs,
    ) -> Job:
        """Submit one job; ``kwargs`` override/extend a dict spec."""
        if isinstance(spec, dict):
            spec = JobSpec.from_json({**spec, **kwargs})
        return self.scheduler.submit(
            spec, client_id=client_id or self.client_id
        )

    def submit_batch(
        self,
        specs: Sequence[Union[JobSpec, dict]],
        client_id: Optional[str] = None,
    ) -> List[Job]:
        return self.scheduler.submit_batch(
            specs, client_id=client_id or self.client_id
        )

    def status(self, job_id: str) -> Optional[dict]:
        return self.scheduler.status(job_id)

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> KernelReport:
        return self.scheduler.result(job_id, timeout)

    def wait_all(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> List[KernelReport]:
        return self.scheduler.wait_all(jobs, timeout)

    def stream(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> Iterator[Tuple[Job, Optional[KernelReport], Optional[str]]]:
        """Yield ``(job, report, error)`` as jobs finish (any order).

        The streaming counterpart of :meth:`wait_all`: results arrive as
        they complete instead of behind a batch barrier, and a failed
        job yields its error string instead of raising, so one bad spec
        never truncates the stream.
        """
        for job in self.scheduler.iter_completed(jobs, timeout):
            try:
                yield job, job.result(0), None
            except Exception as exc:  # surfaced per job, not per stream
                yield job, None, f"{type(exc).__name__}: {exc}"

    # -- synchronous conveniences --------------------------------------

    def characterize(
        self,
        benchmark: str,
        platform: str = "rpl",
        timeout: Optional[float] = None,
        **spec_kwargs,
    ) -> KernelReport:
        """Submit one spec and block for its report."""
        spec = JobSpec(
            benchmark=benchmark, platform=platform, **spec_kwargs
        )
        return self.submit(spec).result(timeout)

    def characterize_batch(
        self,
        specs: Sequence[Union[JobSpec, dict]],
        timeout: Optional[float] = None,
    ) -> List[KernelReport]:
        return self.wait_all(self.submit_batch(specs), timeout)

    def stream_batch(
        self,
        specs: Sequence[Union[JobSpec, dict]],
        timeout: Optional[float] = None,
    ) -> Iterator[Tuple[Job, Optional[KernelReport], Optional[str]]]:
        """Submit a batch and stream ``(job, report, error)`` triples."""
        return self.stream(self.submit_batch(specs), timeout)

    # -- store passthrough ---------------------------------------------

    def query(self, **filters) -> List[dict]:
        if self.store is None:
            return []
        return self.store.query(**filters)

    def federated_query(self, **filters) -> dict:
        """Fan ``query`` in across the local store and every remote slot.

        A dead or open-circuit remote contributes nothing but never
        fails the whole query: the response carries ``partial=True``
        plus an ``unavailable`` row per missing shard, so callers can
        tell "the federation knows of no such report" apart from "one
        shard could not answer".  Rows are deduplicated by digest and
        re-sorted on the store's canonical key.
        """
        from repro.runtime.errors import RemoteShardError, TransientIOError

        limit = filters.pop("limit", None)
        rows = list(self.query(**filters))
        partial = False
        unavailable = []
        for remote in self.scheduler.remote_shards():
            if remote.breaker.state == "open":
                # Known-dead: skip without burning the half-open probe
                # (that token belongs to the job path).
                partial = True
                unavailable.append({
                    "slot": remote.index, "url": remote.url,
                    "error": "circuit open",
                })
                continue
            try:
                body = remote.client.query(filters)
            except (RemoteShardError, TransientIOError) as exc:
                partial = True
                unavailable.append({
                    "slot": remote.index, "url": remote.url,
                    "error": str(exc),
                })
                continue
            rows.extend(body.get("rows", []))
        seen = {}
        for row in rows:
            seen.setdefault(row.get("digest"), row)
        rows = sorted(
            seen.values(),
            key=lambda row: (
                row.get("benchmark", ""), row.get("platform", ""),
                row.get("objective", ""), row.get("digest", ""),
            ),
        )
        if limit is not None:
            rows = rows[: max(0, int(limit))]
        return {
            "rows": rows, "partial": partial, "unavailable": unavailable,
        }

    def health(self) -> dict:
        """The enriched ``/v1/healthz`` payload: per-shard store stats,
        scheduler queue depths and admission bounds, federation slot
        state, and the model versions (for cross-host skew checks)."""
        from repro.service.spec import model_versions

        return {
            "ok": True,
            "store": self.store_stats(),
            "scheduler": self.scheduler.stats(),
            "versions": model_versions(),
        }

    def store_stats(self) -> dict:
        if self.store is None:
            return {"root": None, "reports": 0, "workloads": 0,
                    "indexed": 0}
        return self.store.stats()

    def events(self, kind: Optional[str] = None):
        if isinstance(self.sink, ListSink):
            return self.sink.events(kind)
        return []

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self.scheduler.shutdown(wait=True)
        self.sink.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
