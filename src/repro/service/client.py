"""In-process client facade: store + scheduler behind one object.

:class:`ServiceClient` is what the experiment runner, the benchmarks and
the CLI's local mode use; the HTTP front (``repro.service.http``) wraps
the same object, so in-process and over-the-wire callers see identical
semantics.
"""

from __future__ import annotations

import os
from pathlib import Path
from typing import List, Optional, Sequence, Union

from repro.mlpolyufc.reports import KernelReport
from repro.service.events import EventSink, ListSink
from repro.service.scheduler import Job, Scheduler
from repro.service.spec import JobSpec
from repro.service.store import ResultStore

#: Pass as ``store=`` to disable persistence outright.
NO_STORE = False


def resolve_store(
    store: Union[None, bool, str, Path, ResultStore] = None,
) -> Optional[ResultStore]:
    """Store resolution: explicit object/path > env policy.

    ``None`` (default) honours ``REPRO_NO_CACHE=1``; ``False`` disables
    the store; a path or :class:`ResultStore` pins it.
    """
    if store is False:
        return None
    if isinstance(store, ResultStore):
        return store
    if isinstance(store, (str, Path)):
        return ResultStore(Path(store))
    if os.environ.get("REPRO_NO_CACHE", "") == "1":
        return None
    return ResultStore()


class ServiceClient:
    """One characterization service endpoint, in process."""

    def __init__(
        self,
        store: Union[None, bool, str, Path, ResultStore] = None,
        workers: Optional[int] = None,
        sink: Optional[EventSink] = None,
        cm_timeout_s: Optional[float] = None,
    ):
        self.store = resolve_store(store)
        self.sink = sink if sink is not None else ListSink()
        self.scheduler = Scheduler(
            store=self.store,
            workers=workers,
            sink=self.sink,
            cm_timeout_s=cm_timeout_s,
        )

    # -- job API -------------------------------------------------------

    def submit(self, spec: Union[JobSpec, dict], **kwargs) -> Job:
        """Submit one job; ``kwargs`` override/extend a dict spec."""
        if isinstance(spec, dict):
            spec = JobSpec.from_json({**spec, **kwargs})
        return self.scheduler.submit(spec)

    def submit_batch(
        self, specs: Sequence[Union[JobSpec, dict]]
    ) -> List[Job]:
        return self.scheduler.submit_batch(specs)

    def status(self, job_id: str) -> Optional[dict]:
        return self.scheduler.status(job_id)

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> KernelReport:
        return self.scheduler.result(job_id, timeout)

    def wait_all(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> List[KernelReport]:
        return self.scheduler.wait_all(jobs, timeout)

    # -- synchronous conveniences --------------------------------------

    def characterize(
        self,
        benchmark: str,
        platform: str = "rpl",
        timeout: Optional[float] = None,
        **spec_kwargs,
    ) -> KernelReport:
        """Submit one spec and block for its report."""
        spec = JobSpec(
            benchmark=benchmark, platform=platform, **spec_kwargs
        )
        return self.submit(spec).result(timeout)

    def characterize_batch(
        self,
        specs: Sequence[Union[JobSpec, dict]],
        timeout: Optional[float] = None,
    ) -> List[KernelReport]:
        return self.wait_all(self.submit_batch(specs), timeout)

    # -- store passthrough ---------------------------------------------

    def query(self, **filters) -> List[dict]:
        if self.store is None:
            return []
        return self.store.query(**filters)

    def store_stats(self) -> dict:
        if self.store is None:
            return {"root": None, "reports": 0, "workloads": 0,
                    "indexed": 0}
        return self.store.stats()

    def events(self, kind: Optional[str] = None):
        if isinstance(self.sink, ListSink):
            return self.sink.events(kind)
        return []

    # -- lifecycle -----------------------------------------------------

    def close(self) -> None:
        self.scheduler.shutdown(wait=True)
        self.sink.close()

    def __enter__(self) -> "ServiceClient":
        return self

    def __exit__(self, *exc) -> None:
        self.close()
