"""``repro.service`` -- the batched, content-addressed characterization
service.

Turns the one-shot PolyUFC pipeline into a long-lived layer every
entrypoint shares (see ``docs/SERVICE.md``):

* :mod:`repro.service.spec` -- :class:`JobSpec` and the canonical
  content digests (kernel, platform, objective, epsilon, engine, model
  versions) that key the store, plus the consistent digest -> shard
  routing (:func:`shard_for`).
* :mod:`repro.service.store` -- the hardened, content-addressed
  :class:`ResultStore` (reports + shared hardware workloads + queryable
  index) and its digest-sharded variant :class:`ShardedResultStore`.
* :mod:`repro.service.executor` -- the single compute path from a spec
  to a :class:`~repro.mlpolyufc.reports.KernelReport`.
* :mod:`repro.service.pool` -- the pluggable execution backends: the
  ``process`` pool (real multi-core scaling; spec/report JSON is the
  wire format) and the inline ``thread`` path
  (``REPRO_SERVICE_EXECUTOR`` selects).
* :mod:`repro.service.scheduler` -- async batch :class:`Scheduler` with
  consistent-hash shard routing, in-flight dedup, admission control
  (bounded shard queues, load shedding, per-client quotas), per-job
  deadlines and the structured lifecycle event stream.
* :mod:`repro.service.client` -- the in-process :class:`ServiceClient`
  facade used by ``repro.experiments`` and the benchmarks, including
  the streaming batch API (:meth:`ServiceClient.stream_batch`).
* :mod:`repro.service.http` -- the stdlib-only HTTP/JSON front behind
  ``repro.cli serve``.
* :mod:`repro.service.federation` -- cross-host shard federation: the
  shard-map config (``REPRO_SHARD_MAP`` / ``serve --shard-map``), the
  hardened :class:`RemoteShardClient` (retry/backoff, idempotent-only
  resubmission), per-shard :class:`CircuitBreaker`\\ s, the async
  :class:`HealthChecker`, and the local-failover ladder the scheduler
  drives (``failover`` events, ``served_by`` attribution).
"""

from repro.service.client import ServiceClient, resolve_store
from repro.service.events import (
    EVENT_KINDS,
    EventSink,
    JobEvent,
    JsonlSink,
    ListSink,
    NullSink,
    TeeSink,
)
from repro.service.executor import execute_report
from repro.service.federation import (
    CircuitBreaker,
    FederationPolicy,
    HealthChecker,
    RemoteShard,
    RemoteShardClient,
    ShardMap,
    ShardSlot,
    resolve_shard_map,
)
from repro.service.http import make_server, request_json, serve
from repro.service.pool import EXECUTOR_KINDS, resolve_executor
from repro.service.scheduler import (
    AdmissionError,
    Job,
    QuotaExceeded,
    Scheduler,
)
from repro.service.spec import (
    OBJECTIVES,
    PLATFORM_NAMES,
    SPEC_VERSION,
    JobSpec,
    model_versions,
    shard_for,
)
from repro.service.store import (
    ResultStore,
    ShardedResultStore,
    store_root,
)

__all__ = [
    "ServiceClient",
    "resolve_store",
    "EVENT_KINDS",
    "EventSink",
    "JobEvent",
    "JsonlSink",
    "ListSink",
    "NullSink",
    "TeeSink",
    "execute_report",
    "CircuitBreaker",
    "FederationPolicy",
    "HealthChecker",
    "RemoteShard",
    "RemoteShardClient",
    "ShardMap",
    "ShardSlot",
    "resolve_shard_map",
    "make_server",
    "request_json",
    "serve",
    "EXECUTOR_KINDS",
    "resolve_executor",
    "AdmissionError",
    "Job",
    "QuotaExceeded",
    "Scheduler",
    "OBJECTIVES",
    "PLATFORM_NAMES",
    "SPEC_VERSION",
    "JobSpec",
    "model_versions",
    "shard_for",
    "ResultStore",
    "ShardedResultStore",
    "store_root",
]
