"""Async job scheduler: sharding, dedup, admission control, events.

The scheduler accepts single and batch submissions, content-addresses
each by its :meth:`JobSpec.digest`, and routes it to a **shard** by
consistent hashing on the coarser :meth:`JobSpec.workload_digest`
(:meth:`JobSpec.shard`) -- so jobs that share hardware-side simulator
counters land together and the store's workload reuse stays shard-local.
Within a shard, at most one pipeline execution per digest is in flight:
concurrent identical submissions **coalesce** onto the primary job and
share its future (event ``coalesced``; the primary is the only one that
ever emits ``started``).  Identical digests always hash to the same
shard, so per-shard dedup is exactly global dedup.  Completed digests
are served from the result store (event ``cache_hit``) without occupying
pipeline time at all.

Execution runs on a pluggable backend (``repro.service.pool``): the
``process`` backend ships jobs to a process pool as serialized spec /
report JSON (real multi-core scaling for the CPU-bound pipeline), the
``thread`` backend runs them inline on the dispatcher threads (the
1-CPU / deterministic-CI path).  ``REPRO_SERVICE_EXECUTOR`` selects.

Admission control bounds every queue:

* ``max_pending`` per shard: beyond it, new primary jobs are **shed** --
  they still run, but pinned to the cheap ``timeout-cap`` degradation
  rung (deadline 0), so overload degrades fidelity instead of queueing
  unboundedly.  Their futures carry the degraded (never-persisted)
  report and their terminal event is ``shed``.
* ``reject_pending`` per shard (default ``4 * max_pending``): the hard
  bound.  Beyond it even shed work is refused -- the submission gets a
  ``shed`` event with ``rejected`` detail and :class:`AdmissionError`.
* ``client_quota``: per-client in-flight cap across shards.  A client at
  its quota gets ``quota_exceeded`` + :class:`QuotaExceeded`; the
  request never enters the system (no ``submitted`` event).

Per-job deadlines ride the existing cooperative machinery: the spec's
``cm_timeout_s`` (or the scheduler default) becomes a
:class:`repro.runtime.Deadline` inside the pipeline, and a unit that
exceeds it walks the exact -> approx -> timeout-cap ladder instead of
blocking the pool; such reports complete normally but are never
persisted.

With a **shard map** (``repro.service.federation``), shard slots may be
remote hosts: jobs routed to a remote slot are forwarded over
``/v1/jobs`` by a hardened :class:`RemoteShardClient` (per-attempt
timeouts, jittered backoff, idempotent-only retry, circuit breaker).
When the remote path fails structurally -- retry budget exhausted,
breaker open, garbage response -- the job **fails over** to local
recompute on the existing executor ladder: a ``failover`` event is
emitted and the result is attributed ``served_by=local_failover``.
Every completion carries a ``served_by`` attribution
(``remote | local | local_failover | cache``) and the global invariant
stays ``submitted == completed + failed + shed`` -- a dead remote shard
degrades throughput, never correctness.
"""

from __future__ import annotations

import contextlib
import itertools
import logging
import os
import threading
import time
from concurrent.futures import FIRST_COMPLETED, Future, ThreadPoolExecutor
from concurrent.futures import wait as futures_wait
from dataclasses import dataclass, field
from typing import Dict, Iterator, List, Optional, Sequence, Union

from repro.mlpolyufc.characterization import resolve_workers
from repro.mlpolyufc.reports import KernelReport
from repro.runtime import EngineFailure, resolve_timeout
from repro.runtime.errors import (
    CircuitOpenError,
    RemoteShardError,
    TransientIOError,
)
from repro.service.events import EventSink, ListSink, make_event
from repro.service.federation import (
    HealthChecker,
    RemoteShard,
    resolve_shard_map,
)
from repro.service.pool import make_backend
from repro.service.spec import JobSpec
from repro.service.store import ResultStore

log = logging.getLogger("repro.runtime")

JOB_STATES = (
    "queued", "running", "completed", "failed", "rejected",
)

SHARDS_ENV = "REPRO_SERVICE_SHARDS"


class AdmissionError(RuntimeError):
    """A shard's hard queue bound refused the submission outright."""


class QuotaExceeded(RuntimeError):
    """The submitting client is at its in-flight quota."""


def resolve_shards(shards: Optional[int], width: int) -> int:
    """Shard count: explicit arg > $REPRO_SERVICE_SHARDS > pool width."""
    if shards is None:
        try:
            shards = int(os.environ.get(SHARDS_ENV, "0")) or None
        except ValueError:
            shards = None
    if shards is None:
        shards = width
    return max(1, shards)


@dataclass
class Job:
    """One submission (possibly coalesced onto an identical one)."""

    job_id: str
    spec: JobSpec
    digest: str
    submitted_at: float
    shard: int = 0
    state: str = "queued"
    source: Optional[str] = None  # "computed" | "store" | "coalesced"
    shed: bool = False
    client_id: Optional[str] = None
    #: Completion attribution: "remote" | "local" | "local_failover" |
    #: "cache" (None until the job reaches its serving path).
    served_by: Optional[str] = None
    error: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    degraded_units: List[str] = field(default_factory=list)
    primary_id: Optional[str] = None
    future: Optional[Future] = None
    #: Coalesced jobs riding this primary (empty on followers).  They
    #: are finished *before* the shared future resolves, so a caller
    #: woken by ``result()`` never observes a follower without its
    #: terminal event.
    followers: List["Job"] = field(default_factory=list)

    def result(self, timeout: Optional[float] = None) -> KernelReport:
        """Block until the report is available (raises on failure)."""
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future is not None and self.future.done()


class Scheduler:
    """See module docstring."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        sink: Optional[EventSink] = None,
        cm_timeout_s: Optional[float] = None,
        executor: Optional[str] = None,
        shards: Optional[int] = None,
        max_pending: Optional[int] = None,
        reject_pending: Optional[int] = None,
        client_quota: Optional[int] = None,
        shard_map=None,
    ):
        self.store = store
        self.sink = sink if sink is not None else ListSink()
        self.width = resolve_workers(workers)
        self.default_timeout_s = cm_timeout_s
        self.shard_map = resolve_shard_map(shard_map)
        if self.shard_map is not None:
            # The map *is* the shard identity: slot order decides where
            # every digest routes, across every front using the map.
            self.shards = len(self.shard_map)
        else:
            self.shards = resolve_shards(shards, self.width)
        self.max_pending = max_pending
        if reject_pending is None and max_pending is not None:
            # The hard bound leaves headroom above the shed threshold
            # (shed jobs are cheap but still occupy slots); max(.., 1)
            # keeps max_pending=0 ("shed everything") admitting work.
            reject_pending = max(4 * max_pending, 1)
        self.reject_pending = reject_pending
        self.client_quota = client_quota
        store_root = getattr(store, "root", None)
        self._backend = make_backend(
            executor,
            self.width,
            store_root=None if store_root is None else str(store_root),
            store_shards=getattr(store, "shard_count", 1),
        )
        self.executor = self._backend.kind
        self._remotes: Dict[int, RemoteShard] = {}
        self._health: Optional[HealthChecker] = None
        if self.shard_map is not None:
            policy = self.shard_map.policy
            for slot in self.shard_map.slots:
                if slot.is_remote:
                    self._remotes[slot.index] = RemoteShard(
                        slot.index, slot.url, policy=policy
                    )
            if self._remotes and policy.health_interval_s > 0:
                self._health = HealthChecker(
                    list(self._remotes.values()),
                    interval_s=policy.health_interval_s,
                )
                self._health.start()
        # A dispatcher thread blocks for the whole life of its job; a
        # remote forward is mostly waiting on the wire, so give each
        # remote slot its own thread on top of the local width -- a slow
        # remote must not starve local compute.
        self._pool = ThreadPoolExecutor(
            max_workers=self.width + len(self._remotes),
            thread_name_prefix="repro-service",
        )
        #: EWMA of completed-job wall time, feeding retry-after hints.
        self._avg_duration_s = 1.0
        self._lock = threading.Lock()
        self._inflight: List[Dict[str, Job]] = [
            {} for _ in range(self.shards)
        ]
        self._pending: List[int] = [0] * self.shards
        self._client_inflight: Dict[str, int] = {}
        self._jobs: Dict[str, Job] = {}
        self._counter = itertools.count(1)
        self._closed = False
        #: Per-thread deferred-dispatch buffer (``batched_dispatch``).
        self._dispatch = threading.local()

    # -- events --------------------------------------------------------

    def _emit(self, kind: str, job: Job, detail: str = "",
              duration_ms: Optional[float] = None) -> None:
        try:
            self.sink.emit(make_event(
                kind, job.job_id, job.digest,
                job.spec.benchmark, job.spec.platform,
                detail=detail, duration_ms=duration_ms,
            ))
        except Exception:  # a sink error must never take a job down
            log.exception("event sink failed on %s/%s", kind, job.job_id)

    # -- submission ----------------------------------------------------

    def submit(
        self,
        spec: Union[JobSpec, dict],
        client_id: Optional[str] = None,
    ) -> Job:
        """Enqueue one job; returns immediately with a tracking handle.

        Raises :class:`QuotaExceeded` when ``client_id`` is at the
        per-client quota and :class:`AdmissionError` when the target
        shard is at its hard queue bound.
        """
        if isinstance(spec, dict):
            spec = JobSpec.from_json(spec)
        else:
            spec.validate()
        digest = spec.digest()
        shard = spec.shard(self.shards)
        client_key = client_id or "anon"
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            job_id = f"j{next(self._counter):08d}"
            job = Job(
                job_id=job_id, spec=spec, digest=digest, shard=shard,
                submitted_at=time.time(), client_id=client_id,
            )
            self._jobs[job_id] = job
            if (
                self.client_quota is not None
                and self._client_inflight.get(client_key, 0)
                >= self.client_quota
            ):
                job.state = "rejected"
                job.error = (
                    f"client {client_key!r} is at its quota "
                    f"({self.client_quota} in-flight jobs)"
                )
                rejection = "quota"
            else:
                primary = self._inflight[shard].get(digest)
                depth = self._pending[shard]
                if primary is not None:
                    job.primary_id = primary.job_id
                    job.source = "coalesced"
                    job.future = primary.future
                    primary.followers.append(job)
                    rejection = None
                elif (
                    self.reject_pending is not None
                    and depth >= self.reject_pending
                ):
                    job.state = "rejected"
                    job.error = (
                        f"shard {shard} is at its hard queue bound "
                        f"({depth} pending >= {self.reject_pending})"
                    )
                    rejection = "queue"
                else:
                    job.shed = (
                        self.max_pending is not None
                        and depth >= self.max_pending
                    )
                    job.future = Future()
                    self._inflight[shard][digest] = job
                    self._pending[shard] = depth + 1
                    rejection = None
                if rejection is None:
                    self._client_inflight[client_key] = (
                        self._client_inflight.get(client_key, 0) + 1
                    )
        if rejection == "quota":
            self._emit("quota_exceeded", job, detail=job.error)
            exc = QuotaExceeded(job.error)
            exc.retry_after_s = self.retry_after_hint()
            raise exc
        self._emit("submitted", job, detail=spec.label())
        if rejection == "queue":
            self._emit("shed", job, detail=f"rejected shard={shard}")
            exc = AdmissionError(job.error)
            exc.retry_after_s = self.retry_after_hint(shard)
            raise exc
        if job.primary_id is not None:
            self._emit("coalesced", job, detail=job.primary_id)
        else:
            if not job.shed:
                self._emit(
                    "queued", job,
                    detail=f"shard={shard} depth={self._pending[shard]}",
                )
            deferred = getattr(self._dispatch, "deferred", None)
            if (
                deferred is not None
                and not job.shed
                and job.shard in self._remotes
            ):
                # Inside batched_dispatch(): hold remote-routed primaries
                # so the flush can coalesce each shard's jobs into one
                # stream request.  (Shed jobs never cross the wire and
                # local jobs gain nothing from batching.)
                deferred.append(job)
            else:
                self._pool.submit(self._run, job)
        return job

    @contextlib.contextmanager
    def batched_dispatch(self):
        """Defer remote dispatch so a batch fans out per *shard*, not
        per job.

        Within the block, ``submit`` collects primary jobs routed to
        remote shards instead of dispatching each to its own forwarding
        thread.  On exit -- including exit via an admission refusal
        mid-batch -- the collected jobs flush: each shard's group goes
        out as **one** ``/v1/jobs/stream`` request
        (:meth:`_run_remote_batch`); a group of one keeps the retried
        per-job ``/v1/jobs`` path.  Nests safely (inner blocks flush
        their own jobs); local jobs are never deferred.
        """
        previous = getattr(self._dispatch, "deferred", None)
        self._dispatch.deferred = []
        try:
            yield
        finally:
            deferred = self._dispatch.deferred
            self._dispatch.deferred = previous
            by_shard: Dict[int, List[Job]] = {}
            for job in deferred:
                by_shard.setdefault(job.shard, []).append(job)
            for shard, group in by_shard.items():
                if len(group) == 1:
                    self._pool.submit(self._run, group[0])
                else:
                    self._pool.submit(
                        self._run_remote_batch, group, self._remotes[shard]
                    )

    def _release(self, job: Job, primary: bool) -> None:
        """Terminal bookkeeping: quota slot, shard depth, dedup entry."""
        client_key = job.client_id or "anon"
        with self._lock:
            count = self._client_inflight.get(client_key, 0)
            if count <= 1:
                self._client_inflight.pop(client_key, None)
            else:
                self._client_inflight[client_key] = count - 1
            if primary:
                self._pending[job.shard] -= 1
                self._inflight[job.shard].pop(job.digest, None)

    def _finish_followers(
        self, primary: Job, exc: Optional[BaseException]
    ) -> None:
        """Give every coalesced follower its terminal event.

        Called from the primary's terminal path *before* the shared
        future resolves: the primary left the in-flight table when its
        slot was released, so the follower list is final -- and a
        waiter woken by ``result()`` observes a fully-balanced event
        stream (every job has its terminal event), not a transiently
        missing one.
        """
        with self._lock:
            followers = list(primary.followers)
            primary.followers.clear()
        for job in followers:
            with self._lock:
                job.finished_at = time.time()
                if exc is not None:
                    job.state = "failed"
                    job.error = f"{type(exc).__name__}: {exc}"
                else:
                    job.state = "completed"
            self._release(job, primary=False)
            duration_ms = (job.finished_at - job.submitted_at) * 1e3
            if exc is not None:
                self._emit("failed", job, detail=job.error,
                           duration_ms=duration_ms)
            else:
                self._emit("completed", job, detail="coalesced",
                           duration_ms=duration_ms)

    def submit_batch(
        self,
        specs: Sequence[Union[JobSpec, dict]],
        client_id: Optional[str] = None,
    ) -> List[Job]:
        """Submit many jobs; duplicates inside the batch coalesce too.

        Remote-routed jobs are dispatched per shard (one stream request
        each), not per job -- see :meth:`batched_dispatch`.
        """
        with self.batched_dispatch():
            return [
                self.submit(spec, client_id=client_id) for spec in specs
            ]

    # -- execution -----------------------------------------------------

    def _job_timeout(self, job: Job) -> float:
        """The job's CM deadline (0 for shed jobs: timeout-cap rung)."""
        if job.shed:
            # Deadline 0: every unit takes the timeout-cap rung
            # immediately, so the job costs compile time only.
            return 0.0
        return (
            job.spec.cm_timeout_s
            if job.spec.cm_timeout_s is not None
            else resolve_timeout(self.default_timeout_s)
        )

    def _fail_job(self, job: Job, exc: BaseException) -> None:
        """Terminal failure: event, release, followers, future."""
        with self._lock:
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
            job.finished_at = time.time()
        self._release(job, primary=True)
        self._emit(
            "failed", job, detail=job.error,
            duration_ms=(job.finished_at - job.submitted_at) * 1e3,
        )
        self._finish_followers(job, exc)
        job.future.set_exception(exc)

    def _complete_job(self, job: Job, report: KernelReport) -> None:
        """Terminal success: event, release, followers, future."""
        with self._lock:
            job.state = "completed"
            job.finished_at = time.time()
        self._release(job, primary=True)
        duration_ms = (job.finished_at - job.submitted_at) * 1e3
        self._note_duration(duration_ms / 1e3)
        if job.shed:
            self._emit(
                "shed", job,
                detail=f"timeout-cap shard={job.shard}",
                duration_ms=duration_ms,
            )
        else:
            detail = job.source or ""
            if job.served_by is not None:
                detail = f"{detail}:{job.served_by}" if detail else job.served_by
            self._emit(
                "completed", job, detail=detail,
                duration_ms=duration_ms,
            )
        self._finish_followers(job, None)
        job.future.set_result(report)

    def _postprocess_and_complete(
        self, job: Job, report: KernelReport
    ) -> None:
        """Degraded accounting + store persistence, then completion."""
        try:
            if not report.fully_exact:
                job.degraded_units = report.degraded_units
                self._emit(
                    "degraded", job,
                    detail=",".join(
                        f"{unit.name}={unit.degraded}"
                        for unit in report.units
                        if unit.degraded != "exact"
                    ),
                )
            if self.store is not None and not job.shed:
                # No-op for degraded reports (store policy).
                self.store.put_report(job.spec, report)
        except BaseException as exc:
            self._fail_job(job, exc)
            return
        self._complete_job(job, report)

    def _run(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.started_at = time.time()
        try:
            report = None
            if self.store is not None:
                report = self.store.get_report(job.digest)
            if report is not None:
                # A stored exact report beats shedding: serve it.
                job.source = "store"
                job.served_by = "cache"
                job.shed = False
                self._emit("cache_hit", job)
            else:
                job.source = "computed"
                timeout = self._job_timeout(job)
                remote = self._remotes.get(job.shard)
                if remote is not None and not job.shed:
                    self._emit(
                        "started", job,
                        detail=f"remote shard={job.shard} {remote.url}",
                    )
                    report = self._forward_remote(job, remote, timeout)
                else:
                    # Shed jobs never cross the wire: the cheap
                    # timeout-cap rung costs less than a round trip.
                    job.served_by = "local"
                    self._emit("started", job, detail=job.spec.label())
                    family_info: dict = {}
                    report = self._run_local(
                        job.spec, timeout, family_info
                    )
                    self._emit_family(job, family_info)
        except BaseException as exc:
            self._fail_job(job, exc)
            return
        if report is not None and job.source == "computed":
            self._postprocess_and_complete(job, report)
        else:
            self._complete_job(job, report)

    def _run_local(
        self,
        spec: JobSpec,
        timeout: float,
        family_info: Optional[dict] = None,
    ) -> KernelReport:
        """One pipeline execution on the local backend (also the
        federation failover slot)."""
        inner_workers = 1 if self.width > 1 else None
        return self._backend.run(
            spec, self.store, inner_workers, timeout, family_info
        )

    def _emit_family(self, job: Job, info: dict) -> None:
        """Emit parametric-family lifecycle events from executor info.

        ``family_served`` marks the O(1)-CM fast path (the job's counters
        were instantiated from the cached artifact); ``family_sample`` /
        ``family_fit`` track the artifact growing toward a chart;
        ``family_poisoned`` records a contradicting sample.
        """
        if not info.get("eligible"):
            return
        sizes = " ".join(
            f"{name}={value}"
            for name, value in sorted((info.get("sizes") or {}).items())
        )
        if info.get("served_units"):
            job.served_by = "family"
            self._emit(
                "family_served", job,
                detail=(
                    f"source={info.get('source')} "
                    f"units={info['served_units']} {sizes}"
                ),
            )
        if info.get("sampled"):
            self._emit("family_sample", job, detail=sizes)
        if info.get("fitted"):
            self._emit("family_fit", job, detail=sizes)
        if info.get("poisoned"):
            self._emit("family_poisoned", job, detail=info["poisoned"])

    def _forward_remote(
        self, job: Job, remote: RemoteShard, timeout: float
    ) -> KernelReport:
        """Serve ``job`` from its remote slot, failing over locally.

        Shard-level trouble (breaker open, retry budget exhausted,
        undecodable payloads) re-routes to local recompute with a
        ``failover`` event; a *job*-level error the remote reports
        (its pipeline genuinely failed) is re-raised structurally --
        it would fail identically here, so failover would only burn
        local compute to learn the same thing.
        """
        try:
            if not remote.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for shard {job.shard} ({remote.url})",
                    url=remote.url,
                )
            # The CM deadline rides inside the spec JSON; the wire-level
            # wait budget is the federation policy's request timeout.
            row = remote.client.submit_wait(
                job.spec.to_json(),
                client_id=f"fed:{os.getpid()}",
            )
            error = row.get("error")
            if error:
                remote.breaker.record_success()  # the shard answered
                raise EngineFailure(
                    f"remote shard {job.shard} ({remote.url}): {error}",
                    site="service.remote",
                )
            report = KernelReport.from_json(row["report"])
        except (CircuitOpenError, RemoteShardError, TransientIOError,
                KeyError, ValueError, TypeError) as exc:
            if not isinstance(exc, CircuitOpenError):
                # The breaker already knows about an open circuit;
                # everything else is fresh evidence against the shard.
                remote.breaker.record_failure()
            reason = f"{type(exc).__name__}: {exc}"
            log.warning(
                "remote shard %d (%s) failed (%s); recomputing locally",
                job.shard, remote.url, reason,
            )
            job.served_by = "local_failover"
            self._emit(
                "failover", job,
                detail=f"shard={job.shard} {reason}",
            )
            return self._run_local(job.spec, timeout)
        remote.breaker.record_success()  # closes a half-open probe
        job.served_by = "remote"
        return report

    def _failover_job(
        self, job: Job, remote: RemoteShard, exc: BaseException
    ) -> None:
        """Recompute one batch member locally after its remote leg broke
        (the batch twin of :meth:`_forward_remote`'s failover branch)."""
        reason = f"{type(exc).__name__}: {exc}"
        log.warning(
            "remote shard %d (%s) failed (%s); recomputing locally",
            job.shard, remote.url, reason,
        )
        job.served_by = "local_failover"
        self._emit("failover", job, detail=f"shard={job.shard} {reason}")
        try:
            report = self._run_local(job.spec, self._job_timeout(job))
        except BaseException as local_exc:
            self._fail_job(job, local_exc)
            return
        self._postprocess_and_complete(job, report)

    def _run_remote_batch(
        self, jobs: List[Job], remote: RemoteShard
    ) -> None:
        """Serve a whole shard group over **one** ``/v1/jobs/stream``.

        The per-shard flush of :meth:`batched_dispatch`: store hits are
        served first (no wire), the rest go out as a single NDJSON
        stream request and complete as their rows arrive.  A row-level
        ``error`` is a *job* failure (the far pipeline genuinely failed;
        the shard answered, so the breaker records success).  A broken
        stream -- or a job whose row never arrived -- fails over to
        local recompute per job, exactly like the per-job path, so a
        mid-stream shard death degrades throughput, never correctness.
        """
        pending: List[Job] = []
        for job in jobs:
            with self._lock:
                job.state = "running"
                job.started_at = time.time()
            try:
                report = None
                if self.store is not None:
                    report = self.store.get_report(job.digest)
            except BaseException as exc:
                self._fail_job(job, exc)
                continue
            if report is not None:
                job.source = "store"
                job.served_by = "cache"
                job.shed = False
                self._emit("cache_hit", job)
                self._complete_job(job, report)
                continue
            job.source = "computed"
            self._emit(
                "started", job,
                detail=(
                    f"remote shard={job.shard} {remote.url} "
                    f"batch={len(jobs)}"
                ),
            )
            pending.append(job)
        if not pending:
            return
        by_digest: Dict[str, Job] = {job.digest: job for job in pending}
        transport_exc: Optional[BaseException] = None
        try:
            if not remote.breaker.allow():
                raise CircuitOpenError(
                    f"circuit open for shard {pending[0].shard} "
                    f"({remote.url})",
                    url=remote.url,
                )
            rows = remote.client.stream(
                [job.spec.to_json() for job in pending],
                client_id=f"fed:{os.getpid()}",
            )
            for row in rows:
                digest = row.get("digest")
                job = by_digest.pop(digest, None) if digest else None
                if job is None:
                    continue  # timeout marker / unknown row
                error = row.get("error")
                if error:
                    self._fail_job(job, EngineFailure(
                        f"remote shard {job.shard} ({remote.url}): "
                        f"{error}",
                        site="service.remote",
                    ))
                    continue
                try:
                    report = KernelReport.from_json(row["report"])
                except (KeyError, ValueError, TypeError) as exc:
                    # One garbage row: that job recomputes locally; the
                    # stream (and the breaker's view of it) continues.
                    self._failover_job(job, remote, exc)
                    continue
                job.served_by = "remote"
                self._postprocess_and_complete(job, report)
        except (CircuitOpenError, RemoteShardError,
                TransientIOError) as exc:
            if not isinstance(exc, CircuitOpenError):
                remote.breaker.record_failure()
            transport_exc = exc
        else:
            remote.breaker.record_success()
        if by_digest:
            leftover = transport_exc or RemoteShardError(
                f"{remote.url}/v1/jobs/stream: stream ended without "
                f"rows for {len(by_digest)} job(s)",
                url=remote.url,
            )
            for job in list(by_digest.values()):
                self._failover_job(job, remote, leftover)

    def _note_duration(self, duration_s: float) -> None:
        with self._lock:
            self._avg_duration_s = (
                0.8 * self._avg_duration_s + 0.2 * duration_s
            )

    # -- introspection -------------------------------------------------

    def remote_shards(self) -> List[RemoteShard]:
        """The live remote-slot bundles (empty without a shard map)."""
        return list(self._remotes.values())

    def retry_after_hint(self, shard: Optional[int] = None) -> float:
        """Seconds a refused client should wait before retrying.

        Estimated queue-drain time: current depth (of ``shard``, or the
        deepest shard) times the completed-job duration EWMA, divided by
        the pool width; clamped to [0.5s, 60s].  Attached to
        :class:`QuotaExceeded`/:class:`AdmissionError` and surfaced by
        the HTTP front as ``Retry-After`` + ``retry_after_s``.
        """
        with self._lock:
            depth = (
                self._pending[shard]
                if shard is not None and 0 <= shard < self.shards
                else max(self._pending, default=0)
            )
            avg = self._avg_duration_s
        drain = max(1, depth) * avg / max(1, self.width)
        return round(min(max(drain, 0.5), 60.0), 2)

    def stats(self) -> dict:
        """A JSON-shaped operational snapshot (the ``/v1/healthz``
        ``scheduler`` section): queue depths per shard, admission
        bounds, backend capacity, and -- when federated -- every remote
        slot's breaker/health state."""
        with self._lock:
            depths = list(self._pending)
            jobs = len(self._jobs)
            clients = len(self._client_inflight)
            avg = self._avg_duration_s
        data = {
            "executor": self.executor,
            "backend": self._backend.describe(),
            "width": self.width,
            "shards": self.shards,
            "queue_depths": depths,
            "max_pending": self.max_pending,
            "reject_pending": self.reject_pending,
            "client_quota": self.client_quota,
            "inflight_clients": clients,
            "jobs": jobs,
            "avg_job_s": round(avg, 3),
        }
        if self.shard_map is not None:
            data["federation"] = [
                self._remotes[index].snapshot()
                if index in self._remotes
                else {"slot": index, "kind": "local"}
                for index in range(self.shards)
            ]
        return data

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[dict]:
        """A JSON-shaped view of one job (coalesced jobs mirror their
        primary's progress through the shared future)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            primary = (
                self._jobs.get(job.primary_id)
                if job.primary_id is not None else None
            )
        state, error = job.state, job.error
        degraded = list(job.degraded_units)
        served_by = job.served_by
        if primary is not None:
            state, error = primary.state, primary.error
            degraded = list(primary.degraded_units)
            served_by = primary.served_by
        duration_ms = None
        finished = (primary or job).finished_at
        if finished is not None:
            duration_ms = (finished - job.submitted_at) * 1e3
        return {
            "job_id": job.job_id,
            "state": state,
            "digest": job.digest,
            "benchmark": job.spec.benchmark,
            "platform": job.spec.platform,
            "objective": job.spec.objective,
            "source": job.source,
            "served_by": served_by,
            "shard": job.shard,
            "shed": (primary or job).shed,
            "error": error,
            "degraded_units": degraded,
            "coalesced_into": job.primary_id,
            "submitted_at": job.submitted_at,
            "duration_ms": duration_ms,
        }

    def jobs(self) -> List[dict]:
        with self._lock:
            ids = list(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> KernelReport:
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job.result(timeout)

    def wait_all(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> List[KernelReport]:
        """Results of ``jobs`` in order (shared deadline across them)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        reports = []
        for job in jobs:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            reports.append(job.result(remaining))
        return reports

    def iter_completed(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> Iterator[Job]:
        """Yield ``jobs`` as they finish (streaming, not batch-barrier).

        Coalesced jobs are yielded right after their primary, since they
        share its future.  Each yielded job is done: ``job.result(0)``
        returns (or raises) immediately.  On ``timeout`` the generator
        raises ``TimeoutError`` with the unfinished jobs still pending.
        """
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        by_future: Dict[Future, List[Job]] = {}
        for job in jobs:
            by_future.setdefault(job.future, []).append(job)
        outstanding = set(by_future)
        while outstanding:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            done, outstanding = futures_wait(
                outstanding, timeout=remaining,
                return_when=FIRST_COMPLETED,
            )
            if not done:
                raise TimeoutError(
                    f"{sum(len(by_future[f]) for f in outstanding)} "
                    f"jobs unfinished after {timeout}s"
                )
            for future in done:
                yield from by_future[future]

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        if self._health is not None:
            self._health.stop()
        self._pool.shutdown(wait=wait)
        self._backend.close()
