"""Async job scheduler: batching, in-flight dedup, deadlines, events.

The scheduler accepts single and batch submissions, content-addresses
each by its :meth:`JobSpec.digest`, and guarantees that at any moment at
most one pipeline execution per digest is in flight: concurrent
identical submissions **coalesce** onto the primary job and share its
future (event ``coalesced``; the primary is the only one that ever
emits ``started``).  Completed digests are served from the result store
(event ``cache_hit``) without occupying pipeline time at all.

Work is sharded across a thread pool whose width follows the
``REPRO_CM_WORKERS`` semantics (:func:`resolve_workers`); when the pool
is wider than one, each job runs its per-unit characterization serially
so job-level parallelism wins (same policy as ``kernel_reports``).
Per-job deadlines ride the existing cooperative machinery: the spec's
``cm_timeout_s`` (or the scheduler default) becomes a
:class:`repro.runtime.Deadline` inside the pipeline, and a unit that
exceeds it walks the exact -> approx -> timeout-cap ladder instead of
blocking the pool; such reports complete normally but are never
persisted.
"""

from __future__ import annotations

import itertools
import logging
import threading
import time
from concurrent.futures import Future, ThreadPoolExecutor
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Union

from repro.mlpolyufc.characterization import resolve_workers
from repro.mlpolyufc.reports import KernelReport
from repro.runtime import resolve_timeout
from repro.service.events import EventSink, ListSink, make_event
from repro.service.executor import execute_report
from repro.service.spec import JobSpec
from repro.service.store import ResultStore

log = logging.getLogger("repro.runtime")

JOB_STATES = ("queued", "running", "completed", "failed")


@dataclass
class Job:
    """One submission (possibly coalesced onto an identical one)."""

    job_id: str
    spec: JobSpec
    digest: str
    submitted_at: float
    state: str = "queued"
    source: Optional[str] = None  # "computed" | "store" | "coalesced"
    error: Optional[str] = None
    started_at: Optional[float] = None
    finished_at: Optional[float] = None
    degraded_units: List[str] = field(default_factory=list)
    primary_id: Optional[str] = None
    future: Optional[Future] = None

    def result(self, timeout: Optional[float] = None) -> KernelReport:
        """Block until the report is available (raises on failure)."""
        return self.future.result(timeout)

    def done(self) -> bool:
        return self.future is not None and self.future.done()


class Scheduler:
    """See module docstring."""

    def __init__(
        self,
        store: Optional[ResultStore] = None,
        workers: Optional[int] = None,
        sink: Optional[EventSink] = None,
        cm_timeout_s: Optional[float] = None,
    ):
        self.store = store
        self.sink = sink if sink is not None else ListSink()
        self.width = resolve_workers(workers)
        self.default_timeout_s = cm_timeout_s
        self._pool = ThreadPoolExecutor(
            max_workers=self.width, thread_name_prefix="repro-service"
        )
        self._lock = threading.Lock()
        self._inflight: Dict[str, Job] = {}
        self._jobs: Dict[str, Job] = {}
        self._counter = itertools.count(1)
        self._closed = False

    # -- events --------------------------------------------------------

    def _emit(self, kind: str, job: Job, detail: str = "",
              duration_ms: Optional[float] = None) -> None:
        try:
            self.sink.emit(make_event(
                kind, job.job_id, job.digest,
                job.spec.benchmark, job.spec.platform,
                detail=detail, duration_ms=duration_ms,
            ))
        except Exception:  # a sink error must never take a job down
            log.exception("event sink failed on %s/%s", kind, job.job_id)

    # -- submission ----------------------------------------------------

    def submit(self, spec: Union[JobSpec, dict]) -> Job:
        """Enqueue one job; returns immediately with a tracking handle."""
        if isinstance(spec, dict):
            spec = JobSpec.from_json(spec)
        else:
            spec.validate()
        digest = spec.digest()
        with self._lock:
            if self._closed:
                raise RuntimeError("scheduler is shut down")
            job_id = f"j{next(self._counter):08d}"
            job = Job(
                job_id=job_id, spec=spec, digest=digest,
                submitted_at=time.time(),
            )
            self._jobs[job_id] = job
            primary = self._inflight.get(digest)
            if primary is not None:
                job.primary_id = primary.job_id
                job.source = "coalesced"
                job.future = primary.future
            else:
                job.future = Future()
                self._inflight[digest] = job
        self._emit("submitted", job, detail=spec.label())
        if job.primary_id is not None:
            self._emit("coalesced", job, detail=job.primary_id)
            # Every job gets a terminal event, coalesced ones included --
            # event-log consumers see a complete per-job lifecycle.
            job.future.add_done_callback(
                lambda fut, job=job: self._finish_coalesced(job, fut)
            )
        else:
            self._pool.submit(self._run, job)
        return job

    def _finish_coalesced(self, job: Job, fut: Future) -> None:
        exc = fut.exception()
        with self._lock:
            job.finished_at = time.time()
            if exc is not None:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
            else:
                job.state = "completed"
        duration_ms = (job.finished_at - job.submitted_at) * 1e3
        if exc is not None:
            self._emit("failed", job, detail=job.error,
                       duration_ms=duration_ms)
        else:
            self._emit("completed", job, detail="coalesced",
                       duration_ms=duration_ms)

    def submit_batch(
        self, specs: Sequence[Union[JobSpec, dict]]
    ) -> List[Job]:
        """Submit many jobs; duplicates inside the batch coalesce too."""
        return [self.submit(spec) for spec in specs]

    # -- execution -----------------------------------------------------

    def _run(self, job: Job) -> None:
        with self._lock:
            job.state = "running"
            job.started_at = time.time()
        try:
            report = None
            if self.store is not None:
                report = self.store.get_report(job.digest)
            if report is not None:
                job.source = "store"
                self._emit("cache_hit", job)
            else:
                job.source = "computed"
                self._emit("started", job, detail=job.spec.label())
                timeout = (
                    job.spec.cm_timeout_s
                    if job.spec.cm_timeout_s is not None
                    else resolve_timeout(self.default_timeout_s)
                )
                inner_workers = 1 if self.width > 1 else None
                report = execute_report(
                    job.spec,
                    store=self.store,
                    workers=inner_workers,
                    cm_timeout_s=timeout,
                )
                if not report.fully_exact:
                    job.degraded_units = report.degraded_units
                    self._emit(
                        "degraded", job,
                        detail=",".join(
                            f"{unit.name}={unit.degraded}"
                            for unit in report.units
                            if unit.degraded != "exact"
                        ),
                    )
                if self.store is not None:
                    # No-op for degraded reports (store policy).
                    self.store.put_report(job.spec, report)
        except BaseException as exc:
            with self._lock:
                job.state = "failed"
                job.error = f"{type(exc).__name__}: {exc}"
                job.finished_at = time.time()
                self._inflight.pop(job.digest, None)
            self._emit(
                "failed", job, detail=job.error,
                duration_ms=(job.finished_at - job.submitted_at) * 1e3,
            )
            job.future.set_exception(exc)
            return
        with self._lock:
            job.state = "completed"
            job.finished_at = time.time()
            self._inflight.pop(job.digest, None)
        self._emit(
            "completed", job, detail=job.source or "",
            duration_ms=(job.finished_at - job.submitted_at) * 1e3,
        )
        job.future.set_result(report)

    # -- introspection -------------------------------------------------

    def get(self, job_id: str) -> Optional[Job]:
        with self._lock:
            return self._jobs.get(job_id)

    def status(self, job_id: str) -> Optional[dict]:
        """A JSON-shaped view of one job (coalesced jobs mirror their
        primary's progress through the shared future)."""
        with self._lock:
            job = self._jobs.get(job_id)
            if job is None:
                return None
            primary = (
                self._jobs.get(job.primary_id)
                if job.primary_id is not None else None
            )
        state, error = job.state, job.error
        degraded = list(job.degraded_units)
        if primary is not None:
            state, error = primary.state, primary.error
            degraded = list(primary.degraded_units)
        duration_ms = None
        finished = (primary or job).finished_at
        if finished is not None:
            duration_ms = (finished - job.submitted_at) * 1e3
        return {
            "job_id": job.job_id,
            "state": state,
            "digest": job.digest,
            "benchmark": job.spec.benchmark,
            "platform": job.spec.platform,
            "objective": job.spec.objective,
            "source": job.source,
            "error": error,
            "degraded_units": degraded,
            "coalesced_into": job.primary_id,
            "submitted_at": job.submitted_at,
            "duration_ms": duration_ms,
        }

    def jobs(self) -> List[dict]:
        with self._lock:
            ids = list(self._jobs)
        return [self.status(job_id) for job_id in ids]

    def result(
        self, job_id: str, timeout: Optional[float] = None
    ) -> KernelReport:
        job = self.get(job_id)
        if job is None:
            raise KeyError(f"unknown job {job_id!r}")
        return job.result(timeout)

    def wait_all(
        self, jobs: Sequence[Job], timeout: Optional[float] = None
    ) -> List[KernelReport]:
        """Results of ``jobs`` in order (shared deadline across them)."""
        deadline = (
            None if timeout is None else time.monotonic() + timeout
        )
        reports = []
        for job in jobs:
            remaining = (
                None if deadline is None
                else max(0.0, deadline - time.monotonic())
            )
            reports.append(job.result(remaining))
        return reports

    def shutdown(self, wait: bool = True) -> None:
        with self._lock:
            self._closed = True
        self._pool.shutdown(wait=wait)
