"""The content-addressed characterization result store.

Layout (under :func:`store_root`, relocatable via ``REPRO_STORE_DIR`` or
``REPRO_CACHE_DIR``)::

    store/
      reports/<spec-digest>.json      one KernelReport per job digest
      workloads/<workload-digest>.json  hardware-side counters, shared by
                                        jobs differing only in objective /
                                        epsilon / overhead / engine
      families/<family-digest>.json   one parametric characterization
                                      artifact per kernel family, shared
                                      by every problem size (size-erased
                                      digest; see ``JobSpec.family_digest``)
      index.json                      digest -> queryable summary row

:class:`ShardedResultStore` splits that layout into N digest-routed
shard directories (``shard-00/ .. shard-NN/``, each a full
:class:`ResultStore`), so shards can live on different disks or hosts;
objects route by digest prefix (:func:`repro.service.spec.shard_for`),
queries fan in across every shard, and each shard's index rebuilds
independently.

Every object rides the same hardened discipline as the rest of the
persistent caches (``repro.runtime.io``): checksummed ``repro-envelope``
payloads, per-writer temp files published with ``os.replace``, and
quarantine-and-recompute on any validation failure.  Report objects fire
the existing ``report.read`` / ``report.write`` fault-injection sites,
so the CI fault matrix exercises the store exactly as it exercised the
old ad-hoc report cache.

Two policies are enforced *here*, once, for every producer:

* **Degraded results are never persisted.**  A report whose units
  walked the degradation ladder reflects a transient condition (an
  expired deadline, an injected fault); serving it later would poison
  every consumer, so :meth:`ResultStore.put_report` refuses it.
* **Corrupt entries are never served.**  A torn, mangled or
  schema-drifted object is quarantined (``<name>.corrupt``) and the
  caller recomputes.

The index is a best-effort acceleration structure, not a source of
truth: it is rebuilt from the report objects whenever it is missing or
corrupt, and :meth:`ResultStore.rebuild_index` does so on demand.
"""

from __future__ import annotations

import logging
import os
import threading
import time
from pathlib import Path
from typing import Dict, List, Optional

from repro.cache.parametric_model import (
    FamilyFitError,
    ParametricCharacterization,
)
from repro.mlpolyufc.reports import KernelReport, ReportSchemaError
from repro.runtime import (
    CacheCorruption,
    EngineFailure,
    TransientIOError,
    atomic_write_json,
    quarantine_file,
    read_checked_json,
)
from repro.service.spec import JobSpec, shard_for

log = logging.getLogger("repro.runtime")

STORE_DIR_ENV = "REPRO_STORE_DIR"
STORE_SHARDS_ENV = "REPRO_STORE_SHARDS"


def resolve_store_shards(shards: Optional[int] = None) -> int:
    """Shard count: explicit arg > $REPRO_STORE_SHARDS > 1 (unsharded)."""
    if shards is None:
        try:
            shards = int(os.environ.get(STORE_SHARDS_ENV, "1"))
        except ValueError:
            shards = 1
    return max(1, shards)


def store_root() -> Path:
    """Store location: $REPRO_STORE_DIR > $REPRO_CACHE_DIR/store > repo."""
    explicit = os.environ.get(STORE_DIR_ENV)
    if explicit:
        return Path(explicit)
    cache = os.environ.get("REPRO_CACHE_DIR")
    if cache:
        return Path(cache) / "store"
    return Path(__file__).resolve().parents[3] / ".polyufc_cache" / "store"


def _index_row(spec: JobSpec, report: KernelReport, digest: str) -> dict:
    caps = report.caps()
    return {
        "digest": digest,
        "benchmark": spec.benchmark,
        "platform": spec.platform,
        "granularity": spec.granularity,
        "objective": spec.objective,
        "set_associative": spec.set_associative,
        "engine": spec.resolved_engine(),
        "boundedness": report.boundedness,
        "oi_model": report.oi_model if report.total_q_dram_model else None,
        "units": len(report.units),
        "min_cap_ghz": min(caps) if caps else None,
        "max_cap_ghz": max(caps) if caps else None,
        "cm_notes": len(report.noted_units),
        "created_at": time.time(),
    }


class ResultStore:
    """Content-addressed report + workload store with a queryable index."""

    #: Uniform introspection with :class:`ShardedResultStore`.
    shard_count = 1

    def __init__(self, root: Optional[Path] = None):
        self.root = Path(root) if root is not None else store_root()
        self._lock = threading.Lock()

    # -- paths ---------------------------------------------------------

    @property
    def reports_dir(self) -> Path:
        return self.root / "reports"

    @property
    def workloads_dir(self) -> Path:
        return self.root / "workloads"

    @property
    def families_dir(self) -> Path:
        return self.root / "families"

    @property
    def index_path(self) -> Path:
        return self.root / "index.json"

    def report_path(self, digest: str) -> Path:
        return self.reports_dir / f"{digest}.json"

    def workload_path(self, digest: str) -> Path:
        return self.workloads_dir / f"{digest}.json"

    def family_path(self, digest: str) -> Path:
        return self.families_dir / f"{digest}.json"

    # -- reports -------------------------------------------------------

    def put_report(
        self, spec: JobSpec, report: KernelReport
    ) -> Optional[Path]:
        """Persist an exact report; refuse degraded ones (policy).

        Returns the object path, or ``None`` when the report was refused
        or the write kept failing (callers lose caching, not results).
        """
        if not report.fully_exact:
            log.debug(
                "not persisting degraded report for %s (%s)",
                spec.label(), ",".join(report.degraded_units),
            )
            return None
        digest = spec.digest()
        path = self.report_path(digest)
        payload = {"spec": spec.to_json(), "report": report.to_json()}
        try:
            atomic_write_json(path, payload, fault_site="report.write")
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "store write of %s failed (%s); continuing", path.name, exc
            )
            return None
        self._index_put(_index_row(spec, report, digest))
        return path

    def get_report(self, digest: str) -> Optional[KernelReport]:
        """Fetch a stored report, or ``None`` (missing / quarantined)."""
        path = self.report_path(digest)
        try:
            payload = read_checked_json(
                path,
                fault_site="report.read",
                required_keys=("spec", "report"),
            )
        except FileNotFoundError:
            return None
        except CacheCorruption:
            return None  # quarantined + logged by the envelope reader
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "store read of %s kept failing (%s); recomputing",
                path.name, exc,
            )
            return None
        try:
            return KernelReport.from_json(payload["report"])
        except ReportSchemaError as exc:
            log.warning("store entry %s has drifted schema (%s)", path, exc)
            quarantine_file(path)
            return None

    def has_report(self, digest: str) -> bool:
        return self.report_path(digest).exists()

    # -- workloads -----------------------------------------------------

    _WORKLOAD_KEYS = (
        "name", "level_accesses", "dram_fetch_bytes",
        "dram_writeback_bytes", "dram_lines",
    )

    def put_workload(self, digest: str, units: List[dict]) -> Optional[Path]:
        """Persist the hardware-side counters of one tiled module."""
        path = self.workload_path(digest)
        try:
            atomic_write_json(
                path, {"units": units}, fault_site="report.write"
            )
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "workload write of %s failed (%s); continuing",
                path.name, exc,
            )
            return None
        return path

    def get_workload(self, digest: str) -> Optional[List[dict]]:
        path = self.workload_path(digest)
        try:
            payload = read_checked_json(
                path, fault_site="report.read", required_keys=("units",)
            )
        except FileNotFoundError:
            return None
        except CacheCorruption:
            return None
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "workload read of %s kept failing (%s); recomputing",
                path.name, exc,
            )
            return None
        units = payload["units"]
        if not isinstance(units, list) or not all(
            isinstance(unit, dict)
            and all(key in unit for key in self._WORKLOAD_KEYS)
            for unit in units
        ):
            log.warning("workload entry %s has drifted schema", path)
            quarantine_file(path)
            return None
        return units

    # -- parametric kernel families ------------------------------------

    def put_family(
        self, digest: str, artifact: ParametricCharacterization
    ) -> Optional[Path]:
        """Persist one kernel family's parametric characterization.

        Keyed by :meth:`repro.service.spec.JobSpec.family_digest`.  The
        exact-samples-only policy is enforced by the producer
        (``execute_report`` samples only fully-exact reports), so every
        persisted vector is engine-agreed ground truth; this method just
        writes the artifact under the usual hardened envelope.
        """
        path = self.family_path(digest)
        try:
            atomic_write_json(
                path, {"family": artifact.to_json()},
                fault_site="report.write",
            )
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "family write of %s failed (%s); continuing",
                path.name, exc,
            )
            return None
        return path

    def get_family(
        self, digest: str
    ) -> Optional[ParametricCharacterization]:
        """Fetch a family artifact, or ``None`` (missing / quarantined)."""
        path = self.family_path(digest)
        try:
            payload = read_checked_json(
                path, fault_site="report.read", required_keys=("family",)
            )
        except FileNotFoundError:
            return None
        except CacheCorruption:
            return None  # quarantined + logged by the envelope reader
        except (TransientIOError, EngineFailure) as exc:
            log.warning(
                "family read of %s kept failing (%s); recomputing",
                path.name, exc,
            )
            return None
        try:
            return ParametricCharacterization.from_json(payload["family"])
        except FamilyFitError as exc:
            log.warning("family entry %s has drifted schema (%s)", path, exc)
            quarantine_file(path)
            return None

    # -- index + queries ----------------------------------------------

    def _load_index(self) -> Dict[str, dict]:
        try:
            payload = read_checked_json(self.index_path, quarantine=True)
        except FileNotFoundError:
            return {}
        except CacheCorruption:
            return self.rebuild_index()
        except (TransientIOError, EngineFailure) as exc:
            log.warning("index read failed (%s); using empty view", exc)
            return {}
        rows = payload.get("rows") if isinstance(payload, dict) else None
        if not isinstance(rows, dict):
            return self.rebuild_index()
        return rows

    def _write_index(self, rows: Dict[str, dict]) -> None:
        try:
            atomic_write_json(self.index_path, {"rows": rows})
        except (TransientIOError, EngineFailure, OSError) as exc:
            log.warning("index write failed (%s); continuing", exc)

    def _index_put(self, row: dict) -> None:
        with self._lock:
            rows = self._load_index()
            rows[row["digest"]] = row
            self._write_index(rows)

    def rebuild_index(self) -> Dict[str, dict]:
        """Regenerate the index by scanning every report object."""
        rows: Dict[str, dict] = {}
        if self.reports_dir.is_dir():
            for path in sorted(self.reports_dir.glob("*.json")):
                digest = path.stem
                try:
                    payload = read_checked_json(
                        path, required_keys=("spec", "report")
                    )
                    spec = JobSpec.from_json(payload["spec"])
                    report = KernelReport.from_json(payload["report"])
                except (CacheCorruption, ReportSchemaError, ValueError):
                    continue  # quarantined or stale; skip
                except (TransientIOError, EngineFailure):
                    continue
                row = _index_row(spec, report, digest)
                row["created_at"] = path.stat().st_mtime
                rows[digest] = row
        self._write_index(rows)
        return rows

    def query(
        self,
        *,
        benchmark: Optional[str] = None,
        platform: Optional[str] = None,
        granularity: Optional[str] = None,
        objective: Optional[str] = None,
        engine: Optional[str] = None,
        boundedness: Optional[str] = None,
        cap_below: Optional[float] = None,
        cap_above: Optional[float] = None,
        limit: Optional[int] = None,
    ) -> List[dict]:
        """Range query over the index (e.g. "all BB kernels on rpl with
        a unit cap below 2.0 GHz").  Returns summary rows, sorted by
        (benchmark, platform, objective, digest) for determinism."""
        if boundedness is not None and boundedness not in ("CB", "BB"):
            raise ValueError(
                f"boundedness must be 'CB' or 'BB', got {boundedness!r}"
            )
        with self._lock:
            rows = list(self._load_index().values())

        def keep(row: dict) -> bool:
            if benchmark is not None and row["benchmark"] != benchmark:
                return False
            if platform is not None and row["platform"] != platform:
                return False
            if granularity is not None and row["granularity"] != granularity:
                return False
            if objective is not None and row["objective"] != objective:
                return False
            if engine is not None and row["engine"] != engine:
                return False
            if boundedness is not None and row["boundedness"] != boundedness:
                return False
            if cap_below is not None:
                if row["min_cap_ghz"] is None:
                    return False
                if not row["min_cap_ghz"] < cap_below:
                    return False
            if cap_above is not None:
                if row["max_cap_ghz"] is None:
                    return False
                if not row["max_cap_ghz"] > cap_above:
                    return False
            return True

        matched = sorted(
            (row for row in rows if keep(row)),
            key=lambda row: (
                row["benchmark"], row["platform"],
                row["objective"], row["digest"],
            ),
        )
        if limit is not None:
            matched = matched[: max(0, int(limit))]
        return matched

    def stats(self) -> dict:
        """Object counts, for health endpoints and debugging."""
        reports = (
            len(list(self.reports_dir.glob("*.json")))
            if self.reports_dir.is_dir() else 0
        )
        workloads = (
            len(list(self.workloads_dir.glob("*.json")))
            if self.workloads_dir.is_dir() else 0
        )
        families = (
            len(list(self.families_dir.glob("*.json")))
            if self.families_dir.is_dir() else 0
        )
        return {
            "root": str(self.root),
            "reports": reports,
            "workloads": workloads,
            "families": families,
            "indexed": len(self._load_index()),
        }


class ShardedResultStore:
    """N digest-routed :class:`ResultStore` shards behind one facade.

    Routing is by digest prefix (:func:`repro.service.spec.shard_for`):
    report objects route on the spec digest, workload objects on the
    workload digest -- both deterministic across processes and hosts, so
    a pool worker and its parent scheduler open independent handles and
    still agree on every object's location.  Reads and writes are
    shard-local; :meth:`query`, :meth:`stats` and :meth:`rebuild_index`
    fan in across every shard.
    """

    def __init__(self, root: Optional[Path] = None, shards: int = 2):
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.root = Path(root) if root is not None else store_root()
        self.shard_count = shards
        self.shards = [
            ResultStore(self.root / f"shard-{index:02d}")
            for index in range(shards)
        ]

    def shard_of(self, digest: str) -> ResultStore:
        return self.shards[shard_for(digest, self.shard_count)]

    # -- reports -------------------------------------------------------

    def put_report(
        self, spec: JobSpec, report: KernelReport
    ) -> Optional[Path]:
        return self.shard_of(spec.digest()).put_report(spec, report)

    def get_report(self, digest: str) -> Optional[KernelReport]:
        return self.shard_of(digest).get_report(digest)

    def has_report(self, digest: str) -> bool:
        return self.shard_of(digest).has_report(digest)

    def report_path(self, digest: str) -> Path:
        return self.shard_of(digest).report_path(digest)

    # -- workloads -----------------------------------------------------

    def put_workload(self, digest: str, units: List[dict]) -> Optional[Path]:
        return self.shard_of(digest).put_workload(digest, units)

    def get_workload(self, digest: str) -> Optional[List[dict]]:
        return self.shard_of(digest).get_workload(digest)

    def workload_path(self, digest: str) -> Path:
        return self.shard_of(digest).workload_path(digest)

    # -- parametric kernel families ------------------------------------

    def put_family(
        self, digest: str, artifact: ParametricCharacterization
    ) -> Optional[Path]:
        return self.shard_of(digest).put_family(digest, artifact)

    def get_family(
        self, digest: str
    ) -> Optional[ParametricCharacterization]:
        return self.shard_of(digest).get_family(digest)

    def family_path(self, digest: str) -> Path:
        return self.shard_of(digest).family_path(digest)

    # -- fan-in --------------------------------------------------------

    def rebuild_index(self) -> Dict[str, dict]:
        rows: Dict[str, dict] = {}
        for shard in self.shards:
            rows.update(shard.rebuild_index())
        return rows

    def query(self, *, limit: Optional[int] = None, **filters) -> List[dict]:
        """Cross-shard fan-in: per-shard queries, one merged sort.

        Each shard already returns rows in the deterministic
        (benchmark, platform, objective, digest) order; the fan-in
        re-sorts the union on the same key, so the result is identical
        to an unsharded store over the same objects.  ``limit`` applies
        after the merge.
        """
        rows: List[dict] = []
        for shard in self.shards:
            rows.extend(shard.query(**filters))
        rows.sort(
            key=lambda row: (
                row["benchmark"], row["platform"],
                row["objective"], row["digest"],
            )
        )
        if limit is not None:
            rows = rows[: max(0, int(limit))]
        return rows

    def stats(self) -> dict:
        per_shard = [shard.stats() for shard in self.shards]
        return {
            "root": str(self.root),
            "shards": self.shard_count,
            "reports": sum(row["reports"] for row in per_shard),
            "workloads": sum(row["workloads"] for row in per_shard),
            "families": sum(row["families"] for row in per_shard),
            "indexed": sum(row["indexed"] for row in per_shard),
            "per_shard": per_shard,
        }
