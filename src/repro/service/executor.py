"""The compute path behind the service: one JobSpec -> one KernelReport.

This is the single implementation every entrypoint shares --
``repro.experiments.runner.kernel_report``, the scheduler's worker pool,
and the CLI all call :func:`execute_report`.  It runs the full PolyUFC
flow (compile, per-unit CM with the exact->approx->cap degradation
ladder under the job's deadline) and attaches the hardware-side workload
(exact cache-simulator counters), reusing the store's content-addressed
workload objects when jobs differ only in objective / epsilon / overhead
/ engine -- the simulator never sees those knobs, so the counters are
shared by construction.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

from repro.benchsuite import get_benchmark
from repro.cache.simulator import simulate_hierarchy
from repro.cache.trace import generate_trace
from repro.hw.platform import get_platform
from repro.mlpolyufc.characterization import DEGRADABLE_ERRORS
from repro.mlpolyufc.reports import KernelReport, UnitReport
from repro.pipeline import polyufc_compile
from repro.runtime import resolve_timeout
from repro.service.spec import JobSpec

log = logging.getLogger("repro.runtime")


def _hardware_rows(
    result, plat, units
) -> Tuple[List[dict], List[Optional[str]], bool]:
    """Exact-simulator counters per unit: (rows, warnings, cacheable).

    A unit whose CM side degraded to ``timeout-cap`` is not simulated
    (the exact trace it needs is exactly what timed out) and a unit
    whose simulation fails gets zero counters plus a warning -- in both
    cases the rows are *not* cacheable, so transient conditions never
    enter the workload store.
    """
    rows: List[dict] = []
    warnings: List[Optional[str]] = []
    cacheable = True
    zero = {
        "level_accesses": [0 for _ in plat.hierarchy.levels],
        "dram_fetch_bytes": 0,
        "dram_writeback_bytes": 0,
        "dram_lines": 0,
    }
    for unit in units:
        warning = None
        sim = None
        if unit.degraded == "timeout-cap":
            cacheable = False
        else:
            try:
                trace = generate_trace(result.tiled_module, unit.ops)
                sim = simulate_hierarchy(trace, plat.hierarchy)
            except DEGRADABLE_ERRORS as exc:
                log.warning(
                    "hardware-side simulation of %s failed (%s); "
                    "zero hardware counters", unit.name, exc,
                )
                warning = f"hardware simulation failed: {exc}"
                cacheable = False
        if sim is not None:
            rows.append({
                "name": unit.name,
                "level_accesses": [
                    level.accesses for level in sim.levels
                ],
                "dram_fetch_bytes": sim.dram_fetch_bytes,
                "dram_writeback_bytes": sim.dram_writeback_bytes,
                "dram_lines": sim.llc.misses + sim.llc.writebacks,
            })
        else:
            rows.append({"name": unit.name, **zero})
        warnings.append(warning)
    return rows, warnings, cacheable


def execute_report(
    spec: JobSpec,
    store=None,
    workers: Optional[int] = None,
    cm_timeout_s: Optional[float] = None,
) -> KernelReport:
    """Run the full pipeline for one job spec.

    ``store`` (a :class:`repro.service.store.ResultStore` or ``None``)
    is consulted only for the hardware-side workload sub-results; report
    lookup/persistence is the caller's concern, so this function always
    computes the model side fresh (modulo the in-process CM memo).

    ``workers`` tunes the per-unit thread pool; ``cm_timeout_s``
    overrides the spec's deadline (argument > spec > env, resolved via
    :func:`repro.runtime.resolve_timeout`); neither changes any number.
    """
    spec.validate()
    if cm_timeout_s is None:
        cm_timeout_s = resolve_timeout(spec.cm_timeout_s)
    plat = get_platform(spec.platform)
    result = polyufc_compile(
        get_benchmark(spec.benchmark).module(),
        plat,
        granularity=spec.granularity,
        objective=spec.objective,
        tile_size=spec.tile_size,
        epsilon=spec.epsilon,
        set_associative=spec.set_associative,
        cap_overhead_factor=spec.cap_overhead_factor,
        workers=workers,
        cm_engine=spec.engine,
        cm_timeout_s=cm_timeout_s,
    )

    workload_key = spec.workload_digest()
    cached_rows = store.get_workload(workload_key) if store else None
    names = [unit.name for unit in result.units]
    if cached_rows is not None and [
        row["name"] for row in cached_rows
    ] != names:
        cached_rows = None  # unit boundaries drifted; recompute
    if cached_rows is not None:
        hw_rows = cached_rows
        hw_warnings: List[Optional[str]] = [None] * len(names)
    else:
        hw_rows, hw_warnings, cacheable = _hardware_rows(
            result, plat, result.units
        )
        if store is not None and cacheable:
            store.put_workload(workload_key, hw_rows)

    report = KernelReport(
        benchmark=spec.benchmark,
        platform=plat.name,
        granularity=spec.granularity,
        objective=spec.objective,
        set_associative=spec.set_associative,
        balance_fpb=result.constants.b_t_dram,
        timings_ms={
            "preprocess": result.timings.preprocess_ms,
            "pluto": result.timings.pluto_ms,
            "polyufc_cm": result.timings.polyufc_cm_ms,
            "steps_4_6": result.timings.steps_4_6_ms,
        },
    )
    for unit, decision, row, hw_warning in zip(
        result.units, result.decisions, hw_rows, hw_warnings
    ):
        warning = unit.warning
        if hw_warning:
            warning = (warning + "; " if warning else "") + hw_warning
        report.units.append(
            UnitReport(
                name=unit.name,
                omega=unit.omega,
                oi_fpb=float(unit.oi_fpb),
                boundedness=str(unit.boundedness),
                cap_ghz=decision.f_cap_ghz,
                parallel=unit.parallel,
                q_dram_model=unit.cm.q_dram_bytes,
                level_accesses_hw=tuple(row["level_accesses"]),
                dram_fetch_bytes_hw=row["dram_fetch_bytes"],
                dram_writeback_bytes_hw=row["dram_writeback_bytes"],
                dram_lines_hw=row["dram_lines"],
                model_level_bytes=tuple(unit.summary.level_bytes),
                model_dram_lines=unit.summary.dram_lines,
                cores_fraction=unit.summary.cores_fraction,
                search_iterations=decision.search.iterations,
                degraded=unit.degraded,
                warning=warning,
                cm_note=unit.cm_note,
            )
        )
    return report
