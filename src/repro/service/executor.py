"""The compute path behind the service: one JobSpec -> one KernelReport.

This is the single implementation every entrypoint shares --
``repro.experiments.runner.kernel_report``, the scheduler's worker pool,
and the CLI all call :func:`execute_report`.  It runs the full PolyUFC
flow (compile, per-unit CM with the exact->approx->cap degradation
ladder under the job's deadline) and attaches the hardware-side workload
(exact cache-simulator counters), reusing the store's content-addressed
workload objects when jobs differ only in objective / epsilon / overhead
/ engine -- the simulator never sees those knobs, so the counters are
shared by construction.
"""

from __future__ import annotations

import logging
from typing import List, Optional, Tuple

from repro.benchsuite import get_benchmark
from repro.cache.parametric_model import (
    FamilyFitError,
    ParametricCharacterization,
)
from repro.cache.simulator import simulate_hierarchy
from repro.cache.trace import generate_trace
from repro.hw.platform import get_platform
from repro.mlpolyufc.characterization import (
    DEGRADABLE_ERRORS,
    FAMILY_SERVED_NOTE,
)
from repro.mlpolyufc.reports import KernelReport, UnitReport
from repro.pipeline import polyufc_compile
from repro.runtime import resolve_timeout
from repro.service.spec import JobSpec

log = logging.getLogger("repro.runtime")


def _hardware_rows(
    result, plat, units
) -> Tuple[List[dict], List[Optional[str]], bool]:
    """Exact-simulator counters per unit: (rows, warnings, cacheable).

    A unit whose CM side degraded to ``timeout-cap`` is not simulated
    (the exact trace it needs is exactly what timed out) and a unit
    whose simulation fails gets zero counters plus a warning -- in both
    cases the rows are *not* cacheable, so transient conditions never
    enter the workload store.
    """
    rows: List[dict] = []
    warnings: List[Optional[str]] = []
    cacheable = True
    zero = {
        "level_accesses": [0 for _ in plat.hierarchy.levels],
        "dram_fetch_bytes": 0,
        "dram_writeback_bytes": 0,
        "dram_lines": 0,
    }
    for unit in units:
        warning = None
        sim = None
        if unit.degraded == "timeout-cap":
            cacheable = False
        else:
            try:
                trace = generate_trace(result.tiled_module, unit.ops)
                sim = simulate_hierarchy(trace, plat.hierarchy)
            except DEGRADABLE_ERRORS as exc:
                log.warning(
                    "hardware-side simulation of %s failed (%s); "
                    "zero hardware counters", unit.name, exc,
                )
                warning = f"hardware simulation failed: {exc}"
                cacheable = False
        if sim is not None:
            rows.append({
                "name": unit.name,
                "level_accesses": [
                    level.accesses for level in sim.levels
                ],
                "dram_fetch_bytes": sim.dram_fetch_bytes,
                "dram_writeback_bytes": sim.dram_writeback_bytes,
                "dram_lines": sim.llc.misses + sim.llc.writebacks,
            })
        else:
            rows.append({"name": unit.name, **zero})
        warnings.append(warning)
    return rows, warnings, cacheable


def _family_vector(unit, fields) -> tuple:
    """One unit's counters in the fixed family-artifact field order."""
    values = {
        "omega": unit.omega,
        "total_accesses": unit.cm.total_accesses,
        "threads": unit.cm.threads,
    }
    for index, level in enumerate(unit.cm.levels):
        values[f"level{index}_accesses"] = level.accesses
        values[f"level{index}_cold_misses"] = level.cold_misses
        values[f"level{index}_capacity_conflict_misses"] = (
            level.capacity_conflict_misses
        )
    return tuple(int(values[name]) for name in fields)


def _family_serve(artifact, sizes) -> Optional[Tuple[dict, str]]:
    """(unit -> CM result, source) instantiated from an artifact, or None."""
    if artifact is None:
        return None
    try:
        answer = artifact.evaluate(sizes)
    except ValueError:
        return None  # parameter names drifted; recompute from scratch
    if answer is None:
        return None
    table = {
        name: artifact.cm_result(vector)
        for name, vector in zip(artifact.unit_names, answer.units)
    }
    return table, answer.source


def _family_sample(spec, store, digest, artifact, sizes, result, info):
    """Fold one fully-exact result into the family artifact (and fit).

    Degraded results never reach this point (the caller gates on
    ``report.fully_exact``), so persisted family samples are always
    engine-agreed exact counters.  A contradicting sample poisons the
    artifact; the verdict is persisted so the family stops serving.
    """
    invariants = {
        "param_names": tuple(sorted(sizes)),
        "unit_names": tuple(unit.name for unit in result.units),
        "level_names": tuple(
            level.name for level in result.units[0].cm.levels
        ),
        "line_bytes": result.units[0].cm.line_bytes,
    }
    if artifact is None:
        artifact = ParametricCharacterization(
            param_names=invariants["param_names"],
            unit_names=invariants["unit_names"],
            level_names=invariants["level_names"],
            line_bytes=invariants["line_bytes"],
        )
    fields = artifact.fields
    vectors = [_family_vector(unit, fields) for unit in result.units]
    try:
        new = artifact.add_sample(sizes, vectors, invariants)
        fitted = artifact.try_fit() if new else False
    except FamilyFitError as exc:
        log.warning(
            "family sample for %s rejected (%s); poisoning artifact",
            spec.label(), exc,
        )
        store.put_family(digest, artifact)
        info["poisoned"] = str(exc)
        return
    if new:
        store.put_family(digest, artifact)
    info["sampled"] = new
    info["fitted"] = fitted


def execute_report(
    spec: JobSpec,
    store=None,
    workers: Optional[int] = None,
    cm_timeout_s: Optional[float] = None,
    family_info: Optional[dict] = None,
) -> KernelReport:
    """Run the full pipeline for one job spec.

    ``store`` (a :class:`repro.service.store.ResultStore` or ``None``)
    is consulted only for the hardware-side workload sub-results and,
    for ``engine="parametric"`` jobs, the kernel-family artifacts;
    report lookup/persistence is the caller's concern, so this function
    always produces the model side fresh (modulo the in-process CM memo
    and the family fast path below).

    For a parametric job with a store, the family artifact keyed by
    :meth:`JobSpec.family_digest` is consulted first: when it can answer
    the job's sizes (a stored exact sample or a validated chart lattice
    point) the per-unit CM counters are *instantiated* instead of
    computed -- O(1) CM work -- and each served unit carries the
    ``FAMILY_SERVED_NOTE`` cm_note.  Otherwise the job computes normally
    and, when fully exact, its counters are folded back into the
    artifact as a new sample (growing the family toward a fit).

    ``family_info``, when given, is filled with what happened
    (``eligible``/``source``/``served_units``/``sampled``/``fitted``/
    ``poisoned``) so the scheduler can emit lifecycle events.

    ``workers`` tunes the per-unit thread pool; ``cm_timeout_s``
    overrides the spec's deadline (argument > spec > env, resolved via
    :func:`repro.runtime.resolve_timeout`); neither changes any number.
    """
    spec.validate()
    if cm_timeout_s is None:
        cm_timeout_s = resolve_timeout(spec.cm_timeout_s)
    plat = get_platform(spec.platform)
    sizes = spec.effective_sizes()
    family_eligible = (
        store is not None
        and bool(sizes)
        and spec.resolved_engine() == "parametric"
    )
    if family_info is not None:
        family_info.clear()
        family_info["eligible"] = family_eligible
        if family_eligible:
            family_info["sizes"] = dict(sizes)
    family_digest = artifact = served = None
    served_source = None
    if family_eligible:
        family_digest = spec.family_digest()
        artifact = store.get_family(family_digest)
        hit = _family_serve(artifact, sizes)
        if hit is not None:
            served, served_source = hit
    result = polyufc_compile(
        get_benchmark(spec.benchmark).module(dict(spec.sizes)),
        plat,
        granularity=spec.granularity,
        objective=spec.objective,
        tile_size=spec.tile_size,
        epsilon=spec.epsilon,
        set_associative=spec.set_associative,
        cap_overhead_factor=spec.cap_overhead_factor,
        workers=workers,
        cm_engine=spec.engine,
        cm_timeout_s=cm_timeout_s,
        cm_lookup=served.get if served is not None else None,
    )
    if family_info is not None and served is not None:
        family_info["source"] = served_source
        family_info["served_units"] = sum(
            1 for unit in result.units
            if unit.cm_note == FAMILY_SERVED_NOTE
        )

    workload_key = spec.workload_digest()
    cached_rows = store.get_workload(workload_key) if store else None
    names = [unit.name for unit in result.units]
    if cached_rows is not None and [
        row["name"] for row in cached_rows
    ] != names:
        cached_rows = None  # unit boundaries drifted; recompute
    if cached_rows is not None:
        hw_rows = cached_rows
        hw_warnings: List[Optional[str]] = [None] * len(names)
    else:
        hw_rows, hw_warnings, cacheable = _hardware_rows(
            result, plat, result.units
        )
        if store is not None and cacheable:
            store.put_workload(workload_key, hw_rows)

    report = KernelReport(
        benchmark=spec.benchmark,
        platform=plat.name,
        granularity=spec.granularity,
        objective=spec.objective,
        set_associative=spec.set_associative,
        balance_fpb=result.constants.b_t_dram,
        timings_ms={
            "preprocess": result.timings.preprocess_ms,
            "pluto": result.timings.pluto_ms,
            "polyufc_cm": result.timings.polyufc_cm_ms,
            "steps_4_6": result.timings.steps_4_6_ms,
        },
    )
    for unit, decision, row, hw_warning in zip(
        result.units, result.decisions, hw_rows, hw_warnings
    ):
        warning = unit.warning
        if hw_warning:
            warning = (warning + "; " if warning else "") + hw_warning
        report.units.append(
            UnitReport(
                name=unit.name,
                omega=unit.omega,
                oi_fpb=float(unit.oi_fpb),
                boundedness=str(unit.boundedness),
                cap_ghz=decision.f_cap_ghz,
                parallel=unit.parallel,
                q_dram_model=unit.cm.q_dram_bytes,
                level_accesses_hw=tuple(row["level_accesses"]),
                dram_fetch_bytes_hw=row["dram_fetch_bytes"],
                dram_writeback_bytes_hw=row["dram_writeback_bytes"],
                dram_lines_hw=row["dram_lines"],
                model_level_bytes=tuple(unit.summary.level_bytes),
                model_dram_lines=unit.summary.dram_lines,
                cores_fraction=unit.summary.cores_fraction,
                search_iterations=decision.search.iterations,
                degraded=unit.degraded,
                warning=warning,
                cm_note=unit.cm_note,
            )
        )
    if family_eligible and served is None and report.fully_exact:
        _family_sample(
            spec, store, family_digest, artifact, sizes, result,
            family_info if family_info is not None else {},
        )
    return report
