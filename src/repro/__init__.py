"""PolyUFC reproduction: polyhedral compilation meets roofline analysis
for uncore frequency capping.

Reproduction of Shah et al., "PolyUFC: Polyhedral Compilation Meets
Roofline Analysis for Uncore Frequency Capping" (CGO 2026).  See DESIGN.md
for the system inventory and EXPERIMENTS.md for the per-table/figure
results.

Quickstart::

    from repro import polyufc_compile, get_platform
    from repro.benchsuite import get_benchmark

    platform = get_platform("rpl")
    result = polyufc_compile(get_benchmark("gemm").module(), platform)
    for unit, decision in zip(result.units, result.decisions):
        print(unit.name, unit.boundedness, decision.f_cap_ghz)

Packages:

* :mod:`repro.isllite` -- integer sets/maps (isl + barvinok substitute)
* :mod:`repro.ir` -- mini-MLIR with torch/linalg/affine dialects
* :mod:`repro.poly` -- SCoP extraction, dependences, Pluto-lite tiling
* :mod:`repro.cache` -- PolyUFC-CM and the hardware cache simulator
* :mod:`repro.roofline` -- performance + power rooflines, microbenchmarks
* :mod:`repro.model` -- the Sec. V parametric model (Eqns 2-11)
* :mod:`repro.search` -- POLYUFC-SEARCH cap selection
* :mod:`repro.mlpolyufc` -- multi-level dialect-aware capping (Sec. VI)
* :mod:`repro.hw` -- simulated platforms, drivers, counters
* :mod:`repro.benchsuite` -- PolyBench + Tab. II ML kernels
* :mod:`repro.experiments` -- cached compile-and-measure driver
"""

from repro.hw.platform import get_platform
from repro.pipeline import PolyUFCResult, polyufc_compile, get_constants

__version__ = "1.0.0"

__all__ = [
    "get_platform",
    "get_constants",
    "polyufc_compile",
    "PolyUFCResult",
    "__version__",
]
