"""The end-to-end PolyUFC compilation flow (paper Fig. 2 / Fig. 3).

``polyufc_compile`` drives the whole pipeline:

1. **preprocess** -- lower the input module to affine IR (torch -> linalg ->
   affine as needed); this is the paper's "St. 2 extraction".
2. **pluto** -- legality-checked tiling + parallelization (St. 2 optimizer).
3. **polyufc_cm** -- per-unit cache analysis + OI (St. 3a-3b).
4. **steps 4-6** -- roofline characterization, Sec. V model, POLYUFC-SEARCH,
   cap insertion and redundant-cap rewriting.

Per-stage wall-clock timings are recorded (they regenerate Tab. IV), and
the paper's timeout rule is honoured: when PolyUFC-CM exceeds the budget
the kernel's cap is reset to the maximum uncore frequency (Sec. VII-F).
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from functools import lru_cache
from typing import Dict, List, Optional

from repro.hw.platform import PlatformSpec
from repro.ir.core import Module
from repro.ir.dialects.affine import AffineForOp, verify_affine
from repro.ir.dialects.linalg import LinalgOp
from repro.ir.dialects.torch_d import TorchOp
from repro.ir.lowering import lower_linalg_to_affine, lower_torch_to_linalg
from repro.mlpolyufc.capping import (
    CapDecision,
    aggregate_caps_for_overhead,
    apply_caps,
    select_caps,
)
from repro.mlpolyufc.characterization import (
    UnitCharacterization,
    characterize_units,
)
from repro.mlpolyufc.rewrite import remove_redundant_caps
from repro.poly.transforms import TileInfo, tile_and_parallelize
from repro.roofline.constants import RooflineConstants
from repro.roofline.microbench import calibrate_platform
from repro.runtime import Deadline
from repro.search.polyufc_search import SearchConfig


@lru_cache(maxsize=None)
def _cached_constants(platform_name: str) -> RooflineConstants:
    from repro.hw.platform import get_platform

    return calibrate_platform(get_platform(platform_name))


def get_constants(platform: PlatformSpec) -> RooflineConstants:
    """One-time microbenchmark calibration, cached per platform."""
    return _cached_constants(platform.name)


@dataclass
class StageTimings:
    """Wall-clock per pipeline stage, milliseconds (Tab. IV rows)."""

    preprocess_ms: float = 0.0
    pluto_ms: float = 0.0
    polyufc_cm_ms: float = 0.0
    steps_4_6_ms: float = 0.0

    @property
    def total_ms(self) -> float:
        return (
            self.preprocess_ms
            + self.pluto_ms
            + self.polyufc_cm_ms
            + self.steps_4_6_ms
        )


@dataclass
class PolyUFCResult:
    """Everything the flow produced for one input module."""

    input_module: Module
    affine_module: Module
    tiled_module: Module
    capped_module: Module
    units: List[UnitCharacterization]
    decisions: List[CapDecision]
    tile_infos: List[TileInfo]
    timings: StageTimings
    platform: PlatformSpec
    constants: RooflineConstants
    granularity: str
    objective: str
    timed_out: bool = False

    def caps(self) -> List[float]:
        return [decision.f_cap_ghz for decision in self.decisions]

    def boundedness_sequence(self) -> List[str]:
        return [str(unit.boundedness) for unit in self.units]

    def degradation(self) -> List[str]:
        """Per-unit degradation rung (``exact``/``approx``/``timeout-cap``)."""
        return [unit.degraded for unit in self.units]

    @property
    def fully_exact(self) -> bool:
        return all(unit.degraded == "exact" for unit in self.units)


def _lower_to_affine(module: Module) -> Module:
    has_torch = any(isinstance(op, TorchOp) for op in module.ops)
    current = lower_torch_to_linalg(module) if has_torch else module
    has_linalg = any(isinstance(op, LinalgOp) for op in current.ops)
    if has_linalg:
        current = lower_linalg_to_affine(current)
    if not any(isinstance(op, AffineForOp) for op in current.ops):
        raise ValueError(
            f"module {module.name!r} contains no affine loop nests to analyze"
        )
    return current


def polyufc_compile(
    module: Module,
    platform: PlatformSpec,
    constants: Optional[RooflineConstants] = None,
    objective: str = "edp",
    epsilon: float = 1e-3,
    granularity: str = "linalg",
    tile_size: int = 32,
    threads: Optional[int] = None,
    set_associative: bool = True,
    cm_timeout_s: Optional[float] = None,
    cap_overhead_factor: float = 50.0,
    verify: bool = True,
    workers: Optional[int] = None,
    cm_engine: Optional[str] = None,
    cm_lookup=None,
) -> PolyUFCResult:
    """Run the full PolyUFC flow on one module.

    ``cm_lookup`` (unit name -> ``CacheModelResult`` or ``None``) lets a
    caller serve per-unit CM counters from a cached kernel-family
    artifact instead of evaluating an engine (see
    :func:`repro.mlpolyufc.characterization.characterize_units`).

    ``workers`` fans per-unit cache analysis across a thread pool and
    ``cm_engine`` selects the PolyUFC-CM evaluator (``fast`` or
    ``reference``); both default to the ``REPRO_CM_WORKERS`` /
    ``REPRO_CM_ENGINE`` environment knobs.
    """
    constants = constants if constants is not None else get_constants(platform)
    timings = StageTimings()

    started = time.perf_counter()
    affine_module = _lower_to_affine(module)
    timings.preprocess_ms = (time.perf_counter() - started) * 1e3

    started = time.perf_counter()
    tiled_module, tile_infos = tile_and_parallelize(
        affine_module, tile_size=tile_size
    )
    if verify:
        tiled_module.verify()
        verify_affine(tiled_module)
    timings.pluto_ms = (time.perf_counter() - started) * 1e3

    started = time.perf_counter()
    # The deadline is shared by every unit (and checked inside the CM
    # engines at chunk boundaries), so ``cm_timeout_s`` bounds the whole
    # PolyUFC-CM stage even when a single unit would run far longer.
    deadline = Deadline.after(cm_timeout_s)
    units: List[UnitCharacterization] = []
    try:
        units = characterize_units(
            tiled_module,
            platform,
            constants,
            granularity=granularity,
            threads=threads,
            set_associative=set_associative,
            workers=workers,
            engine=cm_engine,
            deadline=deadline,
            cm_lookup=cm_lookup,
        )
    finally:
        timings.polyufc_cm_ms = (time.perf_counter() - started) * 1e3
    timed_out = deadline is not None and deadline.expired()

    started = time.perf_counter()
    config = SearchConfig(objective=objective, epsilon=epsilon)
    decisions = select_caps(units, platform, config)
    aggregate_caps_for_overhead(
        decisions, platform, config, overhead_factor=cap_overhead_factor
    )
    # Paper Sec. VII-F, applied per unit: a unit whose characterization
    # fell off the ladder's last rung gets the safe maximum cap; exact
    # and approximate units keep their searched caps.
    for unit, decision in zip(units, decisions):
        if unit.degraded == "timeout-cap":
            decision.search.f_cap_ghz = platform.uncore.f_max_ghz
    capped = apply_caps(tiled_module, decisions)
    capped = remove_redundant_caps(capped)
    timings.steps_4_6_ms = (time.perf_counter() - started) * 1e3

    return PolyUFCResult(
        input_module=module,
        affine_module=affine_module,
        tiled_module=tiled_module,
        capped_module=capped,
        units=units,
        decisions=decisions,
        tile_infos=tile_infos,
        timings=timings,
        platform=platform,
        constants=constants,
        granularity=granularity,
        objective=objective,
        timed_out=timed_out,
    )
