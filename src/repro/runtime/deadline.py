"""Cooperative deadlines for the PolyUFC pipeline.

A :class:`Deadline` is a shared wall-clock budget created once at the top
of ``polyufc_compile`` and threaded down through ``characterize_units``,
both CM engines and ``isllite`` counting.  Work checks it at *chunk
boundaries* (``deadline.check(site)``); an expired deadline raises
:class:`repro.runtime.errors.DeadlineExceeded`, which the degradation
ladder in ``characterize_units`` converts into a cheaper rung instead of
letting a pathological unit block the pipeline.

The object is deliberately tiny and thread-safe by construction: it holds
one immutable expiry instant, so a worker pool can share a single
instance and every worker sees the same budget.
"""

from __future__ import annotations

import os
import time
from typing import Optional

from repro.runtime.errors import DeadlineExceeded

#: Environment knob consumed by :func:`resolve_timeout`.
TIMEOUT_ENV = "REPRO_CM_TIMEOUT_S"


class Deadline:
    """A wall-clock expiry instant with cooperative checkpoints."""

    __slots__ = ("expires_at", "budget_s")

    def __init__(self, budget_s: float, *, _now: Optional[float] = None):
        if budget_s < 0:
            raise ValueError(f"deadline budget must be >= 0, got {budget_s}")
        self.budget_s = float(budget_s)
        now = time.monotonic() if _now is None else _now
        self.expires_at = now + self.budget_s

    @classmethod
    def after(cls, seconds: Optional[float]) -> Optional["Deadline"]:
        """A deadline ``seconds`` from now, or ``None`` for "no budget"."""
        return None if seconds is None else cls(seconds)

    def remaining(self) -> float:
        """Seconds left, clamped at zero."""
        return max(0.0, self.expires_at - time.monotonic())

    def expired(self) -> bool:
        return time.monotonic() >= self.expires_at

    def check(self, site: str = "") -> None:
        """Checkpoint: raise :class:`DeadlineExceeded` once expired."""
        if time.monotonic() >= self.expires_at:
            where = f" at {site}" if site else ""
            raise DeadlineExceeded(
                f"deadline of {self.budget_s:.3f}s exceeded{where}",
                site=site,
            )

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (
            f"Deadline(budget_s={self.budget_s}, "
            f"remaining={self.remaining():.3f}s)"
        )


def check(deadline: Optional[Deadline], site: str = "") -> None:
    """``deadline.check(site)`` that tolerates ``deadline=None``."""
    if deadline is not None:
        deadline.check(site)


def resolve_timeout(
    value: Optional[float] = None, env: str = TIMEOUT_ENV
) -> Optional[float]:
    """Timeout resolution: explicit arg > ``$REPRO_CM_TIMEOUT_S`` > None."""
    if value is not None:
        return value
    raw = os.environ.get(env)
    if not raw:
        return None
    try:
        parsed = float(raw)
    except ValueError:
        return None
    return parsed if parsed >= 0 else None
