"""``repro.runtime`` -- the fault-tolerant execution layer.

Three cooperating pieces (see ``docs/ROBUSTNESS.md``):

* :mod:`repro.runtime.deadline` -- cooperative :class:`Deadline` budgets
  threaded from ``polyufc_compile`` down to the CM engines and counting,
  so ``cm_timeout_s`` interrupts work *mid-unit* at chunk boundaries.
* :mod:`repro.runtime.errors` -- the structured :class:`ReproError`
  taxonomy every degradation rung keys off.
* :mod:`repro.runtime.faults` -- named, deterministically-armable
  injection sites (``REPRO_FAULTS`` / :func:`inject`) so every
  degradation path has a test.
* :mod:`repro.runtime.io` -- atomic, checksummed, quarantine-on-corruption
  disk I/O for the persistent caches.
"""

from repro.runtime.deadline import Deadline, check, resolve_timeout
from repro.runtime.errors import (
    CacheCorruption,
    CircuitOpenError,
    DeadlineExceeded,
    EngineFailure,
    FaultConfigError,
    RemoteShardError,
    ReproError,
    TransientIOError,
)
from repro.runtime.faults import (
    KNOWN_SITES,
    armed,
    fire,
    inject,
    mangle,
    network_garbage,
)
from repro.runtime.io import (
    atomic_write_json,
    quarantine_file,
    read_checked_json,
    with_retries,
)

__all__ = [
    "Deadline",
    "check",
    "resolve_timeout",
    "ReproError",
    "DeadlineExceeded",
    "CacheCorruption",
    "EngineFailure",
    "TransientIOError",
    "RemoteShardError",
    "CircuitOpenError",
    "FaultConfigError",
    "KNOWN_SITES",
    "armed",
    "fire",
    "inject",
    "mangle",
    "network_garbage",
    "atomic_write_json",
    "read_checked_json",
    "quarantine_file",
    "with_retries",
]
