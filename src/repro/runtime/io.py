"""Hardened disk I/O for the persistent caches.

Every artifact the pipeline persists (kernel-report cache entries, CM
memo entries) goes through this module, which provides the three
guarantees the ROADMAP's concurrent-and-crashing-writers scenario needs:

* **Atomic publication** -- payloads are written to a per-writer temp
  file and published with ``os.replace``, so readers never observe torn
  JSON no matter how many writers race or crash mid-write.
* **Integrity validation** -- payloads are wrapped in a small envelope
  carrying a SHA-256 checksum over the canonical payload encoding plus a
  format version; readers verify both (and any required schema keys)
  before trusting a file.
* **Quarantine and recompute** -- a file that fails validation is renamed
  to ``<name>.corrupt`` (keeping the evidence, unblocking the slot) and
  the caller recomputes; transient ``OSError`` is retried with bounded
  exponential backoff before surfacing as :class:`TransientIOError`.
"""

from __future__ import annotations

import hashlib
import json
import logging
import os
import threading
import time
from pathlib import Path
from typing import Callable, Optional, Sequence, TypeVar

from repro.runtime import faults
from repro.runtime.errors import CacheCorruption, TransientIOError

log = logging.getLogger("repro.runtime")

#: Bump when the envelope shape itself changes.
ENVELOPE_VERSION = 1

_FORMAT = "repro-envelope"

T = TypeVar("T")


def canonical_json(payload) -> str:
    """The canonical encoding the checksum is computed over."""
    return json.dumps(payload, sort_keys=True, separators=(",", ":"))


def checksum(payload) -> str:
    return hashlib.sha256(canonical_json(payload).encode()).hexdigest()


def wrap(payload) -> dict:
    """Envelope a payload with its checksum and format version."""
    return {
        "format": _FORMAT,
        "version": ENVELOPE_VERSION,
        "sha256": checksum(payload),
        "payload": payload,
    }


def with_retries(
    fn: Callable[[], T],
    *,
    retries: int = 3,
    base_delay_s: float = 0.01,
    describe: str = "I/O operation",
) -> T:
    """Run ``fn``, retrying transient ``OSError`` with backoff.

    ``FileNotFoundError`` is never retried (a missing file is a state, not
    a transient); after the budget is exhausted the last error surfaces as
    :class:`TransientIOError` so callers have one structured type to
    degrade on.
    """
    delay = base_delay_s
    last: Optional[OSError] = None
    for attempt in range(retries + 1):
        try:
            return fn()
        except FileNotFoundError:
            raise
        except OSError as exc:
            last = exc
            if attempt == retries:
                break
            log.debug(
                "%s failed (attempt %d/%d): %s; retrying in %.3fs",
                describe, attempt + 1, retries + 1, exc, delay,
            )
            time.sleep(delay)
            delay *= 2
    raise TransientIOError(
        f"{describe} failed after {retries + 1} attempts: {last}"
    ) from last


def quarantine_file(path: Path) -> Optional[Path]:
    """Move a corrupt file aside as ``<name>.corrupt``; best effort."""
    target = path.with_name(path.name + ".corrupt")
    try:
        os.replace(path, target)
    except OSError:
        return None
    return target


def atomic_write_json(
    path: Path,
    payload,
    *,
    fault_site: Optional[str] = None,
    retries: int = 3,
    base_delay_s: float = 0.01,
) -> None:
    """Atomically publish an enveloped JSON payload at ``path``.

    Concurrent writers each stage into their own temp file (pid + thread
    id suffixed) and race on the final ``os.replace``; whichever lands
    last wins and the file is always a complete envelope.
    """
    path = Path(path)
    text = json.dumps(wrap(payload))

    def attempt() -> None:
        if fault_site is not None:
            faults.fire(fault_site)
        body = faults.mangle(fault_site, text) if fault_site else text
        path.parent.mkdir(parents=True, exist_ok=True)
        tmp = path.with_name(
            f"{path.name}.{os.getpid()}.{threading.get_ident()}.tmp"
        )
        try:
            tmp.write_text(body)
            os.replace(tmp, path)
        finally:
            if tmp.exists():
                try:
                    tmp.unlink()
                except OSError:
                    pass

    with_retries(
        attempt,
        retries=retries,
        base_delay_s=base_delay_s,
        describe=f"write of {path.name}",
    )


def read_checked_json(
    path: Path,
    *,
    fault_site: Optional[str] = None,
    quarantine: bool = True,
    required_keys: Sequence[str] = (),
    retries: int = 3,
):
    """Read and validate an enveloped JSON payload.

    Raises :class:`CacheCorruption` (after quarantining the file, unless
    disabled) on any parse, format, checksum or schema failure;
    :class:`TransientIOError` if the read itself keeps failing; and
    ``FileNotFoundError`` untouched.
    """
    path = Path(path)

    def attempt() -> str:
        if fault_site is not None:
            faults.fire(fault_site)
        return path.read_text()

    text = with_retries(
        attempt, retries=retries, describe=f"read of {path.name}"
    )
    if fault_site is not None:
        text = faults.mangle(fault_site, text)

    def corrupt(reason: str) -> CacheCorruption:
        log.warning("corrupt cache entry %s: %s", path, reason)
        if quarantine:
            moved = quarantine_file(path)
            if moved is not None:
                log.warning("quarantined %s -> %s", path.name, moved.name)
        return CacheCorruption(f"{path}: {reason}", path=path)

    try:
        envelope = json.loads(text)
    except ValueError as exc:
        raise corrupt(f"invalid JSON ({exc})") from exc
    if not isinstance(envelope, dict) or envelope.get("format") != _FORMAT:
        raise corrupt("missing envelope format marker")
    if envelope.get("version") != ENVELOPE_VERSION:
        raise corrupt(
            f"envelope version {envelope.get('version')!r} "
            f"!= {ENVELOPE_VERSION}"
        )
    if "payload" not in envelope:
        raise corrupt("envelope has no payload")
    payload = envelope["payload"]
    if envelope.get("sha256") != checksum(payload):
        raise corrupt("checksum mismatch")
    if required_keys:
        if not isinstance(payload, dict):
            raise corrupt("payload is not an object")
        missing = [key for key in required_keys if key not in payload]
        if missing:
            raise corrupt(f"payload missing keys {missing}")
    return payload
