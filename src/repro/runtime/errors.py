"""The structured error taxonomy of the resilience layer.

Every failure the fault-tolerant execution layer knows how to degrade
around is a :class:`ReproError` subclass, so call sites can write one
``except ReproError`` arm per degradation rung instead of fishing
``ValueError``/``OSError`` out of deep call stacks.  The hierarchy:

* :class:`DeadlineExceeded` -- a cooperative :class:`repro.runtime.Deadline`
  expired at a checkpoint; the work that raised it is partial and must be
  discarded or replaced by a cheaper rung.
* :class:`CacheCorruption` -- a persisted artifact (kernel-report cache,
  CM memo entry) failed checksum/schema validation; the reader quarantines
  the file and recomputes.
* :class:`EngineFailure` -- a CM evaluation engine (or an injected fault
  standing in for one) failed; characterization degrades per unit instead
  of aborting the kernel.
* :class:`TransientIOError` -- a retryable I/O failure surfaced by the
  hardened disk layers after the bounded retry/backoff budget ran out.
  The remote-shard client reuses it for a forward whose per-attempt
  retry budget is exhausted, so callers have one class for "a bounded
  retry loop gave up".
* :class:`RemoteShardError` -- one attempt to talk to a remote shard
  failed at the transport or protocol level (connection refused/reset,
  timeout, undecodable payload, HTTP 5xx).  Individually retryable for
  idempotent operations; the federation layer counts them toward a
  shard's circuit breaker.
* :class:`CircuitOpenError` -- a remote shard's circuit breaker is open;
  no request was attempted.  The scheduler's failover path treats it
  like an exhausted retry budget (recompute locally), but it is *not* a
  breaker-counted failure -- the breaker already knows.
* :class:`FaultConfigError` -- a malformed ``REPRO_FAULTS`` spec; raised
  eagerly at parse time (configuration bugs must never masquerade as
  injected faults).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured resilience-layer error."""


class DeadlineExceeded(ReproError):
    """A cooperative deadline expired at a checkpoint.

    ``site`` names the checkpoint that noticed the expiry (useful when
    diagnosing which stage ate the budget).
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class CacheCorruption(ReproError):
    """A persisted cache artifact failed checksum or schema validation."""

    def __init__(self, message: str, path=None):
        super().__init__(message)
        self.path = path


class EngineFailure(ReproError):
    """A CM engine failed (for real, or via an injected fault)."""

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class TransientIOError(ReproError):
    """Retryable I/O kept failing after the bounded retry budget."""


class RemoteShardError(ReproError):
    """One remote-shard request failed (transport or protocol level).

    ``url`` names the endpoint for breaker bookkeeping and logs.
    """

    def __init__(self, message: str, url: str = ""):
        super().__init__(message)
        self.url = url


class CircuitOpenError(RemoteShardError):
    """A remote shard's circuit breaker refused the request outright."""


class FaultConfigError(ReproError):
    """A ``REPRO_FAULTS`` spec (or ``inject()`` call) is malformed."""
