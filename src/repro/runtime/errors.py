"""The structured error taxonomy of the resilience layer.

Every failure the fault-tolerant execution layer knows how to degrade
around is a :class:`ReproError` subclass, so call sites can write one
``except ReproError`` arm per degradation rung instead of fishing
``ValueError``/``OSError`` out of deep call stacks.  The hierarchy:

* :class:`DeadlineExceeded` -- a cooperative :class:`repro.runtime.Deadline`
  expired at a checkpoint; the work that raised it is partial and must be
  discarded or replaced by a cheaper rung.
* :class:`CacheCorruption` -- a persisted artifact (kernel-report cache,
  CM memo entry) failed checksum/schema validation; the reader quarantines
  the file and recomputes.
* :class:`EngineFailure` -- a CM evaluation engine (or an injected fault
  standing in for one) failed; characterization degrades per unit instead
  of aborting the kernel.
* :class:`TransientIOError` -- a retryable I/O failure surfaced by the
  hardened disk layers after the bounded retry/backoff budget ran out.
* :class:`FaultConfigError` -- a malformed ``REPRO_FAULTS`` spec; raised
  eagerly at parse time (configuration bugs must never masquerade as
  injected faults).
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every structured resilience-layer error."""


class DeadlineExceeded(ReproError):
    """A cooperative deadline expired at a checkpoint.

    ``site`` names the checkpoint that noticed the expiry (useful when
    diagnosing which stage ate the budget).
    """

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class CacheCorruption(ReproError):
    """A persisted cache artifact failed checksum or schema validation."""

    def __init__(self, message: str, path=None):
        super().__init__(message)
        self.path = path


class EngineFailure(ReproError):
    """A CM engine failed (for real, or via an injected fault)."""

    def __init__(self, message: str, site: str = ""):
        super().__init__(message)
        self.site = site


class TransientIOError(ReproError):
    """Retryable I/O kept failing after the bounded retry budget."""


class FaultConfigError(ReproError):
    """A ``REPRO_FAULTS`` spec (or ``inject()`` call) is malformed."""
