"""Deterministic fault injection for the resilience layer.

Every degradation path in the pipeline is reachable on purpose: the CM
engines, the trace generator, the counting engine, the CM memo and the
kernel-report cache each call :func:`fire` (or :func:`mangle`) at a
**named site**, and a fault armed at that site makes the failure happen
deterministically -- so the whole ladder is testable without pathological
inputs.

Arming
------
* Environment: ``REPRO_FAULTS="site:kind[:arg][,site:kind[:arg]...]"``
  (e.g. ``REPRO_FAULTS="memo.read:corrupt,cm.engine:fail:2"``).
* Programmatic: ``with inject("cm.chunk", "slow", arg=0.05): ...``
  (nested ``inject`` frames shadow the environment).

Kinds
-----
* ``fail``    -- raise :class:`EngineFailure` at the site.
* ``io``      -- raise :class:`OSError` (exercises the retry/backoff and
  transient-IO paths of the hardened disk layers).
* ``slow``    -- ``time.sleep(arg)`` (default 0.05s) each time the site
  fires; with a deadline armed this simulates a pathologically slow unit.
* ``corrupt`` -- :func:`mangle` returns a corrupted copy of the payload
  passing through the site (exercises checksum validation + quarantine).
* ``die``     -- ``os._exit`` on the spot (models an OOM-killed or
  segfaulted service pool worker; arm only at sites that run inside
  worker processes, e.g. ``service.worker``).

Network kinds (meaningful at transport seams, e.g. ``service.remote``
inside the federation HTTP client -- the whole remote failure matrix is
testable without real sockets):

* ``refuse``      -- raise :class:`ConnectionRefusedError` (the far host
  is down or the port is closed; seen before any bytes move).
* ``timeout``     -- raise :class:`TimeoutError` (the per-attempt socket
  timeout expired; indistinguishable from a hung server).
* ``droppedconn`` -- raise :class:`ConnectionResetError` (the peer died
  mid-exchange; models a shard killed while serving).
* ``garbage``     -- the transport "receives" an undecodable payload
  instead of performing the real exchange (acts through
  :func:`network_garbage` at the data path, like ``corrupt`` does
  through :func:`mangle`).

The optional ``arg`` is kind-dependent: for ``slow`` it is the sleep in
seconds; for the other kinds an integer ``n >= 1`` fires only the first
``n`` calls (transient faults), a float ``0 < p < 1`` fires with
probability ``p`` from a deterministically seeded RNG
(``$REPRO_FAULTS_SEED``, default 0), and no arg fires always.
"""

from __future__ import annotations

import os
import random
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.runtime.errors import EngineFailure, FaultConfigError

FAULTS_ENV = "REPRO_FAULTS"
SEED_ENV = "REPRO_FAULTS_SEED"

#: Injection sites wired into the pipeline (open set -- unknown names are
#: legal and simply never fire, but these are the ones that exist today).
KNOWN_SITES = (
    "cm.trace",     # trace generation entry (repro.cache.trace)
    "cm.engine",    # CM engine entry (repro.cache.static_model.polyufc_cm)
    "cm.chunk",     # per-chunk checkpoint inside both CM engines
    "cm.count",     # isllite exact-count scan loop
    "memo.read",    # CM memo disk read
    "memo.write",   # CM memo disk write
    "report.read",  # kernel-report cache read
    "report.write", # kernel-report cache write
    "service.worker",  # service pool-worker job entry (repro.service.pool)
    "service.remote",  # federation HTTP transport seam (repro.service.federation)
)

KINDS = (
    "fail", "io", "slow", "corrupt", "die",
    # network kinds (transport seams only)
    "refuse", "timeout", "droppedconn", "garbage",
)

_DEFAULT_SLOW_S = 0.05


@dataclass
class FaultSpec:
    """One armed fault: what happens when ``site`` is reached."""

    site: str
    kind: str
    arg: Optional[float] = None

    def __post_init__(self):
        if self.kind not in KINDS:
            raise FaultConfigError(
                f"unknown fault kind {self.kind!r} for site {self.site!r}; "
                f"expected one of {KINDS}"
            )
        if self.arg is not None and self.arg <= 0:
            raise FaultConfigError(
                f"fault arg must be positive, got {self.arg!r} "
                f"({self.site}:{self.kind})"
            )


@dataclass
class _ArmedFault:
    """A spec plus its mutable firing state (thread-safe)."""

    spec: FaultSpec
    lock: threading.Lock = field(default_factory=threading.Lock)
    fired: int = 0
    rng: Optional[random.Random] = None

    def should_fire(self) -> bool:
        spec = self.spec
        if spec.kind == "slow" or spec.arg is None:
            return True
        with self.lock:
            if 0 < spec.arg < 1:
                if self.rng is None:
                    seed = os.environ.get(SEED_ENV, "0")
                    self.rng = random.Random(f"{seed}:{spec.site}")
                return self.rng.random() < spec.arg
            if self.fired >= int(spec.arg):
                return False
            self.fired += 1
            return True


def parse_faults(raw: str) -> Dict[str, FaultSpec]:
    """Parse a ``REPRO_FAULTS`` value into per-site specs."""
    specs: Dict[str, FaultSpec] = {}
    for entry in filter(None, (part.strip() for part in raw.split(","))):
        pieces = entry.split(":")
        if len(pieces) not in (2, 3):
            raise FaultConfigError(
                f"malformed fault spec {entry!r}; "
                "expected site:kind[:arg]"
            )
        site, kind = pieces[0], pieces[1]
        arg: Optional[float] = None
        if len(pieces) == 3:
            try:
                arg = float(pieces[2])
            except ValueError:
                raise FaultConfigError(
                    f"non-numeric fault arg {pieces[2]!r} in {entry!r}"
                ) from None
        specs[site] = FaultSpec(site=site, kind=kind, arg=arg)
    return specs


# Environment-armed faults, cached per raw env value so ``fire`` stays a
# couple of dict lookups on the (common) nothing-armed path.
_env_lock = threading.Lock()
_env_raw: Optional[str] = None
_env_armed: Dict[str, _ArmedFault] = {}

# Programmatic frames pushed by ``inject`` (innermost wins).
_frames: List[Dict[str, _ArmedFault]] = []


def _env_faults() -> Dict[str, _ArmedFault]:
    global _env_raw, _env_armed
    raw = os.environ.get(FAULTS_ENV, "")
    if raw != _env_raw:
        with _env_lock:
            if raw != _env_raw:
                _env_armed = {
                    site: _ArmedFault(spec)
                    for site, spec in parse_faults(raw).items()
                }
                _env_raw = raw
    return _env_armed


def _lookup(site: str) -> Optional[_ArmedFault]:
    for frame in reversed(_frames):
        armed = frame.get(site)
        if armed is not None:
            return armed
    return _env_faults().get(site)


@contextmanager
def inject(site: str, kind: str, arg: Optional[float] = None):
    """Arm one fault for the duration of the ``with`` block."""
    frame = {site: _ArmedFault(FaultSpec(site=site, kind=kind, arg=arg))}
    _frames.append(frame)
    try:
        yield frame[site]
    finally:
        _frames.remove(frame)


def armed(site: str) -> Optional[FaultSpec]:
    """The spec armed at ``site`` right now, if any (no firing)."""
    found = _lookup(site)
    return found.spec if found is not None else None


def fire(site: str) -> None:
    """Run the fault armed at ``site``, if any.

    ``fail`` raises :class:`EngineFailure`, ``io`` raises :class:`OSError`,
    ``slow`` sleeps; ``corrupt`` does nothing here (it acts through
    :func:`mangle` at the data path instead).
    """
    found = _lookup(site)
    if found is None or not found.should_fire():
        return
    kind = found.spec.kind
    if kind == "fail":
        raise EngineFailure(f"injected engine fault at {site}", site=site)
    if kind == "io":
        raise OSError(f"injected transient IO fault at {site}")
    if kind == "slow":
        time.sleep(
            found.spec.arg if found.spec.arg is not None else _DEFAULT_SLOW_S
        )
    if kind == "die":
        # Hard process death, bypassing all exception handling -- models
        # an OOM-killed or segfaulted pool worker.  Only meaningful at
        # sites reached inside service worker processes; arming it in
        # the main process kills the whole run, which is on the arming
        # test to avoid.
        os._exit(23)
    if kind == "refuse":
        raise ConnectionRefusedError(
            f"injected connection refusal at {site}"
        )
    if kind == "timeout":
        raise TimeoutError(f"injected network timeout at {site}")
    if kind == "droppedconn":
        raise ConnectionResetError(
            f"injected dropped connection at {site}"
        )
    # "corrupt" and "garbage" are data-path faults; nothing to do at a
    # control point.


def network_garbage(site: str) -> Optional[str]:
    """The undecodable payload a ``garbage`` fault delivers, if armed.

    Transport seams call this right where they would read the real
    response body; a non-``None`` return replaces that body wholesale
    (the exchange "succeeded" but the bytes are trash -- a half-written
    response, a proxy error page, a protocol mismatch).
    """
    found = _lookup(site)
    if (
        found is None
        or found.spec.kind != "garbage"
        or not found.should_fire()
    ):
        return None
    return '\x00<garbage>{"not json'


def mangle(site: str, text: str) -> str:
    """Corrupt ``text`` if a ``corrupt`` fault is armed at ``site``."""
    found = _lookup(site)
    if (
        found is None
        or found.spec.kind != "corrupt"
        or not found.should_fire()
    ):
        return text
    # Truncate and append garbage: breaks both JSON parsing and checksums
    # regardless of payload shape.
    return text[: max(0, len(text) // 2)] + '\x00{"corrupt":'
