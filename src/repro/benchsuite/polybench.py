"""PolyBench kernels as affine-dialect modules.

Each builder mirrors the corresponding PolyBench/C kernel's loop structure
and access pattern at a simulation-scale problem size (f32 data; sizes keep
traces under a few million accesses and preserve each kernel's boundedness
class against the scaled platforms).  All modules verify and interpret; the
test suite cross-checks several against direct numpy references and all of
them for tiled-vs-untiled semantic equivalence.
"""

from __future__ import annotations

from typing import Dict

from repro.ir.builder import AffineBuilder
from repro.ir.core import F32, Module
from repro.isllite import LinExpr

# Simulation-scale problem sizes (the "LARGE-sim" dataset).
SIZES: Dict[str, Dict[str, int]] = {
    "gemm": {"ni": 96, "nj": 96, "nk": 96},
    "2mm": {"ni": 80, "nj": 80, "nk": 80, "nl": 80},
    "3mm": {"ni": 72, "nj": 72, "nk": 72, "nl": 72, "nm": 72},
    "atax": {"m": 460, "n": 460},
    "bicg": {"m": 460, "n": 460},
    "mvt": {"n": 500},
    "gemver": {"n": 450},
    "gesummv": {"n": 420},
    "trmm": {"m": 110, "n": 110},
    "symm": {"m": 90, "n": 90},
    "syrk": {"m": 96, "n": 96},
    "syr2k": {"m": 80, "n": 80},
    "trisolv": {"n": 700},
    "cholesky": {"n": 130},
    "lu": {"n": 110},
    "durbin": {"n": 500},
    "jacobi-1d": {"tsteps": 60, "n": 2200},
    "jacobi-2d": {"tsteps": 14, "n": 180},
    "fdtd-2d": {"tmax": 8, "nx": 240, "ny": 240},
    "adi": {"tsteps": 6, "n": 240},
    "doitgen": {"nq": 24, "nr": 24, "np_": 24},
    "correlation": {"m": 110, "n": 120},
    "covariance": {"m": 100, "n": 110},
    "deriche": {"w": 280, "h": 280},
    "heat-3d": {"tsteps": 5, "n": 36},
    "seidel-2d": {"tsteps": 10, "n": 180},
    "gramschmidt": {"m": 90, "n": 80},
    "floyd-warshall": {"n": 90},
    "nussinov": {"n": 110},
    "ludcmp": {"n": 100},
}


def _module(name: str) -> Module:
    return Module(name)


def build_gemm(ni=None, nj=None, nk=None) -> Module:
    """C = alpha*A*B + beta*C."""
    sizes = SIZES["gemm"]
    ni, nj, nk = ni or sizes["ni"], nj or sizes["nj"], nk or sizes["nk"]
    module = _module("gemm")
    a = module.add_buffer("A", (ni, nk), F32)
    b = module.add_buffer("B", (nk, nj), F32)
    c = module.add_buffer("C", (ni, nj), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, ni):
        with builder.loop("j", 0, nj):
            beta_c = builder.mul(builder.load(c, ["i", "j"]), builder.const(0.3))
            builder.store(beta_c, c, ["i", "j"])
            with builder.loop("k", 0, nk):
                prod = builder.mul(
                    builder.mul(builder.const(1.2), builder.load(a, ["i", "k"])),
                    builder.load(b, ["k", "j"]),
                )
                builder.store(
                    builder.add(builder.load(c, ["i", "j"]), prod), c, ["i", "j"]
                )
    return module


def build_2mm(ni=None, nj=None, nk=None, nl=None) -> Module:
    """tmp = alpha*A*B; D = tmp*C + beta*D."""
    sizes = SIZES["2mm"]
    ni = ni or sizes["ni"]
    nj = nj or sizes["nj"]
    nk = nk or sizes["nk"]
    nl = nl or sizes["nl"]
    module = _module("2mm")
    a = module.add_buffer("A", (ni, nk), F32)
    b = module.add_buffer("B", (nk, nj), F32)
    c = module.add_buffer("C", (nj, nl), F32)
    d = module.add_buffer("D", (ni, nl), F32)
    tmp = module.add_buffer("tmp", (ni, nj), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, ni):
        with builder.loop("j", 0, nj):
            builder.store(builder.const(0.0), tmp, ["i", "j"])
            with builder.loop("k", 0, nk):
                prod = builder.mul(
                    builder.mul(builder.const(1.5), builder.load(a, ["i", "k"])),
                    builder.load(b, ["k", "j"]),
                )
                builder.store(
                    builder.add(builder.load(tmp, ["i", "j"]), prod),
                    tmp,
                    ["i", "j"],
                )
    with builder.loop("i2", 0, ni):
        with builder.loop("j2", 0, nl):
            scaled = builder.mul(
                builder.load(d, ["i2", "j2"]), builder.const(1.2)
            )
            builder.store(scaled, d, ["i2", "j2"])
            with builder.loop("k2", 0, nj):
                prod = builder.mul(
                    builder.load(tmp, ["i2", "k2"]),
                    builder.load(c, ["k2", "j2"]),
                )
                builder.store(
                    builder.add(builder.load(d, ["i2", "j2"]), prod),
                    d,
                    ["i2", "j2"],
                )
    return module


def build_3mm(ni=None, nj=None, nk=None, nl=None, nm=None) -> Module:
    """E = A*B; F = C*D; G = E*F."""
    sizes = SIZES["3mm"]
    ni = ni or sizes["ni"]
    nj = nj or sizes["nj"]
    nk = nk or sizes["nk"]
    nl = nl or sizes["nl"]
    nm = nm or sizes["nm"]
    module = _module("3mm")
    a = module.add_buffer("A", (ni, nk), F32)
    b = module.add_buffer("B", (nk, nj), F32)
    c = module.add_buffer("C", (nj, nm), F32)
    d = module.add_buffer("D", (nm, nl), F32)
    e = module.add_buffer("E", (ni, nj), F32)
    f = module.add_buffer("F", (nj, nl), F32)
    g = module.add_buffer("G", (ni, nl), F32)
    builder = AffineBuilder(module)

    def matmul(dst, lhs, rhs, rows, cols, inner, tag):
        with builder.loop(f"i{tag}", 0, rows):
            with builder.loop(f"j{tag}", 0, cols):
                builder.store(
                    builder.const(0.0), dst, [f"i{tag}", f"j{tag}"]
                )
                with builder.loop(f"k{tag}", 0, inner):
                    prod = builder.mul(
                        builder.load(lhs, [f"i{tag}", f"k{tag}"]),
                        builder.load(rhs, [f"k{tag}", f"j{tag}"]),
                    )
                    builder.store(
                        builder.add(
                            builder.load(dst, [f"i{tag}", f"j{tag}"]), prod
                        ),
                        dst,
                        [f"i{tag}", f"j{tag}"],
                    )

    matmul(e, a, b, ni, nj, nk, "0")
    matmul(f, c, d, nj, nl, nm, "1")
    matmul(g, e, f, ni, nl, nj, "2")
    return module


def build_atax(m=None, n=None) -> Module:
    """y = A^T (A x)."""
    sizes = SIZES["atax"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("atax")
    a = module.add_buffer("A", (m, n), F32)
    x = module.add_buffer("x", (n,), F32)
    y = module.add_buffer("y", (n,), F32)
    tmp = module.add_buffer("tmp", (m,), F32)
    builder = AffineBuilder(module)
    with builder.loop("jz", 0, n):
        builder.store(builder.const(0.0), y, ["jz"])
    with builder.loop("i", 0, m):
        builder.store(builder.const(0.0), tmp, ["i"])
        with builder.loop("j", 0, n):
            prod = builder.mul(
                builder.load(a, ["i", "j"]), builder.load(x, ["j"])
            )
            builder.store(
                builder.add(builder.load(tmp, ["i"]), prod), tmp, ["i"]
            )
        with builder.loop("j2", 0, n):
            prod = builder.mul(
                builder.load(a, ["i", "j2"]), builder.load(tmp, ["i"])
            )
            builder.store(
                builder.add(builder.load(y, ["j2"]), prod), y, ["j2"]
            )
    return module


def build_bicg(m=None, n=None) -> Module:
    """s = A^T r; q = A p."""
    sizes = SIZES["bicg"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("bicg")
    a = module.add_buffer("A", (n, m), F32)
    s = module.add_buffer("s", (m,), F32)
    q = module.add_buffer("q", (n,), F32)
    p = module.add_buffer("p", (m,), F32)
    r = module.add_buffer("r", (n,), F32)
    builder = AffineBuilder(module)
    with builder.loop("iz", 0, m):
        builder.store(builder.const(0.0), s, ["iz"])
    with builder.loop("i", 0, n):
        builder.store(builder.const(0.0), q, ["i"])
        with builder.loop("j", 0, m):
            s_new = builder.add(
                builder.load(s, ["j"]),
                builder.mul(builder.load(r, ["i"]), builder.load(a, ["i", "j"])),
            )
            builder.store(s_new, s, ["j"])
            q_new = builder.add(
                builder.load(q, ["i"]),
                builder.mul(builder.load(a, ["i", "j"]), builder.load(p, ["j"])),
            )
            builder.store(q_new, q, ["i"])
    return module


def build_mvt(n=None) -> Module:
    """x1 += A y1; x2 += A^T y2."""
    n = n or SIZES["mvt"]["n"]
    module = _module("mvt")
    a = module.add_buffer("A", (n, n), F32)
    x1 = module.add_buffer("x1", (n,), F32)
    x2 = module.add_buffer("x2", (n,), F32)
    y1 = module.add_buffer("y1", (n,), F32)
    y2 = module.add_buffer("y2", (n,), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, n):
            val = builder.add(
                builder.load(x1, ["i"]),
                builder.mul(builder.load(a, ["i", "j"]), builder.load(y1, ["j"])),
            )
            builder.store(val, x1, ["i"])
    with builder.loop("i2", 0, n):
        with builder.loop("j2", 0, n):
            val = builder.add(
                builder.load(x2, ["i2"]),
                builder.mul(
                    builder.load(a, ["j2", "i2"]), builder.load(y2, ["j2"])
                ),
            )
            builder.store(val, x2, ["i2"])
    return module


def build_gemver(n=None) -> Module:
    """A += u1 v1^T + u2 v2^T; x = beta A^T y + z; w = alpha A x."""
    n = n or SIZES["gemver"]["n"]
    module = _module("gemver")
    a = module.add_buffer("A", (n, n), F32)
    u1 = module.add_buffer("u1", (n,), F32)
    v1 = module.add_buffer("v1", (n,), F32)
    u2 = module.add_buffer("u2", (n,), F32)
    v2 = module.add_buffer("v2", (n,), F32)
    w = module.add_buffer("w", (n,), F32)
    x = module.add_buffer("x", (n,), F32)
    y = module.add_buffer("y", (n,), F32)
    z = module.add_buffer("z", (n,), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, n):
            rank2 = builder.add(
                builder.mul(builder.load(u1, ["i"]), builder.load(v1, ["j"])),
                builder.mul(builder.load(u2, ["i"]), builder.load(v2, ["j"])),
            )
            builder.store(
                builder.add(builder.load(a, ["i", "j"]), rank2), a, ["i", "j"]
            )
    with builder.loop("i2", 0, n):
        with builder.loop("j2", 0, n):
            val = builder.add(
                builder.load(x, ["i2"]),
                builder.mul(
                    builder.mul(
                        builder.const(0.9), builder.load(a, ["j2", "i2"])
                    ),
                    builder.load(y, ["j2"]),
                ),
            )
            builder.store(val, x, ["i2"])
    with builder.loop("i3", 0, n):
        builder.store(
            builder.add(builder.load(x, ["i3"]), builder.load(z, ["i3"])),
            x,
            ["i3"],
        )
    with builder.loop("i4", 0, n):
        with builder.loop("j4", 0, n):
            val = builder.add(
                builder.load(w, ["i4"]),
                builder.mul(
                    builder.mul(
                        builder.const(1.1), builder.load(a, ["i4", "j4"])
                    ),
                    builder.load(x, ["j4"]),
                ),
            )
            builder.store(val, w, ["i4"])
    return module


def build_gesummv(n=None) -> Module:
    """y = alpha A x + beta B x."""
    n = n or SIZES["gesummv"]["n"]
    module = _module("gesummv")
    a = module.add_buffer("A", (n, n), F32)
    b = module.add_buffer("B", (n, n), F32)
    x = module.add_buffer("x", (n,), F32)
    y = module.add_buffer("y", (n,), F32)
    tmp = module.add_buffer("tmp", (n,), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        builder.store(builder.const(0.0), tmp, ["i"])
        builder.store(builder.const(0.0), y, ["i"])
        with builder.loop("j", 0, n):
            t_new = builder.add(
                builder.load(tmp, ["i"]),
                builder.mul(builder.load(a, ["i", "j"]), builder.load(x, ["j"])),
            )
            builder.store(t_new, tmp, ["i"])
            y_new = builder.add(
                builder.load(y, ["i"]),
                builder.mul(builder.load(b, ["i", "j"]), builder.load(x, ["j"])),
            )
            builder.store(y_new, y, ["i"])
        total = builder.add(
            builder.mul(builder.const(1.3), builder.load(tmp, ["i"])),
            builder.mul(builder.const(0.7), builder.load(y, ["i"])),
        )
        builder.store(total, y, ["i"])
    return module


def build_trmm(m=None, n=None) -> Module:
    """B = alpha A^T B with A lower-triangular."""
    sizes = SIZES["trmm"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("trmm")
    a = module.add_buffer("A", (m, m), F32)
    b = module.add_buffer("B", (m, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, m):
        with builder.loop("j", 0, n):
            with builder.loop("k", LinExpr.var("i") + 1, m):
                val = builder.add(
                    builder.load(b, ["i", "j"]),
                    builder.mul(
                        builder.load(a, ["k", "i"]), builder.load(b, ["k", "j"])
                    ),
                )
                builder.store(val, b, ["i", "j"])
            builder.store(
                builder.mul(builder.const(1.1), builder.load(b, ["i", "j"])),
                b,
                ["i", "j"],
            )
    return module


def build_symm(m=None, n=None) -> Module:
    """C = alpha A B + beta C with symmetric A (PolyBench loop structure)."""
    sizes = SIZES["symm"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("symm")
    a = module.add_buffer("A", (m, m), F32)
    b = module.add_buffer("B", (m, n), F32)
    c = module.add_buffer("C", (m, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, m):
        with builder.loop("j", 0, n):
            with builder.loop("k", 0, LinExpr.var("i")):
                c_k = builder.add(
                    builder.load(c, ["k", "j"]),
                    builder.mul(
                        builder.mul(
                            builder.const(1.4), builder.load(b, ["i", "j"])
                        ),
                        builder.load(a, ["i", "k"]),
                    ),
                )
                builder.store(c_k, c, ["k", "j"])
            diag = builder.mul(
                builder.mul(builder.const(1.4), builder.load(b, ["i", "j"])),
                builder.load(a, ["i", "i"]),
            )
            val = builder.add(
                builder.mul(builder.const(0.6), builder.load(c, ["i", "j"])),
                diag,
            )
            builder.store(val, c, ["i", "j"])
    return module


def build_syrk(m=None, n=None) -> Module:
    """C = alpha A A^T + beta C (lower triangle)."""
    sizes = SIZES["syrk"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("syrk")
    a = module.add_buffer("A", (n, m), F32)
    c = module.add_buffer("C", (n, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, LinExpr.var("i") + 1):
            builder.store(
                builder.mul(builder.const(0.5), builder.load(c, ["i", "j"])),
                c,
                ["i", "j"],
            )
            with builder.loop("k", 0, m):
                val = builder.add(
                    builder.load(c, ["i", "j"]),
                    builder.mul(
                        builder.mul(
                            builder.const(1.5), builder.load(a, ["i", "k"])
                        ),
                        builder.load(a, ["j", "k"]),
                    ),
                )
                builder.store(val, c, ["i", "j"])
    return module


def build_syr2k(m=None, n=None) -> Module:
    """C = alpha (A B^T + B A^T) + beta C (lower triangle)."""
    sizes = SIZES["syr2k"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("syr2k")
    a = module.add_buffer("A", (n, m), F32)
    b = module.add_buffer("B", (n, m), F32)
    c = module.add_buffer("C", (n, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, LinExpr.var("i") + 1):
            builder.store(
                builder.mul(builder.const(0.5), builder.load(c, ["i", "j"])),
                c,
                ["i", "j"],
            )
            with builder.loop("k", 0, m):
                left = builder.mul(
                    builder.mul(builder.const(1.5), builder.load(a, ["j", "k"])),
                    builder.load(b, ["i", "k"]),
                )
                right = builder.mul(
                    builder.mul(builder.const(1.5), builder.load(b, ["j", "k"])),
                    builder.load(a, ["i", "k"]),
                )
                val = builder.add(
                    builder.load(c, ["i", "j"]), builder.add(left, right)
                )
                builder.store(val, c, ["i", "j"])
    return module


def build_trisolv(n=None) -> Module:
    """Forward substitution: L x = b."""
    n = n or SIZES["trisolv"]["n"]
    module = _module("trisolv")
    length = module.add_buffer("L", (n, n), F32)
    x = module.add_buffer("x", (n,), F32)
    b = module.add_buffer("b", (n,), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        builder.store(builder.load(b, ["i"]), x, ["i"])
        with builder.loop("j", 0, LinExpr.var("i")):
            val = builder.sub(
                builder.load(x, ["i"]),
                builder.mul(
                    builder.load(length, ["i", "j"]), builder.load(x, ["j"])
                ),
            )
            builder.store(val, x, ["i"])
        builder.store(
            builder.div(builder.load(x, ["i"]), builder.load(length, ["i", "i"])),
            x,
            ["i"],
        )
    return module


def build_cholesky(n=None) -> Module:
    """In-place Cholesky factorization (PolyBench loop structure)."""
    n = n or SIZES["cholesky"]["n"]
    module = _module("cholesky")
    a = module.add_buffer("A", (n, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, LinExpr.var("i")):
            with builder.loop("k", 0, LinExpr.var("j")):
                val = builder.sub(
                    builder.load(a, ["i", "j"]),
                    builder.mul(
                        builder.load(a, ["i", "k"]), builder.load(a, ["j", "k"])
                    ),
                )
                builder.store(val, a, ["i", "j"])
            builder.store(
                builder.div(
                    builder.load(a, ["i", "j"]), builder.load(a, ["j", "j"])
                ),
                a,
                ["i", "j"],
            )
        with builder.loop("k2", 0, LinExpr.var("i")):
            val = builder.sub(
                builder.load(a, ["i", "i"]),
                builder.mul(
                    builder.load(a, ["i", "k2"]), builder.load(a, ["i", "k2"])
                ),
            )
            builder.store(val, a, ["i", "i"])
        builder.store(builder.sqrt(builder.load(a, ["i", "i"])), a, ["i", "i"])
    return module


def build_lu(n=None) -> Module:
    """In-place LU decomposition."""
    n = n or SIZES["lu"]["n"]
    module = _module("lu")
    a = module.add_buffer("A", (n, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, LinExpr.var("i")):
            with builder.loop("k", 0, LinExpr.var("j")):
                val = builder.sub(
                    builder.load(a, ["i", "j"]),
                    builder.mul(
                        builder.load(a, ["i", "k"]), builder.load(a, ["k", "j"])
                    ),
                )
                builder.store(val, a, ["i", "j"])
            builder.store(
                builder.div(
                    builder.load(a, ["i", "j"]), builder.load(a, ["j", "j"])
                ),
                a,
                ["i", "j"],
            )
        with builder.loop("j2", LinExpr.var("i"), n):
            with builder.loop("k2", 0, LinExpr.var("i")):
                val = builder.sub(
                    builder.load(a, ["i", "j2"]),
                    builder.mul(
                        builder.load(a, ["i", "k2"]),
                        builder.load(a, ["k2", "j2"]),
                    ),
                )
                builder.store(val, a, ["i", "j2"])
    return module


def build_durbin(n=None) -> Module:
    """Levinson-Durbin recursion (scalars as one-element buffers)."""
    n = n or SIZES["durbin"]["n"]
    module = _module("durbin")
    r = module.add_buffer("r", (n,), F32)
    y = module.add_buffer("y", (n,), F32)
    z = module.add_buffer("z", (n,), F32)
    alpha = module.add_buffer("alpha", (1,), F32)
    beta = module.add_buffer("beta", (1,), F32)
    acc = module.add_buffer("acc", (1,), F32)
    builder = AffineBuilder(module)
    with builder.loop("init", 0, 1):
        builder.store(builder.neg(builder.load(r, [0])), y, [0])
        builder.store(builder.const(1.0), beta, [0])
        builder.store(builder.neg(builder.load(r, [0])), alpha, [0])
    with builder.loop("k", 1, n):
        a_val = builder.load(alpha, [0])
        b_val = builder.load(beta, [0])
        new_beta = builder.mul(
            builder.sub(builder.const(1.0), builder.mul(a_val, a_val)), b_val
        )
        builder.store(new_beta, beta, [0])
        builder.store(builder.const(0.0), acc, [0])
        with builder.loop("i", 0, LinExpr.var("k")):
            prod = builder.mul(
                builder.load(r, [LinExpr.var("k") - LinExpr.var("i") - 1]),
                builder.load(y, ["i"]),
            )
            builder.store(
                builder.add(builder.load(acc, [0]), prod), acc, [0]
            )
        new_alpha = builder.neg(
            builder.div(
                builder.add(
                    builder.load(r, ["k"]), builder.load(acc, [0])
                ),
                builder.load(beta, [0]),
            )
        )
        builder.store(new_alpha, alpha, [0])
        with builder.loop("i2", 0, LinExpr.var("k")):
            val = builder.add(
                builder.load(y, ["i2"]),
                builder.mul(
                    builder.load(alpha, [0]),
                    builder.load(
                        y, [LinExpr.var("k") - LinExpr.var("i2") - 1]
                    ),
                ),
            )
            builder.store(val, z, ["i2"])
        with builder.loop("i3", 0, LinExpr.var("k")):
            builder.store(builder.load(z, ["i3"]), y, ["i3"])
        builder.store(builder.load(alpha, [0]), y, ["k"])
    return module


def build_jacobi_1d(tsteps=None, n=None) -> Module:
    """1-D Jacobi stencil, two sweeps per time step."""
    sizes = SIZES["jacobi-1d"]
    tsteps, n = tsteps or sizes["tsteps"], n or sizes["n"]
    module = _module("jacobi-1d")
    a = module.add_buffer("A", (n,), F32)
    b = module.add_buffer("B", (n,), F32)
    builder = AffineBuilder(module)
    third = 0.33333

    with builder.loop("t", 0, tsteps):
        with builder.loop("i", 1, n - 1):
            total = builder.add(
                builder.add(
                    builder.load(a, [LinExpr.var("i") - 1]),
                    builder.load(a, ["i"]),
                ),
                builder.load(a, [LinExpr.var("i") + 1]),
            )
            builder.store(builder.mul(builder.const(third), total), b, ["i"])
        with builder.loop("i2", 1, n - 1):
            total = builder.add(
                builder.add(
                    builder.load(b, [LinExpr.var("i2") - 1]),
                    builder.load(b, ["i2"]),
                ),
                builder.load(b, [LinExpr.var("i2") + 1]),
            )
            builder.store(builder.mul(builder.const(third), total), a, ["i2"])
    return module


def build_jacobi_2d(tsteps=None, n=None) -> Module:
    """2-D Jacobi stencil."""
    sizes = SIZES["jacobi-2d"]
    tsteps, n = tsteps or sizes["tsteps"], n or sizes["n"]
    module = _module("jacobi-2d")
    a = module.add_buffer("A", (n, n), F32)
    b = module.add_buffer("B", (n, n), F32)
    builder = AffineBuilder(module)

    def sweep(src, dst, iv, jv):
        with builder.loop(iv, 1, n - 1):
            with builder.loop(jv, 1, n - 1):
                center = builder.load(src, [iv, jv])
                left = builder.load(src, [iv, LinExpr.var(jv) - 1])
                right = builder.load(src, [iv, LinExpr.var(jv) + 1])
                up = builder.load(src, [LinExpr.var(iv) - 1, jv])
                down = builder.load(src, [LinExpr.var(iv) + 1, jv])
                total = builder.add(
                    builder.add(builder.add(center, left), right),
                    builder.add(up, down),
                )
                builder.store(
                    builder.mul(builder.const(0.2), total), dst, [iv, jv]
                )

    with builder.loop("t", 0, tsteps):
        sweep(a, b, "i", "j")
        sweep(b, a, "i2", "j2")
    return module


def build_fdtd_2d(tmax=None, nx=None, ny=None) -> Module:
    """2-D finite-difference time domain."""
    sizes = SIZES["fdtd-2d"]
    tmax = tmax or sizes["tmax"]
    nx, ny = nx or sizes["nx"], ny or sizes["ny"]
    module = _module("fdtd-2d")
    ex = module.add_buffer("ex", (nx, ny), F32)
    ey = module.add_buffer("ey", (nx, ny), F32)
    hz = module.add_buffer("hz", (nx, ny), F32)
    fict = module.add_buffer("fict", (tmax,), F32)
    builder = AffineBuilder(module)
    with builder.loop("t", 0, tmax):
        with builder.loop("jb", 0, ny):
            builder.store(builder.load(fict, ["t"]), ey, [0, "jb"])
        with builder.loop("i", 1, nx):
            with builder.loop("j", 0, ny):
                delta = builder.sub(
                    builder.load(hz, ["i", "j"]),
                    builder.load(hz, [LinExpr.var("i") - 1, "j"]),
                )
                builder.store(
                    builder.sub(
                        builder.load(ey, ["i", "j"]),
                        builder.mul(builder.const(0.5), delta),
                    ),
                    ey,
                    ["i", "j"],
                )
        with builder.loop("i2", 0, nx):
            with builder.loop("j2", 1, ny):
                delta = builder.sub(
                    builder.load(hz, ["i2", "j2"]),
                    builder.load(hz, ["i2", LinExpr.var("j2") - 1]),
                )
                builder.store(
                    builder.sub(
                        builder.load(ex, ["i2", "j2"]),
                        builder.mul(builder.const(0.5), delta),
                    ),
                    ex,
                    ["i2", "j2"],
                )
        with builder.loop("i3", 0, nx - 1):
            with builder.loop("j3", 0, ny - 1):
                sum_e = builder.add(
                    builder.sub(
                        builder.load(ex, ["i3", LinExpr.var("j3") + 1]),
                        builder.load(ex, ["i3", "j3"]),
                    ),
                    builder.sub(
                        builder.load(ey, [LinExpr.var("i3") + 1, "j3"]),
                        builder.load(ey, ["i3", "j3"]),
                    ),
                )
                builder.store(
                    builder.sub(
                        builder.load(hz, ["i3", "j3"]),
                        builder.mul(builder.const(0.7), sum_e),
                    ),
                    hz,
                    ["i3", "j3"],
                )
    return module


def build_adi(tsteps=None, n=None) -> Module:
    """Alternating-direction implicit solver (forward/backward sweeps)."""
    sizes = SIZES["adi"]
    tsteps, n = tsteps or sizes["tsteps"], n or sizes["n"]
    module = _module("adi")
    u = module.add_buffer("u", (n, n), F32)
    v = module.add_buffer("v", (n, n), F32)
    p = module.add_buffer("p", (n, n), F32)
    q = module.add_buffer("q", (n, n), F32)
    builder = AffineBuilder(module)
    nm1 = n - 1
    with builder.loop("t", 0, tsteps):
        # column sweep: build p, q rows then back-substitute into v
        with builder.loop("i", 1, nm1):
            builder.store(builder.const(0.0), p, ["i", 0])
            builder.store(builder.const(1.0), q, ["i", 0])
            with builder.loop("j", 1, nm1):
                denom = builder.add(
                    builder.mul(
                        builder.const(-0.5),
                        builder.load(p, ["i", LinExpr.var("j") - 1]),
                    ),
                    builder.const(2.0),
                )
                builder.store(
                    builder.div(builder.const(0.5), denom), p, ["i", "j"]
                )
                rhs = builder.add(
                    builder.add(
                        builder.load(u, [LinExpr.var("j") - 1, "i"]),
                        builder.load(u, ["j", "i"]),
                    ),
                    builder.add(
                        builder.load(u, [LinExpr.var("j") + 1, "i"]),
                        builder.mul(
                            builder.const(0.5),
                            builder.load(q, ["i", LinExpr.var("j") - 1]),
                        ),
                    ),
                )
                builder.store(
                    builder.div(rhs, denom), q, ["i", "j"]
                )
            builder.store(builder.const(1.0), v, [nm1, "i"])
            with builder.loop("jb", 1, nm1):
                # backward: j index reversed via n-1-jb
                rev = LinExpr.cst(nm1) - LinExpr.var("jb")
                val = builder.add(
                    builder.mul(
                        builder.load(p, ["i", rev]),
                        builder.load(v, [rev + 1, "i"]),
                    ),
                    builder.load(q, ["i", rev]),
                )
                builder.store(val, v, [rev, "i"])
        # row sweep back into u
        with builder.loop("i2", 1, nm1):
            builder.store(builder.const(0.0), p, ["i2", 0])
            builder.store(builder.const(1.0), q, ["i2", 0])
            with builder.loop("j2", 1, nm1):
                denom = builder.add(
                    builder.mul(
                        builder.const(-0.5),
                        builder.load(p, ["i2", LinExpr.var("j2") - 1]),
                    ),
                    builder.const(2.0),
                )
                builder.store(
                    builder.div(builder.const(0.5), denom), p, ["i2", "j2"]
                )
                rhs = builder.add(
                    builder.add(
                        builder.load(v, ["i2", LinExpr.var("j2") - 1]),
                        builder.load(v, ["i2", "j2"]),
                    ),
                    builder.add(
                        builder.load(v, ["i2", LinExpr.var("j2") + 1]),
                        builder.mul(
                            builder.const(0.5),
                            builder.load(q, ["i2", LinExpr.var("j2") - 1]),
                        ),
                    ),
                )
                builder.store(builder.div(rhs, denom), q, ["i2", "j2"])
            builder.store(builder.const(1.0), u, ["i2", nm1])
            with builder.loop("jb2", 1, nm1):
                rev = LinExpr.cst(nm1) - LinExpr.var("jb2")
                val = builder.add(
                    builder.mul(
                        builder.load(p, ["i2", rev]),
                        builder.load(u, ["i2", rev + 1]),
                    ),
                    builder.load(q, ["i2", rev]),
                )
                builder.store(val, u, ["i2", rev])
    return module


def build_doitgen(nq=None, nr=None, np_=None) -> Module:
    """Multi-resolution analysis kernel."""
    sizes = SIZES["doitgen"]
    nq = nq or sizes["nq"]
    nr = nr or sizes["nr"]
    np_ = np_ or sizes["np_"]
    module = _module("doitgen")
    a = module.add_buffer("A", (nr, nq, np_), F32)
    c4 = module.add_buffer("C4", (np_, np_), F32)
    total = module.add_buffer("sum", (nr, nq, np_), F32)
    builder = AffineBuilder(module)
    with builder.loop("r", 0, nr):
        with builder.loop("q", 0, nq):
            with builder.loop("p", 0, np_):
                builder.store(builder.const(0.0), total, ["r", "q", "p"])
                with builder.loop("s", 0, np_):
                    val = builder.add(
                        builder.load(total, ["r", "q", "p"]),
                        builder.mul(
                            builder.load(a, ["r", "q", "s"]),
                            builder.load(c4, ["s", "p"]),
                        ),
                    )
                    builder.store(val, total, ["r", "q", "p"])
            with builder.loop("p2", 0, np_):
                builder.store(
                    builder.load(total, ["r", "q", "p2"]), a, ["r", "q", "p2"]
                )
    return module


def build_correlation(m=None, n=None) -> Module:
    """Correlation matrix of an n x m data set."""
    sizes = SIZES["correlation"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("correlation")
    data = module.add_buffer("data", (n, m), F32)
    mean = module.add_buffer("mean", (m,), F32)
    stddev = module.add_buffer("stddev", (m,), F32)
    corr = module.add_buffer("corr", (m, m), F32)
    builder = AffineBuilder(module)
    inv_n = 1.0 / n
    with builder.loop("j", 0, m):
        builder.store(builder.const(0.0), mean, ["j"])
        with builder.loop("i", 0, n):
            builder.store(
                builder.add(
                    builder.load(mean, ["j"]), builder.load(data, ["i", "j"])
                ),
                mean,
                ["j"],
            )
        builder.store(
            builder.mul(builder.const(inv_n), builder.load(mean, ["j"])),
            mean,
            ["j"],
        )
    with builder.loop("j2", 0, m):
        builder.store(builder.const(0.0), stddev, ["j2"])
        with builder.loop("i2", 0, n):
            diff = builder.sub(
                builder.load(data, ["i2", "j2"]), builder.load(mean, ["j2"])
            )
            builder.store(
                builder.add(
                    builder.load(stddev, ["j2"]), builder.mul(diff, diff)
                ),
                stddev,
                ["j2"],
            )
        scaled = builder.mul(
            builder.const(inv_n), builder.load(stddev, ["j2"])
        )
        builder.store(
            builder.add(builder.sqrt(scaled), builder.const(0.1)),
            stddev,
            ["j2"],
        )
    with builder.loop("i3", 0, n):
        with builder.loop("j3", 0, m):
            centered = builder.sub(
                builder.load(data, ["i3", "j3"]), builder.load(mean, ["j3"])
            )
            builder.store(
                builder.div(centered, builder.load(stddev, ["j3"])),
                data,
                ["i3", "j3"],
            )
    with builder.loop("i4", 0, m):
        with builder.loop("j4", LinExpr.var("i4"), m):
            builder.store(builder.const(0.0), corr, ["i4", "j4"])
            with builder.loop("k4", 0, n):
                val = builder.add(
                    builder.load(corr, ["i4", "j4"]),
                    builder.mul(
                        builder.load(data, ["k4", "i4"]),
                        builder.load(data, ["k4", "j4"]),
                    ),
                )
                builder.store(val, corr, ["i4", "j4"])
            builder.store(
                builder.mul(
                    builder.const(inv_n), builder.load(corr, ["i4", "j4"])
                ),
                corr,
                ["i4", "j4"],
            )
    return module


def build_covariance(m=None, n=None) -> Module:
    """Covariance matrix of an n x m data set."""
    sizes = SIZES["covariance"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("covariance")
    data = module.add_buffer("data", (n, m), F32)
    mean = module.add_buffer("mean", (m,), F32)
    cov = module.add_buffer("cov", (m, m), F32)
    builder = AffineBuilder(module)
    inv_n = 1.0 / n
    inv_n1 = 1.0 / (n - 1)
    with builder.loop("j", 0, m):
        builder.store(builder.const(0.0), mean, ["j"])
        with builder.loop("i", 0, n):
            builder.store(
                builder.add(
                    builder.load(mean, ["j"]), builder.load(data, ["i", "j"])
                ),
                mean,
                ["j"],
            )
        builder.store(
            builder.mul(builder.const(inv_n), builder.load(mean, ["j"])),
            mean,
            ["j"],
        )
    with builder.loop("i2", 0, n):
        with builder.loop("j2", 0, m):
            builder.store(
                builder.sub(
                    builder.load(data, ["i2", "j2"]),
                    builder.load(mean, ["j2"]),
                ),
                data,
                ["i2", "j2"],
            )
    with builder.loop("i3", 0, m):
        with builder.loop("j3", LinExpr.var("i3"), m):
            builder.store(builder.const(0.0), cov, ["i3", "j3"])
            with builder.loop("k3", 0, n):
                val = builder.add(
                    builder.load(cov, ["i3", "j3"]),
                    builder.mul(
                        builder.load(data, ["k3", "i3"]),
                        builder.load(data, ["k3", "j3"]),
                    ),
                )
                builder.store(val, cov, ["i3", "j3"])
            builder.store(
                builder.mul(
                    builder.const(inv_n1), builder.load(cov, ["i3", "j3"])
                ),
                cov,
                ["i3", "j3"],
            )
    return module


def build_deriche(w=None, h=None) -> Module:
    """Deriche recursive edge filter (horizontal + vertical IIR passes)."""
    sizes = SIZES["deriche"]
    w, h = w or sizes["w"], h or sizes["h"]
    module = _module("deriche")
    img_in = module.add_buffer("imgIn", (w, h), F32)
    img_out = module.add_buffer("imgOut", (w, h), F32)
    y1 = module.add_buffer("y1", (w, h), F32)
    y2 = module.add_buffer("y2", (w, h), F32)
    builder = AffineBuilder(module)
    a1, a2, b1, b2, c1 = 0.25, 0.12, 0.9, -0.2, 0.8
    with builder.loop("i", 0, w):
        with builder.loop("j", 2, h):
            fwd = builder.add(
                builder.mul(builder.const(a1), builder.load(img_in, ["i", "j"])),
                builder.mul(
                    builder.const(a2),
                    builder.load(img_in, ["i", LinExpr.var("j") - 1]),
                ),
            )
            rec = builder.add(
                builder.mul(
                    builder.const(b1),
                    builder.load(y1, ["i", LinExpr.var("j") - 1]),
                ),
                builder.mul(
                    builder.const(b2),
                    builder.load(y1, ["i", LinExpr.var("j") - 2]),
                ),
            )
            builder.store(builder.add(fwd, rec), y1, ["i", "j"])
    with builder.loop("i2", 0, w):
        with builder.loop("j2", 2, h):
            rev = LinExpr.cst(h - 1) - LinExpr.var("j2")
            fwd = builder.mul(
                builder.const(a1), builder.load(img_in, ["i2", rev + 1])
            )
            rec = builder.add(
                builder.mul(
                    builder.const(b1), builder.load(y2, ["i2", rev + 1])
                ),
                builder.mul(
                    builder.const(b2), builder.load(y2, ["i2", rev + 2])
                ),
            )
            builder.store(builder.add(fwd, rec), y2, ["i2", rev])
    with builder.loop("i3", 0, w):
        with builder.loop("j3", 0, h):
            builder.store(
                builder.mul(
                    builder.const(c1),
                    builder.add(
                        builder.load(y1, ["i3", "j3"]),
                        builder.load(y2, ["i3", "j3"]),
                    ),
                ),
                img_out,
                ["i3", "j3"],
            )
    with builder.loop("j4", 0, h):
        with builder.loop("i4", 2, w):
            fwd = builder.add(
                builder.mul(
                    builder.const(a1), builder.load(img_out, ["i4", "j4"])
                ),
                builder.mul(
                    builder.const(a2),
                    builder.load(img_out, [LinExpr.var("i4") - 1, "j4"]),
                ),
            )
            rec = builder.add(
                builder.mul(
                    builder.const(b1),
                    builder.load(y1, [LinExpr.var("i4") - 1, "j4"]),
                ),
                builder.mul(
                    builder.const(b2),
                    builder.load(y1, [LinExpr.var("i4") - 2, "j4"]),
                ),
            )
            builder.store(builder.add(fwd, rec), y1, ["i4", "j4"])
    with builder.loop("i5", 0, w):
        with builder.loop("j5", 0, h):
            builder.store(
                builder.mul(
                    builder.const(c1),
                    builder.add(
                        builder.load(y1, ["i5", "j5"]),
                        builder.load(y2, ["i5", "j5"]),
                    ),
                ),
                img_out,
                ["i5", "j5"],
            )
    return module


POLYBENCH_BUILDERS = {
    "gemm": build_gemm,
    "2mm": build_2mm,
    "3mm": build_3mm,
    "atax": build_atax,
    "bicg": build_bicg,
    "mvt": build_mvt,
    "gemver": build_gemver,
    "gesummv": build_gesummv,
    "trmm": build_trmm,
    "symm": build_symm,
    "syrk": build_syrk,
    "syr2k": build_syr2k,
    "trisolv": build_trisolv,
    "cholesky": build_cholesky,
    "lu": build_lu,
    "durbin": build_durbin,
    "jacobi-1d": build_jacobi_1d,
    "jacobi-2d": build_jacobi_2d,
    "fdtd-2d": build_fdtd_2d,
    "adi": build_adi,
    "doitgen": build_doitgen,
    "correlation": build_correlation,
    "covariance": build_covariance,
    "deriche": build_deriche,
}


def build_heat_3d(tsteps=None, n=None) -> Module:
    """3-D heat equation stencil."""
    sizes = SIZES["heat-3d"]
    tsteps, n = tsteps or sizes["tsteps"], n or sizes["n"]
    module = _module("heat-3d")
    a = module.add_buffer("A", (n, n, n), F32)
    b = module.add_buffer("B", (n, n, n), F32)
    builder = AffineBuilder(module)

    def sweep(src, dst, tag):
        iv, jv, kv = f"i{tag}", f"j{tag}", f"k{tag}"
        with builder.loop(iv, 1, n - 1):
            with builder.loop(jv, 1, n - 1):
                with builder.loop(kv, 1, n - 1):
                    center = builder.load(src, [iv, jv, kv])

                    def axis(lo, hi):
                        second = builder.mul(builder.const(-2.0), center)
                        return builder.add(
                            builder.add(builder.load(src, lo), second),
                            builder.load(src, hi),
                        )

                    di = axis(
                        [LinExpr.var(iv) - 1, jv, kv],
                        [LinExpr.var(iv) + 1, jv, kv],
                    )
                    dj = axis(
                        [iv, LinExpr.var(jv) - 1, kv],
                        [iv, LinExpr.var(jv) + 1, kv],
                    )
                    dk = axis(
                        [iv, jv, LinExpr.var(kv) - 1],
                        [iv, jv, LinExpr.var(kv) + 1],
                    )
                    total = builder.add(
                        builder.mul(
                            builder.const(0.125), builder.add(di, dj)
                        ),
                        builder.add(
                            builder.mul(builder.const(0.125), dk), center
                        ),
                    )
                    builder.store(total, dst, [iv, jv, kv])

    with builder.loop("t", 0, tsteps):
        sweep(a, b, "0")
        sweep(b, a, "1")
    return module


def build_seidel_2d(tsteps=None, n=None) -> Module:
    """In-place Gauss-Seidel 9-point stencil (non-tilable without skewing)."""
    sizes = SIZES["seidel-2d"]
    tsteps, n = tsteps or sizes["tsteps"], n or sizes["n"]
    module = _module("seidel-2d")
    a = module.add_buffer("A", (n, n), F32)
    builder = AffineBuilder(module)
    ninth = 1.0 / 9.0
    with builder.loop("t", 0, tsteps):
        with builder.loop("i", 1, n - 1):
            with builder.loop("j", 1, n - 1):
                iv, jv = LinExpr.var("i"), LinExpr.var("j")
                total = builder.load(a, [iv - 1, jv - 1])
                for di, dj in [(-1, 0), (-1, 1), (0, -1), (0, 0),
                               (0, 1), (1, -1), (1, 0), (1, 1)]:
                    total = builder.add(
                        total, builder.load(a, [iv + di, jv + dj])
                    )
                builder.store(
                    builder.mul(builder.const(ninth), total), a, ["i", "j"]
                )
    return module


def build_gramschmidt(m=None, n=None) -> Module:
    """Modified Gram-Schmidt QR factorization."""
    sizes = SIZES["gramschmidt"]
    m, n = m or sizes["m"], n or sizes["n"]
    module = _module("gramschmidt")
    a = module.add_buffer("A", (m, n), F32)
    r = module.add_buffer("R", (n, n), F32)
    q = module.add_buffer("Q", (m, n), F32)
    nrm = module.add_buffer("nrm", (1,), F32)
    builder = AffineBuilder(module)
    with builder.loop("k", 0, n):
        builder.store(builder.const(0.0), nrm, [0])
        with builder.loop("i", 0, m):
            x = builder.load(a, ["i", "k"])
            builder.store(
                builder.add(builder.load(nrm, [0]), builder.mul(x, x)),
                nrm, [0],
            )
        builder.store(
            builder.add(
                builder.sqrt(builder.load(nrm, [0])), builder.const(0.01)
            ),
            r, ["k", "k"],
        )
        with builder.loop("i2", 0, m):
            builder.store(
                builder.div(
                    builder.load(a, ["i2", "k"]), builder.load(r, ["k", "k"])
                ),
                q, ["i2", "k"],
            )
        with builder.loop("j", LinExpr.var("k") + 1, n):
            builder.store(builder.const(0.0), r, ["k", "j"])
            with builder.loop("i3", 0, m):
                builder.store(
                    builder.add(
                        builder.load(r, ["k", "j"]),
                        builder.mul(
                            builder.load(q, ["i3", "k"]),
                            builder.load(a, ["i3", "j"]),
                        ),
                    ),
                    r, ["k", "j"],
                )
            with builder.loop("i4", 0, m):
                builder.store(
                    builder.sub(
                        builder.load(a, ["i4", "j"]),
                        builder.mul(
                            builder.load(q, ["i4", "k"]),
                            builder.load(r, ["k", "j"]),
                        ),
                    ),
                    a, ["i4", "j"],
                )
    return module


def build_floyd_warshall(n=None) -> Module:
    """All-pairs shortest paths (min-plus closure)."""
    n = n or SIZES["floyd-warshall"]["n"]
    module = _module("floyd-warshall")
    paths = module.add_buffer("paths", (n, n), F32)
    builder = AffineBuilder(module)
    with builder.loop("k", 0, n):
        with builder.loop("i", 0, n):
            with builder.loop("j", 0, n):
                through = builder.add(
                    builder.load(paths, ["i", "k"]),
                    builder.load(paths, ["k", "j"]),
                )
                builder.store(
                    builder.minf(builder.load(paths, ["i", "j"]), through),
                    paths, ["i", "j"],
                )
    return module


def build_nussinov(n=None) -> Module:
    """RNA secondary-structure dynamic programming (simplified affine form:
    the PolyBench max-recurrence without the data-dependent pairing term)."""
    n = n or SIZES["nussinov"]["n"]
    module = _module("nussinov")
    table = module.add_buffer("table", (n, n), F32)
    builder = AffineBuilder(module)
    # i runs reversed via n-1-ii; j runs above the diagonal
    with builder.loop("ii", 0, n):
        rev = LinExpr.cst(n - 1) - LinExpr.var("ii")
        with builder.loop("j", rev + 1, n):
            left = builder.load(table, [rev, LinExpr.var("j") - 1])
            below = builder.load(table, [rev + 1, "j"])
            pair = builder.add(
                builder.load(table, [rev + 1, LinExpr.var("j") - 1]),
                builder.const(1.0),
            )
            best = builder.maxf(builder.maxf(left, below), pair)
            cur = builder.load(table, [rev, "j"])
            builder.store(builder.maxf(cur, best), table, [rev, "j"])
            with builder.loop("k", rev + 1, LinExpr.var("j")):
                split = builder.add(
                    builder.load(table, [rev, "k"]),
                    builder.load(table, [LinExpr.var("k") + 1, "j"]),
                )
                builder.store(
                    builder.maxf(builder.load(table, [rev, "j"]), split),
                    table, [rev, "j"],
                )
    return module


def build_ludcmp(n=None) -> Module:
    """LU decomposition followed by forward/backward substitution."""
    n = n or SIZES["ludcmp"]["n"]
    module = _module("ludcmp")
    a = module.add_buffer("A", (n, n), F32)
    b = module.add_buffer("b", (n,), F32)
    x = module.add_buffer("x", (n,), F32)
    y = module.add_buffer("y", (n,), F32)
    builder = AffineBuilder(module)
    with builder.loop("i", 0, n):
        with builder.loop("j", 0, LinExpr.var("i")):
            with builder.loop("k", 0, LinExpr.var("j")):
                builder.store(
                    builder.sub(
                        builder.load(a, ["i", "j"]),
                        builder.mul(
                            builder.load(a, ["i", "k"]),
                            builder.load(a, ["k", "j"]),
                        ),
                    ),
                    a, ["i", "j"],
                )
            builder.store(
                builder.div(
                    builder.load(a, ["i", "j"]), builder.load(a, ["j", "j"])
                ),
                a, ["i", "j"],
            )
        with builder.loop("j2", LinExpr.var("i"), n):
            with builder.loop("k2", 0, LinExpr.var("i")):
                builder.store(
                    builder.sub(
                        builder.load(a, ["i", "j2"]),
                        builder.mul(
                            builder.load(a, ["i", "k2"]),
                            builder.load(a, ["k2", "j2"]),
                        ),
                    ),
                    a, ["i", "j2"],
                )
    with builder.loop("i5", 0, n):
        builder.store(builder.load(b, ["i5"]), y, ["i5"])
        with builder.loop("j5", 0, LinExpr.var("i5")):
            builder.store(
                builder.sub(
                    builder.load(y, ["i5"]),
                    builder.mul(
                        builder.load(a, ["i5", "j5"]), builder.load(y, ["j5"])
                    ),
                ),
                y, ["i5"],
            )
    with builder.loop("i6", 0, n):
        rev = LinExpr.cst(n - 1) - LinExpr.var("i6")
        builder.store(builder.load(y, [rev]), x, [rev])
        with builder.loop("j6", rev + 1, n):
            builder.store(
                builder.sub(
                    builder.load(x, [rev]),
                    builder.mul(
                        builder.load(a, [rev, "j6"]), builder.load(x, ["j6"])
                    ),
                ),
                x, [rev],
            )
        builder.store(
            builder.div(builder.load(x, [rev]), builder.load(a, [rev, rev])),
            x, [rev],
        )
    return module


POLYBENCH_BUILDERS.update(
    {
        "heat-3d": build_heat_3d,
        "seidel-2d": build_seidel_2d,
        "gramschmidt": build_gramschmidt,
        "floyd-warshall": build_floyd_warshall,
        "nussinov": build_nussinov,
        "ludcmp": build_ludcmp,
    }
)
