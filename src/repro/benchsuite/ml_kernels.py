"""The Tab. II machine-learning kernels at simulation scale.

Each builder produces a torch-dialect module; the PolyUFC flow lowers it
through linalg to affine.  Paper problem sizes are recorded in the registry;
the sim sizes below shrink every dimension proportionally so the kernels
keep their boundedness class against the scaled platforms (conv2d stays
high-OI/CB; the LM-head matmuls keep OI ~= batch/2 FpB and stay BB).
"""

from __future__ import annotations

from repro.ir.core import F32, Module
from repro.ir.dialects.torch_d import TorchConv2dOp, TorchMatmulOp, TorchSdpaOp


def _conv2d(
    name: str,
    batch: int,
    in_ch: int,
    size: int,
    out_ch: int,
    kernel: int,
    stride: int,
) -> Module:
    module = Module(name)
    image = module.add_buffer("input", (batch, in_ch, size, size), F32)
    weight = module.add_buffer("weight", (out_ch, in_ch, kernel, kernel), F32)
    out_size = (size - kernel) // stride + 1
    output = module.add_buffer(
        "output", (batch, out_ch, out_size, out_size), F32
    )
    module.append(TorchConv2dOp(image, weight, output, (stride, stride)))
    return module


def build_conv2d_alexnet() -> Module:
    """AlexNet conv1 (paper: 1x3x224x224 * 64x3x11x11, stride 4)."""
    return _conv2d("conv2d_alexnet", 1, 3, 48, 16, 5, 2)


def build_conv2d_convnext() -> Module:
    """ConvNeXt downsampling conv (paper: 1x384x28x28 * 768x384x2x2)."""
    return _conv2d("conv2d_convnext", 1, 32, 14, 64, 2, 2)


def build_conv2d_wideresnet() -> Module:
    """WideResNet bottleneck 1x1 conv (paper: 64x1024x7x7 * 2048x1024x1x1)."""
    return _conv2d("conv2d_wideresnet", 2, 96, 7, 192, 1, 1)


def _sdpa(name: str, batch: int, heads: int, seq: int, head_dim: int) -> Module:
    module = Module(name)
    shape = (batch, heads, seq, head_dim)
    q = module.add_buffer("q", shape, F32)
    k = module.add_buffer("k", shape, F32)
    v = module.add_buffer("v", shape, F32)
    o = module.add_buffer("o", shape, F32)
    module.append(TorchSdpaOp(q, k, v, o))
    return module


def build_sdpa_bert() -> Module:
    """BERT self-attention (paper: 2x12x128x64)."""
    return _sdpa("sdpa_bert", 1, 4, 80, 40)


def build_sdpa_gemma2() -> Module:
    """Gemma-2 self-attention (paper: 1x16x7x256)."""
    return _sdpa("sdpa_gemma2", 1, 8, 7, 64)


def _lm_head(name: str, tokens: int, hidden: int, vocab: int) -> Module:
    module = Module(name)
    acts = module.add_buffer("acts", (tokens, hidden), F32)
    weight = module.add_buffer("w", (hidden, vocab), F32)
    logits = module.add_buffer("logits", (tokens, vocab), F32)
    module.append(TorchMatmulOp(acts, weight, logits))
    return module


def build_matmul_gpt2() -> Module:
    """GPT-2 LM-head projection (paper: 4x768x50257)."""
    return _lm_head("matmul_gpt2", 2, 192, 2048)


def build_matmul_llama2() -> Module:
    """Llama-2 LM-head projection (paper: 13x4096x32000)."""
    return _lm_head("matmul_llama2", 3, 256, 1536)


ML_BUILDERS = {
    "conv2d_alexnet": build_conv2d_alexnet,
    "conv2d_convnext": build_conv2d_convnext,
    "conv2d_wideresnet": build_conv2d_wideresnet,
    "sdpa_bert": build_sdpa_bert,
    "sdpa_gemma2": build_sdpa_gemma2,
    "matmul_gpt2": build_matmul_gpt2,
    "matmul_llama2": build_matmul_llama2,
}
