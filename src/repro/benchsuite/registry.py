"""Benchmark registry: specs, paper metadata, and lookup helpers."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Dict, List

from repro.benchsuite.ml_kernels import ML_BUILDERS
from repro.benchsuite.polybench import POLYBENCH_BUILDERS, SIZES
from repro.ir.core import Module

#: Paper problem sizes for the Tab. II kernels (metadata only).
_PAPER_SIZES_ML = {
    "conv2d_alexnet": "1x3x224x224; 64x3x11x11 (ALEXNET)",
    "conv2d_convnext": "1x384x28x28; 768x384x2x2 (CONVNEXT)",
    "conv2d_wideresnet": "64x1024x7x7; 2048x1024x1x1 (WIDERESNET)",
    "sdpa_bert": "2x12x128x64 (BERT)",
    "sdpa_gemma2": "1x16x7x256 (GEMMA2)",
    "matmul_gpt2": "4x768x50257 (GPT2)",
    "matmul_llama2": "13x4096x32000 (LLAMA2)",
}

_SOURCES_ML = {
    "conv2d_alexnet": "ALEXNET",
    "conv2d_convnext": "CONVNEXT",
    "conv2d_wideresnet": "WIDERESNET",
    "sdpa_bert": "BERT",
    "sdpa_gemma2": "GEMMA2",
    "matmul_gpt2": "GPT2",
    "matmul_llama2": "LLAMA2",
}


@dataclass(frozen=True)
class BenchmarkSpec:
    """One registered benchmark."""

    name: str
    category: str  # "polybench" | "ml"
    source: str
    build: Callable[..., Module]
    paper_sizes: str
    sim_sizes: str
    #: Named problem-size parameters the builder accepts as keyword
    #: overrides (empty for fixed-shape kernels).  These are the
    #: parameter names of the kernel *family* used by the parametric
    #: characterization cache.
    size_names: tuple = ()
    #: Default ``(name, value)`` pairs for those parameters -- the sizes
    #: the builder uses when no override is given.
    default_sizes: tuple = ()

    def module(self, sizes=None) -> Module:
        """Build the kernel, optionally at overridden problem sizes.

        ``sizes`` maps a subset of :attr:`size_names` to positive ints;
        unknown names raise ``ValueError`` so a job spec cannot silently
        request a family the builder does not parameterize.
        """
        if not sizes:
            return self.build()
        unknown = sorted(set(sizes) - set(self.size_names))
        if unknown:
            raise ValueError(
                f"benchmark {self.name!r} has no size parameters "
                f"{unknown}; accepted: {sorted(self.size_names)}"
            )
        return self.build(**{name: int(sizes[name]) for name in sizes})


def _polybench_specs() -> Dict[str, BenchmarkSpec]:
    specs = {}
    for name, builder in POLYBENCH_BUILDERS.items():
        sim = ", ".join(f"{k}={v}" for k, v in SIZES[name].items())
        specs[name] = BenchmarkSpec(
            name=name,
            category="polybench",
            source="POLYBENCH",
            build=builder,
            paper_sizes="LARGE dataset",
            sim_sizes=sim,
            size_names=tuple(SIZES[name]),
            default_sizes=tuple(SIZES[name].items()),
        )
    return specs


def _ml_specs() -> Dict[str, BenchmarkSpec]:
    specs = {}
    for name, builder in ML_BUILDERS.items():
        module = builder()
        sim = "; ".join(
            f"{buffer.name}:{'x'.join(map(str, buffer.shape))}"
            for buffer in module.buffers.values()
        )
        specs[name] = BenchmarkSpec(
            name=name,
            category="ml",
            source=_SOURCES_ML[name],
            build=builder,
            paper_sizes=_PAPER_SIZES_ML[name],
            sim_sizes=sim,
        )
    return specs


REGISTRY: Dict[str, BenchmarkSpec] = {**_polybench_specs(), **_ml_specs()}

#: The 22-kernel PolyBench subset used for the paper's RPL characterization
#: count (13 CB / 9 BB, Sec. VII-D).
PAPER22 = [
    # 13 compute-bound on RPL-sim: blas/kernels/solvers matrix-matrix
    # routines, data-mining kernels, and the low-bandwidth jacobi-1d stencil
    "gemm", "2mm", "3mm", "syrk", "syr2k", "trmm", "symm",
    "lu", "cholesky", "durbin", "jacobi-1d", "correlation", "covariance",
    # 9 bandwidth-bound on RPL-sim: matrix-vector products plus the
    # memory-intensive adi / deriche / fdtd-2d sweeps
    "mvt", "gemver", "gesummv", "atax", "bicg", "trisolv",
    "adi", "deriche", "fdtd-2d",
]


def get_benchmark(name: str) -> BenchmarkSpec:
    try:
        return REGISTRY[name]
    except KeyError:
        raise KeyError(
            f"unknown benchmark {name!r}; available: {sorted(REGISTRY)}"
        ) from None


def list_benchmarks() -> List[str]:
    return sorted(REGISTRY)


def polybench_benchmarks() -> List[str]:
    return sorted(
        name for name, spec in REGISTRY.items() if spec.category == "polybench"
    )


def ml_benchmarks() -> List[str]:
    return sorted(
        name for name, spec in REGISTRY.items() if spec.category == "ml"
    )


def paper22_names() -> List[str]:
    return list(PAPER22)
