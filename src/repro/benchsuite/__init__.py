"""Benchmark suite: PolyBench kernels and the Tab. II ML-model kernels.

Every benchmark is an IR :class:`~repro.ir.core.Module` builder registered
in :data:`REGISTRY`.  "Paper" problem sizes are recorded as metadata;
the modules are built at "sim" sizes scaled down together with the simulated
platforms' cache hierarchies (see DESIGN.md) so each kernel's boundedness
class matches the paper's.
"""

from repro.benchsuite.registry import (
    BenchmarkSpec,
    REGISTRY,
    get_benchmark,
    list_benchmarks,
    ml_benchmarks,
    polybench_benchmarks,
    paper22_names,
)

__all__ = [
    "BenchmarkSpec",
    "REGISTRY",
    "get_benchmark",
    "list_benchmarks",
    "ml_benchmarks",
    "polybench_benchmarks",
    "paper22_names",
]
