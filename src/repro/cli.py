"""Command-line interface: ``python -m repro.cli <command> ...``.

Commands:

* ``list`` -- registered benchmarks (and their classes once cached)
* ``platforms`` -- the simulated machines
* ``constants --platform rpl`` -- fitted Tab. I roofline constants
* ``characterize <kernel> --platform rpl`` -- per-unit OI / CB-BB / caps
* ``compile <kernel>`` -- print the capped module IR
* ``compare <kernel>`` -- PolyUFC caps vs the UFS-driver baseline
* ``sweep <kernel>`` -- time/energy/EDP across the uncore range
* ``roofline <kernels...>`` -- ASCII roofline plot with kernels placed on it
* ``fuzz`` -- generative differential verification of the CM engines
* ``serve`` -- run the characterization service over HTTP (docs/SERVICE.md)
* ``submit <kernels...>`` -- batch-characterize via the service (local or --url)
* ``status <job-id> --url`` -- poll one job on a running server
* ``query`` -- range queries over the content-addressed result store
"""

from __future__ import annotations

import argparse
import sys
from typing import List, Optional

from repro.cache.static_model import CM_ENGINES


def _add_platform(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--platform", "-p", default="rpl", choices=["rpl", "bdw"],
        help="simulated platform (default: rpl)",
    )


def _add_cm_knobs(parser: argparse.ArgumentParser) -> None:
    parser.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="thread-pool width for per-unit cache analysis "
        "(default: $REPRO_CM_WORKERS or serial)",
    )
    parser.add_argument(
        "--cm-engine", default=None, choices=list(CM_ENGINES),
        help="PolyUFC-CM evaluator (default: $REPRO_CM_ENGINE or fast)",
    )
    parser.add_argument(
        "--cm-timeout", type=float, default=None, metavar="SECONDS",
        help="PolyUFC-CM deadline; units exceeding it degrade per the "
        "ladder and fall back to the f_max cap "
        "(default: $REPRO_CM_TIMEOUT_S or unlimited)",
    )


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="polyufc", description=__doc__,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    commands = parser.add_subparsers(dest="command", required=True)

    commands.add_parser("list", help="list registered benchmarks")
    commands.add_parser("platforms", help="describe the simulated machines")

    constants = commands.add_parser(
        "constants", help="fitted roofline constants"
    )
    _add_platform(constants)

    characterize = commands.add_parser(
        "characterize", help="characterize one benchmark"
    )
    characterize.add_argument("kernel")
    _add_platform(characterize)
    characterize.add_argument(
        "--granularity", default="linalg",
        choices=["torch", "linalg", "affine"],
    )
    _add_cm_knobs(characterize)

    compile_cmd = commands.add_parser(
        "compile", help="print the capped module IR"
    )
    compile_cmd.add_argument("kernel")
    _add_platform(compile_cmd)
    compile_cmd.add_argument(
        "--objective", default="edp",
        choices=["edp", "energy", "performance"],
    )
    _add_cm_knobs(compile_cmd)

    compare = commands.add_parser(
        "compare", help="PolyUFC caps vs the UFS-driver baseline"
    )
    compare.add_argument("kernel")
    _add_platform(compare)

    sweep = commands.add_parser(
        "sweep", help="time/energy/EDP across the uncore frequency range"
    )
    sweep.add_argument("kernel")
    _add_platform(sweep)

    roofline = commands.add_parser(
        "roofline", help="ASCII roofline plot with kernels placed on it"
    )
    roofline.add_argument("kernels", nargs="+")
    _add_platform(roofline)

    fuzz = commands.add_parser(
        "fuzz",
        help="differential fuzz of the CM engines (see docs/TESTING.md)",
    )
    fuzz.add_argument(
        "--seed", type=int, default=0,
        help="campaign seed; the case sequence is a pure function of it "
        "(default: 0)",
    )
    fuzz.add_argument(
        "--time-budget", type=float, default=60.0, metavar="SECONDS",
        help="wall-clock budget for the campaign (default: 60)",
    )
    fuzz.add_argument(
        "--max-cases", type=int, default=None, metavar="N",
        help="stop after N cases even with budget left",
    )
    fuzz.add_argument(
        "--corpus", type=str, default=None, metavar="DIR",
        help="replay every *.json spec in DIR before (or instead of) "
        "fuzzing; exits nonzero on any replay disagreement",
    )
    fuzz.add_argument(
        "--replay-only", action="store_true",
        help="with --corpus: replay the corpus and skip random generation",
    )
    fuzz.add_argument(
        "--artifacts", type=str, default="fuzz-artifacts", metavar="DIR",
        help="where shrunk JSON + pytest repros of failures land "
        "(default: ./fuzz-artifacts)",
    )
    fuzz.add_argument(
        "--parametric", action="store_true",
        help="fuzz kernel *families*: build a parametric artifact from "
        "sampled sizes and diff what it serves against the engines "
        "(--corpus replays both concrete and parametric specs)",
    )

    serve = commands.add_parser(
        "serve", help="run the characterization service over HTTP"
    )
    serve.add_argument(
        "--host", default="127.0.0.1",
        help="bind address (default: 127.0.0.1; loopback only)",
    )
    serve.add_argument(
        "--port", type=int, default=None,
        help="bind port (default: 8177; 0 picks a free port)",
    )
    serve.add_argument(
        "--store", default=None, metavar="DIR",
        help="result-store root (default: $REPRO_STORE_DIR / "
        "$REPRO_CACHE_DIR/store; honours REPRO_NO_CACHE=1)",
    )
    serve.add_argument(
        "--workers", type=int, default=None, metavar="N",
        help="scheduler pool width (default: $REPRO_CM_WORKERS or serial)",
    )
    serve.add_argument(
        "--executor", default=None, choices=["thread", "process"],
        help="execution backend (default: $REPRO_SERVICE_EXECUTOR, "
        "else process on multi-core hosts, thread on single-core)",
    )
    serve.add_argument(
        "--shards", type=int, default=None, metavar="N",
        help="scheduler shard count (default: $REPRO_SERVICE_SHARDS "
        "or the pool width)",
    )
    serve.add_argument(
        "--store-shards", type=int, default=None, metavar="N",
        help="result-store shard directories (default: "
        "$REPRO_STORE_SHARDS or 1, the unsharded layout)",
    )
    serve.add_argument(
        "--max-pending", type=int, default=None, metavar="N",
        help="per-shard queue depth beyond which new jobs are shed to "
        "the timeout-cap rung (default: unbounded)",
    )
    serve.add_argument(
        "--client-quota", type=int, default=None, metavar="N",
        help="max in-flight jobs per client (default: unlimited)",
    )
    serve.add_argument(
        "--shard-map", default=None, metavar="PATH_OR_JSON",
        help="cross-host shard map: a JSON file (or inline JSON) whose "
        "'shards' list assigns each slot to 'local' or a remote "
        "http(s) endpoint (default: $REPRO_SHARD_MAP; overrides "
        "--shards; see docs/SERVICE.md \"Cross-host deployment\")",
    )
    serve.add_argument(
        "--once", action="store_true",
        help="handle exactly one request then exit (smoke tests)",
    )
    serve.add_argument(
        "--port-file", default=None, metavar="PATH",
        help="write the bound port here (for scripts using --port 0)",
    )

    submit = commands.add_parser(
        "submit", help="batch-characterize kernels through the service"
    )
    submit.add_argument("kernels", nargs="+")
    _add_platform(submit)
    submit.add_argument(
        "--granularity", default="linalg",
        choices=["torch", "linalg", "affine"],
    )
    submit.add_argument(
        "--objective", action="append", default=None,
        choices=["edp", "energy", "performance"],
        help="objective(s); repeatable, default edp",
    )
    submit.add_argument(
        "--url", default=None, metavar="URL",
        help="POST to a running server instead of running in process",
    )
    submit.add_argument(
        "--store", default=None, metavar="DIR",
        help="(local mode) result-store root override",
    )
    submit.add_argument(
        "--sizes", action="append", default=None, metavar="N=V[,N=V...]",
        help="problem sizes, e.g. --sizes ni=64,nj=96; repeatable -- "
        "each occurrence submits every kernel/objective at those sizes "
        "(unnamed dimensions keep the benchmark defaults; parametric-"
        "engine jobs at swept sizes share one family artifact)",
    )
    submit.add_argument(
        "--no-wait", action="store_true",
        help="(with --url) enqueue and print job ids without blocking",
    )
    submit.add_argument(
        "--timeout", type=float, default=300.0, metavar="SECONDS",
        help="max seconds to wait for the batch (default: 300)",
    )
    _add_cm_knobs(submit)

    status = commands.add_parser(
        "status", help="show one job's state on a running server"
    )
    status.add_argument("job_id")
    status.add_argument(
        "--url", required=True, metavar="URL",
        help="base URL of a running `repro.cli serve`",
    )

    query = commands.add_parser(
        "query", help="range-query the content-addressed result store"
    )
    query.add_argument("--benchmark", default=None)
    query.add_argument(
        "--platform", "-p", default=None, choices=["rpl", "bdw"]
    )
    query.add_argument(
        "--objective", default=None,
        choices=["edp", "energy", "performance"],
    )
    query.add_argument(
        "--boundedness", default=None, choices=["CB", "BB"]
    )
    query.add_argument(
        "--engine", default=None, choices=list(CM_ENGINES)
    )
    query.add_argument(
        "--cap-below", type=float, default=None, metavar="GHZ",
        help="only entries whose lowest unit cap is below GHZ",
    )
    query.add_argument(
        "--cap-above", type=float, default=None, metavar="GHZ",
        help="only entries whose highest unit cap is above GHZ",
    )
    query.add_argument("--limit", type=int, default=None, metavar="N")
    query.add_argument(
        "--url", default=None, metavar="URL",
        help="query a running server instead of the local store",
    )
    query.add_argument(
        "--store", default=None, metavar="DIR",
        help="(local mode) result-store root override",
    )
    return parser


def _cmd_list() -> int:
    from repro.benchsuite import REGISTRY

    for name in sorted(REGISTRY):
        spec = REGISTRY[name]
        print(f"{name:<20} {spec.category:<10} {spec.source}")
    return 0


def _cmd_platforms() -> int:
    from repro.hw import get_platform

    for name in ("bdw", "rpl"):
        platform = get_platform(name)
        print(
            f"{platform.name}: {platform.cores}C/{platform.threads}T, "
            f"core {platform.core_base_ghz}-{platform.core_max_ghz} GHz, "
            f"uncore {platform.uncore.f_min_ghz}-"
            f"{platform.uncore.f_max_ghz} GHz, "
            f"LLC {platform.hierarchy.llc.size_bytes // 1024} KiB, "
            f"cap overhead {platform.cap_overhead_s * 1e6:.0f} us"
        )
    return 0


def _cmd_constants(platform_name: str) -> int:
    from repro.hw import get_platform
    from repro.pipeline import get_constants

    platform = get_platform(platform_name)
    constants = get_constants(platform)
    print(f"fitted roofline constants for {platform.name}:")
    print(f"  peak compute    {1 / constants.t_fpu / 1e9:10.1f} Gflop/s")
    print(f"  peak bandwidth  {constants.peak_bandwidth / 1e9:10.1f} GB/s")
    print(f"  B^t_DRAM        {constants.b_t_dram:10.2f} FpB")
    print(f"  f_sat           {constants.saturation_freq():10.2f} GHz")
    print(f"  p_con           {constants.p_con:10.1f} W")
    print(f"  p^_FPU          {constants.p_hat_fpu:10.1f} W")
    print(f"  e_FPU           {constants.e_fpu:10.3e} J/flop")
    print(f"  overlap rho     {constants.overlap_rho:10.2f}")
    return 0


def _cmd_characterize(
    kernel: str,
    platform_name: str,
    granularity: str,
    workers: Optional[int] = None,
    cm_engine: Optional[str] = None,
    cm_timeout: Optional[float] = None,
) -> int:
    from repro.experiments import kernel_report

    report = kernel_report(
        kernel, platform_name, granularity=granularity,
        workers=workers, cm_engine=cm_engine, cm_timeout_s=cm_timeout,
    )
    print(
        f"{kernel} on {report.platform} ({granularity} granularity): "
        f"OI {report.oi_model:.2f} FpB, {report.boundedness}"
    )
    for unit in report.units:
        marker = "" if unit.degraded == "exact" else f"  [{unit.degraded}]"
        print(
            f"  {unit.name:<28} OI {unit.oi_fpb:8.2f}  {unit.boundedness}  "
            f"cap {unit.cap_ghz:.1f} GHz{marker}"
        )
    return 0


def _cmd_compile(
    kernel: str,
    platform_name: str,
    objective: str,
    workers: Optional[int] = None,
    cm_engine: Optional[str] = None,
    cm_timeout: Optional[float] = None,
) -> int:
    import sys as _sys

    from repro.benchsuite import get_benchmark
    from repro.hw import get_platform
    from repro.ir import print_module
    from repro.pipeline import polyufc_compile
    from repro.runtime import resolve_timeout

    platform = get_platform(platform_name)
    result = polyufc_compile(
        get_benchmark(kernel).module(), platform, objective=objective,
        workers=workers, cm_engine=cm_engine,
        cm_timeout_s=resolve_timeout(cm_timeout),
    )
    print(print_module(result.capped_module))
    for unit in result.units:
        if unit.degraded != "exact":
            print(
                f"// {unit.name}: degraded to {unit.degraded}"
                + (f" ({unit.warning})" if unit.warning else ""),
                file=_sys.stderr,
            )
    return 0


def _cmd_compare(kernel: str, platform_name: str) -> int:
    from repro.experiments import baseline_comparison

    comparison = baseline_comparison(kernel, platform_name)

    def improvement(gain: float) -> str:
        return f"{(1 - 1 / gain) * 100:+.1f}%"

    print(f"{kernel} on {comparison.platform} (PolyUFC vs UFS baseline):")
    print(f"  time   {improvement(comparison.speedup)}")
    print(f"  energy {improvement(comparison.energy_gain)}")
    print(f"  EDP    {improvement(comparison.edp_gain)}")
    return 0


def _cmd_sweep(kernel: str, platform_name: str) -> int:
    from repro.experiments import frequency_sweep

    rows = frequency_sweep(kernel, platform_name)
    best = min(rows, key=lambda r: r[3])
    print(f"{'f_c':>5} {'time(us)':>10} {'energy(mJ)':>11} {'EDP(nJ.s)':>11}")
    for f, time_s, energy, edp in rows:
        marker = "  <- min EDP" if f == best[0] else ""
        print(
            f"{f:>5.1f} {time_s * 1e6:>10.1f} {energy * 1e3:>11.3f} "
            f"{edp * 1e9:>11.3f}{marker}"
        )
    return 0


def _cmd_roofline(kernels: List[str], platform_name: str) -> int:
    from repro.experiments import kernel_report
    from repro.hw import get_platform
    from repro.pipeline import get_constants
    from repro.roofline.plot import RooflinePoint, render_roofline

    platform = get_platform(platform_name)
    constants = get_constants(platform)
    points = []
    for kernel in kernels:
        report = kernel_report(kernel, platform_name)
        points.append(RooflinePoint(kernel, report.oi_model, 0.0))
    print(render_roofline(constants, points))
    return 0


def _cmd_fuzz(
    seed: int,
    time_budget: float,
    max_cases: Optional[int],
    corpus: Optional[str],
    replay_only: bool,
    artifacts: str,
    parametric: bool = False,
) -> int:
    from pathlib import Path

    from repro.verify import (
        fuzz,
        fuzz_parametric,
        replay_corpus,
        replay_parametric_corpus,
    )

    exit_code = 0
    if corpus is not None:
        replayed = replay_corpus(Path(corpus))
        preplayed = replay_parametric_corpus(Path(corpus))
        bad = [
            (path, r)
            for path, r in list(replayed) + list(preplayed)
            if not r.ok
        ]
        print(
            f"corpus replay: {len(replayed)} concrete + "
            f"{len(preplayed)} parametric spec(s), "
            f"{len(bad)} disagreement(s)"
        )
        for path, result in bad:
            print(f"  {path.name}:")
            for disagreement in result.disagreements:
                print(f"    {disagreement}")
        if bad:
            exit_code = 1
        if replay_only:
            return exit_code

    if parametric:
        pstats = fuzz_parametric(
            seed=seed,
            time_budget_s=time_budget,
            max_cases=max_cases,
            artifacts_dir=Path(artifacts),
            log=print,
        )
        print(
            f"parametric fuzz seed={seed}: {pstats.cases_run} "
            f"family(ies) in {pstats.elapsed_s:.1f}s, "
            f"{pstats.charts_fitted} chart(s) fitted, "
            f"{pstats.probes_served} probe(s) served, "
            f"{len(pstats.failures)} failure(s)"
        )
        for pfailure in pstats.failures:
            print(f"  family {pfailure.index}: {pfailure.reason()}")
            if pfailure.json_path is not None:
                print(
                    f"    repro: {pfailure.json_path} / "
                    f"{pfailure.pytest_path}"
                )
        return 1 if pstats.failures else exit_code

    stats = fuzz(
        seed=seed,
        time_budget_s=time_budget,
        max_cases=max_cases,
        artifacts_dir=Path(artifacts),
        log=print,
    )
    print(
        f"fuzz seed={seed}: {stats.cases_run} case(s) in "
        f"{stats.elapsed_s:.1f}s, {stats.symbolic_supported} "
        f"symbolic-supported, {len(stats.failures)} failure(s)"
    )
    for failure in stats.failures:
        print(f"  case {failure.index}: {failure.reason()}")
        if failure.json_path is not None:
            print(f"    repro: {failure.json_path} / {failure.pytest_path}")
    return 1 if stats.failures else exit_code


def _cmd_serve(args) -> int:
    from repro.service import serve
    from repro.service.http import DEFAULT_PORT

    return serve(
        host=args.host,
        port=DEFAULT_PORT if args.port is None else args.port,
        once=args.once,
        port_file=args.port_file,
        store=args.store,
        workers=args.workers,
        executor=args.executor,
        shards=args.shards,
        store_shards=args.store_shards,
        max_pending=args.max_pending,
        client_quota=args.client_quota,
        shard_map=args.shard_map,
    )


def _parse_sizes(text: str) -> dict:
    """``"ni=64,nj=96"`` -> ``{"ni": 64, "nj": 96}``."""
    sizes = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        name, sep, value = part.partition("=")
        name = name.strip()
        if not sep or not name:
            raise ValueError(
                f"bad --sizes entry {part!r}; expected name=integer"
            )
        try:
            sizes[name] = int(value.strip())
        except ValueError:
            raise ValueError(
                f"bad --sizes value for {name!r}: {value.strip()!r} "
                f"is not an integer"
            ) from None
    return sizes


def _cmd_submit(args) -> int:
    try:
        size_sets = [_parse_sizes(text) for text in (args.sizes or [])]
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    specs = [
        {
            "benchmark": kernel,
            "platform": args.platform,
            "granularity": args.granularity,
            "objective": objective,
            "engine": args.cm_engine,
            "cm_timeout_s": args.cm_timeout,
            **({"sizes": sizes} if sizes else {}),
        }
        for kernel in args.kernels
        for objective in (args.objective or ["edp"])
        for sizes in (size_sets or [{}])
    ]

    if args.url is not None:
        from repro.service import request_json

        code, body = request_json(
            args.url.rstrip("/") + "/v1/jobs",
            {
                "specs": specs,
                "wait": not args.no_wait,
                "timeout_s": args.timeout,
            },
            timeout_s=args.timeout + 30.0,
        )
        if code != 200:
            print(f"error: {body.get('error', body)}", file=sys.stderr)
            return 2 if code == 400 else 1
        failed = 0
        for row in body["jobs"]:
            caps = ""
            report = row.get("report")
            if report is not None:
                caps = " caps=" + ",".join(
                    f"{unit['cap_ghz']:.1f}" for unit in report["units"]
                )
            if row.get("error"):
                failed += 1
                caps = f" error={row['error']}"
            print(
                f"{row['job_id']} {row['benchmark']}/{row['objective']} "
                f"{row['state']} source={row.get('source')}{caps}"
            )
        return 1 if failed else 0

    from repro.service import ServiceClient

    try:
        with ServiceClient(
            store=args.store if args.store is not None else None,
            workers=args.workers,
        ) as client:
            jobs = client.submit_batch(specs)
            failed = 0
            for job in jobs:
                try:
                    report = job.result(args.timeout)
                    caps = ",".join(f"{cap:.1f}" for cap in report.caps())
                    suffix = f"caps={caps}"
                    if not report.fully_exact:
                        suffix += (
                            " degraded="
                            + ",".join(report.degraded_units)
                        )
                except Exception as exc:
                    failed += 1
                    suffix = f"error={exc}"
                row = client.status(job.job_id)
                print(
                    f"{job.job_id} {job.spec.benchmark}/"
                    f"{job.spec.objective} {row['state']} "
                    f"source={row['source']} {suffix}"
                )
        return 1 if failed else 0
    except ValueError as exc:  # malformed spec (unknown kernel, ...)
        print(f"error: {exc}", file=sys.stderr)
        return 2


def _cmd_status(job_id: str, url: str) -> int:
    import json

    from repro.service import request_json

    code, body = request_json(url.rstrip("/") + f"/v1/jobs/{job_id}")
    if code == 404:
        print(f"error: {body.get('error', 'unknown job')}", file=sys.stderr)
        return 1
    if code != 200:
        print(f"error: {body.get('error', body)}", file=sys.stderr)
        return 1
    print(json.dumps(body, indent=2, sort_keys=True))
    return 0


def _cmd_query(args) -> int:
    filters = {
        "benchmark": args.benchmark,
        "platform": args.platform,
        "objective": args.objective,
        "boundedness": args.boundedness,
        "engine": args.engine,
        "cap_below": args.cap_below,
        "cap_above": args.cap_above,
        "limit": args.limit,
    }
    filters = {key: val for key, val in filters.items() if val is not None}

    if args.url is not None:
        from repro.service import request_json

        query_string = "&".join(f"{k}={v}" for k, v in filters.items())
        code, body = request_json(
            args.url.rstrip("/") + "/v1/query"
            + (f"?{query_string}" if query_string else "")
        )
        if code != 200:
            print(f"error: {body.get('error', body)}", file=sys.stderr)
            return 2 if code == 400 else 1
        rows = body["rows"]
        if body.get("partial"):
            unavailable = body.get("unavailable", [])
            print(
                f"warning: partial results -- {len(unavailable)} "
                f"federated shard(s) unavailable "
                f"({', '.join(row.get('url', '?') for row in unavailable)})",
                file=sys.stderr,
            )
    else:
        from repro.service.store import ResultStore

        store = ResultStore(args.store) if args.store else ResultStore()
        try:
            rows = store.query(**filters)
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2

    print(
        f"{'benchmark':<20}{'platform':>10}{'objective':>12}{'class':>6}"
        f"{'units':>6}{'min-cap':>8}{'engine':>10}"
    )
    for row in rows:
        min_cap = (
            f"{row['min_cap_ghz']:.1f}"
            if row["min_cap_ghz"] is not None else "-"
        )
        print(
            f"{row['benchmark']:<20}{row['platform']:>10}"
            f"{row['objective']:>12}{row['boundedness']:>6}"
            f"{row['units']:>6}{min_cap:>8}{row['engine']:>10}"
        )
    print(f"{len(rows)} result(s)")
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "list":
        return _cmd_list()
    if args.command == "platforms":
        return _cmd_platforms()
    if args.command == "constants":
        return _cmd_constants(args.platform)
    if args.command == "characterize":
        return _cmd_characterize(
            args.kernel, args.platform, args.granularity,
            args.workers, args.cm_engine, args.cm_timeout,
        )
    if args.command == "compile":
        return _cmd_compile(
            args.kernel, args.platform, args.objective,
            args.workers, args.cm_engine, args.cm_timeout,
        )
    if args.command == "compare":
        return _cmd_compare(args.kernel, args.platform)
    if args.command == "sweep":
        return _cmd_sweep(args.kernel, args.platform)
    if args.command == "roofline":
        return _cmd_roofline(args.kernels, args.platform)
    if args.command == "fuzz":
        return _cmd_fuzz(
            args.seed, args.time_budget, args.max_cases,
            args.corpus, args.replay_only, args.artifacts,
            args.parametric,
        )
    if args.command == "serve":
        return _cmd_serve(args)
    if args.command == "submit":
        return _cmd_submit(args)
    if args.command == "status":
        return _cmd_status(args.job_id, args.url)
    if args.command == "query":
        return _cmd_query(args)
    raise AssertionError(f"unhandled command {args.command!r}")


if __name__ == "__main__":
    sys.exit(main())
