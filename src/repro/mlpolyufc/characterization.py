"""Per-unit characterization of an affine module (the MLIR analysis pass).

Analysis always happens at affine granularity (the paper's "granularity for
analysis": affine IR is where the polyhedral machinery lives); the *unit*
boundaries come from the requested dialect granularity:

* ``"affine"`` -- every top-level affine loop nest is its own unit,
* ``"linalg"`` -- nests produced from the same linalg op are one unit
  (the ``source_index`` tags placed by the lowering),
* ``"torch"`` -- nests descending from the same torch op are one unit
  (``torch_source_index`` tags).

Each unit gets PolyUFC-CM counters, OI, a CB/BB characterization, and a
Sec. V parametric model.
"""

from __future__ import annotations

import logging
import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.config import CacheHierarchy
from repro.cache.memo import memoized_cm_with_note
from repro.cache.static_model import (
    CacheModelResult,
    LevelModelStats,
    polyufc_cm,
)
from repro.cache.trace import generate_trace
from repro.ir.core import IRError, Module, Op
from repro.ir.dialects.affine import AffineForOp
from repro.isllite import CountOptions, count_points
from repro.isllite.errors import IslError
from repro.model.parametric import KernelSummary, PolyUFCModel, summary_from_cm
from repro.poly.scop import extract_scop
from repro.roofline.characterize import Boundedness
from repro.roofline.constants import RooflineConstants
from repro.runtime import Deadline, DeadlineExceeded, ReproError
from repro.hw.platform import PlatformSpec

log = logging.getLogger("repro.runtime")

GRANULARITIES = ("affine", "linalg", "torch")

#: The degradation ladder, in order of decreasing fidelity (see
#: ``docs/ROBUSTNESS.md``): full trace + CM, scaled truncated-trace
#: estimate, and the paper's Sec. VII-F safety fallback (cap at f_max).
DEGRADATION_RUNGS = ("exact", "approx", "timeout-cap")

#: ``cm_note`` marking a unit whose CM counters were instantiated from a
#: cached parametric family artifact instead of evaluated by an engine.
FAMILY_SERVED_NOTE = "served by parametric family artifact"

#: Trace-prefix budget of the approximate rung.
APPROX_TRACE_ACCESSES = 100_000

#: Counting knobs of the approximate rung (small budget forces the cheap
#: Monte-Carlo estimate on anything non-trivial).
APPROX_COUNT_BUDGET = 50_000
APPROX_MC_SAMPLES = 4_000

#: Failures the ladder degrades around (anything else is a bug and
#: propagates).  ``IRError`` covers trace-budget and lowering problems,
#: ``IslError`` covers counting, ``ReproError`` covers deadlines, engine
#: faults and cache corruption, ``MemoryError``/``ArithmeticError`` cover
#: resource blowups inside the NumPy kernels.
DEGRADABLE_ERRORS = (
    ReproError,
    IRError,
    IslError,
    MemoryError,
    ArithmeticError,
)


@dataclass
class UnitCharacterization:
    """One capping unit: ops, counters, model, boundedness.

    ``degraded`` records which rung of the degradation ladder produced the
    counters (:data:`DEGRADATION_RUNGS`); ``warning`` carries the
    structured reason when it is not ``"exact"``.  ``cm_note`` is the
    structured engine annotation: when the ``symbolic`` CM engine found
    the unit outside its quasi-affine class and fell back to ``fast``,
    the reason lands here (the counters stay exact, so ``degraded``
    remains ``"exact"``).
    """

    name: str
    ops: List[Op]
    omega: int
    cm: CacheModelResult
    summary: KernelSummary
    model: PolyUFCModel
    parallel: bool
    degraded: str = "exact"
    warning: Optional[str] = None
    cm_note: Optional[str] = None

    @property
    def oi_fpb(self) -> float:
        return self.summary.oi_fpb

    @property
    def boundedness(self) -> Boundedness:
        return self.model.boundedness

    @property
    def label(self) -> str:
        return str(self.boundedness)


def _unit_key(op: Op, granularity: str):
    if granularity == "affine":
        return None  # every op its own unit
    if granularity == "linalg":
        return op.attrs.get("source_index")
    if granularity == "torch":
        return op.attrs.get("torch_source_index")
    raise IRError(f"unknown granularity {granularity!r}")


def group_affine_units(
    module: Module, granularity: str = "linalg"
) -> List[Tuple[str, List[Op]]]:
    """Group the module's top-level affine nests into capping units."""
    if granularity not in GRANULARITIES:
        raise IRError(
            f"granularity {granularity!r} not in {GRANULARITIES}"
        )
    units: List[Tuple[str, List[Op]]] = []
    open_key = object()  # sentinel that never matches
    for index, op in enumerate(module.ops):
        if not isinstance(op, AffineForOp):
            open_key = object()
            continue
        key = _unit_key(op, granularity)
        source = op.attrs.get("source_op")
        torch_source = op.attrs.get("torch_source_op")
        if granularity == "torch" and torch_source is not None:
            base = f"{torch_source.dialect}.{torch_source.name}"
        elif granularity != "affine" and source is not None:
            base = f"{source.dialect}.{source.name}"
        else:
            base = "affine.for"
        if key is not None and units and key == open_key:
            units[-1][1].append(op)
        else:
            units.append((f"{base}@{len(units)}", [op]))
        open_key = key if key is not None else object()
    return units


def _is_parallel_unit(ops: Sequence[Op]) -> bool:
    for op in ops:
        for walked in op.walk():
            if isinstance(walked, AffineForOp) and walked.parallel:
                return True
    return False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker-pool width: explicit arg > $REPRO_CM_WORKERS > serial."""
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_CM_WORKERS", "1"))
        except ValueError:
            workers = 1
    return max(1, workers)


def fallback_cm(hierarchy: CacheHierarchy, threads: int) -> CacheModelResult:
    """The rung-3 stand-in: a zero-traffic CM result.

    With no billable traffic the unit characterizes compute-bound and the
    pipeline pins its cap at ``f_max`` -- the paper's Sec. VII-F safety
    rule, applied per unit.
    """
    levels = tuple(
        LevelModelStats(
            config.name, accesses=0, cold_misses=0,
            capacity_conflict_misses=0,
        )
        for config in hierarchy.levels
    )
    return CacheModelResult(levels, hierarchy.line_bytes, 0, threads)


def _scaled_cm(cm: CacheModelResult, scale: float) -> CacheModelResult:
    """Scale every counter of a prefix-trace CM up to the full kernel."""
    if scale <= 1.0:
        return cm
    levels = tuple(
        LevelModelStats(
            level.name,
            accesses=int(round(level.accesses * scale)),
            cold_misses=int(round(level.cold_misses * scale)),
            capacity_conflict_misses=int(
                round(level.capacity_conflict_misses * scale)
            ),
        )
        for level in cm.levels
    )
    return CacheModelResult(
        levels, cm.line_bytes, int(round(cm.total_accesses * scale)),
        cm.threads,
    )


def _estimated_unit_accesses(
    statements, params, ops: Sequence[Op],
    deadline: Optional[Deadline],
) -> int:
    """Approximate total accesses of a unit via (Monte-Carlo) counting."""
    roots = {id(op) for op in ops}
    total = 0
    options = CountOptions(
        budget=APPROX_COUNT_BUDGET,
        mc_samples=APPROX_MC_SAMPLES,
        deadline=deadline,
    )
    for statement in statements:
        if not statement.loops or id(statement.loops[0]) not in roots:
            continue
        if not statement.accesses:
            continue
        try:
            points = int(count_points(statement.domain, params, options))
        except (IslError, ReproError):
            return 0  # no scaling rather than a wrong scale
        total += len(statement.accesses) * points
    return total


def approximate_cm(
    module: Module,
    ops: Sequence[Op],
    hierarchy: CacheHierarchy,
    threads: int,
    parallel: bool,
    engine: Optional[str],
    statements,
    params,
    max_accesses: int,
    deadline: Optional[Deadline] = None,
) -> CacheModelResult:
    """The ladder's middle rung: CM over a truncated trace prefix, scaled.

    The prefix is generated with ``truncate=True`` (bounded work, partial
    chunk emission) and evaluated normally; the counters are then scaled
    by the unit's estimated total access count, obtained by counting the
    statement domains with a small budget so anything non-trivial takes
    the seeded Monte-Carlo estimate.
    """
    budget = min(max_accesses, APPROX_TRACE_ACCESSES)
    trace = generate_trace(
        module, ops, max_accesses=budget, truncate=True, deadline=deadline
    )
    if not len(trace):
        raise DeadlineExceeded(
            "approximate rung traced no accesses", site="cm.trace"
        )
    cm = polyufc_cm(
        trace, hierarchy, threads=threads, parallel=parallel, engine=engine,
        deadline=deadline,
    )
    estimated = _estimated_unit_accesses(statements, params, ops, deadline)
    if estimated > len(trace):
        cm = _scaled_cm(cm, estimated / len(trace))
    return cm


def characterize_units(
    module: Module,
    platform: PlatformSpec,
    constants: RooflineConstants,
    granularity: str = "linalg",
    threads: Optional[int] = None,
    set_associative: bool = True,
    max_trace_accesses: int = 60_000_000,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
    deadline: Optional[Deadline] = None,
    cm_lookup=None,
) -> List[UnitCharacterization]:
    """Characterize every capping unit of an affine module.

    ``workers > 1`` fans the per-unit trace+CM work across a thread pool
    (the heavy NumPy kernels release the GIL); results keep the module's
    unit order regardless of completion order.  ``engine`` selects the CM
    evaluator (see :data:`repro.cache.static_model.CM_ENGINES`).

    ``cm_lookup`` (unit name -> :class:`CacheModelResult` or ``None``)
    short-circuits the per-unit CM evaluation -- the service's
    kernel-family fast path injects artifact-served counters here, so a
    warm size sweep skips the expensive engine work entirely.  A served
    unit is ``exact`` with ``cm_note="served by parametric family
    artifact"``; a ``None`` lookup falls through to the normal ladder.

    Faults are isolated **per unit** through the degradation ladder
    (:data:`DEGRADATION_RUNGS`): an expired ``deadline`` or a failing
    engine yields a unit with ``degraded="approx"`` or
    ``degraded="timeout-cap"`` (safe ``f_max`` cap) plus a structured
    ``warning``, never a crashed pipeline.
    """
    threads = platform.threads if threads is None else threads
    workers = resolve_workers(workers)
    hierarchy = (
        platform.hierarchy
        if set_associative
        else platform.hierarchy.fully_associative()
    )
    statements: List = []
    params: Dict[str, int] = {}
    flops_by_root: Dict[int, int] = {}
    try:
        scop = extract_scop(module)
        statements = scop.statements
        params = scop.params
        for statement in statements:
            root = statement.loops[0]
            flops_by_root[id(root)] = flops_by_root.get(id(root), 0) + (
                statement.total_flops(params)
            )
    except DEGRADABLE_ERRORS as exc:
        log.warning(
            "SCoP extraction of %s failed (%s); units lose flop counts "
            "and approximate scaling", module.name, exc,
        )

    units = group_affine_units(module, granularity)

    def cm_with_ladder(name, ops, parallel):
        """(cm, rung, warning, note) for one unit, walking the ladder down."""
        if cm_lookup is not None:
            served = cm_lookup(name)
            if served is not None:
                return served, "exact", None, FAMILY_SERVED_NOTE
        try:
            if deadline is not None:
                deadline.check(f"unit:{name}")
            cm, note = memoized_cm_with_note(
                module,
                ops,
                hierarchy,
                threads=threads,
                parallel=parallel,
                engine=engine,
                max_accesses=max_trace_accesses,
                deadline=deadline,
            )
            return cm, "exact", None, note
        except DEGRADABLE_ERRORS as exc:
            failure = exc
        if deadline is None or not deadline.expired():
            try:
                cm = approximate_cm(
                    module, ops, hierarchy, threads, parallel, engine,
                    statements, params, max_trace_accesses,
                    deadline=deadline,
                )
                warning = (
                    f"exact CM failed ({failure}); "
                    "scaled truncated-trace estimate"
                )
                log.warning("unit %s degraded to approx: %s", name, failure)
                return cm, "approx", warning, None
            except DEGRADABLE_ERRORS as exc:
                failure = exc
        log.warning(
            "unit %s degraded to timeout-cap (f_max): %s", name, failure
        )
        return fallback_cm(hierarchy, threads), "timeout-cap", str(failure), None

    def characterize_one(unit: Tuple[str, List[Op]]) -> UnitCharacterization:
        name, ops = unit
        omega = sum(flops_by_root.get(id(op), 0) for op in ops)
        parallel = _is_parallel_unit(ops)
        cm, degraded, warning, cm_note = cm_with_ladder(name, ops, parallel)
        cores_used = min(threads, platform.cores) if parallel else 1
        cores_fraction = cores_used / platform.cores
        try:
            summary = summary_from_cm(
                name, omega, cm, cores_fraction=cores_fraction
            )
            model = PolyUFCModel(constants, summary)
        except Exception as exc:
            # Last line of per-unit isolation: degenerate counters must
            # not take the kernel down either.
            log.warning(
                "unit %s model construction failed (%s); using the "
                "f_max fallback", name, exc,
            )
            cm = fallback_cm(hierarchy, threads)
            summary = summary_from_cm(
                name, omega, cm, cores_fraction=cores_fraction
            )
            model = PolyUFCModel(constants, summary)
            degraded = "timeout-cap"
            warning = f"model construction failed: {exc}"
        return UnitCharacterization(
            name=name,
            ops=list(ops),
            omega=omega,
            cm=cm,
            summary=summary,
            model=model,
            parallel=parallel,
            degraded=degraded,
            warning=warning,
            cm_note=cm_note,
        )

    if workers > 1 and len(units) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # executor.map preserves input order -> deterministic results.
            return list(pool.map(characterize_one, units))
    return [characterize_one(unit) for unit in units]
