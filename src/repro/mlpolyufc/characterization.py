"""Per-unit characterization of an affine module (the MLIR analysis pass).

Analysis always happens at affine granularity (the paper's "granularity for
analysis": affine IR is where the polyhedral machinery lives); the *unit*
boundaries come from the requested dialect granularity:

* ``"affine"`` -- every top-level affine loop nest is its own unit,
* ``"linalg"`` -- nests produced from the same linalg op are one unit
  (the ``source_index`` tags placed by the lowering),
* ``"torch"`` -- nests descending from the same torch op are one unit
  (``torch_source_index`` tags).

Each unit gets PolyUFC-CM counters, OI, a CB/BB characterization, and a
Sec. V parametric model.
"""

from __future__ import annotations

import os
from concurrent.futures import ThreadPoolExecutor
from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.cache.memo import memoized_cm
from repro.cache.static_model import CacheModelResult
from repro.ir.core import IRError, Module, Op
from repro.ir.dialects.affine import AffineForOp
from repro.model.parametric import KernelSummary, PolyUFCModel, summary_from_cm
from repro.poly.scop import extract_scop
from repro.roofline.characterize import Boundedness
from repro.roofline.constants import RooflineConstants
from repro.hw.platform import PlatformSpec

GRANULARITIES = ("affine", "linalg", "torch")


@dataclass
class UnitCharacterization:
    """One capping unit: ops, counters, model, boundedness."""

    name: str
    ops: List[Op]
    omega: int
    cm: CacheModelResult
    summary: KernelSummary
    model: PolyUFCModel
    parallel: bool

    @property
    def oi_fpb(self) -> float:
        return self.summary.oi_fpb

    @property
    def boundedness(self) -> Boundedness:
        return self.model.boundedness

    @property
    def label(self) -> str:
        return str(self.boundedness)


def _unit_key(op: Op, granularity: str):
    if granularity == "affine":
        return None  # every op its own unit
    if granularity == "linalg":
        return op.attrs.get("source_index")
    if granularity == "torch":
        return op.attrs.get("torch_source_index")
    raise IRError(f"unknown granularity {granularity!r}")


def group_affine_units(
    module: Module, granularity: str = "linalg"
) -> List[Tuple[str, List[Op]]]:
    """Group the module's top-level affine nests into capping units."""
    if granularity not in GRANULARITIES:
        raise IRError(
            f"granularity {granularity!r} not in {GRANULARITIES}"
        )
    units: List[Tuple[str, List[Op]]] = []
    open_key = object()  # sentinel that never matches
    for index, op in enumerate(module.ops):
        if not isinstance(op, AffineForOp):
            open_key = object()
            continue
        key = _unit_key(op, granularity)
        source = op.attrs.get("source_op")
        torch_source = op.attrs.get("torch_source_op")
        if granularity == "torch" and torch_source is not None:
            base = f"{torch_source.dialect}.{torch_source.name}"
        elif granularity != "affine" and source is not None:
            base = f"{source.dialect}.{source.name}"
        else:
            base = "affine.for"
        if key is not None and units and key == open_key:
            units[-1][1].append(op)
        else:
            units.append((f"{base}@{len(units)}", [op]))
        open_key = key if key is not None else object()
    return units


def _is_parallel_unit(ops: Sequence[Op]) -> bool:
    for op in ops:
        for walked in op.walk():
            if isinstance(walked, AffineForOp) and walked.parallel:
                return True
    return False


def resolve_workers(workers: Optional[int] = None) -> int:
    """Worker-pool width: explicit arg > $REPRO_CM_WORKERS > serial."""
    if workers is None:
        try:
            workers = int(os.environ.get("REPRO_CM_WORKERS", "1"))
        except ValueError:
            workers = 1
    return max(1, workers)


def characterize_units(
    module: Module,
    platform: PlatformSpec,
    constants: RooflineConstants,
    granularity: str = "linalg",
    threads: Optional[int] = None,
    set_associative: bool = True,
    max_trace_accesses: int = 60_000_000,
    workers: Optional[int] = None,
    engine: Optional[str] = None,
) -> List[UnitCharacterization]:
    """Characterize every capping unit of an affine module.

    ``workers > 1`` fans the per-unit trace+CM work across a thread pool
    (the heavy NumPy kernels release the GIL); results keep the module's
    unit order regardless of completion order.  ``engine`` selects the CM
    evaluator (see :data:`repro.cache.static_model.CM_ENGINES`).
    """
    threads = platform.threads if threads is None else threads
    workers = resolve_workers(workers)
    hierarchy = (
        platform.hierarchy
        if set_associative
        else platform.hierarchy.fully_associative()
    )
    scop = extract_scop(module)
    flops_by_root: Dict[int, int] = {}
    for statement in scop.statements:
        root = statement.loops[0]
        flops_by_root[id(root)] = flops_by_root.get(id(root), 0) + (
            statement.total_flops(scop.params)
        )
    units = group_affine_units(module, granularity)

    def characterize_one(unit: Tuple[str, List[Op]]) -> UnitCharacterization:
        name, ops = unit
        omega = sum(flops_by_root.get(id(op), 0) for op in ops)
        parallel = _is_parallel_unit(ops)
        cm = memoized_cm(
            module,
            ops,
            hierarchy,
            threads=threads,
            parallel=parallel,
            engine=engine,
            max_accesses=max_trace_accesses,
        )
        cores_used = min(threads, platform.cores) if parallel else 1
        summary = summary_from_cm(
            name, omega, cm, cores_fraction=cores_used / platform.cores
        )
        model = PolyUFCModel(constants, summary)
        return UnitCharacterization(
            name=name,
            ops=list(ops),
            omega=omega,
            cm=cm,
            summary=summary,
            model=model,
            parallel=parallel,
        )

    if workers > 1 and len(units) > 1:
        with ThreadPoolExecutor(max_workers=workers) as pool:
            # executor.map preserves input order -> deterministic results.
            return list(pool.map(characterize_one, units))
    return [characterize_one(unit) for unit in units]
