"""Per-kernel characterization reports and their versioned serialization.

:class:`UnitReport` / :class:`KernelReport` are the persisted artifact of
one PolyUFC run -- per capping unit, both the model-side numbers
(PolyUFC-CM counters, OI, CB/BB, selected cap) and the hardware-side
workload (exact cache-simulator counters), plus the resilience metadata
(``degraded`` rung, ``warning``, engine ``cm_note``).

Serialization is **versioned and lossless**: ``to_json``/``from_json``
round-trip every field bit-for-bit, including the resilience metadata
that the ad-hoc ``dataclasses.asdict`` path used to drop on the
``cm_note`` side.  Everything that persists reports (the service result
store, and through it ``repro.experiments.runner``) goes through this
pair; a version mismatch raises :class:`ReportSchemaError` so stale
entries are quarantined and recomputed, never silently reinterpreted.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.hw.execution import KernelWorkload

#: Bump on any change to the report schema *or* to the models that
#: produce its numbers (successor of the report cache's CACHE_VERSION
#: lineage; v9 introduced the checksummed envelope + resilience
#: metadata).  v10: reports are content-addressed service-store objects
#: and units carry ``cm_note``.
REPORT_SCHEMA_VERSION = 10


class ReportSchemaError(ValueError):
    """A serialized report does not match the current schema."""


@dataclass
class UnitReport:
    """One capping unit: model-side and hardware-side numbers."""

    name: str
    omega: int
    oi_fpb: float
    boundedness: str
    cap_ghz: float
    parallel: bool
    q_dram_model: int
    level_accesses_hw: Tuple[int, ...]
    dram_fetch_bytes_hw: int
    dram_writeback_bytes_hw: int
    dram_lines_hw: int
    model_level_bytes: Tuple[int, ...]
    model_dram_lines: int
    cores_fraction: float
    search_iterations: int
    degraded: str = "exact"
    warning: Optional[str] = None
    cm_note: Optional[str] = None

    def workload(self, threads: int) -> KernelWorkload:
        """The hardware workload for the execution model."""
        return KernelWorkload(
            name=self.name,
            flops=self.omega,
            level_accesses=tuple(self.level_accesses_hw),
            dram_fetch_bytes=self.dram_fetch_bytes_hw,
            dram_writeback_bytes=self.dram_writeback_bytes_hw,
            dram_lines=self.dram_lines_hw,
            parallel=self.parallel,
            threads=threads,
        )

    @property
    def oi_hw(self) -> float:
        total = self.dram_fetch_bytes_hw + self.dram_writeback_bytes_hw
        return self.omega / total if total else float("inf")

    def to_json(self) -> dict:
        return {
            "name": self.name,
            "omega": self.omega,
            "oi_fpb": self.oi_fpb,
            "boundedness": self.boundedness,
            "cap_ghz": self.cap_ghz,
            "parallel": self.parallel,
            "q_dram_model": self.q_dram_model,
            "level_accesses_hw": list(self.level_accesses_hw),
            "dram_fetch_bytes_hw": self.dram_fetch_bytes_hw,
            "dram_writeback_bytes_hw": self.dram_writeback_bytes_hw,
            "dram_lines_hw": self.dram_lines_hw,
            "model_level_bytes": list(self.model_level_bytes),
            "model_dram_lines": self.model_dram_lines,
            "cores_fraction": self.cores_fraction,
            "search_iterations": self.search_iterations,
            "degraded": self.degraded,
            "warning": self.warning,
            "cm_note": self.cm_note,
        }

    @classmethod
    def from_json(cls, data: dict) -> "UnitReport":
        try:
            return cls(
                name=data["name"],
                omega=data["omega"],
                oi_fpb=data["oi_fpb"],
                boundedness=data["boundedness"],
                cap_ghz=data["cap_ghz"],
                parallel=data["parallel"],
                q_dram_model=data["q_dram_model"],
                level_accesses_hw=tuple(data["level_accesses_hw"]),
                dram_fetch_bytes_hw=data["dram_fetch_bytes_hw"],
                dram_writeback_bytes_hw=data["dram_writeback_bytes_hw"],
                dram_lines_hw=data["dram_lines_hw"],
                model_level_bytes=tuple(data["model_level_bytes"]),
                model_dram_lines=data["model_dram_lines"],
                cores_fraction=data["cores_fraction"],
                search_iterations=data["search_iterations"],
                degraded=data["degraded"],
                warning=data.get("warning"),
                cm_note=data.get("cm_note"),
            )
        except (KeyError, TypeError) as exc:
            raise ReportSchemaError(f"unit report field error: {exc}") from exc


@dataclass
class KernelReport:
    """Full per-benchmark artifact."""

    benchmark: str
    platform: str
    granularity: str
    objective: str
    set_associative: bool
    balance_fpb: float = 0.0
    units: List[UnitReport] = field(default_factory=list)
    timings_ms: Dict[str, float] = field(default_factory=dict)

    @property
    def total_flops(self) -> int:
        return sum(unit.omega for unit in self.units)

    @property
    def total_q_dram_model(self) -> int:
        return sum(unit.q_dram_model for unit in self.units)

    @property
    def oi_model(self) -> float:
        q = self.total_q_dram_model
        return self.total_flops / q if q else float("inf")

    @property
    def degraded_units(self) -> List[str]:
        """Names of units that did not characterize exactly."""
        return [unit.name for unit in self.units if unit.degraded != "exact"]

    @property
    def noted_units(self) -> List[str]:
        """Names of units carrying a structured engine note."""
        return [unit.name for unit in self.units if unit.cm_note]

    @property
    def fully_exact(self) -> bool:
        return not self.degraded_units

    @property
    def boundedness(self) -> str:
        """Whole-kernel label: aggregate OI against the fitted balance."""
        if self.balance_fpb > 0:
            return "CB" if self.oi_model >= self.balance_fpb else "BB"
        weights: Dict[str, float] = {"CB": 0.0, "BB": 0.0}
        for unit in self.units:
            weight = max(unit.omega, unit.q_dram_model)
            weights[unit.boundedness] += weight
        return "CB" if weights["CB"] >= weights["BB"] else "BB"

    def caps(self) -> List[float]:
        return [unit.cap_ghz for unit in self.units]

    def to_json(self) -> dict:
        return {
            "version": REPORT_SCHEMA_VERSION,
            "benchmark": self.benchmark,
            "platform": self.platform,
            "granularity": self.granularity,
            "objective": self.objective,
            "set_associative": self.set_associative,
            "balance_fpb": self.balance_fpb,
            "units": [unit.to_json() for unit in self.units],
            "timings_ms": dict(self.timings_ms),
        }

    @classmethod
    def from_json(cls, data: dict) -> "KernelReport":
        if not isinstance(data, dict):
            raise ReportSchemaError(
                f"report payload is {type(data).__name__}, not an object"
            )
        version = data.get("version")
        if version != REPORT_SCHEMA_VERSION:
            raise ReportSchemaError(
                f"report schema version {version!r} != "
                f"{REPORT_SCHEMA_VERSION}"
            )
        try:
            report = cls(
                benchmark=data["benchmark"],
                platform=data["platform"],
                granularity=data["granularity"],
                objective=data["objective"],
                set_associative=data["set_associative"],
                balance_fpb=data["balance_fpb"],
                timings_ms=dict(data["timings_ms"]),
            )
            report.units = [
                UnitReport.from_json(unit) for unit in data["units"]
            ]
        except (KeyError, TypeError) as exc:
            raise ReportSchemaError(f"report field error: {exc}") from exc
        return report
