"""Pattern rewrites on capped modules.

The paper uses pattern-rewrite optimizations to remove redundant frequency
caps (Sec. VII-A): a cap that is immediately overridden by another cap
before any kernel runs, or a cap equal to the frequency already in effect,
is dead and costs a driver call (~35us/21us) for nothing.
"""

from __future__ import annotations

from typing import List, Optional

from repro.ir.core import Module, Op
from repro.ir.dialects.polyufc import SetUncoreCapOp


def remove_redundant_caps(module: Module) -> Module:
    """Drop shadowed and no-op cap markers (shares the surviving ops)."""
    result = module.clone_structure(module.name)
    pending: Optional[SetUncoreCapOp] = None
    active_freq: Optional[float] = None
    for op in module.ops:
        if isinstance(op, SetUncoreCapOp):
            pending = op  # shadows any earlier pending cap
            continue
        if pending is not None:
            if active_freq is None or abs(
                pending.freq_ghz - active_freq
            ) > 1e-9:
                result.append(pending)
                active_freq = pending.freq_ghz
            pending = None
        result.append(op)
    # A trailing cap with no kernel after it is dead; drop it silently.
    return result


def count_caps(module: Module) -> int:
    """Number of cap markers in the module."""
    return sum(1 for op in module.ops if isinstance(op, SetUncoreCapOp))
