"""ML-PolyUFC: multi-level dialect-aware analysis and cap application.

Implements Sec. VI of the paper: characterization at affine granularity,
aggregation/application of caps at torch / linalg / affine granularity,
phase-change analysis across dialect levels (Fig. 5), and the pattern-
rewrite that removes redundant cap calls.
"""

from repro.mlpolyufc.characterization import (
    UnitCharacterization,
    characterize_units,
    group_affine_units,
)
from repro.mlpolyufc.phases import phase_string, phase_transitions
from repro.mlpolyufc.capping import apply_caps, select_caps, aggregate_cap
from repro.mlpolyufc.reports import (
    REPORT_SCHEMA_VERSION,
    KernelReport,
    ReportSchemaError,
    UnitReport,
)
from repro.mlpolyufc.rewrite import remove_redundant_caps

__all__ = [
    "UnitCharacterization",
    "characterize_units",
    "group_affine_units",
    "REPORT_SCHEMA_VERSION",
    "KernelReport",
    "ReportSchemaError",
    "UnitReport",
    "phase_string",
    "phase_transitions",
    "apply_caps",
    "select_caps",
    "aggregate_cap",
    "remove_redundant_caps",
]
