"""Cap selection and application (paper Sec. VI-B / VII-A code generation).

``select_caps`` runs POLYUFC-SEARCH per unit; ``apply_caps`` inserts
``polyufc.set_uncore_cap`` markers in front of each unit's first affine op.
``aggregate_cap`` implements the paper's aggregation rule: when several
statement-level caps must collapse into one op-level cap, take the *minimum*
for compute-bound code (never waste power) and the *maximum* for
bandwidth-bound code (never starve bandwidth).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Tuple

from repro.hw.platform import PlatformSpec
from repro.ir.core import Module, Op
from repro.ir.dialects.polyufc import SetUncoreCapOp
from repro.mlpolyufc.characterization import UnitCharacterization
from repro.search.polyufc_search import (
    SearchConfig,
    SearchResult,
    polyufc_search,
)


@dataclass
class CapDecision:
    """The selected cap for one unit."""

    unit: UnitCharacterization
    search: SearchResult

    @property
    def f_cap_ghz(self) -> float:
        return self.search.f_cap_ghz


def select_caps(
    units: Sequence[UnitCharacterization],
    platform: PlatformSpec,
    config: SearchConfig = SearchConfig(),
) -> List[CapDecision]:
    """Run POLYUFC-SEARCH for every unit."""
    return [
        CapDecision(unit, polyufc_search(unit.model, platform.uncore, config))
        for unit in units
    ]


def aggregate_cap(
    caps: Sequence[float], compute_bound: bool
) -> float:
    """min(caps) for CB, max(caps) for BB (Sec. VII-A)."""
    if not caps:
        raise ValueError("no caps to aggregate")
    return min(caps) if compute_bound else max(caps)


def aggregate_caps_for_overhead(
    decisions: Sequence[CapDecision],
    platform: PlatformSpec,
    config: SearchConfig = SearchConfig(),
    overhead_factor: float = 50.0,
) -> None:
    """Merge caps of units too short to amortize a driver call (in place).

    Each ``set_uncore_cap`` costs the measured driver overhead (35us BDW /
    21us RPL).  Consecutive units whose estimated runtime is below
    ``overhead_factor x overhead`` are grouped, and the group receives one
    cap by the paper's Sec. VII-A aggregation rule: the flop-weighted
    majority class of the group decides, then the cap is the *minimum* of
    the member caps for a compute-bound group (never waste power) and the
    *maximum* for a bandwidth-bound one (never starve bandwidth).
    """
    if not decisions or overhead_factor <= 0:
        return
    threshold = overhead_factor * platform.cap_overhead_s
    f_max = platform.uncore.f_max_ghz

    groups: List[List[CapDecision]] = []
    current: List[CapDecision] = []
    accumulated = 0.0
    for decision in decisions:
        current.append(decision)
        accumulated += decision.unit.model.time_s(f_max)
        if accumulated >= threshold:
            groups.append(current)
            current = []
            accumulated = 0.0
    if current:
        if groups:
            groups[-1].extend(current)
        else:
            groups.append(current)

    for group in groups:
        if len(group) == 1:
            continue
        # Group class: the aggregate OI of the group against the machine
        # balance (the same Sec. IV-D rule used everywhere else).
        total_flops = sum(decision.unit.omega for decision in group)
        total_q = sum(decision.unit.cm.q_dram_bytes for decision in group)
        balance = group[0].unit.model.constants.b_t_dram
        group_oi = total_flops / total_q if total_q else float("inf")
        compute_bound = group_oi >= balance
        cap = aggregate_cap(
            [decision.search.f_cap_ghz for decision in group], compute_bound
        )
        for decision in group:
            decision.search.f_cap_ghz = cap


def apply_caps(
    module: Module, decisions: Sequence[CapDecision]
) -> Module:
    """A new module with cap markers inserted before each unit.

    The input module's ops are shared; only the top-level op list is new.
    """
    capped = module.clone_structure(f"{module.name}.capped")
    first_op_to_decision: Dict[int, CapDecision] = {}
    for decision in decisions:
        if decision.unit.ops:
            first_op_to_decision[id(decision.unit.ops[0])] = decision
    for op in module.ops:
        decision = first_op_to_decision.get(id(op))
        if decision is not None:
            capped.append(
                SetUncoreCapOp(
                    decision.f_cap_ghz,
                    reason=(
                        f"{decision.unit.name}:"
                        f"{decision.search.boundedness}"
                    ),
                )
            )
        capped.append(op)
    return capped
