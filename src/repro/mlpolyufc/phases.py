"""Phase-change analysis across dialect levels (paper Sec. VI-A, Fig. 5).

A program's characterization sequence -- one CB/BB label per unit at some
granularity -- is summarized with the paper's Kleene-star notation: runs of
equal labels collapse (``CB -> BB* -> CB``), and the number of transitions
quantifies how much a coarser granularity would blur.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple


def _labels(sequence: Sequence) -> List[str]:
    return [str(item) for item in sequence]


def phase_runs(sequence: Sequence) -> List[Tuple[str, int]]:
    """Collapse a label sequence into (label, run-length) pairs."""
    runs: List[Tuple[str, int]] = []
    for label in _labels(sequence):
        if runs and runs[-1][0] == label:
            runs[-1] = (label, runs[-1][1] + 1)
        else:
            runs.append((label, 1))
    return runs


def phase_string(sequence: Sequence) -> str:
    """The paper's regex-style phase summary, e.g. ``CB -> BB* -> CB``."""
    parts = [
        label if count == 1 else f"{label}*"
        for label, count in phase_runs(sequence)
    ]
    return " -> ".join(parts)


def phase_transitions(sequence: Sequence) -> int:
    """Number of CB/BB boundary crossings in the sequence."""
    return max(0, len(phase_runs(sequence)) - 1)


def longest_run(sequence: Sequence, label: str) -> int:
    """Length of the longest run of ``label`` (Fig. 5's 'spans 7 ops')."""
    best = 0
    for run_label, count in phase_runs(sequence):
        if run_label == label:
            best = max(best, count)
    return best
