"""Seeded random affine-kernel generator for differential verification.

A :class:`KernelSpec` is a pure-data description of one capping unit plus
the cache hierarchy it is evaluated against: loop nests (rectangular or
triangular bounds, unit or non-unit steps), load/store accesses with
affine subscripts (unit-stride, strided, transposed, line-misaligned),
and 1-3 buffers whose shapes are fitted to the accesses (odd extents give
partial-line buffers for free).  Being plain data, a spec can be

* built into an IR :class:`~repro.ir.core.Module` (:func:`build_module`),
* serialized to/from JSON (:func:`spec_to_json` / :func:`spec_from_json`)
  for corpus files and failure artifacts,
* transformed structurally by the shrinker (:mod:`repro.verify.shrinker`),
* rendered as a paste-able pytest repro (:func:`spec_to_pytest`).

:func:`generate_spec` samples the supported IR class from a seeded
``random.Random`` so every fuzz campaign is reproducible from its seed.
"""

from __future__ import annotations

import json
import random
from dataclasses import dataclass, field
from itertools import product
from typing import Dict, Iterator, List, Optional, Sequence, Tuple

from repro.cache.config import CacheHierarchy, CacheLevelConfig
from repro.ir.builder import AffineBuilder
from repro.ir.core import F32, F64, ElementType, Module
from repro.isllite import LinExpr

#: Serializable affine expression: constant + iv coefficients.
ExprData = Tuple[int, Tuple[Tuple[str, int], ...]]

_DTYPES: Dict[str, ElementType] = {"f32": F32, "f64": F64}


def _expr(const: int, **coeffs: int) -> ExprData:
    return (int(const), tuple(sorted((n, int(c)) for n, c in coeffs.items() if c)))


def expr_to_linexpr(expr: ExprData) -> LinExpr:
    const, coeffs = expr
    return LinExpr(dict(coeffs), const)


def _expr_names(expr: ExprData) -> Tuple[str, ...]:
    return tuple(name for name, _ in expr[1])


def _expr_eval(expr: ExprData, env: Dict[str, int]) -> int:
    const, coeffs = expr
    return const + sum(coeff * env[name] for name, coeff in coeffs)


def _expr_rename(expr: ExprData, mapping: Dict[str, str]) -> ExprData:
    const, coeffs = expr
    return (
        const,
        tuple(sorted((mapping.get(n, n), c) for n, c in coeffs)),
    )


@dataclass(frozen=True)
class BufferSpec:
    """One array: name, shape, element type."""

    name: str
    shape: Tuple[int, ...]
    dtype: str = "f64"


@dataclass(frozen=True)
class AccessSpec:
    """One textual access: buffer, read/write, affine subscripts."""

    buffer: str
    is_write: bool
    subscripts: Tuple[ExprData, ...]


@dataclass(frozen=True)
class LoopSpec:
    """One loop of a nest; bounds are affine in the *outer* ivs."""

    iv: str
    lower: ExprData
    upper: ExprData
    step: int = 1


@dataclass(frozen=True)
class StatementSpec:
    """One top-level nest: loops outer-to-inner plus its body accesses."""

    loops: Tuple[LoopSpec, ...]
    accesses: Tuple[AccessSpec, ...]


@dataclass(frozen=True)
class LevelSpec:
    """One cache level of the spec's hierarchy."""

    name: str
    size_bytes: int
    line_bytes: int
    associativity: int


@dataclass(frozen=True)
class KernelSpec:
    """A self-contained differential-verification case."""

    name: str
    buffers: Tuple[BufferSpec, ...]
    statements: Tuple[StatementSpec, ...]
    levels: Tuple[LevelSpec, ...]
    seed: Optional[int] = None

    @property
    def max_depth(self) -> int:
        return max((len(s.loops) for s in self.statements), default=0)

    @property
    def max_extent(self) -> int:
        """Largest single-loop trip count over every statement's domain."""
        worst = 0
        for statement in self.statements:
            for depth in range(len(statement.loops)):
                for trip in _loop_trips(statement, depth):
                    worst = max(worst, trip)
        return worst

    def fingerprint(self) -> str:
        """A short stable identity for logs and artifact file names."""
        import hashlib

        return hashlib.sha256(spec_to_json(self).encode()).hexdigest()[:12]


# ---------------------------------------------------------------------------
# Domain enumeration (tiny by construction; used for shape fitting)
# ---------------------------------------------------------------------------


def _domain_points(
    statement: StatementSpec,
) -> Iterator[Tuple[Dict[str, int], None]]:
    """Every iteration point of the (small) statement domain."""

    def walk(depth: int, env: Dict[str, int]) -> Iterator[Tuple[Dict[str, int], None]]:
        if depth == len(statement.loops):
            yield dict(env), None
            return
        loop = statement.loops[depth]
        lower = _expr_eval(loop.lower, env)
        upper = _expr_eval(loop.upper, env)
        for value in range(lower, upper, loop.step):
            env[loop.iv] = value
            yield from walk(depth + 1, env)
        env.pop(loop.iv, None)

    yield from walk(0, {})


def _loop_trips(statement: StatementSpec, depth: int) -> Iterator[int]:
    """Trip counts taken by loop ``depth`` across outer iterations."""

    def walk(d: int, env: Dict[str, int]) -> Iterator[int]:
        loop = statement.loops[d]
        lower = _expr_eval(loop.lower, env)
        upper = _expr_eval(loop.upper, env)
        if d == depth:
            span = max(0, upper - lower)
            yield (span + loop.step - 1) // loop.step if span else 0
            return
        for value in range(lower, upper, loop.step):
            env[loop.iv] = value
            yield from walk(d + 1, env)
        env.pop(loop.iv, None)

    if depth < len(statement.loops):
        yield from walk(0, {})


def iteration_count(spec: KernelSpec) -> int:
    """Total statement instances across the spec's domains."""
    total = 0
    for statement in spec.statements:
        total += sum(1 for _ in _domain_points(statement))
    return total


def fit_buffers(spec: KernelSpec) -> KernelSpec:
    """Re-size every buffer to exactly cover its accesses.

    Shapes become ``max subscript value + 1`` per dimension (at least 1),
    evaluated by brute force over the tiny iteration domains.  Called by
    the generator and after every shrinking transformation so shrunk
    kernels stay in-bounds and keep their partial-line character.
    """
    maxima: Dict[str, List[int]] = {
        buffer.name: [0] * len(buffer.shape) for buffer in spec.buffers
    }
    for statement in spec.statements:
        subscripted = [
            (access, maxima[access.buffer]) for access in statement.accesses
        ]
        for env, _ in _domain_points(statement):
            for access, dims in subscripted:
                for axis, subscript in enumerate(access.subscripts):
                    value = _expr_eval(subscript, env)
                    if value > dims[axis]:
                        dims[axis] = value
    buffers = tuple(
        BufferSpec(
            buffer.name,
            tuple(top + 1 for top in maxima[buffer.name]),
            buffer.dtype,
        )
        for buffer in spec.buffers
    )
    return KernelSpec(spec.name, buffers, spec.statements, spec.levels, spec.seed)


# ---------------------------------------------------------------------------
# Spec -> IR module / cache hierarchy
# ---------------------------------------------------------------------------


def build_module(spec: KernelSpec) -> Module:
    """Materialize the spec as an affine IR module."""
    module = Module(spec.name)
    buffers = {
        b.name: module.add_buffer(b.name, b.shape, _DTYPES[b.dtype])
        for b in spec.buffers
    }
    builder = AffineBuilder(module)
    for statement in spec.statements:

        def body(depth: int) -> None:
            if depth < len(statement.loops):
                loop = statement.loops[depth]
                with builder.loop(
                    loop.iv,
                    expr_to_linexpr(loop.lower),
                    expr_to_linexpr(loop.upper),
                    step=loop.step,
                ):
                    body(depth + 1)
                return
            value = builder.const(1.0)
            for access in statement.accesses:
                indices = [expr_to_linexpr(s) for s in access.subscripts]
                if access.is_write:
                    builder.store(value, buffers[access.buffer], indices)
                else:
                    builder.load(buffers[access.buffer], indices)

        body(0)
    return module


def build_hierarchy(spec: KernelSpec) -> CacheHierarchy:
    return CacheHierarchy(
        tuple(
            CacheLevelConfig(
                level.name,
                level.size_bytes,
                level.line_bytes,
                level.associativity,
            )
            for level in spec.levels
        )
    )


def rename_dims(spec: KernelSpec, prefix: str = "x") -> KernelSpec:
    """The same kernel with every induction variable renamed.

    Used by the OI-invariance metamorphic check: dimension names carry no
    semantics, so every engine must produce identical counters.
    """
    mapping: Dict[str, str] = {}
    for statement in spec.statements:
        for loop in statement.loops:
            if loop.iv not in mapping:
                mapping[loop.iv] = f"{prefix}{len(mapping)}"
    statements = tuple(
        StatementSpec(
            loops=tuple(
                LoopSpec(
                    mapping[loop.iv],
                    _expr_rename(loop.lower, mapping),
                    _expr_rename(loop.upper, mapping),
                    loop.step,
                )
                for loop in statement.loops
            ),
            accesses=tuple(
                AccessSpec(
                    access.buffer,
                    access.is_write,
                    tuple(
                        _expr_rename(s, mapping) for s in access.subscripts
                    ),
                )
                for access in statement.accesses
            ),
        )
        for statement in spec.statements
    )
    return KernelSpec(
        spec.name, spec.buffers, statements, spec.levels, spec.seed
    )


# ---------------------------------------------------------------------------
# JSON round-trip
# ---------------------------------------------------------------------------


def _expr_to_data(expr: ExprData) -> dict:
    return {"const": expr[0], "coeffs": dict(expr[1])}


def _expr_from_data(data: dict) -> ExprData:
    return (
        int(data["const"]),
        tuple(sorted((str(n), int(c)) for n, c in data["coeffs"].items())),
    )


def spec_to_json(spec: KernelSpec) -> str:
    payload = {
        "name": spec.name,
        "seed": spec.seed,
        "buffers": [
            {"name": b.name, "shape": list(b.shape), "dtype": b.dtype}
            for b in spec.buffers
        ],
        "statements": [
            {
                "loops": [
                    {
                        "iv": loop.iv,
                        "lower": _expr_to_data(loop.lower),
                        "upper": _expr_to_data(loop.upper),
                        "step": loop.step,
                    }
                    for loop in statement.loops
                ],
                "accesses": [
                    {
                        "buffer": access.buffer,
                        "is_write": access.is_write,
                        "subscripts": [
                            _expr_to_data(s) for s in access.subscripts
                        ],
                    }
                    for access in statement.accesses
                ],
            }
            for statement in spec.statements
        ],
        "levels": [
            {
                "name": level.name,
                "size_bytes": level.size_bytes,
                "line_bytes": level.line_bytes,
                "associativity": level.associativity,
            }
            for level in spec.levels
        ],
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def spec_from_json(text: str) -> KernelSpec:
    data = json.loads(text)
    return KernelSpec(
        name=str(data["name"]),
        seed=data.get("seed"),
        buffers=tuple(
            BufferSpec(b["name"], tuple(int(d) for d in b["shape"]), b["dtype"])
            for b in data["buffers"]
        ),
        statements=tuple(
            StatementSpec(
                loops=tuple(
                    LoopSpec(
                        loop["iv"],
                        _expr_from_data(loop["lower"]),
                        _expr_from_data(loop["upper"]),
                        int(loop.get("step", 1)),
                    )
                    for loop in statement["loops"]
                ),
                accesses=tuple(
                    AccessSpec(
                        access["buffer"],
                        bool(access["is_write"]),
                        tuple(
                            _expr_from_data(s) for s in access["subscripts"]
                        ),
                    )
                    for access in statement["accesses"]
                ),
            )
            for statement in data["statements"]
        ),
        levels=tuple(
            LevelSpec(
                level["name"],
                int(level["size_bytes"]),
                int(level["line_bytes"]),
                int(level["associativity"]),
            )
            for level in data["levels"]
        ),
    )


def spec_to_pytest(spec: KernelSpec, reason: str = "") -> str:
    """A standalone paste-able pytest module reproducing the case.

    The spec travels as embedded JSON (robust to formatting) and the test
    body re-runs the full differential oracle, so the repro fails for
    exactly the reason the fuzzer found.
    """
    blob = spec_to_json(spec)
    header = f"# repro for: {reason}\n" if reason else ""
    return f'''"""Auto-generated differential-verification repro.

{header}Regenerate with ``python -m repro.cli fuzz`` (see docs/TESTING.md).
"""

from repro.verify import run_case, spec_from_json

SPEC_JSON = r\'\'\'
{blob}
\'\'\'


def test_engines_agree():
    result = run_case(spec_from_json(SPEC_JSON))
    assert result.ok, "\\n".join(str(d) for d in result.disagreements)
'''


# ---------------------------------------------------------------------------
# Random sampling
# ---------------------------------------------------------------------------

#: Loop extents stay small so the reference (pure Python) engine is never
#: the bottleneck; adversarial behaviour comes from geometry, not scale.
_MAX_EXTENT = 8
_MAX_DEPTH = 3
_MAX_STATEMENTS = 3
_MAX_ACCESSES = 4


def _sample_hierarchy(rng: random.Random, case_name: str) -> Tuple[LevelSpec, ...]:
    line_bytes = rng.choice((16, 32, 64))
    depth = rng.choice((1, 1, 2, 2, 3))
    fully_associative = rng.random() < 0.35
    levels: List[LevelSpec] = []
    lines = rng.choice((2, 4, 8))
    for index in range(depth):
        if fully_associative:
            assoc = lines
        else:
            assoc = rng.choice([a for a in (1, 2, 4) if a <= lines])
        levels.append(
            LevelSpec(
                name=f"L{index + 1}",
                size_bytes=lines * line_bytes,
                line_bytes=line_bytes,
                associativity=assoc,
            )
        )
        lines *= rng.choice((2, 4))
    return tuple(levels)


def _sample_subscript(
    rng: random.Random, ivs: Sequence[str], allow_const: bool = True
) -> ExprData:
    coeffs: Dict[str, int] = {}
    for iv in ivs:
        roll = rng.random()
        if roll < 0.45:
            coeffs[iv] = 1
        elif roll < 0.60:
            coeffs[iv] = rng.choice((2, 3))
    const = rng.choice((0, 0, 0, 1, 2, 3)) if allow_const else 0
    return _expr(const, **coeffs)


def generate_spec(seed: int, index: int = 0) -> KernelSpec:
    """Deterministically sample one verification case.

    ``(seed, index)`` fully determines the result; a fuzz campaign is the
    sequence ``generate_spec(seed, 0), generate_spec(seed, 1), ...``.
    """
    rng = random.Random(f"repro.verify:{seed}:{index}")
    levels = _sample_hierarchy(rng, f"case{index}")

    buffer_count = rng.choice((1, 2, 2, 3))
    buffers = []
    for b in range(buffer_count):
        rank = rng.choice((1, 2, 2, 3))
        dtype = rng.choice(("f64", "f64", "f32"))
        buffers.append(BufferSpec(f"B{b}", (1,) * rank, dtype))

    iv_counter = 0
    statements: List[StatementSpec] = []
    for _ in range(rng.choice((1, 1, 2, _MAX_STATEMENTS))):
        depth = rng.choice((1, 2, 2, _MAX_DEPTH))
        loops: List[LoopSpec] = []
        outer: List[str] = []
        for _ in range(depth):
            iv = f"i{iv_counter}"
            iv_counter += 1
            lower: ExprData = _expr(rng.choice((0, 0, 0, 1)))
            extent = rng.randint(1, _MAX_EXTENT)
            upper: ExprData = _expr(lower[0] + extent)
            if outer and rng.random() < 0.3:
                # Triangular / trapezoidal: a bound (or both) is affine
                # in one outer iv.  Lower-triangular (lower = outer iv)
                # can yield empty domains when the outer value passes the
                # constant upper bound -- kept on purpose; the banded
                # form (both bounds riding the same anchor) walks a
                # constant-width trapezoidal wavefront.
                anchor = rng.choice(outer)
                roll = rng.random()
                if roll < 0.35:
                    lower = _expr(rng.choice((0, 0, 1)), **{anchor: 1})
                    upper = _expr(rng.randint(1, _MAX_EXTENT))
                elif roll < 0.7:
                    lower = _expr(rng.choice((0, 1)))
                    upper = _expr(rng.choice((0, 1, 2, 3)), **{anchor: 1})
                else:
                    lower = _expr(0, **{anchor: 1})
                    upper = _expr(rng.randint(1, 4), **{anchor: 1})
            step = rng.choice((1, 1, 1, 2))
            loops.append(LoopSpec(iv, lower, upper, step))
            outer.append(iv)
        accesses: List[AccessSpec] = []
        for position in range(rng.randint(1, _MAX_ACCESSES)):
            buffer = rng.choice(buffers)
            subscripts = []
            ivs = list(outer)
            if rng.random() < 0.3:
                ivs.reverse()  # transposed walk
            for _axis in range(len(buffer.shape)):
                subscripts.append(_sample_subscript(rng, ivs))
            is_write = rng.random() < (0.5 if position else 0.25)
            accesses.append(
                AccessSpec(buffer.name, is_write, tuple(subscripts))
            )
        statements.append(StatementSpec(tuple(loops), tuple(accesses)))

    spec = KernelSpec(
        name=f"fuzz_{seed}_{index}",
        buffers=tuple(buffers),
        statements=tuple(statements),
        levels=levels,
        seed=seed,
    )
    return fit_buffers(spec)
