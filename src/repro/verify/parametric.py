"""Size-sweep differential fuzzing of parametric family artifacts.

The concrete fuzzer (:mod:`repro.verify.harness`) checks that every CM
engine agrees on one kernel at one size.  This module checks the layer
above: that a :class:`~repro.cache.parametric_model.ParametricCharacterization`
built from a few sampled sizes of a kernel *family* answers every size
it claims to cover with exactly the counters the engines would have
computed.

A :class:`ParametricSpec` is a :class:`~repro.verify.generator.KernelSpec`
template whose loop *bounds* may reference named size parameters
(subscripts stay induction-variable-only, matching the generator's
affine class), plus base values for those parameters.
:func:`instantiate` substitutes concrete sizes into the bounds and
re-fits the buffer shapes, yielding an ordinary concrete spec.

:func:`run_parametric_case` is the oracle.  It walks the all-ones ray
``sizes(t) = base + t`` through the family:

* at each *sample* t it engine-diffs reference/fast/symbolic on the
  instantiated kernel and folds the agreed counters into a family
  artifact;
* after :meth:`try_fit` it *probes* a held-out lattice size: when the
  artifact serves it from the chart, the served vector must equal a
  fresh engine run bit-for-bit (an artifact that declines to answer is
  fine -- non-polynomial families legitimately never fit -- but a wrong
  answer is the soundness bug this fuzzer hunts);
* degenerate edges (all sizes zero / all sizes one, typically an empty
  or near-empty iteration domain) are engine-diffed too, and any
  artifact answer there must also match.

Failures are shrunk by a greedy parametric shrinker (the concrete
shrinker cannot be reused: its buffer re-fitting evaluates bounds with
unbound parameter names) and written out as replayable JSON + pytest
repros, exactly like the concrete harness.
"""

from __future__ import annotations

import hashlib
import json
import random
import time
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable, Dict, Iterator, List, Mapping, Optional, Tuple

from repro.cache import (
    SymbolicUnsupported,
    generate_trace,
    polyufc_cm,
    symbolic_cm,
)
from repro.cache.parametric_model import (
    FamilyFitError,
    ParametricCharacterization,
)
from repro.verify.generator import (
    AccessSpec,
    BufferSpec,
    ExprData,
    KernelSpec,
    LoopSpec,
    StatementSpec,
    _expr,
    _sample_hierarchy,
    _sample_subscript,
    build_hierarchy,
    build_module,
    fit_buffers,
    spec_from_json,
    spec_to_json,
)
from repro.verify.oracle import Disagreement, _diff_counters

#: Ray coordinates sampled into the family artifact.  Dense over the low
#: lattice plus one far point, so the fit window spans [0, 7] and the
#: held-out probe below sits strictly inside validated territory.
SAMPLE_TS = (0, 1, 2, 3, 4, 5, 7)

#: Ray coordinates never sampled: the artifact may only answer them from
#: its fitted chart, and that answer is diffed against fresh engine runs.
PROBE_TS = (6,)


@dataclass(frozen=True)
class ParametricSpec:
    """A size-parameterized kernel family.

    ``params`` binds each parameter name to its base value (sizes along
    the verification ray are ``base + t``); ``template`` is a concrete
    :class:`KernelSpec` whose loop-bound expressions may carry
    coefficients on the parameter names.
    """

    name: str
    params: Tuple[Tuple[str, int], ...]
    template: KernelSpec
    seed: Optional[int] = None

    @property
    def param_names(self) -> Tuple[str, ...]:
        return tuple(sorted(name for name, _ in self.params))

    def base_sizes(self) -> Dict[str, int]:
        return dict(self.params)

    def fingerprint(self) -> str:
        return hashlib.sha256(
            pspec_to_json(self).encode()
        ).hexdigest()[:12]


def _expr_subst_params(
    expr: ExprData, sizes: Mapping[str, int]
) -> ExprData:
    """Fold parameter coefficients into the constant term."""
    const, coeffs = expr
    kept: Dict[str, int] = {}
    for name, coeff in coeffs:
        if name in sizes:
            const += coeff * sizes[name]
        else:
            kept[name] = coeff
    return _expr(const, **kept)


def instantiate(
    pspec: ParametricSpec, sizes: Mapping[str, int]
) -> KernelSpec:
    """The concrete kernel at ``sizes``, with buffers re-fitted.

    Raises ``ValueError`` when ``sizes`` does not bind exactly the
    family's parameters -- a template bound referencing an unbound name
    would otherwise crash deep inside domain enumeration.
    """
    if set(sizes) != set(self_names := pspec.param_names):
        raise ValueError(
            f"sizes must bind exactly {self_names}, got {sorted(sizes)}"
        )
    template = pspec.template
    statements = tuple(
        StatementSpec(
            loops=tuple(
                LoopSpec(
                    loop.iv,
                    _expr_subst_params(loop.lower, sizes),
                    _expr_subst_params(loop.upper, sizes),
                    loop.step,
                )
                for loop in statement.loops
            ),
            accesses=statement.accesses,
        )
        for statement in template.statements
    )
    suffix = "_".join(
        f"{name}{sizes[name]}" for name in pspec.param_names
    )
    concrete = KernelSpec(
        name=f"{pspec.name}__{suffix}",
        buffers=template.buffers,
        statements=statements,
        levels=template.levels,
        seed=pspec.seed,
    )
    return fit_buffers(concrete)


@dataclass
class ParametricCaseResult:
    """Everything the size-sweep oracle learned about one family."""

    pspec: ParametricSpec
    disagreements: List[Disagreement] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    chart_fitted: bool = False
    probes_served: int = 0
    sizes_checked: List[Dict[str, int]] = field(default_factory=list)
    symbolic_supported_sizes: int = 0

    @property
    def ok(self) -> bool:
        return not self.disagreements


def _unit_vector(cm, fields: Tuple[str, ...]) -> Tuple[int, ...]:
    """One CM result in family-artifact field order.

    ``omega`` follows the oracle's synthetic convention (2 flops per
    access, see :func:`repro.verify.oracle._oi_and_verdict`) so the
    artifact's omega polynomial is exercised alongside the counters.
    """
    values = {
        "omega": 2 * cm.total_accesses,
        "total_accesses": cm.total_accesses,
        "threads": cm.threads,
    }
    for index, level in enumerate(cm.counters()):
        values[f"level{index}_accesses"] = level.accesses
        values[f"level{index}_cold_misses"] = level.cold_misses
        values[f"level{index}_capacity_conflict_misses"] = (
            level.capacity_conflict_misses
        )
    return tuple(int(values[name]) for name in fields)


def _engine_battery(concrete: KernelSpec, label: str, out: List[Disagreement]):
    """reference-vs-fast-vs-symbolic diff at one size; returns
    ``(reference_cm, symbolic_supported)``."""
    module = build_module(concrete)
    hierarchy = build_hierarchy(concrete)
    trace = generate_trace(module)
    reference = polyufc_cm(trace, hierarchy, engine="reference")
    fast = polyufc_cm(trace, hierarchy, engine="fast")
    _diff_counters(
        f"engine-diff@{label}",
        "reference",
        reference.counters(),
        "fast",
        fast.counters(),
        out,
    )
    supported = False
    try:
        symbolic = symbolic_cm(module, hierarchy=hierarchy)
        supported = True
    except SymbolicUnsupported:
        symbolic = None
    if symbolic is not None:
        _diff_counters(
            f"engine-diff@{label}",
            "reference",
            reference.counters(),
            "symbolic",
            symbolic.counters(),
            out,
        )
    return reference, supported


def run_parametric_case(pspec: ParametricSpec) -> ParametricCaseResult:
    """Run the full size-sweep battery on one kernel family."""
    result = ParametricCaseResult(pspec)
    base = pspec.base_sizes()
    template = pspec.template
    artifact = ParametricCharacterization(
        param_names=pspec.param_names,
        unit_names=("kernel",),
        level_names=tuple(level.name for level in template.levels),
        line_bytes=template.levels[0].line_bytes,
    )
    fields = artifact.fields
    invariants = artifact.invariants()

    def sizes_at(t: int) -> Dict[str, int]:
        return {name: value + t for name, value in base.items()}

    def battery(sizes: Dict[str, int], label: str):
        result.sizes_checked.append(dict(sizes))
        try:
            concrete = instantiate(pspec, sizes)
            reference, supported = _engine_battery(
                concrete, label, result.disagreements
            )
        except Exception as exc:  # crashes are findings, not aborts
            result.disagreements.append(
                Disagreement(f"crash@{label}", f"{type(exc).__name__}: {exc}")
            )
            return None
        if supported:
            result.symbolic_supported_sizes += 1
        return reference

    # --- sample the ray into the artifact ------------------------------
    result.checks_run.append("family-sample")
    for t in SAMPLE_TS:
        sizes = sizes_at(t)
        reference = battery(sizes, f"t{t}")
        if reference is None:
            continue
        try:
            artifact.add_sample(
                sizes, [_unit_vector(reference, fields)], invariants
            )
        except FamilyFitError as exc:
            result.disagreements.append(
                Disagreement(
                    "family-sample",
                    f"engine-agreed sample at {sizes} rejected: {exc}",
                )
            )

    # --- sampled sizes must round-trip through evaluate ----------------
    result.checks_run.append("family-roundtrip")
    for t in (SAMPLE_TS[0], SAMPLE_TS[-1]):
        sizes = sizes_at(t)
        answer = artifact.evaluate(sizes)
        if answer is None or answer.source != "sample":
            result.disagreements.append(
                Disagreement(
                    "family-roundtrip",
                    f"stored sample at {sizes} not served back "
                    f"(got {answer!r})",
                )
            )

    # --- fit, then probe a never-sampled lattice size ------------------
    result.checks_run.append("family-chart")
    result.chart_fitted = artifact.try_fit()
    for t in PROBE_TS:
        sizes = sizes_at(t)
        answer = artifact.evaluate(sizes)
        if answer is None:
            continue  # declining to answer is always sound
        reference = battery(sizes, f"probe-t{t}")
        if reference is None:
            continue
        expected = _unit_vector(reference, fields)
        if answer.units != (expected,):
            result.disagreements.append(
                Disagreement(
                    "family-chart",
                    f"artifact ({answer.source}) served {answer.units[0]} "
                    f"at {sizes} but engines computed {expected}",
                )
            )
        else:
            result.probes_served += 1

    # --- degenerate / empty-domain edges -------------------------------
    result.checks_run.append("family-degenerate")
    for edge in (0, 1):
        sizes = {name: edge for name in pspec.param_names}
        reference = battery(sizes, f"edge{edge}")
        if reference is None:
            continue
        answer = artifact.evaluate(sizes)
        if answer is not None:
            expected = _unit_vector(reference, fields)
            if answer.units != (expected,):
                result.disagreements.append(
                    Disagreement(
                        "family-degenerate",
                        f"artifact ({answer.source}) served "
                        f"{answer.units[0]} at degenerate {sizes} but "
                        f"engines computed {expected}",
                    )
                )
    return result


# ---------------------------------------------------------------------------
# JSON round-trip + pytest repro
# ---------------------------------------------------------------------------


def pspec_to_json(pspec: ParametricSpec) -> str:
    payload = {
        "kind": "parametric",
        "name": pspec.name,
        "seed": pspec.seed,
        "params": {name: value for name, value in pspec.params},
        "template": json.loads(spec_to_json(pspec.template)),
    }
    return json.dumps(payload, indent=2, sort_keys=True)


def pspec_from_json(text: str) -> ParametricSpec:
    data = json.loads(text)
    if data.get("kind") != "parametric":
        raise ValueError(
            "not a parametric spec (missing kind='parametric')"
        )
    return ParametricSpec(
        name=str(data["name"]),
        params=tuple(
            sorted((str(n), int(v)) for n, v in data["params"].items())
        ),
        template=spec_from_json(json.dumps(data["template"])),
        seed=data.get("seed"),
    )


def is_parametric_json(text: str) -> bool:
    """Cheap corpus dispatch: parametric files carry ``kind`` +
    ``params``; concrete :func:`spec_to_json` files carry neither."""
    try:
        data = json.loads(text)
    except ValueError:
        return False
    return (
        isinstance(data, dict)
        and data.get("kind") == "parametric"
        and "params" in data
    )


def pspec_to_pytest(pspec: ParametricSpec, reason: str = "") -> str:
    """A standalone paste-able pytest module reproducing the family."""
    blob = pspec_to_json(pspec)
    header = f"# repro for: {reason}\n" if reason else ""
    return f'''"""Auto-generated parametric size-sweep repro.

{header}Regenerate with ``python -m repro.cli fuzz --parametric``
(see docs/TESTING.md).
"""

from repro.verify import pspec_from_json, run_parametric_case

PSPEC_JSON = r\'\'\'
{blob}
\'\'\'


def test_family_agrees_at_every_size():
    result = run_parametric_case(pspec_from_json(PSPEC_JSON))
    assert result.ok, "\\n".join(str(d) for d in result.disagreements)
'''


# ---------------------------------------------------------------------------
# Random sampling
# ---------------------------------------------------------------------------

_PARAM_NAMES = ("n", "m")


def generate_parametric_spec(seed: int, index: int = 0) -> ParametricSpec:
    """Deterministically sample one kernel family.

    ``(seed, index)`` fully determines the result.  Loop bounds mix
    parameter-affine uppers (rectangular sweeps), outer-iv anchors
    (triangular / trapezoidal wavefronts) and parameter-triangular
    combinations (lower rides an outer iv while the upper rides a size
    parameter, the trisolv shape); at least one bound always references
    a parameter so the family is never size-constant by construction.
    """
    rng = random.Random(f"repro.verify.parametric:{seed}:{index}")
    levels = _sample_hierarchy(rng, f"family{index}")

    param_count = rng.choice((1, 1, 2))
    params = tuple(
        (name, rng.randint(2, 4))
        for name in _PARAM_NAMES[:param_count]
    )
    param_names = [name for name, _ in params]

    buffer_count = rng.choice((1, 2, 2))
    buffers = []
    for b in range(buffer_count):
        rank = rng.choice((1, 2, 2))
        dtype = rng.choice(("f64", "f64", "f32"))
        buffers.append(BufferSpec(f"B{b}", (1,) * rank, dtype))

    iv_counter = 0
    statements: List[StatementSpec] = []
    statement_count = rng.choice((1, 1, 2))
    for s in range(statement_count):
        depth = rng.choice((1, 2, 2))
        loops: List[LoopSpec] = []
        outer: List[str] = []
        for d in range(depth):
            iv = f"i{iv_counter}"
            iv_counter += 1
            lower: ExprData = _expr(rng.choice((0, 0, 1)))
            roll = rng.random()
            force_param = s == 0 and d == 0
            if force_param or roll < 0.55:
                param = rng.choice(param_names)
                upper: ExprData = _expr(
                    rng.choice((0, 1, 2)), **{param: 1}
                )
            elif outer and roll < 0.70:
                anchor = rng.choice(outer)
                upper = _expr(rng.choice((1, 2)), **{anchor: 1})
            elif outer and roll < 0.85:
                # trisolv shape: triangular against a parametric upper.
                anchor = rng.choice(outer)
                param = rng.choice(param_names)
                lower = _expr(0, **{anchor: 1})
                upper = _expr(0, **{param: 1})
            else:
                upper = _expr(lower[0] + rng.randint(1, 4))
            step = rng.choice((1, 1, 1, 2))
            loops.append(LoopSpec(iv, lower, upper, step))
            outer.append(iv)
        accesses: List[AccessSpec] = []
        for position in range(rng.randint(1, 3)):
            buffer = rng.choice(buffers)
            ivs = list(outer)
            if rng.random() < 0.3:
                ivs.reverse()
            subscripts = tuple(
                _sample_subscript(rng, ivs) for _axis in buffer.shape
            )
            is_write = rng.random() < (0.5 if position else 0.25)
            accesses.append(AccessSpec(buffer.name, is_write, subscripts))
        statements.append(StatementSpec(tuple(loops), tuple(accesses)))

    template = KernelSpec(
        name=f"pfuzz_{seed}_{index}",
        buffers=tuple(buffers),
        statements=tuple(statements),
        levels=levels,
        seed=seed,
    )
    return ParametricSpec(
        name=template.name,
        params=params,
        template=template,
        seed=seed,
    )


# ---------------------------------------------------------------------------
# Shrinking
# ---------------------------------------------------------------------------


def _with_template(
    pspec: ParametricSpec, template: KernelSpec
) -> ParametricSpec:
    return replace(pspec, template=template)


def _map_bounds(
    template: KernelSpec,
    transform: Callable[[int, int, str, ExprData], ExprData],
) -> KernelSpec:
    """Rebuild the template with ``transform`` applied to every bound."""
    statements = tuple(
        StatementSpec(
            loops=tuple(
                LoopSpec(
                    loop.iv,
                    transform(si, li, "lower", loop.lower),
                    transform(si, li, "upper", loop.upper),
                    loop.step,
                )
                for li, loop in enumerate(statement.loops)
            ),
            accesses=statement.accesses,
        )
        for si, statement in enumerate(template.statements)
    )
    return KernelSpec(
        template.name,
        template.buffers,
        statements,
        template.levels,
        template.seed,
    )


def _shrink_candidates(
    pspec: ParametricSpec,
) -> Iterator[ParametricSpec]:
    """Structurally smaller variants, most aggressive first."""
    template = pspec.template
    base = pspec.base_sizes()

    # Drop a whole statement.
    if len(template.statements) > 1:
        for skip in range(len(template.statements)):
            statements = tuple(
                s for i, s in enumerate(template.statements) if i != skip
            )
            yield _with_template(
                pspec,
                KernelSpec(
                    template.name,
                    template.buffers,
                    statements,
                    template.levels,
                    template.seed,
                ),
            )

    # Drop one access from a multi-access statement.
    for si, statement in enumerate(template.statements):
        if len(statement.accesses) <= 1:
            continue
        for skip in range(len(statement.accesses)):
            accesses = tuple(
                a for i, a in enumerate(statement.accesses) if i != skip
            )
            statements = tuple(
                StatementSpec(s.loops, accesses) if i == si else s
                for i, s in enumerate(template.statements)
            )
            yield _with_template(
                pspec,
                KernelSpec(
                    template.name,
                    template.buffers,
                    statements,
                    template.levels,
                    template.seed,
                ),
            )

    # Drop the deepest cache level.
    if len(template.levels) > 1:
        yield _with_template(
            pspec,
            KernelSpec(
                template.name,
                template.buffers,
                template.statements,
                template.levels[:-1],
                template.seed,
            ),
        )

    # Halve a parameter's base value toward 1.
    for name, value in pspec.params:
        smaller = max(1, value // 2)
        if smaller != value:
            params = tuple(
                (n, smaller if n == name else v) for n, v in pspec.params
            )
            yield replace(pspec, params=params)

    # De-parameterize one bound (freeze it at the base sizes).
    for si, statement in enumerate(template.statements):
        for li, loop in enumerate(statement.loops):
            for which, expr in (("lower", loop.lower), ("upper", loop.upper)):
                if not any(n in base for n, _ in expr[1]):
                    continue
                frozen = _expr_subst_params(expr, base)

                def freeze(s, l, w, e, _s=si, _l=li, _w=which, _f=frozen):
                    if (s, l, w) == (_s, _l, _w):
                        return _f
                    return e

                yield _with_template(pspec, _map_bounds(template, freeze))

    # Shrink a bound's constant offset toward zero.
    for si, statement in enumerate(template.statements):
        for li, loop in enumerate(statement.loops):
            for which, expr in (("lower", loop.lower), ("upper", loop.upper)):
                const, coeffs = expr
                if const == 0:
                    continue
                shrunk = (const // 2 if const > 0 else 0, coeffs)

                def trim(s, l, w, e, _s=si, _l=li, _w=which, _f=shrunk):
                    if (s, l, w) == (_s, _l, _w):
                        return _f
                    return e

                yield _with_template(pspec, _map_bounds(template, trim))


def shrink_parametric(
    pspec: ParametricSpec,
    still_fails: Callable[[ParametricSpec], bool],
    max_evaluations: int = 200,
) -> ParametricSpec:
    """Greedy descent: take the first smaller variant that still fails.

    ``still_fails`` is typically "reproduces a disagreement on the same
    check"; ``max_evaluations`` bounds the oracle budget (each
    evaluation is a full size sweep, an order of magnitude costlier than
    a concrete-shrinker probe).
    """
    current = pspec
    seen = {current.fingerprint()}
    evaluations = 0
    improved = True
    while improved and evaluations < max_evaluations:
        improved = False
        for candidate in _shrink_candidates(current):
            key = candidate.fingerprint()
            if key in seen:
                continue
            seen.add(key)
            evaluations += 1
            if still_fails(candidate):
                current = candidate
                improved = True
                break
            if evaluations >= max_evaluations:
                break
    return current


# ---------------------------------------------------------------------------
# Campaign driver + corpus replay
# ---------------------------------------------------------------------------

ParametricOracle = Callable[[ParametricSpec], ParametricCaseResult]


@dataclass
class ParametricFailure:
    """One family-level disagreement, with its shrunk repro."""

    index: int
    original: ParametricSpec
    shrunk: ParametricSpec
    result: ParametricCaseResult
    json_path: Optional[Path] = None
    pytest_path: Optional[Path] = None

    def reason(self) -> str:
        return "; ".join(str(d) for d in self.result.disagreements)


@dataclass
class ParametricFuzzStats:
    """Summary of one parametric fuzz campaign."""

    seed: int
    cases_run: int = 0
    charts_fitted: int = 0
    probes_served: int = 0
    elapsed_s: float = 0.0
    failures: List[ParametricFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def write_parametric_failure(
    failure: ParametricFailure, artifacts_dir: Path
) -> None:
    """Persist the shrunk JSON family + pytest repro for one failure."""
    artifacts_dir.mkdir(parents=True, exist_ok=True)
    shrunk = failure.shrunk
    stem = (
        f"pfuzz_seed{shrunk.seed}_case{failure.index}_"
        f"{shrunk.fingerprint()}"
    )
    json_path = artifacts_dir / f"{stem}.json"
    pytest_path = artifacts_dir / f"test_{stem}.py"
    json_path.write_text(pspec_to_json(shrunk) + "\n")
    pytest_path.write_text(pspec_to_pytest(shrunk, failure.reason()))
    failure.json_path = json_path
    failure.pytest_path = pytest_path


def fuzz_parametric(
    seed: int,
    time_budget_s: float = 60.0,
    max_cases: Optional[int] = None,
    artifacts_dir: Optional[Path] = None,
    oracle: ParametricOracle = run_parametric_case,
    log: Optional[Callable[[str], None]] = None,
) -> ParametricFuzzStats:
    """Run one seeded size-sweep campaign: generate, check, shrink.

    Mirrors :func:`repro.verify.harness.fuzz`; the case sequence is
    fully determined by ``seed``.
    """
    stats = ParametricFuzzStats(seed=seed)
    say = log or (lambda _msg: None)
    started = time.monotonic()
    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if time.monotonic() - started >= time_budget_s:
            break
        pspec = generate_parametric_spec(seed, index)
        result = oracle(pspec)
        stats.cases_run += 1
        if result.chart_fitted:
            stats.charts_fitted += 1
        stats.probes_served += result.probes_served
        if not result.ok:
            say(
                f"family {index}: {len(result.disagreements)} "
                f"disagreement(s); shrinking"
            )
            failing_checks = {d.check for d in result.disagreements}

            def still_fails(candidate: ParametricSpec) -> bool:
                verdict = oracle(candidate)
                return any(
                    d.check in failing_checks
                    for d in verdict.disagreements
                )

            shrunk = shrink_parametric(pspec, still_fails)
            failure = ParametricFailure(
                index, pspec, shrunk, oracle(shrunk)
            )
            if artifacts_dir is not None:
                write_parametric_failure(failure, artifacts_dir)
                say(
                    f"family {index}: repro written to "
                    f"{failure.json_path}"
                )
            stats.failures.append(failure)
        index += 1
    stats.elapsed_s = time.monotonic() - started
    return stats


def replay_parametric_corpus(
    corpus_dir: Path,
    oracle: ParametricOracle = run_parametric_case,
) -> List[Tuple[Path, ParametricCaseResult]]:
    """Re-run every parametric ``*.json`` under ``corpus_dir``.

    Concrete corpus files (no ``kind='parametric'`` marker) are skipped
    so both replayers can share one directory.
    """
    results: List[Tuple[Path, ParametricCaseResult]] = []
    for path in sorted(corpus_dir.glob("*.json")):
        text = path.read_text()
        if not is_parametric_json(text):
            continue
        results.append((path, oracle(pspec_from_json(text))))
    return results
