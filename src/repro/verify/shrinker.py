"""Greedy spec shrinker: minimize a failing differential case.

Given a :class:`~repro.verify.generator.KernelSpec` and a *failure
predicate* (``predicate(spec) -> True`` while the bug still reproduces),
:func:`shrink` repeatedly applies structural reductions and keeps every
candidate on which the predicate still holds, until a fixpoint:

1. drop whole statements,
2. drop individual accesses (a statement left with no accesses is
   removed),
3. drop unused buffers and trailing cache levels,
4. collapse a loop dimension (substitute ``iv := lower`` everywhere),
5. halve loop extents,
6. normalize steps to 1, subscript constants to 0 and coefficients to 1.

Transformations need not preserve kernel semantics -- only the
predicate matters -- so the shrinker is free to take any reduction the
bug survives.  After every structural change the buffers are re-fitted
(:func:`~repro.verify.generator.fit_buffers`) so candidates stay
in-bounds.  Passes are ordered coarse-to-fine: removing a statement
shrinks the search space for every later pass.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterator, List, Optional, Tuple

from repro.verify.generator import (
    AccessSpec,
    ExprData,
    KernelSpec,
    LoopSpec,
    StatementSpec,
    fit_buffers,
)

Predicate = Callable[[KernelSpec], bool]


def _expr_subst(expr: ExprData, iv: str, replacement: ExprData) -> ExprData:
    """Substitute ``iv := replacement`` inside an affine expression."""
    const, coeffs = expr
    remaining: Dict[str, int] = dict(coeffs)
    weight = remaining.pop(iv, 0)
    new_const = const + weight * replacement[0]
    for name, coeff in replacement[1]:
        remaining[name] = remaining.get(name, 0) + weight * coeff
    return (
        new_const,
        tuple(sorted((n, c) for n, c in remaining.items() if c)),
    )


def _with_statements(
    spec: KernelSpec, statements: Tuple[StatementSpec, ...]
) -> KernelSpec:
    used = {a.buffer for s in statements for a in s.accesses}
    buffers = tuple(b for b in spec.buffers if b.name in used)
    return fit_buffers(
        KernelSpec(spec.name, buffers, statements, spec.levels, spec.seed)
    )


def _drop_statements(spec: KernelSpec) -> Iterator[KernelSpec]:
    if len(spec.statements) <= 1:
        return
    for index in range(len(spec.statements)):
        kept = tuple(
            s for i, s in enumerate(spec.statements) if i != index
        )
        yield _with_statements(spec, kept)


def _drop_accesses(spec: KernelSpec) -> Iterator[KernelSpec]:
    for s_index, statement in enumerate(spec.statements):
        for a_index in range(len(statement.accesses)):
            accesses = tuple(
                a
                for i, a in enumerate(statement.accesses)
                if i != a_index
            )
            statements = list(spec.statements)
            if accesses:
                statements[s_index] = StatementSpec(
                    statement.loops, accesses
                )
            else:
                del statements[s_index]
            if statements:
                yield _with_statements(spec, tuple(statements))


def _drop_levels(spec: KernelSpec) -> Iterator[KernelSpec]:
    # Any prefix of a valid hierarchy is valid (strict growth, shared
    # line size are hereditary); the interesting level is usually L1.
    for keep in range(len(spec.levels) - 1, 0, -1):
        yield fit_buffers(
            KernelSpec(
                spec.name,
                spec.buffers,
                spec.statements,
                spec.levels[:keep],
                spec.seed,
            )
        )


def _collapse_loops(spec: KernelSpec) -> Iterator[KernelSpec]:
    for s_index, statement in enumerate(spec.statements):
        if len(statement.loops) <= 1:
            continue
        for depth in range(len(statement.loops)):
            victim = statement.loops[depth]
            value = victim.lower
            loops = []
            for loop in statement.loops[:depth]:
                loops.append(loop)
            for loop in statement.loops[depth + 1 :]:
                loops.append(
                    LoopSpec(
                        loop.iv,
                        _expr_subst(loop.lower, victim.iv, value),
                        _expr_subst(loop.upper, victim.iv, value),
                        loop.step,
                    )
                )
            accesses = tuple(
                AccessSpec(
                    a.buffer,
                    a.is_write,
                    tuple(
                        _expr_subst(s, victim.iv, value)
                        for s in a.subscripts
                    ),
                )
                for a in statement.accesses
            )
            statements = list(spec.statements)
            statements[s_index] = StatementSpec(tuple(loops), accesses)
            yield _with_statements(spec, tuple(statements))


def _halve_extents(spec: KernelSpec) -> Iterator[KernelSpec]:
    for s_index, statement in enumerate(spec.statements):
        for l_index, loop in enumerate(statement.loops):
            upper_const, upper_coeffs = loop.upper
            if upper_coeffs:
                continue  # triangular upper: extent rides an outer iv
            lower_const = loop.lower[0] if not loop.lower[1] else 0
            span = upper_const - lower_const
            if span <= 1:
                continue
            for new_span in (span // 2, 1):
                if new_span >= span:
                    continue
                loops = list(statement.loops)
                loops[l_index] = LoopSpec(
                    loop.iv,
                    loop.lower,
                    (lower_const + new_span, ()),
                    loop.step,
                )
                statements = list(spec.statements)
                statements[s_index] = StatementSpec(
                    tuple(loops), statement.accesses
                )
                yield _with_statements(spec, tuple(statements))


def _normalize(spec: KernelSpec) -> Iterator[KernelSpec]:
    for s_index, statement in enumerate(spec.statements):
        for l_index, loop in enumerate(statement.loops):
            if loop.step != 1:
                loops = list(statement.loops)
                loops[l_index] = LoopSpec(
                    loop.iv, loop.lower, loop.upper, 1
                )
                statements = list(spec.statements)
                statements[s_index] = StatementSpec(
                    tuple(loops), statement.accesses
                )
                yield _with_statements(spec, tuple(statements))
        for a_index, access in enumerate(statement.accesses):
            for x_index, subscript in enumerate(access.subscripts):
                const, coeffs = subscript
                simplified = (
                    0,
                    tuple((name, 1) for name, _ in coeffs),
                )
                if simplified == subscript:
                    continue
                subscripts = list(access.subscripts)
                subscripts[x_index] = simplified
                accesses = list(statement.accesses)
                accesses[a_index] = AccessSpec(
                    access.buffer, access.is_write, tuple(subscripts)
                )
                statements = list(spec.statements)
                statements[s_index] = StatementSpec(
                    statement.loops, tuple(accesses)
                )
                yield _with_statements(spec, tuple(statements))


_PASSES: Tuple[Callable[[KernelSpec], Iterator[KernelSpec]], ...] = (
    _drop_statements,
    _drop_accesses,
    _drop_levels,
    _collapse_loops,
    _halve_extents,
    _normalize,
)


def shrink(
    spec: KernelSpec,
    predicate: Predicate,
    max_evaluations: int = 500,
) -> KernelSpec:
    """Greedily minimize ``spec`` while ``predicate`` keeps returning True.

    The predicate is guarded: a candidate on which it *raises* is treated
    as not reproducing (some reductions leave the supported IR class in
    ways the predicate's machinery rejects).  ``max_evaluations`` bounds
    total predicate calls so a pathological case cannot stall a fuzz
    campaign; the best spec found so far is returned regardless.
    """
    evaluations = 0

    def still_fails(candidate: KernelSpec) -> bool:
        nonlocal evaluations
        if evaluations >= max_evaluations:
            return False
        evaluations += 1
        try:
            return bool(predicate(candidate))
        except Exception:
            return False

    current = spec
    progress = True
    while progress and evaluations < max_evaluations:
        progress = False
        for produce in _PASSES:
            accepted = True
            while accepted and evaluations < max_evaluations:
                accepted = False
                for candidate in produce(current):
                    if still_fails(candidate):
                        current = candidate
                        accepted = True
                        progress = True
                        break
    return current
