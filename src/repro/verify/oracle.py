"""Differential + metamorphic oracle over the PolyUFC-CM engines.

:func:`run_case` takes one :class:`~repro.verify.generator.KernelSpec`
and runs the full check battery:

**Differential** (bit-for-bit, via the engine-comparable
:class:`~repro.cache.static_model.LevelCounters` structs):

* ``reference`` (per-access Python loop) vs ``fast`` (vectorized) vs
  ``symbolic`` (trace-free; where supported) -- per-level accesses,
  cold misses, capacity/conflict misses, plus the derived ``Q_DRAM``,
  operational intensity, and CB/BB verdict.
* the memo path (:func:`repro.cache.memo.memoized_cm_with_note`) must
  reproduce the direct numbers, set ``note`` exactly when the symbolic
  engine fell back, and hit its in-process LRU on the second call.
* a generous :class:`~repro.runtime.Deadline` and a non-truncating
  ``truncate=True`` trace must not change anything (degradation plumbing
  is a no-op when nothing degrades).
* the hardware simulator agrees on access counts at level 0 and can
  never miss fewer times than the model's cold misses (every first
  touch of a line misses an empty cache).

**Metamorphic** (properties that hold for *any* kernel in the class):

* fully-associative capacity monotonicity: doubling an FA level's
  capacity never increases its misses (LRU is a stack algorithm).
* fixed-set associativity monotonicity: at constant ``num_sets``,
  doubling associativity never increases capacity/conflict misses
  (each set is itself an LRU stack) and never changes cold misses.
* cold-miss invariance: cold misses at level 0 depend only on the line
  size, not on capacity or associativity.
* dimension-rename invariance: renaming induction variables changes no
  counter and no OI.

Note the deliberately *absent* property "FA <= SA misses at fixed
capacity": it is not a theorem (see docs/TESTING.md for the
counterexample), and asserting it would fail on correct engines.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field
from typing import List, Optional, Sequence, Tuple

from repro.cache import (
    CacheHierarchy,
    CacheLevelConfig,
    SymbolicUnsupported,
    clear_memo,
    generate_trace,
    memoized_cm_with_note,
    polyufc_cm,
    simulate_hierarchy,
    symbolic_cm,
)
from repro.cache.static_model import CacheModelResult, LevelCounters
from repro.runtime import Deadline
from repro.verify.generator import (
    KernelSpec,
    build_hierarchy,
    build_module,
    rename_dims,
)

#: Synthetic machine balance (flops/byte) for the CB/BB verdict check.
#: The exact value is irrelevant -- only that every engine lands on the
#: same side of it for the same kernel.
VERDICT_BALANCE_FPB = 0.25

#: The memo layer's structured fallback-note prefix (kept in sync with
#: :mod:`repro.cache.memo`; the oracle asserts on it).
FALLBACK_NOTE_PREFIX = "symbolic engine fell back to fast:"


@dataclass(frozen=True)
class Disagreement:
    """One oracle violation: which check failed and how."""

    check: str
    detail: str

    def __str__(self) -> str:
        return f"[{self.check}] {self.detail}"


@dataclass
class CaseResult:
    """Everything the oracle learned about one spec."""

    spec: KernelSpec
    disagreements: List[Disagreement] = field(default_factory=list)
    checks_run: List[str] = field(default_factory=list)
    symbolic_supported: Optional[bool] = None
    trace_length: int = 0

    @property
    def ok(self) -> bool:
        return not self.disagreements


def _oi_and_verdict(cm: CacheModelResult) -> Tuple[float, str]:
    """Synthetic OI + CB/BB verdict derived purely from the CM output.

    ``omega`` is a fixed function of the access count (2 flops per
    access), so any engine drift in ``Q_DRAM`` flips the derived OI and
    possibly the verdict -- exactly what the differential check wants to
    observe at the roofline layer, without needing a real platform.
    """
    omega = 2 * cm.total_accesses
    q = cm.q_dram_bytes
    oi = math.inf if q == 0 else omega / q
    verdict = "CB" if oi >= VERDICT_BALANCE_FPB else "BB"
    return oi, verdict


def _diff_counters(
    check: str,
    baseline_name: str,
    baseline: Sequence[LevelCounters],
    other_name: str,
    other: Sequence[LevelCounters],
    out: List[Disagreement],
) -> None:
    if len(baseline) != len(other):
        out.append(
            Disagreement(
                check,
                f"{baseline_name} has {len(baseline)} levels, "
                f"{other_name} has {len(other)}",
            )
        )
        return
    for left, right in zip(baseline, other):
        if left != right:
            out.append(
                Disagreement(
                    check,
                    f"level {left.name}: {baseline_name}={tuple(left)} "
                    f"{other_name}={tuple(right)}",
                )
            )


def run_case(spec: KernelSpec) -> CaseResult:
    """Run the full differential + metamorphic battery on one spec."""
    result = CaseResult(spec)
    module = build_module(spec)
    hierarchy = build_hierarchy(spec)
    trace = generate_trace(module)
    result.trace_length = len(trace)

    # --- differential: reference vs fast vs symbolic -------------------
    result.checks_run.append("engine-diff")
    reference = polyufc_cm(trace, hierarchy, engine="reference")
    fast = polyufc_cm(trace, hierarchy, engine="fast")
    _diff_counters(
        "engine-diff",
        "reference",
        reference.counters(),
        "fast",
        fast.counters(),
        result.disagreements,
    )
    symbolic: Optional[CacheModelResult] = None
    try:
        symbolic = symbolic_cm(module, hierarchy=hierarchy)
        result.symbolic_supported = True
    except SymbolicUnsupported:
        result.symbolic_supported = False
    if symbolic is not None:
        _diff_counters(
            "engine-diff",
            "reference",
            reference.counters(),
            "symbolic",
            symbolic.counters(),
            result.disagreements,
        )

    # --- differential: derived OI and CB/BB verdict ---------------------
    result.checks_run.append("oi-verdict")
    ref_oi, ref_verdict = _oi_and_verdict(reference)
    candidates = [("fast", fast)]
    if symbolic is not None:
        candidates.append(("symbolic", symbolic))
    for name, cm in candidates:
        oi, verdict = _oi_and_verdict(cm)
        if oi != ref_oi or verdict != ref_verdict:
            result.disagreements.append(
                Disagreement(
                    "oi-verdict",
                    f"reference OI={ref_oi} ({ref_verdict}) but "
                    f"{name} OI={oi} ({verdict})",
                )
            )

    # --- differential: memo path + fallback note -------------------------
    result.checks_run.append("memo-note")
    clear_memo()
    memo_cm, note = memoized_cm_with_note(
        module, None, hierarchy, engine="symbolic"
    )
    _diff_counters(
        "memo-note",
        "direct-fast",
        fast.counters(),
        "memoized-symbolic",
        memo_cm.counters(),
        result.disagreements,
    )
    if result.symbolic_supported and note is not None:
        result.disagreements.append(
            Disagreement(
                "memo-note",
                f"symbolic engine supports the kernel but memo reported a "
                f"fallback note: {note!r}",
            )
        )
    if result.symbolic_supported is False:
        if note is None:
            result.disagreements.append(
                Disagreement(
                    "memo-note",
                    "symbolic engine fell back but memo note is None",
                )
            )
        elif not note.startswith(FALLBACK_NOTE_PREFIX):
            result.disagreements.append(
                Disagreement(
                    "memo-note",
                    f"fallback note lacks the structured prefix: {note!r}",
                )
            )
    cached_cm, cached_note = memoized_cm_with_note(
        module, None, hierarchy, engine="symbolic"
    )
    if cached_cm.counters() != memo_cm.counters() or cached_note != note:
        result.disagreements.append(
            Disagreement(
                "memo-note",
                "second memoized call disagrees with the first "
                "(LRU hit is not value-transparent)",
            )
        )
    clear_memo()

    # --- differential: degradation plumbing is a no-op when idle ---------
    result.checks_run.append("degradation-noop")
    relaxed = polyufc_cm(
        trace, hierarchy, engine="reference", deadline=Deadline(3600.0)
    )
    _diff_counters(
        "degradation-noop",
        "reference",
        reference.counters(),
        "reference+deadline",
        relaxed.counters(),
        result.disagreements,
    )
    truncated = generate_trace(
        module, max_accesses=max(1, len(trace)), truncate=True
    )
    if len(truncated) != len(trace):
        result.disagreements.append(
            Disagreement(
                "degradation-noop",
                f"truncate=True at full budget shortened the trace: "
                f"{len(truncated)} != {len(trace)}",
            )
        )

    # --- differential: simulator cross-invariants -------------------------
    result.checks_run.append("simulator-invariants")
    sim = simulate_hierarchy(trace, hierarchy)
    sim_l0 = sim.counters()[0]
    model_l0 = reference.counters()[0]
    if sim_l0[1] != model_l0.accesses:
        result.disagreements.append(
            Disagreement(
                "simulator-invariants",
                f"level-0 access counts differ: sim={sim_l0[1]} "
                f"model={model_l0.accesses}",
            )
        )
    distinct_lines = len(set(trace.line_ids(hierarchy.line_bytes).tolist()))
    if model_l0.cold_misses != distinct_lines:
        result.disagreements.append(
            Disagreement(
                "simulator-invariants",
                f"model cold misses at level 0 ({model_l0.cold_misses}) != "
                f"distinct lines touched ({distinct_lines})",
            )
        )
    if sim_l0[2] < model_l0.cold_misses:
        result.disagreements.append(
            Disagreement(
                "simulator-invariants",
                f"simulator missed fewer times ({sim_l0[2]}) than the "
                f"model's cold misses ({model_l0.cold_misses})",
            )
        )

    # --- metamorphic properties (fast engine; engine-diff above makes
    # --- the choice of engine immaterial) ---------------------------------
    _metamorphic_checks(spec, module, trace, fast, result)
    return result


def _level0_misses(cm: CacheModelResult) -> Tuple[int, int]:
    level = cm.counters()[0]
    return level.cold_misses, level.capacity_conflict_misses


def _single_level(config: CacheLevelConfig) -> CacheHierarchy:
    return CacheHierarchy((config,))


def _metamorphic_checks(
    spec: KernelSpec,
    module,
    trace,
    fast: CacheModelResult,
    result: CaseResult,
) -> None:
    base = build_hierarchy(spec).levels[0]
    line = base.line_bytes
    base_lines = base.size_bytes // line

    # FA capacity monotonicity: misses(2c) <= misses(c) for FA caches.
    result.checks_run.append("capacity-monotonic")
    fa_small = CacheLevelConfig("FAc", base.size_bytes, line, base_lines)
    fa_big = CacheLevelConfig("FA2c", 2 * base.size_bytes, line, 2 * base_lines)
    cm_small = polyufc_cm(trace, _single_level(fa_small), engine="fast")
    cm_big = polyufc_cm(trace, _single_level(fa_big), engine="fast")
    small_cold, small_cc = _level0_misses(cm_small)
    big_cold, big_cc = _level0_misses(cm_big)
    if big_cold + big_cc > small_cold + small_cc:
        result.disagreements.append(
            Disagreement(
                "capacity-monotonic",
                f"doubling FA capacity raised misses: "
                f"{small_cold + small_cc} -> {big_cold + big_cc}",
            )
        )

    # Fixed-num_sets associativity monotonicity + cold invariance.
    result.checks_run.append("associativity-monotonic")
    num_sets = base.size_bytes // (line * base.associativity)
    sa_lo = CacheLevelConfig("SAk", base.size_bytes, line, base.associativity)
    sa_hi = CacheLevelConfig(
        "SA2k", 2 * base.size_bytes, line, 2 * base.associativity
    )
    cm_lo = polyufc_cm(trace, _single_level(sa_lo), engine="fast")
    cm_hi = polyufc_cm(trace, _single_level(sa_hi), engine="fast")
    lo_cold, lo_cc = _level0_misses(cm_lo)
    hi_cold, hi_cc = _level0_misses(cm_hi)
    assert sa_hi.num_sets == num_sets  # same mapping, deeper stacks
    if hi_cc > lo_cc:
        result.disagreements.append(
            Disagreement(
                "associativity-monotonic",
                f"doubling associativity at {num_sets} sets raised "
                f"capacity/conflict misses: {lo_cc} -> {hi_cc}",
            )
        )

    result.checks_run.append("cold-invariance")
    colds = {small_cold, big_cold, lo_cold, hi_cold, fast.counters()[0].cold_misses}
    if len(colds) != 1:
        result.disagreements.append(
            Disagreement(
                "cold-invariance",
                f"cold misses vary across same-line-size geometries: "
                f"{sorted(colds)}",
            )
        )

    # Dimension-rename invariance.
    result.checks_run.append("rename-invariance")
    renamed_spec = rename_dims(spec)
    renamed_module = build_module(renamed_spec)
    renamed_trace = generate_trace(renamed_module)
    renamed = polyufc_cm(
        renamed_trace, build_hierarchy(renamed_spec), engine="fast"
    )
    _diff_counters(
        "rename-invariance",
        "original",
        fast.counters(),
        "renamed",
        renamed.counters(),
        result.disagreements,
    )
    orig_oi, orig_verdict = _oi_and_verdict(fast)
    new_oi, new_verdict = _oi_and_verdict(renamed)
    if orig_oi != new_oi or orig_verdict != new_verdict:
        result.disagreements.append(
            Disagreement(
                "rename-invariance",
                f"OI changed under renaming: {orig_oi} ({orig_verdict}) "
                f"-> {new_oi} ({new_verdict})",
            )
        )
