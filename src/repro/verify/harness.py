"""Fuzz campaign driver and corpus replay.

:func:`fuzz` runs the generate -> oracle -> shrink loop under a seed and
a wall-clock budget; :func:`replay_corpus` re-runs checked-in JSON specs
(``tests/corpus/``) as a deterministic regression suite.  Every failure
is shrunk and written out twice -- a JSON spec (machine-replayable, and
the file to check into the corpus) and a paste-able pytest module -- so
a red fuzz run always leaves a one-file repro behind.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, List, Optional, Tuple

from repro.verify.generator import (
    KernelSpec,
    generate_spec,
    spec_from_json,
    spec_to_json,
    spec_to_pytest,
)
from repro.verify.oracle import CaseResult, run_case
from repro.verify.shrinker import shrink

#: Oracle used by :func:`fuzz`; module-level so the off-by-one demo and
#: future engine experiments can substitute an instrumented battery.
Oracle = Callable[[KernelSpec], CaseResult]


@dataclass
class FuzzFailure:
    """One disagreement found by a campaign, with its shrunk repro."""

    index: int
    original: KernelSpec
    shrunk: KernelSpec
    result: CaseResult
    json_path: Optional[Path] = None
    pytest_path: Optional[Path] = None

    def reason(self) -> str:
        return "; ".join(str(d) for d in self.result.disagreements)


@dataclass
class FuzzStats:
    """Summary of one fuzz campaign."""

    seed: int
    cases_run: int = 0
    symbolic_supported: int = 0
    elapsed_s: float = 0.0
    failures: List[FuzzFailure] = field(default_factory=list)

    @property
    def ok(self) -> bool:
        return not self.failures


def _artifact_stem(spec: KernelSpec, index: int) -> str:
    return f"fuzz_seed{spec.seed}_case{index}_{spec.fingerprint()}"


def write_failure_artifacts(
    failure: FuzzFailure, artifacts_dir: Path
) -> None:
    """Persist the shrunk JSON spec + pytest repro for one failure."""
    artifacts_dir.mkdir(parents=True, exist_ok=True)
    stem = _artifact_stem(failure.shrunk, failure.index)
    json_path = artifacts_dir / f"{stem}.json"
    pytest_path = artifacts_dir / f"test_{stem}.py"
    json_path.write_text(spec_to_json(failure.shrunk) + "\n")
    pytest_path.write_text(spec_to_pytest(failure.shrunk, failure.reason()))
    failure.json_path = json_path
    failure.pytest_path = pytest_path


def fuzz(
    seed: int,
    time_budget_s: float = 60.0,
    max_cases: Optional[int] = None,
    artifacts_dir: Optional[Path] = None,
    oracle: Oracle = run_case,
    log: Optional[Callable[[str], None]] = None,
) -> FuzzStats:
    """Run one seeded campaign: generate, check, shrink, persist.

    The case sequence is fully determined by ``seed``; the budget and
    ``max_cases`` only decide how far along it the campaign walks, so
    re-running with the same seed replays the same cases in order.
    """
    stats = FuzzStats(seed=seed)
    say = log or (lambda _msg: None)
    started = time.monotonic()
    index = 0
    while True:
        if max_cases is not None and index >= max_cases:
            break
        if time.monotonic() - started >= time_budget_s:
            break
        spec = generate_spec(seed, index)
        result = oracle(spec)
        stats.cases_run += 1
        if result.symbolic_supported:
            stats.symbolic_supported += 1
        if not result.ok:
            say(
                f"case {index}: {len(result.disagreements)} "
                f"disagreement(s); shrinking"
            )
            failing_checks = {d.check for d in result.disagreements}

            def still_fails(candidate: KernelSpec) -> bool:
                verdict = oracle(candidate)
                return any(
                    d.check in failing_checks
                    for d in verdict.disagreements
                )

            shrunk = shrink(spec, still_fails)
            failure = FuzzFailure(index, spec, shrunk, oracle(shrunk))
            if artifacts_dir is not None:
                write_failure_artifacts(failure, artifacts_dir)
                say(f"case {index}: repro written to {failure.json_path}")
            stats.failures.append(failure)
        index += 1
    stats.elapsed_s = time.monotonic() - started
    return stats


def replay_corpus(
    corpus_dir: Path,
    oracle: Oracle = run_case,
) -> List[Tuple[Path, CaseResult]]:
    """Re-run every ``*.json`` spec under ``corpus_dir`` through the oracle.

    Returns ``(path, result)`` pairs sorted by file name so the replay
    order -- and therefore any failure output -- is deterministic.
    Parametric family specs sharing the directory are skipped here and
    replayed by :func:`repro.verify.parametric.replay_parametric_corpus`.
    """
    from repro.verify.parametric import is_parametric_json

    results: List[Tuple[Path, CaseResult]] = []
    for path in sorted(corpus_dir.glob("*.json")):
        text = path.read_text()
        if is_parametric_json(text):
            continue
        results.append((path, oracle(spec_from_json(text))))
    return results
