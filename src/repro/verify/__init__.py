"""Generative differential verification for the PolyUFC-CM engines.

The package is the repo's correctness backstop: a seeded random
affine-kernel generator (:mod:`repro.verify.generator`) samples the
supported IR class, a differential + metamorphic oracle
(:mod:`repro.verify.oracle`) runs every case through the reference,
fast, and symbolic engines plus the memo and degradation paths, and a
greedy shrinker (:mod:`repro.verify.shrinker`) minimizes any failure
into a paste-able repro.  :mod:`repro.verify.harness` drives campaigns
(``python -m repro.cli fuzz``) and replays the checked-in corpus
(``tests/corpus/``).  See docs/TESTING.md for the test-tier map.
"""

from repro.verify.generator import (
    AccessSpec,
    BufferSpec,
    KernelSpec,
    LevelSpec,
    LoopSpec,
    StatementSpec,
    build_hierarchy,
    build_module,
    fit_buffers,
    generate_spec,
    iteration_count,
    rename_dims,
    spec_from_json,
    spec_to_json,
    spec_to_pytest,
)
from repro.verify.oracle import CaseResult, Disagreement, run_case
from repro.verify.shrinker import shrink
from repro.verify.harness import (
    FuzzFailure,
    FuzzStats,
    fuzz,
    replay_corpus,
    write_failure_artifacts,
)
from repro.verify.parametric import (
    ParametricCaseResult,
    ParametricFailure,
    ParametricFuzzStats,
    ParametricSpec,
    fuzz_parametric,
    generate_parametric_spec,
    instantiate,
    is_parametric_json,
    pspec_from_json,
    pspec_to_json,
    pspec_to_pytest,
    replay_parametric_corpus,
    run_parametric_case,
    shrink_parametric,
    write_parametric_failure,
)

__all__ = [
    "AccessSpec",
    "BufferSpec",
    "KernelSpec",
    "LevelSpec",
    "LoopSpec",
    "StatementSpec",
    "build_hierarchy",
    "build_module",
    "fit_buffers",
    "generate_spec",
    "iteration_count",
    "rename_dims",
    "spec_from_json",
    "spec_to_json",
    "spec_to_pytest",
    "CaseResult",
    "Disagreement",
    "run_case",
    "shrink",
    "FuzzFailure",
    "FuzzStats",
    "fuzz",
    "replay_corpus",
    "write_failure_artifacts",
    "ParametricCaseResult",
    "ParametricFailure",
    "ParametricFuzzStats",
    "ParametricSpec",
    "fuzz_parametric",
    "generate_parametric_spec",
    "instantiate",
    "is_parametric_json",
    "pspec_from_json",
    "pspec_to_json",
    "pspec_to_pytest",
    "replay_parametric_corpus",
    "run_parametric_case",
    "shrink_parametric",
    "write_parametric_failure",
]
