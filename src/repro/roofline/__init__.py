"""Performance and power rooflines (Williams et al. / Choi et al.).

The paper needs *both* rooflines and obtains them by one-time
microbenchmarking (footnote 3); :mod:`repro.roofline.microbench` does the
same against the simulated platforms.  :mod:`repro.roofline.characterize`
implements the Sec. IV-D bound-and-bottleneck classification.
"""

from repro.roofline.constants import RooflineConstants, LinearFit, InverseFit
from repro.roofline.microbench import calibrate_platform
from repro.roofline.characterize import (
    Characterization,
    Boundedness,
    characterize,
    attainable_performance,
    power_ceiling,
)

__all__ = [
    "RooflineConstants",
    "LinearFit",
    "InverseFit",
    "calibrate_platform",
    "Characterization",
    "Boundedness",
    "characterize",
    "attainable_performance",
    "power_ceiling",
]
