"""Bound-and-bottleneck characterization against the rooflines (Sec. IV-D).

A kernel with operational intensity ``I`` is **compute-bound (CB)** when
``I >= B^t_DRAM`` and **bandwidth-bound (BB)** otherwise.  Beyond the
binary label, the characterization records the gaps the paper highlights
(footnote 18): distance to the compute/bandwidth roofs and to the machine
balance point.
"""

from __future__ import annotations

import enum
import math
from dataclasses import dataclass

from repro.roofline.constants import RooflineConstants


class Boundedness(enum.Enum):
    """The two roofline regimes."""

    COMPUTE_BOUND = "CB"
    BANDWIDTH_BOUND = "BB"

    def __str__(self) -> str:
        return self.value


@dataclass(frozen=True)
class Characterization:
    """A kernel's position against the performance and power rooflines."""

    oi_fpb: float
    boundedness: Boundedness
    machine_balance_fpb: float
    attainable_flops: float  # performance roof at this OI (flops/s)
    peak_power_w: float  # power ceiling at this OI, max uncore f
    reuse_gap_fpb: float  # distance to balance: I - B (positive for CB)

    @property
    def is_compute_bound(self) -> bool:
        return self.boundedness is Boundedness.COMPUTE_BOUND

    @property
    def is_bandwidth_bound(self) -> bool:
        return self.boundedness is Boundedness.BANDWIDTH_BOUND


def attainable_performance(
    constants: RooflineConstants, oi_fpb: float, f_ghz: float = None
) -> float:
    """The classic roofline: min(peak flops, BW(f) * I)."""
    bandwidth = (
        constants.peak_bandwidth
        if f_ghz is None
        else constants.bandwidth_at(f_ghz)
    )
    if math.isinf(oi_fpb):
        return constants.peak_flops
    return min(constants.peak_flops, bandwidth * oi_fpb)


def power_ceiling(
    constants: RooflineConstants, oi_fpb: float, f_ghz: float
) -> float:
    """Eqn 8: the total peak-power ceiling, specialized by CB/BB."""
    balance = constants.b_t_dram
    p_mem = constants.p_hat_dram_fit(f_ghz)
    p_fpu = constants.p_hat_fpu
    if math.isinf(oi_fpb):
        return constants.p_con + p_fpu
    if oi_fpb >= balance:  # CB
        return constants.p_con + p_mem * (balance / oi_fpb) + p_fpu
    return constants.p_con + p_mem + p_fpu * (oi_fpb / balance)  # BB


def characterize(
    constants: RooflineConstants, oi_fpb: float
) -> Characterization:
    """Classify a kernel by OI against the fitted rooflines."""
    if oi_fpb < 0:
        raise ValueError(f"negative operational intensity {oi_fpb}")
    balance = constants.b_t_dram
    bounded = (
        Boundedness.COMPUTE_BOUND
        if oi_fpb >= balance
        else Boundedness.BANDWIDTH_BOUND
    )
    f_max_fit = constants.saturation_freq()
    f_for_peak = f_max_fit if math.isfinite(f_max_fit) else 1.0
    return Characterization(
        oi_fpb=oi_fpb,
        boundedness=bounded,
        machine_balance_fpb=balance,
        attainable_flops=attainable_performance(constants, oi_fpb),
        peak_power_w=power_ceiling(constants, oi_fpb, f_for_peak),
        reuse_gap_fpb=oi_fpb - balance,
    )
