"""Roofline constants (the paper's Tab. I), with frequency-parametric fits.

All constants are *fitted from measurements* on a platform; none are copied
from the platform's ground truth.  Frequency-dependent quantities are kept
as small fit objects:

* :class:`LinearFit` -- ``alpha * f + gamma`` (the paper's linear fits for
  miss-penalty power and peak DRAM power),
* :class:`InverseFit` -- ``a / f + b`` (the paper's DRAM miss-penalty time
  ``M^t``, and the LLC hit service time, both uncore-clocked).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional, Sequence, Tuple

import numpy as np


@dataclass(frozen=True)
class LinearFit:
    """``value(f) = alpha * f + gamma``."""

    alpha: float
    gamma: float

    def __call__(self, f_ghz: float) -> float:
        return self.alpha * f_ghz + self.gamma

    @staticmethod
    def fit(freqs: Sequence[float], values: Sequence[float]) -> "LinearFit":
        alpha, gamma = np.polyfit(np.asarray(freqs), np.asarray(values), 1)
        return LinearFit(float(alpha), float(gamma))


@dataclass(frozen=True)
class QuadraticFit:
    """``value(f) = a*f^2 + b*f + c`` (the paper notes quadratic fits reduce
    power-prediction error; provided as the optional higher-accuracy mode)."""

    a: float
    b: float
    c: float

    def __call__(self, f_ghz: float) -> float:
        return self.a * f_ghz**2 + self.b * f_ghz + self.c

    @staticmethod
    def fit(freqs: Sequence[float], values: Sequence[float]) -> "QuadraticFit":
        a, b, c = np.polyfit(np.asarray(freqs), np.asarray(values), 2)
        return QuadraticFit(float(a), float(b), float(c))


@dataclass(frozen=True)
class InverseFit:
    """``value(f) = a / f + b`` -- the paper's M^t_{f,LLC} form."""

    a: float
    b: float

    def __call__(self, f_ghz: float) -> float:
        return self.a / f_ghz + self.b

    @staticmethod
    def fit(freqs: Sequence[float], values: Sequence[float]) -> "InverseFit":
        inv = 1.0 / np.asarray(freqs, dtype=float)
        a, b = np.polyfit(inv, np.asarray(values, dtype=float), 1)
        return InverseFit(float(a), float(b))


@dataclass(frozen=True)
class RooflineConstants:
    """Fitted performance + power roofline constants for one platform.

    Mirrors Tab. I: ``t_fpu``/``t_byte`` (time per flop / byte),
    ``b_t_dram``/``b_e_dram`` (time/energy balance), ``e_fpu``/``p_hat_fpu``
    (energy / peak power per flop), ``e_byte``/``p_hat_byte`` frequency fits
    (energy / peak power per DRAM byte) and ``p_con`` (constant power).
    """

    platform_name: str
    # performance roofline
    t_fpu: float  # seconds per flop (machine-wide, base core clock)
    t_byte: float  # seconds per DRAM byte at max uncore frequency
    # power roofline
    p_con: float  # constant (static) power, W, at minimum uncore frequency
    e_fpu: float  # J per flop
    e_byte_fit: LinearFit  # J per DRAM byte as a function of uncore f
    p_hat_dram_fit: LinearFit  # peak DRAM-bound power (W) vs uncore f
    p_uncore_idle_fit: LinearFit  # idle-uncore power increase over f_min, W
    # parametric memory-time pieces (Eqn 4 inputs)
    h_l2: float  # L2 hit service time, seconds per byte
    h_llc_fit: InverseFit  # LLC hit service time per byte vs uncore f
    miss_penalty_fit: InverseFit  # DRAM miss penalty per line (M^t), seconds
    dram_bw_fit: LinearFit  # measured DRAM bandwidth (B/s) vs f, pre-saturation
    dram_bw_peak: float  # saturated bandwidth, B/s
    line_bytes: int
    #: Fitted compute/memory overlap: T = max(Tc, Tq) + overlap_rho*min.
    #: (The literal Eqn 2 is additive, i.e. overlap_rho = 1; the calibrated
    #: combiner matches machines that overlap memory with compute.)
    overlap_rho: float = 1.0
    e_byte_quadratic: Optional[QuadraticFit] = None

    @property
    def peak_flops(self) -> float:
        return 1.0 / self.t_fpu

    @property
    def peak_bandwidth(self) -> float:
        return 1.0 / self.t_byte

    @property
    def b_t_dram(self) -> float:
        """Time balance (FpB): peak flops over peak DRAM bandwidth."""
        return self.t_byte / self.t_fpu

    @property
    def b_e_dram(self) -> float:
        """Energy balance (FpB) at max uncore frequency."""
        f_ref = (self.dram_bw_peak - self.dram_bw_fit.gamma) / max(
            self.dram_bw_fit.alpha, 1e-30
        )
        return self.e_byte_fit(f_ref) / self.e_fpu

    @property
    def p_hat_fpu(self) -> float:
        """Peak flop-bound power above constant, W."""
        return self.e_fpu / self.t_fpu

    def bandwidth_at(self, f_ghz: float) -> float:
        """Fitted DRAM bandwidth at an uncore frequency (saturation-clipped)."""
        return min(self.dram_bw_peak, self.dram_bw_fit(f_ghz))

    def saturation_freq(self) -> float:
        """Fitted uncore frequency where bandwidth saturates."""
        if self.dram_bw_fit.alpha <= 0:
            return float("inf")
        return (self.dram_bw_peak - self.dram_bw_fit.gamma) / self.dram_bw_fit.alpha
