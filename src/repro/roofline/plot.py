"""ASCII rendering of the performance roofline with kernels plotted on it.

Terminal-friendly stand-in for the paper's Fig. 6 scatter plots: log-log
axes, the bandwidth diagonal and compute ceiling drawn from a platform's
fitted constants, and each kernel placed at (OI, attainable performance)
with a CB/BB marker.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.roofline.characterize import attainable_performance
from repro.roofline.constants import RooflineConstants


@dataclass(frozen=True)
class RooflinePoint:
    """One kernel to plot."""

    name: str
    oi_fpb: float
    perf_flops: float  # measured/estimated performance; 0 = use roof value

    @property
    def marker(self) -> str:
        return self.name[0].upper() if self.name else "?"


def render_roofline(
    constants: RooflineConstants,
    points: Sequence[RooflinePoint],
    width: int = 68,
    height: int = 20,
    oi_range: Tuple[float, float] = (0.05, 512.0),
) -> str:
    """Render the roofline and the points as fixed-width text."""
    lo_oi, hi_oi = oi_range
    log_lo, log_hi = math.log10(lo_oi), math.log10(hi_oi)
    peak = constants.peak_flops
    floor_perf = attainable_performance(constants, lo_oi)
    log_perf_lo = math.floor(math.log10(max(floor_perf, 1.0)))
    log_perf_hi = math.ceil(math.log10(peak * 1.2))

    def column_of(oi: float) -> int:
        fraction = (math.log10(oi) - log_lo) / (log_hi - log_lo)
        return max(0, min(width - 1, int(round(fraction * (width - 1)))))

    def row_of(perf: float) -> int:
        fraction = (math.log10(max(perf, 10.0**log_perf_lo)) - log_perf_lo) / (
            log_perf_hi - log_perf_lo
        )
        return max(0, min(height - 1, int(round(fraction * (height - 1)))))

    grid = [[" "] * width for _ in range(height)]

    # roofline itself
    for column in range(width):
        oi = 10.0 ** (log_lo + (log_hi - log_lo) * column / (width - 1))
        roof = attainable_performance(constants, oi)
        symbol = "-" if roof >= 0.999 * peak else "/"
        grid[row_of(roof)][column] = symbol

    # the machine-balance ridge
    ridge = column_of(constants.b_t_dram)
    for row in range(height):
        if grid[row][ridge] == " ":
            grid[row][ridge] = ":"

    legend: List[str] = []
    for point in points:
        perf = point.perf_flops or attainable_performance(
            constants, point.oi_fpb
        )
        row, column = row_of(perf), column_of(point.oi_fpb)
        grid[row][column] = point.marker
        side = "CB" if point.oi_fpb >= constants.b_t_dram else "BB"
        legend.append(
            f"  {point.marker} = {point.name} (OI {point.oi_fpb:.2f}, {side})"
        )

    lines = [
        f"performance roofline: peak {peak / 1e9:.1f} Gflop/s, "
        f"BW {constants.peak_bandwidth / 1e9:.1f} GB/s, "
        f"balance {constants.b_t_dram:.2f} FpB (':' ridge)"
    ]
    for row in range(height - 1, -1, -1):
        prefix = f"{10.0 ** (log_perf_lo + (log_perf_hi - log_perf_lo) * row / (height - 1)) / 1e9:8.1f}G |"
        lines.append(prefix + "".join(grid[row]))
    axis = " " * 10 + "+" + "-" * width
    lines.append(axis)
    tick_line = [" "] * (width + 11)
    for oi in (0.1, 1.0, 10.0, 100.0):
        if lo_oi <= oi <= hi_oi:
            position = 11 + column_of(oi)
            label = f"{oi:g}"
            for offset, char in enumerate(label):
                if position + offset < len(tick_line):
                    tick_line[position + offset] = char
    lines.append("".join(tick_line) + "  OI (FpB)")
    lines.extend(legend)
    return "\n".join(lines)
