"""One-time roofline microbenchmarking (the paper's footnote 3 / 14).

Synthetic microkernels with controlled flop/byte mixes are "run" on the
simulated platform (through the same noisy execution model real kernels
use), and the Tab. I constants are fitted from the observed times, powers
and energies -- never read from the platform's ground truth:

* flop-only kernels on 1 core and on all cores separate constant power from
  per-core dynamic power and give ``t_fpu``/``e_fpu``,
* a DRAM-streaming kernel swept over uncore frequencies gives the bandwidth
  fit, ``t_byte``, and the energy/peak-power-per-byte fits,
* a pointer-chase-like latency kernel swept over frequencies gives the
  ``M^t = a/f + b`` miss-penalty fit,
* L2- and LLC-resident kernels give the per-level hit service times.
"""

from __future__ import annotations

import statistics
from typing import List, Sequence, Tuple

from repro.hw.execution import KernelWorkload, RunResult, execute_fixed
from repro.hw.platform import PlatformSpec
from repro.roofline.constants import (
    InverseFit,
    LinearFit,
    QuadraticFit,
    RooflineConstants,
)

#: Iterations per PAPI-style measurement (the paper uses 2^10 per event).
DEFAULT_REPS = 5


def _median_run(
    platform: PlatformSpec,
    workload: KernelWorkload,
    f_ghz: float,
    reps: int,
) -> Tuple[float, float]:
    """Median (time, power) over repeated noisy measurements."""
    times: List[float] = []
    powers: List[float] = []
    for rep in range(reps):
        tagged = KernelWorkload(
            name=f"{workload.name}#r{rep}",
            flops=workload.flops,
            level_accesses=workload.level_accesses,
            dram_fetch_bytes=workload.dram_fetch_bytes,
            dram_writeback_bytes=workload.dram_writeback_bytes,
            dram_lines=workload.dram_lines,
            parallel=workload.parallel,
            threads=workload.threads,
        )
        run = execute_fixed(platform, tagged, f_ghz, prefetch=True)
        times.append(run.time_s)
        powers.append(run.avg_power_w)
    return statistics.median(times), statistics.median(powers)


def _flop_kernel(platform: PlatformSpec, cores: int) -> KernelWorkload:
    flops = int(50e-3 * platform.peak_flops_per_sec(cores))  # ~50 ms of work
    return KernelWorkload(
        name=f"ubench.flops.c{cores}",
        flops=flops,
        level_accesses=(64, 0, 0),
        dram_fetch_bytes=64,
        dram_writeback_bytes=0,
        dram_lines=1,
        parallel=cores > 1,
        threads=cores,
    )


def _stream_kernel(platform: PlatformSpec) -> KernelWorkload:
    line = platform.hierarchy.line_bytes
    nbytes = 256 * 1024 * 1024
    lines = nbytes // line
    accesses = nbytes // 8
    # Every line is touched once: each level sees one line-granule request
    # per line (level_accesses counts requests *arriving* at that level).
    return KernelWorkload(
        name="ubench.stream",
        flops=accesses // 8,  # negligible compute
        level_accesses=(accesses, lines, lines),
        dram_fetch_bytes=nbytes,
        dram_writeback_bytes=0,
        dram_lines=lines,
        parallel=True,
        threads=platform.threads,
    )


def _latency_kernel(platform: PlatformSpec) -> KernelWorkload:
    """Pointer-chase: one outstanding miss at a time, bandwidth-irrelevant."""
    line = platform.hierarchy.line_bytes
    lines = 2_000_000
    # Dependent loads defeat memory-level parallelism: model this by scaling
    # the line count up by the platform's MLP so the measured per-line time
    # reflects the raw penalty.  (The fit absorbs the calibration.)
    return KernelWorkload(
        name="ubench.ptrchase",
        flops=lines // 64,
        level_accesses=(lines, lines, lines),
        dram_fetch_bytes=lines * line,
        dram_writeback_bytes=0,
        dram_lines=lines,
        parallel=False,
        threads=1,
    )


def _l2_kernel(platform: PlatformSpec) -> KernelWorkload:
    accesses = 4_000_000
    return KernelWorkload(
        name="ubench.l2res",
        flops=accesses // 16,
        level_accesses=(accesses, accesses, 0),
        dram_fetch_bytes=64,
        dram_writeback_bytes=0,
        dram_lines=1,
        parallel=True,
        threads=platform.threads,
    )


def _llc_kernel(platform: PlatformSpec) -> KernelWorkload:
    accesses = 4_000_000
    return KernelWorkload(
        name="ubench.llcres",
        flops=accesses // 16,
        level_accesses=(accesses, accesses, accesses),
        dram_fetch_bytes=64,
        dram_writeback_bytes=0,
        dram_lines=1,
        parallel=True,
        threads=platform.threads,
    )


def calibrate_platform(
    platform: PlatformSpec, reps: int = DEFAULT_REPS
) -> RooflineConstants:
    """Fit the full Tab. I constants for one platform."""
    line = platform.hierarchy.line_bytes
    f_max = platform.uncore.f_max_ghz
    freqs = platform.uncore.frequencies()
    sweep = freqs[:: max(1, len(freqs) // 10)]

    # --- flop roof + power separation --------------------------------------
    f_min = platform.uncore.f_min_ghz
    one_core = _flop_kernel(platform, 1)
    all_cores = _flop_kernel(platform, platform.cores)
    t1, p1 = _median_run(platform, one_core, f_min, reps)
    tn, pn = _median_run(platform, all_cores, f_min, reps)
    t_fpu = tn / all_cores.flops
    # P = p_con' + k * cores  =>  solve from the 1-core and n-core points.
    per_core_dyn = (pn - p1) / (platform.cores - 1)
    p_con = p1 - per_core_dyn
    e_fpu = per_core_dyn * platform.cores * t_fpu  # J/flop at full throughput

    # --- idle-uncore power vs frequency -------------------------------------
    # The flop-only kernel exercises no memory, so its power growth across
    # the uncore sweep is pure uncore idle draw -- the over-provisioning
    # static capping eliminates on CB kernels.
    idle_points: List[Tuple[float, float]] = []
    for f in freqs[:: max(1, len(freqs) // 10)]:
        _t, p_f = _median_run(platform, all_cores, f, reps)
        idle_points.append((f, max(0.0, p_f - pn)))
    p_uncore_idle_fit = LinearFit.fit(*zip(*idle_points))

    # --- bandwidth roof + per-byte power ------------------------------------
    stream = _stream_kernel(platform)
    bw_points: List[Tuple[float, float]] = []
    e_byte_points: List[Tuple[float, float]] = []
    p_mem_points: List[Tuple[float, float]] = []
    for f in sweep:
        time_s, power_w = _median_run(platform, stream, f, reps)
        bandwidth = stream.dram_bytes / time_s
        bw_points.append((f, bandwidth))
        mem_power = max(power_w - p_con, 1e-3)
        p_mem_points.append((f, mem_power))
        e_byte_points.append((f, mem_power / bandwidth))
    bw_peak = max(bw for _, bw in bw_points)
    rising = [(f, bw) for f, bw in bw_points if bw < 0.98 * bw_peak]
    if len(rising) < 2:
        rising = bw_points[:2]
    dram_bw_fit = LinearFit.fit(*zip(*rising))
    t_byte = 1.0 / bw_peak
    e_byte_fit = LinearFit.fit(*zip(*e_byte_points))
    e_byte_quad = QuadraticFit.fit(*zip(*e_byte_points))
    p_hat_dram_fit = LinearFit.fit(*zip(*p_mem_points))

    # --- latency fit: M^t(f) = a/f + b --------------------------------------
    chase = _latency_kernel(platform)
    lat_points: List[Tuple[float, float]] = []
    for f in sweep:
        time_s, _power = _median_run(platform, chase, f, reps)
        lat_points.append((f, time_s / chase.dram_lines))
    miss_penalty_fit = InverseFit.fit(*zip(*lat_points))

    # --- compute/memory overlap ----------------------------------------------
    # A balanced kernel with flop time == memory time at f_max reveals how
    # much of the smaller component the machine hides:
    #   T = max + rho*min = x*(1 + rho)  =>  rho = T/x - 1.
    balance_seconds = 10e-3
    flops_bal = int(balance_seconds * platform.peak_flops_per_sec())
    bytes_bal = int(balance_seconds * platform.dram_bandwidth(f_max))
    balanced = KernelWorkload(
        name="ubench.balanced",
        flops=flops_bal,
        level_accesses=(bytes_bal // 8, 64, 64),
        dram_fetch_bytes=bytes_bal,
        dram_writeback_bytes=0,
        dram_lines=bytes_bal // line,
        parallel=True,
        threads=platform.threads,
    )
    t_bal, _ = _median_run(platform, balanced, f_max, reps)
    overlap_rho = min(1.0, max(0.0, t_bal / balance_seconds - 1.0))

    # --- per-level hit service times ----------------------------------------
    l2_kernel = _l2_kernel(platform)
    t_l2, _ = _median_run(platform, l2_kernel, f_max, reps)
    h_l2 = t_l2 / (l2_kernel.level_accesses[1] * line)
    llc_kernel = _llc_kernel(platform)
    llc_points: List[Tuple[float, float]] = []
    for f in sweep:
        t_llc, _ = _median_run(platform, llc_kernel, f, reps)
        per_byte = (t_llc - t_l2) / (llc_kernel.level_accesses[2] * line)
        llc_points.append((f, max(per_byte, 1e-15)))
    h_llc_fit = InverseFit.fit(*zip(*llc_points))

    return RooflineConstants(
        platform_name=platform.name,
        t_fpu=t_fpu,
        t_byte=t_byte,
        p_con=p_con,
        e_fpu=e_fpu,
        e_byte_fit=e_byte_fit,
        p_hat_dram_fit=p_hat_dram_fit,
        p_uncore_idle_fit=p_uncore_idle_fit,
        h_l2=h_l2,
        h_llc_fit=h_llc_fit,
        miss_penalty_fit=miss_penalty_fit,
        dram_bw_fit=dram_bw_fit,
        dram_bw_peak=bw_peak,
        line_bytes=line,
        overlap_rho=overlap_rho,
        e_byte_quadratic=e_byte_quad,
    )
