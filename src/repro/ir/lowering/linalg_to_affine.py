"""Lower linalg structured ops to affine loop nests.

Each linalg op becomes one top-level ``affine.for`` nest whose arith-op
count per iteration matches the op's unitary flop model.  The generated root
loop is tagged with ``source_op``/``source_index`` attributes so the
ML-PolyUFC passes can map analysis results back to linalg granularity.
"""

from __future__ import annotations

import itertools
from typing import List

from repro.ir.core import IRError, Module, Op
from repro.ir.builder import AffineBuilder
from repro.ir.dialects.affine import AffineForOp
from repro.ir.dialects.linalg import (
    BatchMatmulOp,
    BroadcastCombineOp,
    Conv2DNchwFchwOp,
    ElementwiseOp,
    FillOp,
    LinalgOp,
    MatmulOp,
    ReduceOp,
)
from repro.ir.dialects.torch_d import TorchOp
from repro.isllite import LinExpr

_nest_ids = itertools.count()


def lower_linalg_to_affine(module: Module) -> Module:
    """A new module in which every linalg op is an affine loop nest."""
    lowered = module.clone_structure(f"{module.name}.affine")
    for index, op in enumerate(module.ops):
        if isinstance(op, TorchOp):
            raise IRError(
                f"lower torch op {op!r} to linalg before lowering to affine"
            )
        if isinstance(op, LinalgOp):
            before = len(lowered.ops)
            _lower_linalg_op(op, lowered)
            for generated in lowered.ops[before:]:
                generated.attrs["source_op"] = op
                generated.attrs["source_index"] = index
                if "torch_source_index" in op.attrs:
                    generated.attrs["torch_source_op"] = op.attrs[
                        "torch_source_op"
                    ]
                    generated.attrs["torch_source_index"] = op.attrs[
                        "torch_source_index"
                    ]
        else:
            lowered.append(op)
    return lowered


def _ivs(count: int) -> List[str]:
    nest = next(_nest_ids)
    return [f"n{nest}_d{axis}" for axis in range(count)]


def _open_loops(builder: AffineBuilder, names, extents, stack):
    for name, extent in zip(names, extents):
        context = builder.loop(name, 0, extent)
        context.__enter__()
        stack.append(context)


def _close_loops(stack) -> None:
    while stack:
        stack.pop().__exit__(None, None, None)


def _lower_linalg_op(op: LinalgOp, module: Module) -> None:
    builder = AffineBuilder(module)
    stack: List = []
    try:
        if isinstance(op, FillOp):
            names = _ivs(op.output.rank)
            _open_loops(builder, names, op.output.shape, stack)
            builder.store(builder.const(op.value), op.output, names)
        elif isinstance(op, MatmulOp):
            m_extent, n_extent, k_extent = op.iteration_extents()
            m, n, k = _ivs(3)
            _open_loops(builder, [m, n, k], (m_extent, n_extent, k_extent), stack)
            a = builder.load(op.a, [m, k])
            b = builder.load(op.b, [n, k] if op.transpose_b else [k, n])
            c = builder.load(op.c, [m, n])
            builder.store(builder.add(c, builder.mul(a, b)), op.c, [m, n])
        elif isinstance(op, BatchMatmulOp):
            extents = op.iteration_extents()
            names = _ivs(len(extents))
            _open_loops(builder, names, extents, stack)
            batch = names[:-3]
            m, n, k = names[-3:]
            a = builder.load(op.a, batch + [m, k])
            b = builder.load(
                op.b, batch + ([n, k] if op.transpose_b else [k, n])
            )
            c = builder.load(op.c, batch + [m, n])
            builder.store(
                builder.add(c, builder.mul(a, b)), op.c, batch + [m, n]
            )
        elif isinstance(op, Conv2DNchwFchwOp):
            extents = op.iteration_extents()
            n, f, oh, ow, c, kh, kw = _ivs(7)
            _open_loops(builder, [n, f, oh, ow, c, kh, kw], extents, stack)
            sh, sw = op.stride
            in_h = LinExpr.var(oh) * sh + LinExpr.var(kh)
            in_w = LinExpr.var(ow) * sw + LinExpr.var(kw)
            x = builder.load(op.input, [n, c, in_h, in_w])
            w = builder.load(op.kernel, [f, c, kh, kw])
            acc = builder.load(op.output, [n, f, oh, ow])
            builder.store(
                builder.add(acc, builder.mul(x, w)), op.output, [n, f, oh, ow]
            )
        elif isinstance(op, ElementwiseOp):
            names = _ivs(op.output.rank)
            _open_loops(builder, names, op.output.shape, stack)
            first = builder.load(op.inputs[0], names)
            builder.store(
                _apply_elementwise(builder, op, first, names), op.output, names
            )
        elif isinstance(op, ReduceOp):
            outer = _ivs(op.output.rank)
            _open_loops(builder, outer, op.output.shape, stack)
            if op.kind == "sum":
                builder.store(builder.const(0.0), op.output, outer)
            else:
                builder.store(
                    builder.load(op.input, outer + [0]), op.output, outer
                )
            (inner,) = _ivs(1)
            with builder.loop(inner, 0, op.input.shape[-1]):
                acc = builder.load(op.output, outer)
                element = builder.load(op.input, outer + [inner])
                combined = (
                    builder.add(acc, element)
                    if op.kind == "sum"
                    else builder.maxf(acc, element)
                )
                builder.store(combined, op.output, outer)
        elif isinstance(op, BroadcastCombineOp):
            names = _ivs(op.input.rank)
            _open_loops(builder, names, op.input.shape, stack)
            big = builder.load(op.input, names)
            small = builder.load(op.reduced, names[:-1])
            kind = {"add": "addf", "sub": "subf", "mul": "mulf",
                    "div": "divf", "max": "maxf"}[op.kind]
            builder.store(
                builder._binary(kind, big, small), op.output, names
            )
        else:
            raise IRError(f"no affine lowering for linalg op {op!r}")
    finally:
        _close_loops(stack)


def _apply_elementwise(builder: AffineBuilder, op: ElementwiseOp, first, names):
    kind = op.kind
    if kind == "exp":
        return builder.exp(first)
    if kind == "relu":
        from repro.ir.dialects import arith

        return builder._append(arith.UnaryOp("relu", first)).result
    if kind == "neg":
        return builder.neg(first)
    if kind == "copy":
        return first
    if kind == "scale":
        return builder.mul(first, builder.const(op.scalar))
    if kind == "add_scalar":
        return builder.add(first, builder.const(op.scalar))
    second = builder.load(op.inputs[1], names)
    kind_map = {"add": "addf", "sub": "subf", "mul": "mulf",
                "div": "divf", "max": "maxf"}
    return builder._binary(kind_map[kind], first, second)
