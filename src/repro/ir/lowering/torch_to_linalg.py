"""Lower torch-dialect ops to sequences of linalg structured ops.

The decompositions mirror what torch-mlir produces and are what gives the
multi-level phase-change structure of the paper's Fig. 5: one ``torch.sdpa``
becomes two (compute-bound) batched matmuls around a run of seven
(bandwidth-bound) pointwise/reduction ops.
"""

from __future__ import annotations

from typing import List

from repro.ir.core import Buffer, IRError, Module, Op
from repro.ir.dialects.linalg import (
    BatchMatmulOp,
    BroadcastCombineOp,
    Conv2DNchwFchwOp,
    ElementwiseOp,
    FillOp,
    MatmulOp,
    ReduceOp,
)
from repro.ir.dialects.torch_d import (
    TorchConv2dOp,
    TorchMatmulOp,
    TorchReluOp,
    TorchSdpaOp,
    TorchSoftmaxOp,
)


def lower_torch_to_linalg(module: Module) -> Module:
    """A new module in which every torch op is replaced by linalg ops."""
    lowered = module.clone_structure(f"{module.name}.linalg")
    for index, op in enumerate(module.ops):
        for replacement in _lower_op(op, lowered):
            if replacement is not op:
                replacement.attrs["torch_source_op"] = op
                replacement.attrs["torch_source_index"] = index
            lowered.append(replacement)
    return lowered


def _fresh_buffer(module: Module, base: str, shape, dtype) -> Buffer:
    name = base
    counter = 0
    while name in module.buffers:
        counter += 1
        name = f"{base}_{counter}"
    return module.add_buffer(name, shape, dtype)


def _lower_op(op: Op, module: Module) -> List[Op]:
    if isinstance(op, TorchConv2dOp):
        return [
            FillOp(op.output, 0.0),
            Conv2DNchwFchwOp(op.input, op.weight, op.output, op.stride),
        ]
    if isinstance(op, TorchMatmulOp):
        return [FillOp(op.output, 0.0), MatmulOp(op.a, op.b, op.output)]
    if isinstance(op, TorchReluOp):
        return [ElementwiseOp("relu", [op.input], op.output)]
    if isinstance(op, TorchSoftmaxOp):
        return _lower_softmax(op.input, op.output, module)
    if isinstance(op, TorchSdpaOp):
        return _lower_sdpa(op, module)
    # Already-lowered ops (linalg, affine, polyufc markers) pass through.
    return [op]


def _lower_softmax(
    source: Buffer, output: Buffer, module: Module
) -> List[Op]:
    dtype = source.dtype
    row_shape = source.shape[:-1]
    if not row_shape:
        raise IRError("softmax over rank-1 buffers needs rank >= 2")
    row_max = _fresh_buffer(module, f"{source.name}_rowmax", row_shape, dtype)
    shifted = _fresh_buffer(module, f"{source.name}_shifted", source.shape, dtype)
    row_sum = _fresh_buffer(module, f"{source.name}_rowsum", row_shape, dtype)
    return [
        ReduceOp("max", source, row_max),
        BroadcastCombineOp("sub", source, row_max, shifted),
        ElementwiseOp("exp", [shifted], shifted),
        ReduceOp("sum", shifted, row_sum),
        BroadcastCombineOp("div", shifted, row_sum, output),
    ]


def _lower_sdpa(op: TorchSdpaOp, module: Module) -> List[Op]:
    batch, heads, seq, _head_dim = op.query.shape
    dtype = op.query.dtype
    scores = _fresh_buffer(
        module, f"{op.output.name}_scores", (batch, heads, seq, seq), dtype
    )
    probs = _fresh_buffer(
        module, f"{op.output.name}_probs", (batch, heads, seq, seq), dtype
    )
    ops: List[Op] = [
        FillOp(scores, 0.0),
        BatchMatmulOp(op.query, op.key, scores, transpose_b=True),
        ElementwiseOp("scale", [scores], scores, scalar=op.scale),
    ]
    ops.extend(_lower_softmax(scores, probs, module))
    ops.append(FillOp(op.output, 0.0))
    ops.append(BatchMatmulOp(probs, op.value, op.output))
    return ops
