"""Lowering passes between dialect levels."""

from repro.ir.lowering.torch_to_linalg import lower_torch_to_linalg
from repro.ir.lowering.linalg_to_affine import lower_linalg_to_affine

__all__ = ["lower_torch_to_linalg", "lower_linalg_to_affine"]
