"""Textual parser for the affine-level IR (the printer's inverse).

Parses the subset of the textual form that :func:`repro.ir.printer.
print_module` emits for affine-level modules -- memref declarations,
params, ``affine.for``/``affine.parallel`` with composite max/min bounds,
loads/stores, arith ops, and ``polyufc.set_uncore_cap`` markers -- so
printed modules round-trip:

    parse_module(print_module(m))  ==  m   (structurally)

Useful for golden-file tests, for pasting kernels into issues, and as the
contract that the printer output is complete.
"""

from __future__ import annotations

import re
from typing import Dict, List, Optional, Tuple

from repro.ir.core import Buffer, ElementType, F16, F32, F64, I32, IRError, Module, Value
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.ir.dialects.polyufc import SetUncoreCapOp
from repro.isllite import LinExpr

_TYPES: Dict[str, ElementType] = {
    "f16": F16, "f32": F32, "f64": F64, "i32": I32
}

_MODULE_RE = re.compile(r"^module @([\w.\-]+) \{$")
_MEMREF_RE = re.compile(r"^memref @([\w.\-]+) : memref<(.+)x(\w+)>$")
_PARAM_RE = re.compile(r"^param (\w+) = (-?\d+)$")
_FOR_RE = re.compile(
    r"^(affine\.for|affine\.parallel) %(\w+) = (.+) to (.+) step (\d+) \{$"
)
_LOAD_RE = re.compile(r"^%(\w+) = affine\.load @([\w.\-]+)\[(.*)\]$")
_STORE_RE = re.compile(r"^affine\.store %(\w+), @([\w.\-]+)\[(.*)\]$")
_CONST_RE = re.compile(r"^%(\w+) = arith\.constant (.+)$")
_BINARY_RE = re.compile(r"^%(\w+) = arith\.(\w+) %(\w+), %(\w+)$")
_UNARY_RE = re.compile(r"^%(\w+) = arith\.(\w+) %(\w+)$")
_CAP_RE = re.compile(
    r"^polyufc\.set_uncore_cap \{ freq_ghz = ([\d.]+)"
    r'(?: reason="([^"]*)")? \}$'
)


class ParseError(IRError):
    """Input text outside the supported affine textual subset."""


def parse_expr(text: str) -> LinExpr:
    """Parse an affine expression: ``2*i + j - 3``, ``n - 1``, ``5``."""
    text = text.strip()
    if not text:
        raise ParseError("empty affine expression")
    normalized = text.replace("-", "+-").replace("++", "+")
    if normalized.startswith("+"):
        normalized = normalized[1:]
    expr = LinExpr.cst(0)
    for term in normalized.split("+"):
        term = term.strip()
        if not term:
            continue
        sign = 1
        if term.startswith("-"):
            sign = -1
            term = term[1:].strip()
        if "*" in term:
            coeff_text, name = term.split("*", 1)
            coeff_text = coeff_text.strip()
            name = name.strip()
            if not re.fullmatch(r"\d+", coeff_text) or not re.fullmatch(
                r"\w+", name
            ):
                raise ParseError(f"cannot parse affine term {term!r}")
            expr = expr + LinExpr.var(name, sign * int(coeff_text))
        elif re.fullmatch(r"\d+", term):
            expr = expr + sign * int(term)
        elif re.fullmatch(r"\w+", term):
            expr = expr + LinExpr.var(term, sign)
        else:
            raise ParseError(f"cannot parse affine term {term!r}")
    return expr


def _parse_bound(text: str) -> List[LinExpr]:
    text = text.strip()
    for tag in ("max", "min"):
        if text.startswith(f"{tag}(") and text.endswith(")"):
            inner = text[len(tag) + 1 : -1]
            return [parse_expr(part) for part in inner.split(",")]
    return [parse_expr(text)]


def _split_subscripts(text: str) -> List[LinExpr]:
    text = text.strip()
    if not text:
        return []
    return [parse_expr(part) for part in text.split(",")]


class _Parser:
    def __init__(self, text: str):
        self.lines = [line.strip() for line in text.splitlines()]
        self.lines = [line for line in self.lines if line]
        self.position = 0
        self.module: Optional[Module] = None
        self.values: Dict[str, Value] = {}

    def peek(self) -> Optional[str]:
        if self.position < len(self.lines):
            return self.lines[self.position]
        return None

    def advance(self) -> str:
        line = self.lines[self.position]
        self.position += 1
        return line

    def parse(self) -> Module:
        header = self.advance()
        match = _MODULE_RE.match(header)
        if not match:
            raise ParseError(f"expected module header, got {header!r}")
        self.module = Module(match.group(1))
        while True:
            line = self.peek()
            if line is None:
                raise ParseError("unterminated module")
            if line == "}":
                self.advance()
                break
            self.parse_top_level()
        return self.module

    def parse_top_level(self) -> None:
        line = self.peek()
        memref = _MEMREF_RE.match(line)
        if memref:
            self.advance()
            name, dims_text, type_name = memref.groups()
            dtype = _TYPES.get(type_name)
            if dtype is None:
                raise ParseError(f"unknown element type {type_name!r}")
            shape = tuple(int(d) for d in dims_text.split("x"))
            self.module.add_buffer(name, shape, dtype)
            return
        param = _PARAM_RE.match(line)
        if param:
            self.advance()
            self.module.set_param(param.group(1), int(param.group(2)))
            return
        cap = _CAP_RE.match(line)
        if cap:
            self.advance()
            self.module.append(
                SetUncoreCapOp(float(cap.group(1)), cap.group(2) or "")
            )
            return
        if _FOR_RE.match(line):
            self.module.append(self.parse_loop())
            return
        raise ParseError(f"unexpected top-level line {line!r}")

    def parse_loop(self) -> AffineForOp:
        match = _FOR_RE.match(self.advance())
        tag, iv_name, lower_text, upper_text, step = match.groups()
        loop = AffineForOp(
            iv_name,
            _parse_bound(lower_text),
            _parse_bound(upper_text),
            int(step),
            parallel=(tag == "affine.parallel"),
        )
        while True:
            line = self.peek()
            if line is None:
                raise ParseError(f"unterminated loop %{iv_name}")
            if line == "}":
                self.advance()
                return loop
            loop.body.append(self.parse_body_op())

    def parse_body_op(self):
        line = self.peek()
        if _FOR_RE.match(line):
            return self.parse_loop()
        self.advance()
        load = _LOAD_RE.match(line)
        if load:
            result_name, buffer_name, subscripts = load.groups()
            op = AffineLoadOp(
                self._buffer(buffer_name), _split_subscripts(subscripts)
            )
            self.values[result_name] = op.result
            return op
        store = _STORE_RE.match(line)
        if store:
            value_name, buffer_name, subscripts = store.groups()
            return AffineStoreOp(
                self._value(value_name),
                self._buffer(buffer_name),
                _split_subscripts(subscripts),
            )
        const = _CONST_RE.match(line)
        if const:
            op = arith.ConstantOp(float(const.group(2)))
            self.values[const.group(1)] = op.result
            return op
        binary = _BINARY_RE.match(line)
        if binary and binary.group(2) in arith.BINARY_KINDS:
            result_name, kind, lhs, rhs = binary.groups()
            op = arith.BinaryOp(kind, self._value(lhs), self._value(rhs))
            self.values[result_name] = op.result
            return op
        unary = _UNARY_RE.match(line)
        if unary and unary.group(2) in arith.UNARY_KINDS:
            result_name, kind, operand = unary.groups()
            op = arith.UnaryOp(kind, self._value(operand))
            self.values[result_name] = op.result
            return op
        cap = _CAP_RE.match(line)
        if cap:
            return SetUncoreCapOp(float(cap.group(1)), cap.group(2) or "")
        raise ParseError(f"cannot parse op line {line!r}")

    def _buffer(self, name: str) -> Buffer:
        buffer = self.module.buffers.get(name)
        if buffer is None:
            raise ParseError(f"use of undeclared buffer @{name}")
        return buffer

    def _value(self, name: str) -> Value:
        value = self.values.get(name)
        if value is None:
            raise ParseError(f"use of undefined value %{name}")
        return value


def parse_module(text: str) -> Module:
    """Parse an affine-level module from its printed textual form."""
    return _Parser(text).parse()
