"""The ``affine`` dialect: loop nests with affine bounds and accesses.

Loop bounds and access subscripts are :class:`repro.isllite.LinExpr`
expressions over enclosing induction-variable names and module parameters,
which is exactly the class of programs the polyhedral middle end
(:mod:`repro.poly`) can extract.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Sequence, Tuple

from repro.ir.core import Buffer, IRError, Module, Op, Region, Value
from repro.isllite import LinExpr


def _as_bound(bound) -> Tuple[LinExpr, ...]:
    """Coerce a bound spec (expr or list of exprs) to a tuple of LinExprs."""
    if isinstance(bound, (list, tuple)):
        exprs = tuple(LinExpr.coerce(b) for b in bound)
        if not exprs:
            raise IRError("bound list must not be empty")
        return exprs
    return (LinExpr.coerce(bound),)


class AffineForOp(Op):
    """``affine.for %iv = max(lowers) to min(uppers) step s``.

    ``lower`` is inclusive and ``upper`` exclusive, matching MLIR.  Like
    MLIR's affine.for, each bound may be a *list* of affine expressions:
    the effective lower bound is their maximum and the effective upper bound
    their minimum (tiled point loops need ``min(N, (t+1)*T)``).  The body
    region has one block argument, the induction variable; subscript and
    bound expressions refer to induction variables *by name*.
    """

    dialect = "affine"
    name = "for"

    def __init__(
        self,
        iv_name: str,
        lower,
        upper,
        step: int = 1,
        parallel: bool = False,
    ):
        if step <= 0:
            raise IRError(f"affine.for step must be positive, got {step}")
        iv = Value(name=iv_name)
        super().__init__(regions=[Region(args=[iv])])
        self.attrs["iv_name"] = iv_name
        self.attrs["lowers"] = _as_bound(lower)
        self.attrs["uppers"] = _as_bound(upper)
        self.attrs["step"] = int(step)
        self.attrs["parallel"] = bool(parallel)

    @property
    def iv_name(self) -> str:
        return self.attrs["iv_name"]

    @property
    def iv(self) -> Value:
        return self.body.args[0]

    @property
    def lowers(self) -> Tuple[LinExpr, ...]:
        return self.attrs["lowers"]

    @property
    def uppers(self) -> Tuple[LinExpr, ...]:
        return self.attrs["uppers"]

    @property
    def lower(self) -> LinExpr:
        """The single lower bound; raises if the bound is a max of several."""
        if len(self.lowers) != 1:
            raise IRError("composite lower bound; use .lowers")
        return self.lowers[0]

    @property
    def upper(self) -> LinExpr:
        """The single upper bound; raises if the bound is a min of several."""
        if len(self.uppers) != 1:
            raise IRError("composite upper bound; use .uppers")
        return self.uppers[0]

    @property
    def step(self) -> int:
        return self.attrs["step"]

    @property
    def parallel(self) -> bool:
        return self.attrs["parallel"]

    @property
    def body(self) -> Region:
        return self.regions[0]

    def eval_bounds(self, env: Dict[str, int]) -> Tuple[int, int]:
        """Concrete (inclusive lower, exclusive upper) under ``env``."""
        lower = max(expr.evaluate_int(env) for expr in self.lowers)
        upper = min(expr.evaluate_int(env) for expr in self.uppers)
        return lower, upper

    def trip_count(self, env: Dict[str, int]) -> int:
        lower, upper = self.eval_bounds(env)
        if upper <= lower:
            return 0
        return (upper - lower + self.step - 1) // self.step

    def buffers_read(self) -> List[Buffer]:
        reads: List[Buffer] = []
        for op in self.body.walk():
            if isinstance(op, AffineLoadOp):
                reads.append(op.buffer)
        return reads

    def buffers_written(self) -> List[Buffer]:
        writes: List[Buffer] = []
        for op in self.body.walk():
            if isinstance(op, AffineStoreOp):
                writes.append(op.buffer)
        return writes


class AffineLoadOp(Op):
    """``%r = affine.load %buffer[subscripts]``."""

    dialect = "affine"
    name = "load"

    def __init__(self, buffer: Buffer, indices: Sequence["LinExpr | int"]):
        super().__init__(num_results=1, result_dtype=buffer.dtype)
        self.buffer = buffer
        self.indices: Tuple[LinExpr, ...] = tuple(
            LinExpr.coerce(i) for i in indices
        )
        if len(self.indices) != buffer.rank:
            raise IRError(
                f"load of {buffer!r} with {len(self.indices)} subscripts"
            )

    def buffers_read(self) -> List[Buffer]:
        return [self.buffer]


class AffineStoreOp(Op):
    """``affine.store %value, %buffer[subscripts]``."""

    dialect = "affine"
    name = "store"

    def __init__(
        self, value: Value, buffer: Buffer, indices: Sequence["LinExpr | int"]
    ):
        super().__init__(operands=[value])
        self.buffer = buffer
        self.indices: Tuple[LinExpr, ...] = tuple(
            LinExpr.coerce(i) for i in indices
        )
        if len(self.indices) != buffer.rank:
            raise IRError(
                f"store to {buffer!r} with {len(self.indices)} subscripts"
            )

    @property
    def value(self) -> Value:
        return self.operands[0]

    def buffers_written(self) -> List[Buffer]:
        return [self.buffer]


def outer_loops(module: Module) -> List[AffineForOp]:
    """Top-level affine.for ops of a module, in program order."""
    return [op for op in module.ops if isinstance(op, AffineForOp)]


def loop_nest_depth(loop: AffineForOp) -> int:
    """Maximum affine.for nesting depth of the nest rooted at ``loop``."""
    deepest = 1
    for op in loop.body.ops:
        if isinstance(op, AffineForOp):
            deepest = max(deepest, 1 + loop_nest_depth(op))
    return deepest


def perfectly_nested_band(loop: AffineForOp) -> List[AffineForOp]:
    """The maximal perfectly-nested loop band starting at ``loop``.

    The band extends while the body consists of exactly one op which is
    itself an affine.for.
    """
    band = [loop]
    current = loop
    while len(current.body.ops) == 1 and isinstance(
        current.body.ops[0], AffineForOp
    ):
        current = current.body.ops[0]
        band.append(current)
    return band


def verify_affine(module: Module) -> None:
    """Contextual checks: subscripts/bounds only use visible iv names/params.

    :meth:`Module.verify` covers SSA and buffer registration; this adds the
    affine-specific name-scoping rules.
    """
    params = set(module.params)

    def check_expr(expr: LinExpr, visible: set, what: str) -> None:
        unknown = expr.names() - visible - params
        if unknown:
            raise IRError(f"{what} uses unknown names {sorted(unknown)}")

    def check_region(region: Region, visible: set) -> None:
        for op in region.ops:
            if isinstance(op, AffineForOp):
                for expr in op.lowers:
                    check_expr(expr, visible, f"{op!r} lower bound")
                for expr in op.uppers:
                    check_expr(expr, visible, f"{op!r} upper bound")
                if op.iv_name in visible:
                    raise IRError(f"shadowed induction variable {op.iv_name!r}")
                check_region(op.body, visible | {op.iv_name})
            elif isinstance(op, (AffineLoadOp, AffineStoreOp)):
                for index in op.indices:
                    check_expr(index, visible, f"{op!r} subscript")
            else:
                for region_ in op.regions:
                    check_region(region_, visible)

    for op in module.ops:
        if isinstance(op, AffineForOp):
            for expr in op.lowers:
                check_expr(expr, set(), f"{op!r} lower bound")
            for expr in op.uppers:
                check_expr(expr, set(), f"{op!r} upper bound")
            check_region(op.body, {op.iv_name})
        else:
            for region in op.regions:
                check_region(region, set())
