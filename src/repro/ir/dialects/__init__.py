"""IR dialects: torch, linalg, affine/arith and the polyufc cap dialect."""
