"""The ``polyufc`` dialect: uncore frequency cap markers.

The capping pass inserts :class:`SetUncoreCapOp` in front of kernels (top-
level affine/linalg ops).  At "code generation" the simulated hardware
interprets each marker as a call into the uncore frequency driver, charging
the per-cap overhead the paper measures (35us on BDW, 21us on RPL).
"""

from __future__ import annotations

from repro.ir.core import IRError, Op


class SetUncoreCapOp(Op):
    """``polyufc.set_uncore_cap { freq_ghz = ... }``."""

    dialect = "polyufc"
    name = "set_uncore_cap"

    def __init__(self, freq_ghz: float, reason: str = ""):
        super().__init__()
        if freq_ghz <= 0:
            raise IRError(f"non-positive frequency cap {freq_ghz}")
        self.attrs["freq_ghz"] = float(freq_ghz)
        self.attrs["reason"] = reason

    @property
    def freq_ghz(self) -> float:
        return self.attrs["freq_ghz"]

    @property
    def reason(self) -> str:
        return self.attrs["reason"]
