"""The ``arith`` dialect: scalar SSA arithmetic inside affine loop bodies."""

from __future__ import annotations

from repro.ir.core import ElementType, F64, IRError, Op, Value

#: Binary op kinds.  The paper's flop model is unitary (footnote 13): every
#: arith op counts as one flop regardless of kind and element type.
BINARY_KINDS = ("addf", "subf", "mulf", "divf", "maxf", "minf")
UNARY_KINDS = ("negf", "expf", "sqrtf", "absf", "relu")


class ConstantOp(Op):
    """``%r = arith.constant <value>`` -- zero flops."""

    dialect = "arith"
    name = "constant"

    def __init__(self, value: float, dtype: ElementType = F64):
        super().__init__(num_results=1, result_dtype=dtype)
        self.attrs["value"] = float(value)

    @property
    def value(self) -> float:
        return self.attrs["value"]

    def flops(self) -> int:
        return 0


class BinaryOp(Op):
    """``%r = arith.<kind> %lhs, %rhs`` -- one flop."""

    dialect = "arith"

    def __init__(self, kind: str, lhs: Value, rhs: Value):
        if kind not in BINARY_KINDS:
            raise IRError(f"unknown arith binary kind {kind!r}")
        super().__init__(operands=[lhs, rhs], num_results=1,
                         result_dtype=lhs.dtype)
        self.attrs["kind"] = kind

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.attrs["kind"]

    @property
    def kind(self) -> str:
        return self.attrs["kind"]

    @property
    def lhs(self) -> Value:
        return self.operands[0]

    @property
    def rhs(self) -> Value:
        return self.operands[1]

    def flops(self) -> int:
        return 1


class UnaryOp(Op):
    """``%r = arith.<kind> %operand`` -- one flop."""

    dialect = "arith"

    def __init__(self, kind: str, operand: Value):
        if kind not in UNARY_KINDS:
            raise IRError(f"unknown arith unary kind {kind!r}")
        super().__init__(operands=[operand], num_results=1,
                         result_dtype=operand.dtype)
        self.attrs["kind"] = kind

    @property
    def name(self) -> str:  # type: ignore[override]
        return self.attrs["kind"]

    @property
    def kind(self) -> str:
        return self.attrs["kind"]

    @property
    def operand(self) -> Value:
        return self.operands[0]

    def flops(self) -> int:
        return 1
