"""The ``linalg`` dialect: structured whole-buffer operations.

Every linalg op knows its canonical iteration space (:meth:`LinalgOp.
iteration_extents`) and its flop count under the paper's unitary model, so
the characterization pass can work at linalg granularity, and the
linalg->affine lowering (:mod:`repro.ir.lowering.linalg_to_affine`) emits a
loop nest whose arith-op count matches :meth:`LinalgOp.flops` exactly.
"""

from __future__ import annotations

from typing import List, Optional, Tuple

from repro.ir.core import Buffer, IRError, Module, Op

UNARY_EW_KINDS = ("exp", "relu", "neg", "copy", "scale", "add_scalar")
BINARY_EW_KINDS = ("add", "sub", "mul", "div", "max")
REDUCE_KINDS = ("sum", "max")


class LinalgOp(Op):
    """Base class for structured ops."""

    dialect = "linalg"

    def iteration_extents(self) -> Tuple[int, ...]:
        """Extents of the canonical loop nest implementing this op."""
        raise NotImplementedError

    def flops(self) -> int:
        """Total flop count (unitary model, matches the affine lowering)."""
        raise NotImplementedError

    def iteration_points(self) -> int:
        total = 1
        for extent in self.iteration_extents():
            total *= extent
        return total


class FillOp(LinalgOp):
    """``linalg.fill``: output[...] = constant."""

    name = "fill"

    def __init__(self, output: Buffer, value: float = 0.0):
        super().__init__()
        self.output = output
        self.attrs["value"] = float(value)

    @property
    def value(self) -> float:
        return self.attrs["value"]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]

    def iteration_extents(self) -> Tuple[int, ...]:
        return self.output.shape

    def flops(self) -> int:
        return 0


class MatmulOp(LinalgOp):
    """``linalg.matmul``: C[m,n] += A[m,k] * B[k,n] (output must be init'd).

    ``transpose_b`` reads B as [n,k], the layout sdpa's QK^T step needs.
    """

    name = "matmul"

    def __init__(
        self, a: Buffer, b: Buffer, c: Buffer, transpose_b: bool = False
    ):
        super().__init__()
        self.a, self.b, self.c = a, b, c
        self.attrs["transpose_b"] = bool(transpose_b)
        m, k = a.shape if a.rank == 2 else (None, None)
        if a.rank != 2 or b.rank != 2 or c.rank != 2:
            raise IRError("linalg.matmul needs rank-2 operands")
        bk, bn = (b.shape[1], b.shape[0]) if transpose_b else b.shape
        if c.shape != (m, bn) or k != bk:
            raise IRError(
                f"matmul shape mismatch: {a.shape} x {b.shape}"
                f"{'^T' if transpose_b else ''} -> {c.shape}"
            )

    @property
    def transpose_b(self) -> bool:
        return self.attrs["transpose_b"]

    def buffers_read(self) -> List[Buffer]:
        return [self.a, self.b, self.c]

    def buffers_written(self) -> List[Buffer]:
        return [self.c]

    def iteration_extents(self) -> Tuple[int, ...]:
        m, k = self.a.shape
        n = self.c.shape[1]
        return (m, n, k)

    def flops(self) -> int:
        return 2 * self.iteration_points()


class BatchMatmulOp(LinalgOp):
    """``linalg.batch_matmul``: C[b...,m,n] += A[b...,m,k] * B[b...,k,n].

    Leading dims (all but the last two) are batch dims and must agree.
    """

    name = "batch_matmul"

    def __init__(
        self, a: Buffer, b: Buffer, c: Buffer, transpose_b: bool = False
    ):
        super().__init__()
        self.a, self.b, self.c = a, b, c
        self.attrs["transpose_b"] = bool(transpose_b)
        if a.rank < 3 or a.rank != b.rank or a.rank != c.rank:
            raise IRError("linalg.batch_matmul needs equal ranks >= 3")
        if a.shape[:-2] != b.shape[:-2] or a.shape[:-2] != c.shape[:-2]:
            raise IRError("batch dims mismatch in batch_matmul")
        m, k = a.shape[-2:]
        bk, bn = (
            (b.shape[-1], b.shape[-2]) if transpose_b else b.shape[-2:]
        )
        if c.shape[-2:] != (m, bn) or k != bk:
            raise IRError(
                f"batch_matmul inner shape mismatch: {a.shape} x {b.shape}"
            )

    @property
    def transpose_b(self) -> bool:
        return self.attrs["transpose_b"]

    def buffers_read(self) -> List[Buffer]:
        return [self.a, self.b, self.c]

    def buffers_written(self) -> List[Buffer]:
        return [self.c]

    def iteration_extents(self) -> Tuple[int, ...]:
        m, k = self.a.shape[-2:]
        n = self.c.shape[-1]
        return self.a.shape[:-2] + (m, n, k)

    def flops(self) -> int:
        return 2 * self.iteration_points()


class Conv2DNchwFchwOp(LinalgOp):
    """``linalg.conv_2d_nchw_fchw``: O[n,f,oh,ow] += I[n,c,oh*sh+kh,ow*sw+kw] * K[f,c,kh,kw]."""

    name = "conv_2d_nchw_fchw"

    def __init__(
        self,
        input_: Buffer,
        kernel: Buffer,
        output: Buffer,
        stride: Tuple[int, int] = (1, 1),
    ):
        super().__init__()
        self.input = input_
        self.kernel = kernel
        self.output = output
        self.attrs["stride"] = (int(stride[0]), int(stride[1]))
        if input_.rank != 4 or kernel.rank != 4 or output.rank != 4:
            raise IRError("conv2d needs rank-4 operands")
        n, c, h, w = input_.shape
        f, kc, kh, kw = kernel.shape
        sh, sw = self.stride
        oh = (h - kh) // sh + 1
        ow = (w - kw) // sw + 1
        if kc != c:
            raise IRError(f"conv2d channel mismatch: input {c}, kernel {kc}")
        if output.shape != (n, f, oh, ow):
            raise IRError(
                f"conv2d output shape {output.shape}, expected {(n, f, oh, ow)}"
            )

    @property
    def stride(self) -> Tuple[int, int]:
        return self.attrs["stride"]

    def buffers_read(self) -> List[Buffer]:
        return [self.input, self.kernel, self.output]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]

    def iteration_extents(self) -> Tuple[int, ...]:
        n, f, oh, ow = self.output.shape
        _, c, kh, kw = self.kernel.shape
        return (n, f, oh, ow, c, kh, kw)

    def flops(self) -> int:
        return 2 * self.iteration_points()


class ElementwiseOp(LinalgOp):
    """``linalg.elemwise``: pointwise map over same-shape buffers.

    Unary kinds take one input (``scale``/``add_scalar`` use the ``scalar``
    attribute); binary kinds take two same-shape inputs.
    """

    name = "elemwise"

    def __init__(
        self,
        kind: str,
        inputs: List[Buffer],
        output: Buffer,
        scalar: Optional[float] = None,
    ):
        super().__init__()
        if kind in UNARY_EW_KINDS:
            if len(inputs) != 1:
                raise IRError(f"unary elemwise {kind!r} takes one input")
            if kind in ("scale", "add_scalar") and scalar is None:
                raise IRError(f"elemwise {kind!r} needs a scalar")
        elif kind in BINARY_EW_KINDS:
            if len(inputs) != 2:
                raise IRError(f"binary elemwise {kind!r} takes two inputs")
        else:
            raise IRError(f"unknown elemwise kind {kind!r}")
        for buffer in inputs:
            if buffer.shape != output.shape:
                raise IRError(
                    f"elemwise shape mismatch: {buffer.shape} vs {output.shape}"
                )
        self.inputs = list(inputs)
        self.output = output
        self.attrs["kind"] = kind
        self.attrs["scalar"] = scalar if scalar is None else float(scalar)

    @property
    def kind(self) -> str:
        return self.attrs["kind"]

    @property
    def scalar(self) -> Optional[float]:
        return self.attrs["scalar"]

    def buffers_read(self) -> List[Buffer]:
        return list(self.inputs)

    def buffers_written(self) -> List[Buffer]:
        return [self.output]

    def iteration_extents(self) -> Tuple[int, ...]:
        return self.output.shape

    def flops(self) -> int:
        if self.kind == "copy":
            return 0
        return self.iteration_points()


class ReduceOp(LinalgOp):
    """``linalg.reduce``: fold the last axis with sum or max."""

    name = "reduce"

    def __init__(self, kind: str, input_: Buffer, output: Buffer):
        super().__init__()
        if kind not in REDUCE_KINDS:
            raise IRError(f"unknown reduce kind {kind!r}")
        if input_.shape[:-1] != output.shape:
            raise IRError(
                f"reduce shape mismatch: {input_.shape} -> {output.shape}"
            )
        self.input = input_
        self.output = output
        self.attrs["kind"] = kind

    @property
    def kind(self) -> str:
        return self.attrs["kind"]

    def buffers_read(self) -> List[Buffer]:
        return [self.input, self.output]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]

    def iteration_extents(self) -> Tuple[int, ...]:
        return self.input.shape

    def flops(self) -> int:
        return self.iteration_points()


class BroadcastCombineOp(LinalgOp):
    """``linalg.broadcast_combine``: out[...,j] = in[...,j] <kind> reduced[...].

    Combines a tensor with a last-axis-reduced companion (softmax's subtract
    -max and divide-by-sum steps).
    """

    name = "broadcast_combine"

    def __init__(self, kind: str, input_: Buffer, reduced: Buffer, output: Buffer):
        super().__init__()
        if kind not in BINARY_EW_KINDS:
            raise IRError(f"unknown broadcast_combine kind {kind!r}")
        if input_.shape != output.shape:
            raise IRError("broadcast_combine input/output shapes differ")
        if reduced.shape != input_.shape[:-1]:
            raise IRError(
                f"broadcast_combine reduced shape {reduced.shape} != "
                f"{input_.shape[:-1]}"
            )
        self.input = input_
        self.reduced = reduced
        self.output = output
        self.attrs["kind"] = kind

    @property
    def kind(self) -> str:
        return self.attrs["kind"]

    def buffers_read(self) -> List[Buffer]:
        return [self.input, self.reduced]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]

    def iteration_extents(self) -> Tuple[int, ...]:
        return self.input.shape

    def flops(self) -> int:
        return self.iteration_points()


def linalg_ops(module: Module) -> List[LinalgOp]:
    """Top-level linalg ops of a module, in program order."""
    return [op for op in module.ops if isinstance(op, LinalgOp)]
