"""The ``torch`` dialect: model-level operations.

These are the coarse ops the torch-mlir frontend would produce; each bundles
several linalg ops (the torch->linalg lowering makes the decomposition
explicit, which is what drives the paper's multi-level phase-change study).
"""

from __future__ import annotations

import math
from typing import List, Optional, Tuple

from repro.ir.core import Buffer, IRError, Op


class TorchOp(Op):
    """Base class for torch-dialect ops."""

    dialect = "torch"


class TorchConv2dOp(TorchOp):
    """``torch.conv2d`` in NCHW/FCHW layout (no padding; stride supported)."""

    name = "conv2d"

    def __init__(
        self,
        input_: Buffer,
        weight: Buffer,
        output: Buffer,
        stride: Tuple[int, int] = (1, 1),
    ):
        super().__init__()
        self.input = input_
        self.weight = weight
        self.output = output
        self.attrs["stride"] = (int(stride[0]), int(stride[1]))

    @property
    def stride(self) -> Tuple[int, int]:
        return self.attrs["stride"]

    def buffers_read(self) -> List[Buffer]:
        return [self.input, self.weight]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]


class TorchMatmulOp(TorchOp):
    """``torch.matmul`` for rank-2 operands (the LM-head projection)."""

    name = "matmul"

    def __init__(self, a: Buffer, b: Buffer, output: Buffer):
        super().__init__()
        if a.rank != 2 or b.rank != 2 or output.rank != 2:
            raise IRError("torch.matmul reproduction supports rank-2 only")
        self.a, self.b, self.output = a, b, output

    def buffers_read(self) -> List[Buffer]:
        return [self.a, self.b]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]


class TorchSoftmaxOp(TorchOp):
    """``torch.softmax`` along the last dimension."""

    name = "softmax"

    def __init__(self, input_: Buffer, output: Buffer):
        super().__init__()
        if input_.shape != output.shape:
            raise IRError("softmax input/output shapes differ")
        self.input = input_
        self.output = output

    def buffers_read(self) -> List[Buffer]:
        return [self.input]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]


class TorchSdpaOp(TorchOp):
    """``torch.sdpa``: scaled dot-product attention.

    Q, K, V are ``(batch, heads, seq, head_dim)``; the output has the same
    shape.  ``scale`` defaults to ``1/sqrt(head_dim)``.
    """

    name = "sdpa"

    def __init__(
        self,
        query: Buffer,
        key: Buffer,
        value: Buffer,
        output: Buffer,
        scale: Optional[float] = None,
    ):
        super().__init__()
        for buffer in (query, key, value, output):
            if buffer.rank != 4:
                raise IRError("sdpa operands must be rank-4 (B, H, S, D)")
        if not (query.shape == key.shape == value.shape == output.shape):
            raise IRError("sdpa reproduction needs equal Q/K/V/O shapes")
        self.query, self.key, self.value = query, key, value
        self.output = output
        head_dim = query.shape[-1]
        self.attrs["scale"] = (
            float(scale) if scale is not None else 1.0 / math.sqrt(head_dim)
        )

    @property
    def scale(self) -> float:
        return self.attrs["scale"]

    def buffers_read(self) -> List[Buffer]:
        return [self.query, self.key, self.value]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]


class TorchReluOp(TorchOp):
    """``torch.relu``."""

    name = "relu"

    def __init__(self, input_: Buffer, output: Buffer):
        super().__init__()
        if input_.shape != output.shape:
            raise IRError("relu input/output shapes differ")
        self.input = input_
        self.output = output

    def buffers_read(self) -> List[Buffer]:
        return [self.input]

    def buffers_written(self) -> List[Buffer]:
        return [self.output]
