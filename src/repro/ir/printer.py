"""Textual printer producing MLIR-flavoured output for any dialect level."""

from __future__ import annotations

from typing import Dict, List

from repro.ir.core import Module, Op, Value
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.ir.dialects.linalg import LinalgOp
from repro.ir.dialects.polyufc import SetUncoreCapOp
from repro.ir.dialects.torch_d import TorchOp


def print_module(module: Module) -> str:
    """Render the whole module as indented text."""
    printer = _Printer()
    lines = [f"module @{module.name} {{"]
    for name, buffer in module.buffers.items():
        dims = "x".join(str(s) for s in buffer.shape)
        lines.append(f"  memref @{name} : memref<{dims}x{buffer.dtype!r}>")
    for param, value in module.params.items():
        lines.append(f"  param {param} = {value}")
    for op in module.ops:
        lines.extend(printer.print_op(op, indent=1))
    lines.append("}")
    return "\n".join(lines)


class _Printer:
    def __init__(self):
        self._names: Dict[int, str] = {}
        self._counter = 0

    def _value(self, value: Value) -> str:
        key = id(value)
        if key not in self._names:
            self._names[key] = f"%{self._counter}"
            self._counter += 1
        return self._names[key]

    def print_op(self, op: Op, indent: int) -> List[str]:
        pad = "  " * indent
        if isinstance(op, AffineForOp):
            tag = "affine.parallel" if op.parallel else "affine.for"
            lower = (
                repr(op.lowers[0])
                if len(op.lowers) == 1
                else "max(" + ", ".join(repr(e) for e in op.lowers) + ")"
            )
            upper = (
                repr(op.uppers[0])
                if len(op.uppers) == 1
                else "min(" + ", ".join(repr(e) for e in op.uppers) + ")"
            )
            head = (
                f"{pad}{tag} %{op.iv_name} = {lower} to "
                f"{upper} step {op.step} {{"
            )
            lines = [head]
            for inner in op.body.ops:
                lines.extend(self.print_op(inner, indent + 1))
            lines.append(f"{pad}}}")
            return lines
        if isinstance(op, AffineLoadOp):
            subscripts = ", ".join(repr(i) for i in op.indices)
            return [
                f"{pad}{self._value(op.result)} = affine.load "
                f"@{op.buffer.name}[{subscripts}]"
            ]
        if isinstance(op, AffineStoreOp):
            subscripts = ", ".join(repr(i) for i in op.indices)
            return [
                f"{pad}affine.store {self._value(op.value)}, "
                f"@{op.buffer.name}[{subscripts}]"
            ]
        if isinstance(op, arith.ConstantOp):
            return [
                f"{pad}{self._value(op.result)} = arith.constant {op.value}"
            ]
        if isinstance(op, arith.BinaryOp):
            return [
                f"{pad}{self._value(op.result)} = arith.{op.kind} "
                f"{self._value(op.lhs)}, {self._value(op.rhs)}"
            ]
        if isinstance(op, arith.UnaryOp):
            return [
                f"{pad}{self._value(op.result)} = arith.{op.kind} "
                f"{self._value(op.operand)}"
            ]
        if isinstance(op, SetUncoreCapOp):
            reason = f' reason="{op.reason}"' if op.reason else ""
            return [
                f"{pad}polyufc.set_uncore_cap {{ freq_ghz = "
                f"{op.freq_ghz:.1f}{reason} }}"
            ]
        if isinstance(op, (LinalgOp, TorchOp)):
            reads = ", ".join(f"@{b.name}" for b in op.buffers_read())
            writes = ", ".join(f"@{b.name}" for b in op.buffers_written())
            attrs = {
                key: value
                for key, value in op.attrs.items()
                if value not in (None, "", False)
            }
            attr_text = f" {attrs}" if attrs else ""
            return [
                f"{pad}{op.dialect}.{op.name} ins({reads}) "
                f"outs({writes}){attr_text}"
            ]
        return [f"{pad}{op!r}"]
