"""Core IR data structures: a miniature MLIR.

The IR models exactly what PolyUFC needs from MLIR:

* a :class:`Module` owning named :class:`Buffer` declarations (memrefs) and a
  straight-line list of top-level operations,
* :class:`Op` with operands (:class:`Value`), results, attributes and nested
  :class:`Region` bodies,
* dialects as ``Op`` subclasses (``torch.*`` in
  :mod:`repro.ir.dialects.torch_d`, ``linalg.*`` in
  :mod:`repro.ir.dialects.linalg`, ``affine.*``/``arith.*`` in
  :mod:`repro.ir.dialects.affine` and :mod:`repro.ir.dialects.arith`).

Programs at every level are executable through :mod:`repro.ir.interp`, which
is how the lowering passes are tested for semantic preservation.
"""

from __future__ import annotations

import itertools
from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Tuple


class IRError(Exception):
    """Malformed IR detected by construction-time checks or the verifier."""


class ElementType:
    """A scalar element type (f32, f64, ...)."""

    _registry: Dict[str, "ElementType"] = {}

    def __new__(cls, name: str, size_bytes: int):
        existing = cls._registry.get(name)
        if existing is not None:
            if existing.size_bytes != size_bytes:
                raise IRError(f"conflicting redefinition of type {name}")
            return existing
        instance = super().__new__(cls)
        instance.name = name
        instance.size_bytes = size_bytes
        cls._registry[name] = instance
        return instance

    def __repr__(self) -> str:
        return self.name


F16 = ElementType("f16", 2)
F32 = ElementType("f32", 4)
F64 = ElementType("f64", 8)
I32 = ElementType("i32", 4)


class Buffer:
    """A named multi-dimensional memref with static shape."""

    __slots__ = ("name", "shape", "dtype")

    def __init__(self, name: str, shape: Sequence[int], dtype: ElementType = F64):
        if not name:
            raise IRError("buffer needs a name")
        shape = tuple(int(s) for s in shape)
        if any(s <= 0 for s in shape):
            raise IRError(f"buffer {name}: non-positive extent in {shape}")
        self.name = name
        self.shape = shape
        self.dtype = dtype

    @property
    def rank(self) -> int:
        return len(self.shape)

    @property
    def num_elements(self) -> int:
        total = 1
        for extent in self.shape:
            total *= extent
        return total

    @property
    def size_bytes(self) -> int:
        return self.num_elements * self.dtype.size_bytes

    def strides(self) -> Tuple[int, ...]:
        """Row-major element strides."""
        strides = [1] * self.rank
        for axis in range(self.rank - 2, -1, -1):
            strides[axis] = strides[axis + 1] * self.shape[axis + 1]
        return tuple(strides)

    def __repr__(self) -> str:
        dims = "x".join(str(s) for s in self.shape)
        return f"memref<{dims}x{self.dtype!r}> @{self.name}"


class Value:
    """An SSA value produced by an op result or a region (loop) argument."""

    __slots__ = ("name", "producer", "dtype")
    _counter = itertools.count()

    def __init__(self, name: str = None, producer: "Op" = None,
                 dtype: ElementType = F64):
        self.name = name or f"v{next(Value._counter)}"
        self.producer = producer
        self.dtype = dtype

    def __repr__(self) -> str:
        return f"%{self.name}"


class Region:
    """A single-block region: an ordered list of ops plus block arguments."""

    __slots__ = ("ops", "args")

    def __init__(self, args: Sequence[Value] = (), ops: Sequence["Op"] = ()):
        self.args = list(args)
        self.ops = list(ops)

    def append(self, op: "Op") -> "Op":
        self.ops.append(op)
        return op

    def walk(self) -> Iterator["Op"]:
        for op in self.ops:
            yield op
            for region in op.regions:
                yield from region.walk()


class Op:
    """Base class for all operations."""

    name = "op"
    dialect = "builtin"

    def __init__(
        self,
        operands: Sequence[Value] = (),
        attrs: Dict = None,
        regions: Sequence[Region] = (),
        num_results: int = 0,
        result_dtype: ElementType = F64,
    ):
        self.operands = list(operands)
        self.attrs = dict(attrs or {})
        self.regions = list(regions)
        self.results = [
            Value(producer=self, dtype=result_dtype) for _ in range(num_results)
        ]

    @property
    def result(self) -> Value:
        if len(self.results) != 1:
            raise IRError(f"{self.name} has {len(self.results)} results")
        return self.results[0]

    def buffers_read(self) -> List[Buffer]:
        """Buffers this op may read; dialects override."""
        return []

    def buffers_written(self) -> List[Buffer]:
        """Buffers this op may write; dialects override."""
        return []

    def verify(self, module: "Module") -> None:
        """Dialect-specific structural checks; default accepts."""

    def walk(self) -> Iterator["Op"]:
        yield self
        for region in self.regions:
            yield from region.walk()

    def __repr__(self) -> str:
        return f"{self.dialect}.{self.name}"


class Module:
    """A compilation unit: buffers, symbolic parameters, and top-level ops."""

    def __init__(self, name: str = "module"):
        self.name = name
        self.buffers: Dict[str, Buffer] = {}
        self.params: Dict[str, int] = {}
        self.ops: List[Op] = []

    # -- construction ------------------------------------------------------

    def add_buffer(
        self, name: str, shape: Sequence[int], dtype: ElementType = F64
    ) -> Buffer:
        if name in self.buffers:
            raise IRError(f"duplicate buffer {name!r}")
        buffer = Buffer(name, shape, dtype)
        self.buffers[name] = buffer
        return buffer

    def set_param(self, name: str, value: int) -> None:
        self.params[name] = int(value)

    def append(self, op: Op) -> Op:
        self.ops.append(op)
        return op

    # -- traversal ---------------------------------------------------------

    def walk(self) -> Iterator[Op]:
        for op in self.ops:
            yield from op.walk()

    def top_level_ops(self) -> List[Op]:
        return list(self.ops)

    def clone_structure(self, name: str = None) -> "Module":
        """A new module sharing buffer declarations but with no ops."""
        fresh = Module(name or self.name)
        fresh.buffers = dict(self.buffers)
        fresh.params = dict(self.params)
        return fresh

    # -- verification ------------------------------------------------------

    def verify(self) -> None:
        """Check structural invariants of the whole module."""
        for op in self.walk():
            for buffer in op.buffers_read() + op.buffers_written():
                registered = self.buffers.get(buffer.name)
                if registered is not buffer:
                    raise IRError(
                        f"{op!r} uses unregistered buffer {buffer.name!r}"
                    )
            op.verify(self)
        self._verify_ssa()

    def _verify_ssa(self) -> None:
        defined = set()

        def check_region(region: Region, visible: set) -> None:
            local = set(visible)
            for arg in region.args:
                local.add(id(arg))
            for op in region.ops:
                for operand in op.operands:
                    if id(operand) not in local:
                        raise IRError(
                            f"{op!r} uses value {operand!r} before definition"
                        )
                for result in op.results:
                    local.add(id(result))
                for nested in op.regions:
                    check_region(nested, local)

        for op in self.ops:
            for operand in op.operands:
                if id(operand) not in defined:
                    raise IRError(
                        f"top-level {op!r} uses undefined value {operand!r}"
                    )
            for result in op.results:
                defined.add(id(result))
            for region in op.regions:
                check_region(region, defined)

    def __repr__(self) -> str:
        return f"<Module {self.name}: {len(self.ops)} ops, {len(self.buffers)} buffers>"
