"""A miniature multi-dialect IR (the MLIR substitute).

Public surface:

* :class:`Module`, :class:`Buffer`, :class:`Op`, :class:`Region`,
  :class:`Value` and element types from :mod:`repro.ir.core`,
* dialects under :mod:`repro.ir.dialects` (``torch``, ``linalg``,
  ``affine``/``arith``, ``polyufc``),
* :class:`AffineBuilder` for writing affine kernels by hand,
* :func:`run_module` -- the reference interpreter,
* :func:`print_module` -- the textual printer,
* lowering passes :func:`lower_torch_to_linalg` and
  :func:`lower_linalg_to_affine`.
"""

from repro.ir.core import (
    Buffer,
    ElementType,
    F16,
    F32,
    F64,
    I32,
    IRError,
    Module,
    Op,
    Region,
    Value,
)
from repro.ir.builder import AffineBuilder, as_index
from repro.ir.interp import init_buffers, run_module
from repro.ir.printer import print_module
from repro.ir.parser import ParseError, parse_expr, parse_module
from repro.ir.lowering import lower_linalg_to_affine, lower_torch_to_linalg

__all__ = [
    "Buffer",
    "ElementType",
    "F16",
    "F32",
    "F64",
    "I32",
    "IRError",
    "Module",
    "Op",
    "Region",
    "Value",
    "AffineBuilder",
    "as_index",
    "init_buffers",
    "run_module",
    "print_module",
    "ParseError",
    "parse_expr",
    "parse_module",
    "lower_linalg_to_affine",
    "lower_torch_to_linalg",
]
