"""Convenience builder for affine loop nests.

The benchmark suite writes PolyBench kernels directly at affine level; this
builder keeps those definitions close to the C source they mirror::

    b = AffineBuilder(module)
    with b.loop("i", 0, n):
        with b.loop("j", 0, n):
            x = b.load(A, ["i", "j"])
            b.store(b.mul(x, b.const(2.0)), A, ["i", "j"])
"""

from __future__ import annotations

from contextlib import contextmanager
from typing import List, Sequence, Union

from repro.ir.core import Buffer, Module, Value
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.isllite import LinExpr

IndexLike = Union[str, int, LinExpr]


def as_index(index: IndexLike) -> LinExpr:
    """Coerce a subscript: strings are induction-variable names."""
    if isinstance(index, str):
        return LinExpr.var(index)
    return LinExpr.coerce(index)


def _as_bound_spec(bound):
    """Coerce a loop bound: a single index-like or a list of them."""
    if isinstance(bound, (list, tuple)):
        return [as_index(b) for b in bound]
    return as_index(bound)


class AffineBuilder:
    """Builds affine nests into a module with an insertion-point stack."""

    def __init__(self, module: Module):
        self.module = module
        self._stack: List = [module]

    def _append(self, op):
        top = self._stack[-1]
        if isinstance(top, Module):
            top.append(op)
        else:
            top.body.append(op)
        return op

    @contextmanager
    def loop(
        self,
        iv_name: str,
        lower: IndexLike,
        upper: IndexLike,
        step: int = 1,
        parallel: bool = False,
    ):
        """Open an ``affine.for``; the body is built inside the ``with``.

        ``lower``/``upper`` may be lists (max/min composite bounds).
        """
        op = AffineForOp(
            iv_name, _as_bound_spec(lower), _as_bound_spec(upper), step, parallel
        )
        self._append(op)
        self._stack.append(op)
        try:
            yield op
        finally:
            self._stack.pop()

    # -- memory ------------------------------------------------------------

    def load(self, buffer: Buffer, indices: Sequence[IndexLike]) -> Value:
        op = self._append(AffineLoadOp(buffer, [as_index(i) for i in indices]))
        return op.result

    def store(
        self, value: Value, buffer: Buffer, indices: Sequence[IndexLike]
    ) -> None:
        self._append(
            AffineStoreOp(value, buffer, [as_index(i) for i in indices])
        )

    # -- arithmetic ----------------------------------------------------------

    def const(self, value: float) -> Value:
        return self._append(arith.ConstantOp(value)).result

    def _binary(self, kind: str, lhs: Value, rhs: Value) -> Value:
        return self._append(arith.BinaryOp(kind, lhs, rhs)).result

    def add(self, lhs: Value, rhs: Value) -> Value:
        return self._binary("addf", lhs, rhs)

    def sub(self, lhs: Value, rhs: Value) -> Value:
        return self._binary("subf", lhs, rhs)

    def mul(self, lhs: Value, rhs: Value) -> Value:
        return self._binary("mulf", lhs, rhs)

    def div(self, lhs: Value, rhs: Value) -> Value:
        return self._binary("divf", lhs, rhs)

    def maxf(self, lhs: Value, rhs: Value) -> Value:
        return self._binary("maxf", lhs, rhs)

    def minf(self, lhs: Value, rhs: Value) -> Value:
        return self._binary("minf", lhs, rhs)

    def neg(self, operand: Value) -> Value:
        return self._append(arith.UnaryOp("negf", operand)).result

    def exp(self, operand: Value) -> Value:
        return self._append(arith.UnaryOp("expf", operand)).result

    def sqrt(self, operand: Value) -> Value:
        return self._append(arith.UnaryOp("sqrtf", operand)).result
