"""Reference interpreter for all dialects, on numpy arrays.

``run_module`` executes a module at whatever abstraction level it is in
(torch, linalg, affine, or a mixture).  It is intentionally simple -- the
affine path walks loops one iteration at a time -- and exists to give every
lowering and every polyhedral transformation an executable semantics to be
tested against (interpret before == interpret after).
"""

from __future__ import annotations

import math
from typing import Dict, Optional

import numpy as np

from repro.ir.core import IRError, Module, Op, Value
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.ir.dialects.linalg import (
    BatchMatmulOp,
    BroadcastCombineOp,
    Conv2DNchwFchwOp,
    ElementwiseOp,
    FillOp,
    LinalgOp,
    MatmulOp,
    ReduceOp,
)
from repro.ir.dialects.polyufc import SetUncoreCapOp
from repro.ir.dialects.torch_d import (
    TorchConv2dOp,
    TorchMatmulOp,
    TorchReluOp,
    TorchSdpaOp,
    TorchSoftmaxOp,
)

_BINARY = {
    "addf": lambda a, b: a + b,
    "subf": lambda a, b: a - b,
    "mulf": lambda a, b: a * b,
    "divf": lambda a, b: a / b,
    "maxf": max,
    "minf": min,
}

_UNARY = {
    "negf": lambda a: -a,
    "expf": math.exp,
    "sqrtf": math.sqrt,
    "absf": abs,
    "relu": lambda a: a if a > 0 else 0.0,
}

_EW_BINARY = {
    "add": lambda a, b: a + b,
    "sub": lambda a, b: a - b,
    "mul": lambda a, b: a * b,
    "div": lambda a, b: a / b,
    "max": np.maximum,
}


def init_buffers(
    module: Module, seed: int = 0, provided: Optional[Dict[str, np.ndarray]] = None
) -> Dict[str, np.ndarray]:
    """Deterministically initialized arrays for every module buffer.

    Buffers in ``provided`` are copied; everything else gets reproducible
    pseudo-random contents so two interpretations of equivalent programs can
    be compared elementwise.
    """
    provided = provided or {}
    rng = np.random.default_rng(seed)
    arrays: Dict[str, np.ndarray] = {}
    for name, buffer in module.buffers.items():
        if name in provided:
            given = np.asarray(provided[name], dtype=np.float64)
            if given.shape != buffer.shape:
                raise IRError(
                    f"buffer {name!r}: provided shape {given.shape}, "
                    f"declared {buffer.shape}"
                )
            arrays[name] = given.copy()
        else:
            arrays[name] = rng.uniform(-1.0, 1.0, size=buffer.shape)
    return arrays


def run_module(
    module: Module,
    buffers: Optional[Dict[str, np.ndarray]] = None,
    seed: int = 0,
) -> Dict[str, np.ndarray]:
    """Execute the module; returns the final buffer contents by name."""
    arrays = init_buffers(module, seed=seed, provided=buffers)
    for op in module.ops:
        _execute(op, arrays, module)
    return arrays


def _execute(op: Op, arrays: Dict[str, np.ndarray], module: Module) -> None:
    if isinstance(op, AffineForOp):
        _run_affine_for(op, arrays, dict(module.params), {})
    elif isinstance(op, LinalgOp):
        _run_linalg(op, arrays)
    elif isinstance(
        op, (TorchConv2dOp, TorchMatmulOp, TorchSdpaOp, TorchSoftmaxOp, TorchReluOp)
    ):
        _run_torch(op, arrays)
    elif isinstance(op, SetUncoreCapOp):
        pass  # execution-model concern, not a semantic one
    else:
        raise IRError(f"interpreter cannot execute top-level {op!r}")


# -- affine ----------------------------------------------------------------


def _run_affine_for(
    loop: AffineForOp,
    arrays: Dict[str, np.ndarray],
    env: Dict[str, int],
    values: Dict[int, float],
) -> None:
    lower, upper = loop.eval_bounds(env)
    for iv in range(lower, upper, loop.step):
        env[loop.iv_name] = iv
        for op in loop.body.ops:
            _run_affine_op(op, arrays, env, values)
    env.pop(loop.iv_name, None)


def _run_affine_op(op, arrays, env, values) -> None:
    if isinstance(op, AffineForOp):
        _run_affine_for(op, arrays, env, values)
    elif isinstance(op, AffineLoadOp):
        index = tuple(expr.evaluate_int(env) for expr in op.indices)
        values[id(op.result)] = float(arrays[op.buffer.name][index])
    elif isinstance(op, AffineStoreOp):
        index = tuple(expr.evaluate_int(env) for expr in op.indices)
        arrays[op.buffer.name][index] = values[id(op.value)]
    elif isinstance(op, arith.ConstantOp):
        values[id(op.result)] = op.value
    elif isinstance(op, arith.BinaryOp):
        fn = _BINARY[op.kind]
        values[id(op.result)] = fn(values[id(op.lhs)], values[id(op.rhs)])
    elif isinstance(op, arith.UnaryOp):
        fn = _UNARY[op.kind]
        values[id(op.result)] = fn(values[id(op.operand)])
    elif isinstance(op, SetUncoreCapOp):
        pass
    else:
        raise IRError(f"interpreter cannot execute {op!r} inside affine.for")


# -- linalg ----------------------------------------------------------------


def _run_linalg(op: LinalgOp, arrays: Dict[str, np.ndarray]) -> None:
    if isinstance(op, FillOp):
        arrays[op.output.name][...] = op.value
    elif isinstance(op, MatmulOp):
        a = arrays[op.a.name]
        b = arrays[op.b.name]
        rhs = b.T if op.transpose_b else b
        arrays[op.c.name] += a @ rhs
    elif isinstance(op, BatchMatmulOp):
        a = arrays[op.a.name]
        b = arrays[op.b.name]
        rhs = np.swapaxes(b, -1, -2) if op.transpose_b else b
        arrays[op.c.name] += a @ rhs
    elif isinstance(op, Conv2DNchwFchwOp):
        _run_conv2d(
            arrays[op.input.name],
            arrays[op.kernel.name],
            arrays[op.output.name],
            op.stride,
        )
    elif isinstance(op, ElementwiseOp):
        _run_elementwise(op, arrays)
    elif isinstance(op, ReduceOp):
        source = arrays[op.input.name]
        if op.kind == "sum":
            arrays[op.output.name][...] = source.sum(axis=-1)
        else:
            arrays[op.output.name][...] = source.max(axis=-1)
    elif isinstance(op, BroadcastCombineOp):
        fn = _EW_BINARY[op.kind]
        big = arrays[op.input.name]
        reduced = arrays[op.reduced.name][..., np.newaxis]
        arrays[op.output.name][...] = fn(big, reduced)
    else:
        raise IRError(f"interpreter cannot execute linalg op {op!r}")


def _run_conv2d(inp, kernel, out, stride) -> None:
    n, f, oh, ow = out.shape
    _, c, kh, kw = kernel.shape
    sh, sw = stride
    for y in range(oh):
        for x in range(ow):
            patch = inp[:, :, y * sh : y * sh + kh, x * sw : x * sw + kw]
            # (n, c, kh, kw) x (f, c, kh, kw) -> (n, f)
            out[:, :, y, x] += np.einsum("nchw,fchw->nf", patch, kernel)


def _run_elementwise(op: ElementwiseOp, arrays) -> None:
    out = arrays[op.output.name]
    first = arrays[op.inputs[0].name]
    kind = op.kind
    if kind == "exp":
        out[...] = np.exp(first)
    elif kind == "relu":
        out[...] = np.maximum(first, 0.0)
    elif kind == "neg":
        out[...] = -first
    elif kind == "copy":
        out[...] = first
    elif kind == "scale":
        out[...] = first * op.scalar
    elif kind == "add_scalar":
        out[...] = first + op.scalar
    else:
        second = arrays[op.inputs[1].name]
        out[...] = _EW_BINARY[kind](first, second)


# -- torch -----------------------------------------------------------------


def _run_torch(op, arrays: Dict[str, np.ndarray]) -> None:
    if isinstance(op, TorchConv2dOp):
        arrays[op.output.name][...] = 0.0
        _run_conv2d(
            arrays[op.input.name],
            arrays[op.weight.name],
            arrays[op.output.name],
            op.stride,
        )
    elif isinstance(op, TorchMatmulOp):
        arrays[op.output.name][...] = arrays[op.a.name] @ arrays[op.b.name]
    elif isinstance(op, TorchSoftmaxOp):
        arrays[op.output.name][...] = _softmax(arrays[op.input.name])
    elif isinstance(op, TorchReluOp):
        arrays[op.output.name][...] = np.maximum(arrays[op.input.name], 0.0)
    elif isinstance(op, TorchSdpaOp):
        q = arrays[op.query.name]
        k = arrays[op.key.name]
        v = arrays[op.value.name]
        scores = (q @ np.swapaxes(k, -1, -2)) * op.scale
        arrays[op.output.name][...] = _softmax(scores) @ v
    else:
        raise IRError(f"interpreter cannot execute torch op {op!r}")


def _softmax(x: np.ndarray) -> np.ndarray:
    shifted = x - x.max(axis=-1, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=-1, keepdims=True)
