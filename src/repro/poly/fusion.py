"""Pointwise loop fusion of adjacent top-level nests.

Pluto fuses loop nests to improve locality; the benefit PolyUFC cares about
is that fusion removes intermediate-buffer round trips through the cache
hierarchy, raising Operational Intensity (a fused elementwise chain reads
its input once instead of once per stage).

``fuse_pointwise_nests`` applies the conservative *pointwise* fusion rule:
two adjacent perfect nests are fused when they have identical rectangular
iteration spaces and every buffer involved in a cross-nest dependence is
accessed with *identical subscripts* (modulo positional renaming of the
induction variables).  Under that rule iteration ``(i...)`` of the second
nest depends only on iteration ``(i...)`` of the first, so concatenating
the bodies preserves all dependences.  This covers exactly the elementwise
runs that dominate sdpa's BB* phase.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Tuple

from repro.ir.core import IRError, Module, Op, Value
from repro.ir.dialects import arith
from repro.ir.dialects.affine import (
    AffineForOp,
    AffineLoadOp,
    AffineStoreOp,
    perfectly_nested_band,
)
from repro.isllite import LinExpr


def _band_signature(
    root: AffineForOp, params: Dict[str, int]
) -> Optional[Tuple[Tuple[int, int], ...]]:
    """Constant (lower, upper) per band level; None if non-rectangular."""
    band = perfectly_nested_band(root)
    leaf = band[-1]
    if any(isinstance(op, AffineForOp) for op in leaf.body.ops):
        return None
    signature: List[Tuple[int, int]] = []
    iv_names = {loop.iv_name for loop in band}
    env = dict(params)
    for loop in band:
        if loop.step != 1:
            return None
        names = set()
        for expr in loop.lowers + loop.uppers:
            names |= expr.names()
        if names & iv_names or names - set(env):
            return None
        signature.append(loop.eval_bounds(env))
    return tuple(signature)


def _body_accesses(root: AffineForOp):
    band = perfectly_nested_band(root)
    return band, [
        op
        for op in band[-1].body.ops
        if isinstance(op, (AffineLoadOp, AffineStoreOp))
    ]


def _renamed(expr: LinExpr, mapping: Dict[str, str]) -> LinExpr:
    return expr.rename(mapping)


def _cross_dependences_pointwise(
    first: AffineForOp, second: AffineForOp
) -> bool:
    """True when every cross-nest conflicting buffer is accessed with
    identical subscripts (after positional iv renaming)."""
    band_a, accesses_a = _body_accesses(first)
    band_b, accesses_b = _body_accesses(second)
    rename = {
        loop_b.iv_name: loop_a.iv_name
        for loop_a, loop_b in zip(band_a, band_b)
    }
    for access_a in accesses_a:
        for access_b in accesses_b:
            if access_a.buffer is not access_b.buffer:
                continue
            is_write = isinstance(access_a, AffineStoreOp) or isinstance(
                access_b, AffineStoreOp
            )
            if not is_write:
                continue
            for expr_a, expr_b in zip(access_a.indices, access_b.indices):
                if expr_a != _renamed(expr_b, rename):
                    return False
    return True


def _clone_body(
    ops: List[Op], rename: Dict[str, str]
) -> List[Op]:
    """Clone a flat (loop-free) body, renaming subscript ivs."""
    value_map: Dict[int, Value] = {}

    def mapped(value: Value) -> Value:
        return value_map.get(id(value), value)

    clones: List[Op] = []
    for op in ops:
        if isinstance(op, AffineLoadOp):
            clone = AffineLoadOp(
                op.buffer, [_renamed(expr, rename) for expr in op.indices]
            )
            value_map[id(op.result)] = clone.result
        elif isinstance(op, AffineStoreOp):
            clone = AffineStoreOp(
                mapped(op.value),
                op.buffer,
                [_renamed(expr, rename) for expr in op.indices],
            )
        elif isinstance(op, arith.ConstantOp):
            clone = arith.ConstantOp(op.value)
            value_map[id(op.result)] = clone.result
        elif isinstance(op, arith.BinaryOp):
            clone = arith.BinaryOp(op.kind, mapped(op.lhs), mapped(op.rhs))
            value_map[id(op.result)] = clone.result
        elif isinstance(op, arith.UnaryOp):
            clone = arith.UnaryOp(op.kind, mapped(op.operand))
            value_map[id(op.result)] = clone.result
        else:
            raise IRError(f"cannot clone {op!r} during fusion")
        clones.append(clone)
    return clones


def _fuse_pair(first: AffineForOp, second: AffineForOp) -> AffineForOp:
    band_a, _ = _body_accesses(first)
    band_b, _ = _body_accesses(second)
    rename = {
        loop_b.iv_name: loop_a.iv_name
        for loop_a, loop_b in zip(band_a, band_b)
    }
    fused_chain: List[AffineForOp] = []
    for loop in band_a:
        fresh = AffineForOp(
            loop.iv_name, list(loop.lowers), list(loop.uppers), loop.step,
            loop.parallel,
        )
        fused_chain.append(fresh)
    for outer, inner in zip(fused_chain, fused_chain[1:]):
        outer.body.ops = [inner]
    fused_chain[-1].body.ops = list(band_a[-1].body.ops) + _clone_body(
        band_b[-1].body.ops, rename
    )
    root = fused_chain[0]
    root.attrs.update(
        {
            key: first.attrs[key]
            for key in ("source_op", "source_index",
                        "torch_source_op", "torch_source_index")
            if key in first.attrs
        }
    )
    root.attrs["fused"] = True
    return root


def fuse_pointwise_nests(module: Module) -> Tuple[Module, int]:
    """Fuse adjacent pointwise-compatible nests until a fixpoint.

    Returns the new module (buffers shared) and the number of fusions.
    """
    ops = list(module.ops)
    fused_count = 0
    changed = True
    while changed:
        changed = False
        for index in range(len(ops) - 1):
            first, second = ops[index], ops[index + 1]
            if not (
                isinstance(first, AffineForOp)
                and isinstance(second, AffineForOp)
            ):
                continue
            sig_a = _band_signature(first, module.params)
            sig_b = _band_signature(second, module.params)
            if sig_a is None or sig_a != sig_b:
                continue
            if not _cross_dependences_pointwise(first, second):
                continue
            ops[index : index + 2] = [_fuse_pair(first, second)]
            fused_count += 1
            changed = True
            break
    result = module.clone_structure(f"{module.name}.fused")
    for op in ops:
        result.append(op)
    return result, fused_count
