"""Pluto-lite: legality-checked rectangular tiling + outer parallelization.

``tile_and_parallelize`` reproduces the paper's compiler baseline ("parallel
tiled kernels optimized with Pluto, default tile size 32"):

* per top-level nest, the maximal outermost fully-permutable band (from the
  dependence direction vectors) is strip-mine-and-interchange tiled,
* tile loops are emitted as *tile-index* loops with unit step, and point
  loops get ``max``/``min`` composite bounds, so the result stays inside the
  affine/SCoP-extractable class,
* the outermost parallelizable loop of each nest is marked ``parallel``
  (the affine-parallelize / scf-to-openmp step of the paper's flow).

Inner loop bodies are *shared* with the input module (they are not mutated);
only the loop skeleton is rebuilt.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from repro.ir.core import IRError, Module
from repro.ir.dialects.affine import AffineForOp, perfectly_nested_band
from repro.isllite import LinExpr
from repro.poly.dependences import (
    Dependence,
    is_parallel_dim,
    nest_dependences,
    permutable_prefix_depth,
)
from repro.poly.scop import extract_scop

DEFAULT_TILE_SIZE = 32


@dataclass
class TileInfo:
    """What happened to one top-level nest."""

    root_index: int
    band_depth: int
    tiled_depth: int
    tile_size: int
    parallel_dim: Optional[int]
    dependences: List[Dependence] = field(default_factory=list)


def tile_and_parallelize(
    module: Module,
    tile_size: int = DEFAULT_TILE_SIZE,
    parallelize: bool = True,
    min_tile_depth: int = 2,
    min_trip_count: int = 2,
) -> Tuple[Module, List[TileInfo]]:
    """Tile and parallelize every top-level affine nest of ``module``.

    Returns the transformed module (buffers shared, loop bodies shared) and
    per-nest :class:`TileInfo` records.  Nests whose permutable band is
    shallower than ``min_tile_depth`` are left untiled but still
    parallelized when legal.
    """
    if tile_size < 2:
        raise IRError(f"tile size must be >= 2, got {tile_size}")
    scop = extract_scop(module)
    result = module.clone_structure(f"{module.name}.pluto")
    infos: List[TileInfo] = []
    for index, op in enumerate(module.ops):
        if not isinstance(op, AffineForOp):
            result.append(op)
            continue
        deps = nest_dependences(scop, op)
        band = perfectly_nested_band(op)
        tilable = permutable_prefix_depth(deps, len(band))
        tilable = _restrict_to_rectangular(band, tilable, module.params)
        tilable = _restrict_to_profitable(
            band, tilable, module.params, tile_size, min_trip_count
        )
        parallel_dim = None
        if parallelize:
            for dim in range(len(band)):
                if is_parallel_dim(deps, dim):
                    parallel_dim = dim
                    break
        if tilable >= min_tile_depth:
            new_root = _tile_band(
                band, tilable, tile_size, module.params, parallel_dim
            )
            infos.append(
                TileInfo(index, len(band), tilable, tile_size, parallel_dim, deps)
            )
        else:
            new_root = _mark_parallel(band, parallel_dim)
            infos.append(
                TileInfo(index, len(band), 0, tile_size, parallel_dim, deps)
            )
        new_root.attrs.update(
            {
                key: op.attrs[key]
                for key in (
                    "source_op",
                    "source_index",
                    "torch_source_op",
                    "torch_source_index",
                )
                if key in op.attrs
            }
        )
        result.append(new_root)
    return result, infos


def _restrict_to_rectangular(
    band: List[AffineForOp], depth: int, params: Dict[str, int]
) -> int:
    """Shrink the tilable depth so every band loop has constant bounds not
    depending on other band induction variables (hyper-rectangular band)."""
    band_names = {loop.iv_name for loop in band}
    usable = 0
    for loop in band[:depth]:
        bound_names = set()
        for expr in loop.lowers + loop.uppers:
            bound_names |= expr.names()
        if bound_names & band_names:
            break
        if bound_names - set(params):
            break
        usable += 1
    return usable


def _restrict_to_profitable(
    band: List[AffineForOp],
    depth: int,
    params: Dict[str, int],
    tile_size: int,
    min_trip_count: int,
) -> int:
    """Do not tile dims whose trip count is not meaningfully larger than the
    tile size (Pluto skips tiny loops too)."""
    usable = 0
    for loop in band[:depth]:
        if loop.trip_count(dict(params)) < max(min_trip_count, tile_size):
            break
        usable += 1
    return usable


def _constant_bounds(
    loop: AffineForOp, params: Dict[str, int]
) -> Tuple[int, int]:
    env = dict(params)
    return loop.eval_bounds(env)


def _rebuild_loop(template: AffineForOp, parallel: bool = False) -> AffineForOp:
    """A fresh loop with the template's name/bounds sharing its body ops."""
    fresh = AffineForOp(
        template.iv_name,
        list(template.lowers),
        list(template.uppers),
        template.step,
        parallel or template.parallel,
    )
    fresh.body.ops = template.body.ops
    return fresh


def _mark_parallel(
    band: List[AffineForOp], parallel_dim: Optional[int]
) -> AffineForOp:
    """Rebuild the band skeleton, marking one dimension parallel."""
    innermost_body = band[-1].body.ops
    current_ops = innermost_body
    root = None
    for dim in range(len(band) - 1, -1, -1):
        loop = AffineForOp(
            band[dim].iv_name,
            list(band[dim].lowers),
            list(band[dim].uppers),
            band[dim].step,
            parallel=(dim == parallel_dim) or band[dim].parallel,
        )
        loop.body.ops = current_ops
        current_ops = [loop]
        root = loop
    assert root is not None
    return root


def _tile_band(
    band: List[AffineForOp],
    depth: int,
    tile_size: int,
    params: Dict[str, int],
    parallel_dim: Optional[int],
) -> AffineForOp:
    """Strip-mine-and-interchange the first ``depth`` band loops."""
    tile_loops: List[AffineForOp] = []
    point_specs: List[Tuple[str, int, int, str]] = []
    for dim in range(depth):
        loop = band[dim]
        lower, upper = _constant_bounds(loop, params)
        tile_iv = f"{loop.iv_name}_t"
        first_tile = lower // tile_size
        last_tile = (upper + tile_size - 1) // tile_size  # exclusive
        tile_loops.append(
            AffineForOp(
                tile_iv,
                first_tile,
                last_tile,
                parallel=(dim == parallel_dim),
            )
        )
        point_specs.append((loop.iv_name, lower, upper, tile_iv))

    point_loops: List[AffineForOp] = []
    for iv_name, lower, upper, tile_iv in point_specs:
        tile_var = LinExpr.var(tile_iv)
        point_loops.append(
            AffineForOp(
                iv_name,
                [LinExpr.cst(lower), tile_var * tile_size],
                [LinExpr.cst(upper), tile_var * tile_size + tile_size],
            )
        )

    # Remaining (untiled) band loops keep their structure below the points.
    inner: List[AffineForOp] = [
        _rebuild_loop(band[dim]) for dim in range(depth, len(band))
    ]

    chain = tile_loops + point_loops + inner
    innermost_body = band[-1].body.ops
    for outer_loop, inner_loop in zip(chain, chain[1:]):
        outer_loop.body.ops = [inner_loop]
    chain[-1].body.ops = innermost_body
    return chain[0]
