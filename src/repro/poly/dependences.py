"""Dependence analysis: direction vectors between statement pairs.

The analysis is a practical distance/direction-vector abstraction of the
dependence polyhedron, exact for uniform (constant-distance) dependences and
conservative otherwise:

* per common loop dimension, a component is an exact integer distance, or
  ``'*'`` (unknown),
* each vector is then refined with lexicographic positivity: scanning from
  the outermost dimension, if every earlier component is exactly 0, the
  first unknown component can only be non-negative (``'0+'``); vectors whose
  first fixed non-zero component is negative describe the reverse pair and
  are dropped.

Legality predicates consume the refined vectors: a loop dimension is
parallel when no dependence can be carried there, and a band is tilable
(fully permutable) when every component inside it is guaranteed
non-negative.  ``'*'`` is treated conservatively in both.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Sequence, Set, Tuple, Union

from repro.ir.dialects.affine import AffineForOp
from repro.poly.scop import AccessRef, SCoP, Statement

#: A direction component: exact distance, '*' (unknown) or '0+' (>= 0).
Component = Union[int, str]


@dataclass(frozen=True)
class Dependence:
    """A dependence between two statements with a direction vector."""

    source: str
    sink: str
    buffer: str
    directions: Tuple[Component, ...]

    def carried_possible_at(self, dim: int) -> bool:
        """Could this dependence be carried by loop dimension ``dim``?"""
        for component in self.directions[:dim]:
            if component != 0 and component != "0+" and component != "*":
                return False  # definitely carried at an outer dim
            if component == "0+" or component == "*":
                # may be zero: keep scanning, still possibly carried at dim
                continue
        if dim >= len(self.directions):
            return False
        component = self.directions[dim]
        if component == 0:
            return False
        return True  # positive int, '0+', or '*': possibly carried here

    def nonnegative_through(self, depth: int) -> bool:
        """Are all components in dims [0, depth) guaranteed >= 0?"""
        for component in self.directions[:depth]:
            if component == "*":
                return False
            if isinstance(component, int) and component < 0:
                return False
        return True


def _subscript_constraint(
    fixed: Dict[int, int],
    star: Set[int],
    expr_a,
    expr_b,
    common_names: Sequence[str],
    all_iv_names: Set[str],
) -> bool:
    """Fold one subscript-pair equality into per-dim info.

    Returns False when the pair can never access the same element (no
    dependence at all).
    """
    name_to_dim = {name: index for index, name in enumerate(common_names)}
    coeffs_a = expr_a.coeffs
    coeffs_b = expr_b.coeffs

    involved_common = {
        name_to_dim[n]
        for n in set(coeffs_a) | set(coeffs_b)
        if n in name_to_dim
    }
    involves_inner = any(
        n in all_iv_names and n not in name_to_dim
        for n in set(coeffs_a) | set(coeffs_b)
    )

    if coeffs_a == coeffs_b and not involves_inner:
        iv_keys = [n for n in coeffs_a if n in name_to_dim]
        if len(iv_keys) == 0:
            # pure param/constant subscript: distinct constants never alias
            return expr_a.const == expr_b.const
        if len(iv_keys) == 1:
            dim = name_to_dim[iv_keys[0]]
            coeff = coeffs_a[iv_keys[0]]
            numerator = expr_a.const - expr_b.const
            if numerator % coeff != 0:
                return False
            distance = numerator // coeff
            if dim in fixed and fixed[dim] != distance:
                return False
            if dim in star:
                star.discard(dim)
            fixed[dim] = distance
            return True
    # coupled or mismatched subscripts: unknown directions for involved dims
    for dim in involved_common:
        if dim not in fixed:
            star.add(dim)
    return True


def _pair_directions(
    source: Statement, sink: Statement, depth: int
) -> List[Tuple[Component, ...]]:
    """Direction vectors for all conflicting access pairs of two statements."""
    common_names = source.loop_names[:depth]
    all_ivs = set(source.loop_names) | set(sink.loop_names)
    vectors: List[Tuple[Component, ...]] = []
    for access_a in source.accesses:
        for access_b in sink.accesses:
            if access_a.buffer is not access_b.buffer:
                continue
            if not (access_a.is_write or access_b.is_write):
                continue
            fixed: Dict[int, int] = {}
            star: Set[int] = set()
            feasible = True
            for expr_a, expr_b in zip(access_a.indices, access_b.indices):
                if not _subscript_constraint(
                    fixed, star, expr_a, expr_b, common_names, all_ivs
                ):
                    feasible = False
                    break
            if not feasible:
                continue
            raw = tuple(
                fixed.get(dim, "*") if dim not in star else "*"
                for dim in range(depth)
            )
            refined = _refine_lexpositive(raw)
            if refined is not None:
                vectors.append(refined)
    return vectors


def _refine_lexpositive(
    vector: Tuple[Component, ...]
) -> Optional[Tuple[Component, ...]]:
    """Apply lexicographic positivity; None when the vector is infeasible
    as a forward dependence (all-zero vectors are kept: loop-independent)."""
    refined: List[Component] = []
    all_zero_so_far = True
    for component in vector:
        if component == "*" and all_zero_so_far:
            refined.append("0+")
            all_zero_so_far = False  # may be positive; later dims unknown
        elif isinstance(component, int):
            if all_zero_so_far and component < 0:
                return None
            if component != 0:
                all_zero_so_far = False
            refined.append(component)
        else:
            refined.append(component)
    return tuple(refined)


def nest_dependences(scop: SCoP, root: AffineForOp) -> List[Dependence]:
    """All dependences among the statements under one top-level nest."""
    statements = scop.statements_under(root)
    deps: List[Dependence] = []
    seen = set()
    for source in statements:
        for sink in statements:
            depth = scop.common_loops(source, sink)
            if depth == 0:
                continue
            for vector in _pair_directions(source, sink, depth):
                # All-zero vectors are loop-independent dependences; they
                # only exist when the source precedes the sink in the body
                # (same-iteration ordering), never for a statement with
                # itself or for a source that follows its sink.
                if source.schedule_prefix >= sink.schedule_prefix and all(
                    c == 0 for c in vector
                ):
                    continue
                conflicting_buffer = _conflict_buffer(source, sink)
                key = (source.name, sink.name, conflicting_buffer, vector)
                if key in seen:
                    continue
                seen.add(key)
                deps.append(
                    Dependence(source.name, sink.name, conflicting_buffer, vector)
                )
    return deps


def _conflict_buffer(source: Statement, sink: Statement) -> str:
    for access_a in source.accesses:
        for access_b in sink.accesses:
            if access_a.buffer is access_b.buffer and (
                access_a.is_write or access_b.is_write
            ):
                return access_a.buffer.name
    return "?"


def is_parallel_dim(deps: Sequence[Dependence], dim: int) -> bool:
    """True when no dependence can be carried by loop dimension ``dim``."""
    return not any(dep.carried_possible_at(dim) for dep in deps)


def permutable_prefix_depth(deps: Sequence[Dependence], max_depth: int) -> int:
    """Largest k <= max_depth with all dependence components in dims [0,k)
    guaranteed non-negative (the band is fully permutable, hence tilable)."""
    depth = 0
    while depth < max_depth and all(
        dep.nonnegative_through(depth + 1) for dep in deps
    ):
        depth += 1
    return depth
