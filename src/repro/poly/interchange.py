"""Loop interchange on perfectly-nested rectangular bands.

Interchange is the other half of strip-mine-and-interchange tiling; exposed
separately it lets users move a stride-1 dimension innermost (locality) or
a parallel dimension outermost.  Legality follows the classic rule: the
permuted dependence direction vectors must remain lexicographically
non-negative.
"""

from __future__ import annotations

from typing import List, Sequence, Tuple

from repro.ir.core import IRError, Module
from repro.ir.dialects.affine import AffineForOp, perfectly_nested_band
from repro.poly.dependences import Dependence, nest_dependences
from repro.poly.scop import extract_scop


def permutation_is_legal(
    deps: Sequence[Dependence], permutation: Sequence[int]
) -> bool:
    """Do all dependence vectors stay lexicographically non-negative?

    Components beyond a vector's length are unconstrained.  Unknown
    components (``'*'``) make the answer conservatively False unless an
    earlier permuted component is already strictly positive.
    """
    for dep in deps:
        strictly_positive = False
        for new_position in permutation:
            if new_position >= len(dep.directions):
                continue
            component = dep.directions[new_position]
            if strictly_positive:
                break
            if component == 0:
                continue
            if component == "0+":
                # may be zero or positive: cannot certify strictness, but
                # never negative -- keep scanning
                continue
            if component == "*":
                return False
            if isinstance(component, int):
                if component < 0:
                    return False
                strictly_positive = True
    return True


def interchange(
    module: Module, nest_index: int, permutation: Sequence[int]
) -> Module:
    """Permute the band loops of one top-level nest.

    ``permutation[k]`` names the original band level that moves to level
    ``k``.  The band must be rectangular (no bound may reference another
    band iv).  Raises on illegal permutations.
    """
    roots = [op for op in module.ops if isinstance(op, AffineForOp)]
    if not (0 <= nest_index < len(roots)):
        raise IRError(f"no affine nest #{nest_index}")
    root = roots[nest_index]
    band = perfectly_nested_band(root)
    permutation = list(permutation)
    if sorted(permutation) != list(range(len(band))):
        raise IRError(
            f"permutation {permutation} does not cover the depth-"
            f"{len(band)} band"
        )
    iv_names = {loop.iv_name for loop in band}
    for loop in band:
        for expr in loop.lowers + loop.uppers:
            if expr.names() & iv_names:
                raise IRError(
                    "interchange requires a rectangular band "
                    f"(bound {expr!r} references a band iv)"
                )
    scop = extract_scop(module)
    deps = nest_dependences(scop, root)
    if not permutation_is_legal(deps, permutation):
        raise IRError(
            f"permutation {permutation} violates dependences {deps}"
        )

    permuted: List[AffineForOp] = []
    for level in permutation:
        template = band[level]
        fresh = AffineForOp(
            template.iv_name,
            list(template.lowers),
            list(template.uppers),
            template.step,
            template.parallel,
        )
        permuted.append(fresh)
    for outer, inner in zip(permuted, permuted[1:]):
        outer.body.ops = [inner]
    permuted[-1].body.ops = band[-1].body.ops
    permuted[0].attrs.update(
        {
            key: root.attrs[key]
            for key in ("source_op", "source_index",
                        "torch_source_op", "torch_source_index")
            if key in root.attrs
        }
    )

    result = module.clone_structure(f"{module.name}.interchanged")
    for op in module.ops:
        result.append(permuted[0] if op is root else op)
    return result
