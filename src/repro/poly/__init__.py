"""Polyhedral middle end: SCoP model, dependences, and Pluto-lite transforms.

This package is the Pluto/PET/OpenScop substitute: it extracts a static
control program (SCoP) description from affine-dialect IR
(:mod:`repro.poly.scop`), computes dependence direction vectors
(:mod:`repro.poly.dependences`), and applies legality-checked rectangular
tiling plus outer-loop parallelization (:mod:`repro.poly.transforms`) --
the "Pluto tiled-parallel" baseline configuration of the paper.
"""

from repro.poly.scop import AccessRef, SCoP, Statement, extract_scop
from repro.poly.dependences import (
    Dependence,
    is_parallel_dim,
    nest_dependences,
    permutable_prefix_depth,
)
from repro.poly.transforms import TileInfo, tile_and_parallelize
from repro.poly.fusion import fuse_pointwise_nests
from repro.poly.interchange import interchange, permutation_is_legal

__all__ = [
    "AccessRef",
    "SCoP",
    "Statement",
    "extract_scop",
    "Dependence",
    "nest_dependences",
    "is_parallel_dim",
    "permutable_prefix_depth",
    "TileInfo",
    "tile_and_parallelize",
    "fuse_pointwise_nests",
    "interchange",
    "permutation_is_legal",
]
