"""SCoP extraction: affine IR -> statements with domains, accesses, schedules.

A *statement* is a maximal run of non-loop ops inside a loop body (loads,
arith, one or more stores).  Each statement carries:

* its iteration domain as an isllite :class:`BasicSet` over the enclosing
  induction variables,
* its access list (buffer, subscript expressions, read/write) in program
  order,
* its per-iteration flop count (unitary model),
* a 2d+1-style schedule prefix for syntactic ordering.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, List, Optional, Sequence, Tuple

from repro.ir.core import Buffer, IRError, Module, Op
from repro.ir.dialects import arith
from repro.ir.dialects.affine import AffineForOp, AffineLoadOp, AffineStoreOp
from repro.isllite import BasicSet, Constraint, LinExpr, Space, count_points


@dataclass(frozen=True)
class AccessRef:
    """One memory access of a statement."""

    buffer: Buffer
    indices: Tuple[LinExpr, ...]
    is_write: bool

    def linear_offset(self, env: Dict[str, int]) -> int:
        """Row-major element offset under a concrete iteration point."""
        offset = 0
        for expr, stride in zip(self.indices, self.buffer.strides()):
            offset += expr.evaluate_int(env) * stride
        return offset


@dataclass
class Statement:
    """A polyhedral statement."""

    name: str
    loops: Tuple[AffineForOp, ...]
    domain: BasicSet
    accesses: Tuple[AccessRef, ...]
    flops_per_point: int
    schedule_prefix: Tuple[int, ...]
    body_ops: Tuple[Op, ...] = field(default=(), repr=False)

    @property
    def loop_names(self) -> Tuple[str, ...]:
        return tuple(loop.iv_name for loop in self.loops)

    @property
    def depth(self) -> int:
        return len(self.loops)

    def domain_size(self, params: Dict[str, int]) -> int:
        """Number of iteration points (exact count, fast closed forms)."""
        return int(count_points(self.domain, params))

    def reads(self) -> List[AccessRef]:
        return [a for a in self.accesses if not a.is_write]

    def writes(self) -> List[AccessRef]:
        return [a for a in self.accesses if a.is_write]

    def total_flops(self, params: Dict[str, int]) -> int:
        return self.flops_per_point * self.domain_size(params)

    def parallel_dims(self) -> Tuple[int, ...]:
        """Indices of enclosing loops marked parallel."""
        return tuple(
            index for index, loop in enumerate(self.loops) if loop.parallel
        )


@dataclass
class SCoP:
    """All statements of a module, in execution (syntactic) order."""

    statements: List[Statement]
    module: Module

    @property
    def params(self) -> Dict[str, int]:
        return self.module.params

    def total_flops(self) -> int:
        """Total flop count Omega = sum over statements of w_s * |D_s|."""
        return sum(s.total_flops(self.params) for s in self.statements)

    def statements_under(self, root: AffineForOp) -> List[Statement]:
        return [s for s in self.statements if s.loops and s.loops[0] is root]

    def common_loops(self, a: Statement, b: Statement) -> int:
        """Length of the shared enclosing-loop prefix of two statements."""
        depth = 0
        for la, lb in zip(a.loops, b.loops):
            if la is not lb:
                break
            depth += 1
        return depth


def _domain_constraints(
    loops: Sequence[AffineForOp],
) -> List[Constraint]:
    constraints: List[Constraint] = []
    for loop in loops:
        if loop.step != 1:
            raise IRError(
                f"SCoP extraction requires unit-step loops, got step "
                f"{loop.step} on {loop.iv_name!r} (tiling emits tile-index "
                f"loops precisely to keep domains affine)"
            )
        iv = LinExpr.var(loop.iv_name)
        for lower in loop.lowers:
            constraints.append(Constraint(iv - lower))
        for upper in loop.uppers:
            constraints.append(Constraint(upper - iv - 1))
    return constraints


def extract_scop(module: Module) -> SCoP:
    """Extract the SCoP of every top-level affine nest in the module."""
    statements: List[Statement] = []
    params = set(module.params)
    counter = [0]

    def visit(loops: Tuple[AffineForOp, ...], body_ops, prefix: Tuple[int, ...]):
        run: List[Op] = []
        position = 0

        def flush(run_ops: List[Op]) -> None:
            if not run_ops:
                return
            statements.append(
                _make_statement(
                    f"S{counter[0]}",
                    loops,
                    tuple(run_ops),
                    prefix + (position,),
                    params,
                )
            )
            counter[0] += 1

        for op in body_ops:
            if isinstance(op, AffineForOp):
                flush(run)
                run = []
                position += 1
                visit(loops + (op,), op.body.ops, prefix + (position,))
                position += 1
            else:
                run.append(op)
        flush(run)

    top_position = 0
    for op in module.ops:
        if isinstance(op, AffineForOp):
            visit((op,), op.body.ops, (top_position,))
        top_position += 1
    return SCoP(statements, module)


def _make_statement(
    name: str,
    loops: Tuple[AffineForOp, ...],
    body_ops: Tuple[Op, ...],
    prefix: Tuple[int, ...],
    params: set,
) -> Statement:
    accesses: List[AccessRef] = []
    flops = 0
    for op in body_ops:
        if isinstance(op, AffineLoadOp):
            accesses.append(AccessRef(op.buffer, op.indices, is_write=False))
        elif isinstance(op, AffineStoreOp):
            accesses.append(AccessRef(op.buffer, op.indices, is_write=True))
        elif isinstance(op, (arith.BinaryOp, arith.UnaryOp)):
            flops += op.flops()
        elif isinstance(op, arith.ConstantOp):
            pass
        else:
            raise IRError(f"unsupported op {op!r} inside a statement body")

    loop_names = tuple(loop.iv_name for loop in loops)
    used_params = set()
    for loop in loops:
        for expr in loop.lowers + loop.uppers:
            used_params |= expr.names() - set(loop_names)
    unknown = used_params - params
    if unknown:
        raise IRError(f"loop bounds use unknown symbols {sorted(unknown)}")
    space = Space(loop_names, params=tuple(sorted(used_params)))
    domain = BasicSet(space, _domain_constraints(loops))
    return Statement(
        name=name,
        loops=loops,
        domain=domain,
        accesses=tuple(accesses),
        flops_per_point=flops,
        schedule_prefix=prefix,
        body_ops=body_ops,
    )
