"""Core-frequency extension of the parametric model (paper Sec. VII-F).

The paper leaves the core domain to the hardware P-state driver but notes
"the PolyUFC remains adaptable and can be used to manage the core frequency
domain".  This module provides that extension:

* :class:`CoreScaledModel` wraps a :class:`~repro.model.parametric.
  PolyUFCModel` and re-parameterizes the flop time and flop power by a core
  frequency ``f_core`` (time scales with 1/f_core; dynamic core power with
  the classic f*V^2 ~ f^3 law, normalized at the calibration base clock),
* :func:`joint_search` sweeps the (core, uncore) grid for the best joint
  setting under an objective, reusing the same Sec. V estimates.

The ablation harness shows the paper's design point: for CB kernels, core
scaling dominates the EDP landscape (uncore capping is *on top of* core
DVFS), while for BB kernels the uncore dimension is the one that matters.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Sequence, Tuple

from repro.model.parametric import PolyUFCModel


@dataclass(frozen=True)
class JointSetting:
    """One (core, uncore) operating point and its estimates."""

    f_core_ghz: float
    f_uncore_ghz: float
    time_s: float
    power_w: float

    @property
    def energy_j(self) -> float:
        return self.time_s * self.power_w

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s


class CoreScaledModel:
    """A Sec. V model with the core clock as an extra parameter."""

    #: exponent of the dynamic-power-vs-frequency law (f * V^2 with V ~ f)
    POWER_EXPONENT = 3.0

    def __init__(self, model: PolyUFCModel, base_core_ghz: float):
        if base_core_ghz <= 0:
            raise ValueError("base core frequency must be positive")
        self.model = model
        self.base_core_ghz = base_core_ghz

    def flop_time_s(self, f_core_ghz: float) -> float:
        return self.model.flop_time_s() * (self.base_core_ghz / f_core_ghz)

    def time_s(self, f_core_ghz: float, f_uncore_ghz: float) -> float:
        flop = self.flop_time_s(f_core_ghz)
        memory = self.model.memory_time_s(f_uncore_ghz)
        rho = self.model.constants.overlap_rho
        return max(flop, memory) + rho * min(flop, memory)

    def power_w(self, f_core_ghz: float, f_uncore_ghz: float) -> float:
        """Uncore power at f_uncore plus the core-scaled flop power."""
        base_power = self.model.power_w(f_uncore_ghz)
        constants = self.model.constants
        flop_power = (
            constants.p_hat_fpu
            * self.model.kernel.cores_fraction
            * min(
                1.0,
                self.model.flop_time_s()
                / max(self.model.time_s(f_uncore_ghz), 1e-30),
            )
        )
        scale = (f_core_ghz / self.base_core_ghz) ** self.POWER_EXPONENT
        return base_power - flop_power + flop_power * scale

    def setting(self, f_core_ghz: float, f_uncore_ghz: float) -> JointSetting:
        return JointSetting(
            f_core_ghz,
            f_uncore_ghz,
            self.time_s(f_core_ghz, f_uncore_ghz),
            self.power_w(f_core_ghz, f_uncore_ghz),
        )


def joint_search(
    scaled: CoreScaledModel,
    core_freqs: Sequence[float],
    uncore_freqs: Sequence[float],
    objective: str = "edp",
) -> Tuple[JointSetting, List[JointSetting]]:
    """Exhaustive joint (core, uncore) search; returns (best, all points)."""
    if objective not in ("edp", "energy", "performance"):
        raise ValueError(f"unknown objective {objective!r}")
    points: List[JointSetting] = [
        scaled.setting(fc, fu) for fc in core_freqs for fu in uncore_freqs
    ]
    key = {
        "edp": lambda s: s.edp,
        "energy": lambda s: s.energy_j,
        "performance": lambda s: s.time_s,
    }[objective]
    best = min(points, key=key)
    return best, points
