"""The Sec. V parametric performance/power/energy model.

:class:`repro.model.parametric.PolyUFCModel` implements Eqns 2-11: execution
time, performance, bandwidth, average power, peak power, energy and EDP, all
parametric in the uncore frequency cap ``f_c`` and the statically computed
operational intensity ``I``.
"""

from repro.model.parametric import (
    KernelSummary,
    ModelEstimate,
    PolyUFCModel,
    summary_from_cm,
)
from repro.model.corescale import CoreScaledModel, JointSetting, joint_search

__all__ = [
    "KernelSummary",
    "ModelEstimate",
    "PolyUFCModel",
    "summary_from_cm",
    "CoreScaledModel",
    "JointSetting",
    "joint_search",
]
