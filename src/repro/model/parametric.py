"""Parametric performance/power estimation (paper Sec. V).

The model combines the PolyUFC-CM counters of one kernel with a platform's
fitted roofline constants:

* **Eqn 2/3/4** -- execution time decomposes into flop time
  ``T_Omega = Omega * t_FPU`` and memory time: per-level traffic weighted by
  hit service times (L2 at core clock, LLC at the uncore clock) plus LLC
  misses times the DRAM miss penalty ``M^t(f) = a/f + b``.  PolyUFC-CM's
  per-level access counts *are* the paper's hit/miss-ratio products applied
  to total traffic, so the implementation uses them directly.
* **Eqn 5/6** -- performance ``Omega/T`` and bandwidth ``Q_DRAM/T``.
* **Eqn 10** -- average power: constant + CB/BB-specialized uncore power
  (energy-per-byte linear in ``f`` times the DRAM byte rate) + flop power.
* **Eqn 11** -- energy ``Omega*e_FPU + T^Q * P``; EDP is ``E * T``.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional, Tuple

from repro.cache.static_model import CacheModelResult
from repro.roofline.characterize import Boundedness, characterize
from repro.roofline.constants import RooflineConstants


@dataclass(frozen=True)
class KernelSummary:
    """PolyUFC-CM outputs the model consumes (per kernel)."""

    name: str
    omega: int  # total flops
    q_dram_bytes: int  # Q_DRAM = Miss_LLC * line
    dram_lines: int  # Miss_LLC
    level_bytes: Tuple[int, ...]  # Q_ci per level (bytes arriving at level i)
    cores_fraction: float = 1.0  # used cores / all cores (serial kernels < 1)

    @property
    def oi_fpb(self) -> float:
        """Operational intensity I = Omega / Q_DRAM (Eqn 1)."""
        if self.q_dram_bytes == 0:
            return math.inf
        return self.omega / self.q_dram_bytes


def summary_from_cm(
    name: str,
    omega: int,
    cm: CacheModelResult,
    cores_fraction: float = 1.0,
) -> KernelSummary:
    """Build a model input from a PolyUFC-CM result."""
    # Q_ci for the time model is the *line-fill* traffic arriving at level
    # i: the misses of the level above, times the line size.  (PolyUFC-CM's
    # write-through forwarding stream determines miss counts at each level
    # but is not itself billable data movement.)
    line = cm.line_bytes
    level_bytes = [0] + [
        cm.levels[i - 1].misses * line for i in range(1, len(cm.levels))
    ]
    return KernelSummary(
        name=name,
        omega=omega,
        q_dram_bytes=cm.q_dram_bytes,
        dram_lines=cm.miss_llc,
        level_bytes=tuple(level_bytes),
        cores_fraction=cores_fraction,
    )


@dataclass(frozen=True)
class ModelEstimate:
    """All Sec. V quantities at one frequency."""

    f_ghz: float
    time_s: float
    memory_time_s: float
    perf_flops: float
    bandwidth_bps: float
    power_w: float
    energy_j: float

    @property
    def edp(self) -> float:
        return self.energy_j * self.time_s


class PolyUFCModel:
    """Eqns 2-11 for one kernel on one calibrated platform."""

    def __init__(self, constants: RooflineConstants, kernel: KernelSummary):
        self.constants = constants
        self.kernel = kernel
        self.characterization = characterize(constants, kernel.oi_fpb)

    # -- time (Eqns 2-4) -----------------------------------------------------

    def flop_time_s(self) -> float:
        """T_Omega = Omega * t_FPU, scaled by the used-core fraction."""
        fraction = max(self.kernel.cores_fraction, 1e-6)
        return self.kernel.omega * self.constants.t_fpu / fraction

    def memory_time_s(self, f_ghz: float) -> float:
        """T^Q_{f,I}: per-level hit service plus DRAM miss penalties."""
        constants = self.constants
        t = 0.0
        if len(self.kernel.level_bytes) >= 2:
            t += self.kernel.level_bytes[1] * constants.h_l2
        if len(self.kernel.level_bytes) >= 3:
            t += self.kernel.level_bytes[2] * constants.h_llc_fit(f_ghz)
        bandwidth_time = self.kernel.q_dram_bytes / constants.bandwidth_at(
            f_ghz
        )
        latency_time = self.kernel.dram_lines * constants.miss_penalty_fit(
            f_ghz
        )
        t += max(bandwidth_time, latency_time)
        return t

    def time_s(self, f_ghz: float) -> float:
        """Eqn 2 with a calibrated overlap combiner.

        The literal Eqn 2 is ``T = T_Omega + T^Q``, which assumes no
        compute/memory overlap and over-penalizes memory traffic on machines
        with prefetching and out-of-order cores.  We use
        ``max(T_Omega, T^Q) + rho * min(...)`` with ``rho`` fitted by the
        balanced microbenchmark (``rho = 1`` recovers the paper's additive
        form exactly, see :meth:`time_eqn2_s`).
        """
        flop = self.flop_time_s()
        memory = self.memory_time_s(f_ghz)
        rho = self.constants.overlap_rho
        return max(flop, memory) + rho * min(flop, memory)

    def time_eqn2_s(self, f_ghz: float) -> float:
        """The literal additive Eqn 2 (kept for comparison)."""
        return self.flop_time_s() + self.memory_time_s(f_ghz)

    # -- performance / bandwidth (Eqns 5, 6) ----------------------------------

    def perf_flops(self, f_ghz: float) -> float:
        time_total = self.time_s(f_ghz)
        if time_total <= 0.0:
            return 0.0  # degenerate zero-work unit (degraded fallback)
        return self.kernel.omega / time_total

    def bandwidth_bps(self, f_ghz: float) -> float:
        time_total = self.time_s(f_ghz)
        if time_total <= 0.0:
            return 0.0
        return self.kernel.q_dram_bytes / time_total

    # -- power (Eqn 10) --------------------------------------------------------

    def power_w(self, f_ghz: float, quadratic: bool = False) -> float:
        """Average total power, CB/BB specialized (Eqn 10).

        Three uncore-side terms:

        * the *idle* uncore draw ``p_uncore_idle_fit(f)`` -- present for the
          kernel's whole runtime regardless of traffic; this is the
          over-provisioning static capping removes on CB kernels,
        * the traffic-driven term: DRAM byte rate times the fitted
          energy-per-byte ``(alpha_P * f + gamma_P)``, scaled by
          ``B^t/I`` for CB kernels per the paper's piecewise form,
        * the flop power ``p_hat_FPU`` (scaled by ``I/B^t`` for BB kernels,
          whose compute units are underutilized).
        """
        constants = self.constants
        time_total = self.time_s(f_ghz)
        if time_total <= 0:
            return constants.p_con
        memory_fraction = min(1.0, self.memory_time_s(f_ghz) / time_total)
        compute_fraction = min(1.0, self.flop_time_s() / time_total)
        idle_power = max(0.0, constants.p_uncore_idle_fit(f_ghz))
        # Memory-bound peak power minus the idle share is the activity-driven
        # uncore+DRAM power; the kernel draws it in proportion to the time it
        # keeps the memory system busy.  For CB kernels memory_fraction is
        # itself ~B^t/I, realizing the paper's attenuation factor through the
        # model's own time decomposition (and symmetrically for BB compute).
        active_memory = max(0.0, constants.p_hat_dram_fit(f_ghz) - idle_power)
        if quadratic and constants.e_byte_quadratic is not None:
            e_byte = max(constants.e_byte_quadratic(f_ghz), 0.0)
            byte_rate = self.kernel.q_dram_bytes / time_total
            active_memory = max(active_memory, byte_rate * e_byte)
        p_fpu = (
            constants.p_hat_fpu
            * self.kernel.cores_fraction
            * compute_fraction
        )
        oi = self.kernel.oi_fpb
        balance = constants.b_t_dram
        if not math.isinf(oi) and self.characterization.is_bandwidth_bound:
            p_fpu *= min(1.0, oi / balance)
        return (
            constants.p_con
            + idle_power
            + active_memory * memory_fraction
            + p_fpu
        )

    # -- energy / EDP (Eqn 11) --------------------------------------------------

    def energy_j(self, f_ghz: float, quadratic: bool = False) -> float:
        """E = E^Omega + E^Q (Eqn 11).

        Deviation from the literal Eqn 11: the paper multiplies the average
        power only by the memory time ``T^Q``, which drops the uncore energy
        drawn during compute phases -- the very over-provisioning the paper
        caps away on CB kernels.  We integrate the average power over the
        *total* runtime (flop energy is carried inside ``P`` via
        ``p_hat_FPU``), which matches the measured energies in the paper's
        own Fig. 1.
        """
        return self.time_s(f_ghz) * self.power_w(f_ghz, quadratic)

    def energy_eqn11_j(self, f_ghz: float) -> float:
        """The literal Eqn 11 decomposition (kept for comparison)."""
        flop_energy = (
            self.kernel.omega * self.constants.e_fpu * self.kernel.cores_fraction
        )
        return flop_energy + self.memory_time_s(f_ghz) * self.power_w(f_ghz)

    def edp(self, f_ghz: float) -> float:
        return self.energy_j(f_ghz) * self.time_s(f_ghz)

    def estimate(self, f_ghz: float) -> ModelEstimate:
        """All quantities at one cap setting."""
        time_total = self.time_s(f_ghz)
        return ModelEstimate(
            f_ghz=f_ghz,
            time_s=time_total,
            memory_time_s=self.memory_time_s(f_ghz),
            perf_flops=self.perf_flops(f_ghz),
            bandwidth_bps=self.bandwidth_bps(f_ghz),
            power_w=self.power_w(f_ghz),
            energy_j=self.energy_j(f_ghz),
        )

    @property
    def boundedness(self) -> Boundedness:
        return self.characterization.boundedness
