"""Ablations of PolyUFC's design choices (DESIGN.md experiment index).

Four studies around the knobs the paper fixes:

* **tile size** -- Pluto's default 32 vs alternatives: tiling raises OI and
  moves kernels toward CB, which is precisely why PolyUFC analyses
  *post-scheduling* code,
* **epsilon** -- the POLYUFC-SEARCH threshold (paper: 1e-3): looser values
  trade performance for deeper energy caps on CB kernels,
* **objective** -- EDP / energy-only / performance-only (Sec. VI-C: "the
  method focuses on EDP [but] supports energy-only or performance-only"),
* **granularity** -- torch vs linalg vs affine capping for sdpa
  (Sec. VI-B's trade-off: linalg wins).
"""

import pytest

from _tables import banner, format_table
from repro.benchsuite import get_benchmark
from repro.cache import generate_trace, simulate_hierarchy
from repro.hw import get_platform, run_capped_sequence
from repro.hw.execution import workload_from_sim
from repro.pipeline import get_constants, polyufc_compile

PLATFORM = "rpl"


def _compile(kernel, **kwargs):
    platform = get_platform(PLATFORM)
    module = get_benchmark(kernel).module()
    return polyufc_compile(
        module, platform, constants=get_constants(platform), **kwargs
    )


def test_ablation_tile_size(benchmark):
    """Tiling keeps gemm's OI high; the analysis runs post-scheduling."""

    def run():
        rows = []
        for tile in (4, 8, 16, 32, 64):
            result = _compile("gemm", tile_size=tile)
            unit = result.units[0]
            rows.append(
                (tile, unit.oi_fpb, str(unit.boundedness), result.caps()[0])
            )
        return rows

    rows = benchmark(run)
    print(banner("ablation: Pluto tile size (gemm, RPL)"))
    print(
        format_table(
            ["tile", "OI (FpB)", "class", "cap (GHz)"],
            [(t, f"{oi:.2f}", c, f"{cap:.1f}") for t, oi, c, cap in rows],
        )
    )
    by_tile = {t: oi for t, oi, _, _ in rows}
    # the default 32 must not lose OI against small tiles
    assert by_tile[32] >= by_tile[4] * 0.9
    # every configuration stays CB at this size
    assert all(c == "CB" for _, _, c, _ in rows)


def test_ablation_epsilon(benchmark):
    """Looser epsilon lets the CB descent accept more perf loss."""

    def run():
        caps = {}
        for epsilon in (1e-6, 1e-3, 1e-1):
            result = _compile("2mm", epsilon=epsilon)
            caps[epsilon] = min(result.caps())
        return caps

    caps = benchmark(run)
    print(banner("ablation: search epsilon (2mm, RPL)"))
    for epsilon, cap in sorted(caps.items()):
        print(f"  epsilon={epsilon:g}: lowest cap {cap:.1f} GHz")
    assert caps[1e-1] <= caps[1e-6]


def test_ablation_objectives(benchmark):
    """energy-only caps <= EDP caps <= performance-only caps (CB kernel)."""

    def run():
        return {
            objective: _compile("gemm", objective=objective).caps()[0]
            for objective in ("energy", "edp", "performance")
        }

    caps = benchmark(run)
    print(banner("ablation: optimization objective (gemm, RPL)"))
    for objective, cap in caps.items():
        print(f"  {objective:<12} cap {cap:.1f} GHz")
    assert caps["energy"] <= caps["edp"] + 0.05
    assert caps["edp"] <= caps["performance"] + 0.05


def test_ablation_granularity_sdpa(benchmark):
    """Sec. VI-B: linalg-granularity capping beats torch-granularity on a
    phase-changing kernel, without affine granularity's extra cap calls."""
    platform = get_platform(PLATFORM)

    def run():
        # One set of linalg-unit workloads (so every configuration executes
        # the same partitioned program) -- only the *caps* differ by
        # granularity.  Each unit runs back-to-back reps so its duration
        # reaches the paper-scale regime where one op amortizes its cap.
        linalg_result = _compile(
            "sdpa_bert", granularity="linalg", cap_overhead_factor=0.0
        )
        workloads = []
        for unit in linalg_result.units:
            trace = generate_trace(linalg_result.tiled_module, unit.ops)
            sim = simulate_hierarchy(trace, platform.hierarchy)
            workloads.append(
                workload_from_sim(
                    unit.name, unit.omega, sim, unit.parallel,
                    platform.threads,
                )
            )
        torch_result = _compile(
            "sdpa_bert", granularity="torch", cap_overhead_factor=0.0
        )
        affine_result = _compile(
            "sdpa_bert", granularity="affine", cap_overhead_factor=0.0
        )
        caps_by_granularity = {
            "torch": [torch_result.caps()[0]] * len(workloads),
            "linalg": linalg_result.caps(),
            "affine": affine_result.caps(),
        }
        per_unit_reps = 60
        rows = {}
        for granularity, caps in caps_by_granularity.items():
            items = []
            for workload, cap in zip(workloads, caps):
                items.extend([(workload, cap)] * per_unit_reps)
            sequence = run_capped_sequence(platform, items, noisy=False)
            rows[granularity] = (
                len(set(round(c, 1) for c in caps)),
                sequence.cap_switches,
                sequence.edp,
            )
        return rows

    rows = benchmark(run)
    print(banner("ablation: capping granularity (sdpa/BERT, RPL)"))
    print(
        format_table(
            ["granularity", "distinct caps", "cap calls", "EDP"],
            [(g, u, s, f"{e:.3e}") for g, (u, s, e) in rows.items()],
        )
    )
    # linalg granularity beats torch's single coarse cap on EDP
    assert rows["linalg"][2] < rows["torch"][2]
    # affine granularity offers no additional benefit here (nests map 1:1
    # onto linalg ops) but never fewer cap calls
    assert rows["affine"][1] >= rows["linalg"][1]
    assert rows["affine"][2] <= rows["linalg"][2] * 1.01


def test_ablation_fusion_raises_oi(benchmark):
    """Pointwise fusion removes intermediate-buffer round trips through
    DRAM: on an elementwise chain whose working set exceeds the LLC, the
    fused form re-reads its intermediate from registers instead of memory,
    cutting Q_DRAM and raising OI.  (This is why the paper analyses
    post-scheduling code: the *scheduled* program determines the traffic.)
    """
    from repro.cache import polyufc_cm
    from repro.ir import F32, Module
    from repro.ir.builder import AffineBuilder
    from repro.poly import extract_scop, fuse_pointwise_nests

    platform = get_platform(PLATFORM)
    n = 700  # 700^2 f32 ~= 1.9 MiB per array >> 512 KiB LLC

    def chain():
        module = Module("chain")
        x = module.add_buffer("x", (n, n), F32)
        t = module.add_buffer("t", (n, n), F32)
        y = module.add_buffer("y", (n, n), F32)
        builder = AffineBuilder(module)
        with builder.loop("i0", 0, n):
            with builder.loop("j0", 0, n):
                builder.store(
                    builder.exp(builder.load(x, ["i0", "j0"])), t, ["i0", "j0"]
                )
        with builder.loop("i1", 0, n):
            with builder.loop("j1", 0, n):
                builder.store(
                    builder.mul(
                        builder.load(t, ["i1", "j1"]), builder.const(0.5)
                    ),
                    t, ["i1", "j1"],
                )
        with builder.loop("i2", 0, n):
            with builder.loop("j2", 0, n):
                builder.store(
                    builder.add(
                        builder.load(t, ["i2", "j2"]),
                        builder.load(y, ["i2", "j2"]),
                    ),
                    y, ["i2", "j2"],
                )
        return module

    def run():
        module = chain()
        fused, count = fuse_pointwise_nests(module)
        results = {}
        for tag, mod in (("unfused", module), ("fused", fused)):
            scop = extract_scop(mod)
            trace = generate_trace(mod)
            cm = polyufc_cm(trace, platform.hierarchy)
            results[tag] = (
                scop.total_flops(), cm.q_dram_bytes,
                scop.total_flops() / cm.q_dram_bytes,
            )
        return count, results

    count, results = benchmark(run)
    print(banner("ablation: pointwise fusion (elementwise chain, RPL)"))
    for tag, (flops, q_dram, oi) in results.items():
        print(f"  {tag:<9} flops={flops:.3e}  Q_DRAM={q_dram:.3e}  "
              f"OI={oi:.2f} FpB")
    print(f"  nests fused: {count}")
    assert count == 2
    # same flops, strictly less DRAM traffic, strictly higher OI
    assert results["fused"][0] == results["unfused"][0]
    assert results["fused"][1] < 0.8 * results["unfused"][1]
    assert results["fused"][2] > 1.2 * results["unfused"][2]
