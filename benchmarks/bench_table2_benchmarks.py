"""Tab. II: the benchmark inventory with paper/sim sizes and CB/BB classes."""

import pytest

from _tables import banner, format_table
from repro.benchsuite import (
    get_benchmark,
    ml_benchmarks,
    polybench_benchmarks,
)
from repro.experiments import kernel_report


def test_table2_ml_kernels(benchmark):
    def rows():
        result = []
        for name in ml_benchmarks():
            spec = get_benchmark(name)
            report = kernel_report(name, "rpl")
            result.append(
                (
                    name,
                    spec.source,
                    spec.paper_sizes,
                    f"{report.oi_model:.2f}",
                    report.boundedness,
                )
            )
        return result

    table = benchmark(rows)
    print(banner("Tab. II (a): selected MLIR kernels"))
    print(
        format_table(
            ["kernel", "source", "paper sizes", "OI (RPL)", "class"], table
        )
    )
    sources = {row[1] for row in table}
    # the paper's model zoo
    assert {
        "ALEXNET", "CONVNEXT", "WIDERESNET", "BERT", "GEMMA2", "GPT2",
        "LLAMA2",
    } <= sources
    # all three conv2d variants are CB, the LM-head matmuls BB
    for name, source, _, _, label in table:
        if name.startswith("conv2d"):
            assert label == "CB", name
        if name.startswith("matmul"):
            assert label == "BB", name


def test_table2_polybench(benchmark):
    def rows():
        result = []
        for name in polybench_benchmarks():
            spec = get_benchmark(name)
            report = kernel_report(name, "rpl")
            result.append(
                (name, spec.sim_sizes, f"{report.oi_model:.2f}",
                 report.boundedness)
            )
        return result

    table = benchmark(rows)
    print(banner("Tab. II (b): PolyBench (sim sizes)"))
    print(format_table(["kernel", "sim sizes", "OI (RPL)", "class"], table))
    assert len(table) == 30
    # canonical classes on RPL
    by_name = {row[0]: row[3] for row in table}
    assert by_name["gemm"] == "CB"
    assert by_name["2mm"] == "CB"
    assert by_name["jacobi-1d"] == "CB"
    assert by_name["mvt"] == "BB"
    assert by_name["gemver"] == "BB"
    assert by_name["trisolv"] == "BB"
    assert by_name["deriche"] == "BB"
    assert by_name["adi"] == "BB"
