"""Tab. IV: compile-time breakdown of the PolyUFC flow per benchmark.

Stages: preprocessing (statement extraction / lowering), Pluto (tiling +
parallelization), PolyUFC-CM (cache analysis + OI), and steps 4-6
(characterization, model, search, codegen).  The paper's headline
observation -- PolyUFC-CM dominates total compile time by orders of
magnitude -- must hold here too, since the cache model is the expensive
polyhedral-counting stage in both implementations.
"""

import pytest

from _tables import banner, format_table
from repro.benchsuite import ml_benchmarks, paper22_names
from repro.experiments import kernel_report

KERNELS = sorted(set(paper22_names()) | set(ml_benchmarks()))


def test_table4_compile_time_breakdown(benchmark):
    def rows():
        result = []
        for kernel in KERNELS:
            report = kernel_report(kernel, "bdw")
            t = report.timings_ms
            result.append(
                (
                    kernel,
                    f"{t['preprocess']:.0f}",
                    f"{t['pluto']:.0f}",
                    f"{t['polyufc_cm']:.0f}",
                    f"{t['steps_4_6']:.0f}",
                    f"{sum(t.values()):.0f}",
                )
            )
        return result

    table = benchmark(rows)
    print(banner("Tab. IV: compile-time breakdown (ms, BDW config)"))
    print(
        format_table(
            ["kernel", "preprocess", "pluto", "polyufc-cm", "steps 4-6",
             "total"],
            table,
        )
    )
    # PolyUFC-CM dominates compilation for the vast majority of kernels
    dominated = 0
    for kernel in KERNELS:
        t = kernel_report(kernel, "bdw").timings_ms
        others = t["preprocess"] + t["pluto"] + t["steps_4_6"]
        if t["polyufc_cm"] > others:
            dominated += 1
    assert dominated >= 0.8 * len(KERNELS)


def test_table4_timeout_resets_cap_to_max(benchmark):
    """Sec. VII-F: kernels whose CM analysis overshoots get f_c = f_max."""
    from repro.benchsuite import get_benchmark
    from repro.hw import get_platform
    from repro.pipeline import get_constants, polyufc_compile

    platform = get_platform("rpl")
    constants = get_constants(platform)

    def run():
        module = get_benchmark("gemm").module()
        return polyufc_compile(
            module, platform, constants=constants, cm_timeout_s=0.0
        )

    result = benchmark(run)
    assert result.timed_out
    assert all(
        abs(cap - platform.uncore.f_max_ghz) < 1e-9 for cap in result.caps()
    )
