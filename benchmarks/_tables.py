"""Shared formatting helpers for the table/figure harnesses."""

from __future__ import annotations

import math
from typing import Iterable, List, Sequence


def format_table(headers: Sequence[str], rows: Iterable[Sequence]) -> str:
    """Render rows as a fixed-width text table."""
    materialized: List[List[str]] = [[str(c) for c in row] for row in rows]
    widths = [len(h) for h in headers]
    for row in materialized:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = [
        "  ".join(h.ljust(w) for h, w in zip(headers, widths)),
        "  ".join("-" * w for w in widths),
    ]
    for row in materialized:
        lines.append("  ".join(c.ljust(w) for c, w in zip(row, widths)))
    return "\n".join(lines)


def banner(title: str) -> str:
    rule = "=" * max(60, len(title) + 4)
    return f"\n{rule}\n  {title}\n{rule}"


def geomean(values: Sequence[float]) -> float:
    values = [v for v in values if v > 0]
    if not values:
        return float("nan")
    return math.exp(sum(math.log(v) for v in values) / len(values))


def pct(ratio: float) -> str:
    """A gain ratio as a +x.x% improvement string."""
    return f"{(1.0 - 1.0 / ratio) * 100.0:+.1f}%"
